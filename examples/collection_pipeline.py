#!/usr/bin/env python3
"""Drive the measurement-collection substrate directly (§2).

Shows the agent -> flaky uploader -> server path the real measurement
software used: records sampled every 10 minutes, uploads that fail are
cached on-device and retried, the server deduplicates retries and assembles
a dataset. Ends by validating the dataset and printing its row counts.

Usage::

    python examples/collection_pipeline.py
"""

from datetime import date

import numpy as np

from repro.collection.agent import AgentSnapshot, MeasurementAgent
from repro.collection.server import CollectionServer
from repro.collection.uploader import FlakyTransport, Uploader, drain_all
from repro.geo.coords import Coordinate
from repro.net.cellular import CellularTechnology
from repro.timeutil import TimeAxis
from repro.traces.records import DeviceInfo, DeviceOS, ScanSummary, WifiStateCode
from repro.traces.validate import validate_dataset

TOKYO = Coordinate(35.681, 139.767)
SUBURB = Coordinate(35.86, 139.64)


def main() -> None:
    axis = TimeAxis(date(2015, 3, 2), n_days=1)
    server = CollectionServer(2015, axis)

    devices = [
        DeviceInfo(0, DeviceOS.ANDROID, "docomo", CellularTechnology.LTE),
        DeviceInfo(1, DeviceOS.IOS, "softbank", CellularTechnology.LTE),
        DeviceInfo(2, DeviceOS.ANDROID, "au", CellularTechnology.THREE_G),
    ]
    rng = np.random.default_rng(5)
    pipeline = []
    for info in devices:
        server.register_device(info)
        transport = FlakyTransport(
            server.receive, failure_rate=0.35,
            rng=np.random.default_rng(100 + info.device_id),
        )
        pipeline.append((MeasurementAgent(info), Uploader(info.device_id, transport)))

    print("Sampling one day at 10-minute ticks with a 35% upload-failure rate...")
    for t in range(axis.n_slots):
        hour = (t % 144) // 6
        at_home = hour < 8 or hour >= 19
        for agent, uploader in pipeline:
            scan = None
            if agent.info.os is DeviceOS.ANDROID and not at_home:
                n24 = int(rng.poisson(3.0))
                scan = ScanSummary(
                    agent.info.device_id, t, n24, min(n24, int(rng.poisson(1.0))),
                    int(rng.poisson(1.0)), 0,
                )
            records = agent.sample(
                AgentSnapshot(
                    t=t,
                    location=SUBURB if at_home else TOKYO,
                    wifi_state=(
                        WifiStateCode.AVAILABLE if not at_home
                        else WifiStateCode.OFF
                    ),
                    rx_cell=float(rng.exponential(2e5)),
                    tx_cell=float(rng.exponential(4e4)),
                    scan=scan,
                )
            )
            uploader.upload(records)

    caches = [uploader.cached_batches for _, uploader in pipeline]
    print(f"End of day: cached batches awaiting retry per device: {caches}")
    drain_all([uploader for _, uploader in pipeline])
    print("Caches drained; assembling the dataset server-side...")

    dataset = server.build_dataset()
    summary = validate_dataset(dataset)
    print(summary)
    print(f"Server stats: {server.batches_received} batches received, "
          f"{server.duplicates_dropped} duplicates dropped.")
    lost = axis.n_slots * len(devices) - summary.rows["geo"]
    print(f"Data loss after retries: {lost} samples (expected 0).")


if __name__ == "__main__":
    main()
