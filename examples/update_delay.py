#!/usr/bin/env python3
"""Security view of the iOS 8.2 flash crowd (§3.7, Figure 18).

WiFi-only updates mean users without home APs update late or never — a
patching-latency exposure window. This example reproduces the update-timing
analysis and quantifies the delay attributable to missing home WiFi.

Usage::

    python examples/update_delay.py [scale]
"""

import sys

import numpy as np

import repro.analysis as analysis
from repro import AnalysisContext, run_study
from repro.reporting.figures import render_ascii_series


def main() -> None:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.08
    study = run_study(scale=scale, seed=31)
    context = AnalysisContext(study)

    timing = analysis.update_timing(context.raw(2015), context.classification(2015))
    print("iOS 8.2 rollout (2015 campaign)")
    print(f"  release day: campaign day {timing.release_day}")
    print(f"  updated within the window: {timing.updated_fraction:.0%}"
          " (paper: 58% in two weeks)")
    print(f"  updated on day one:        {timing.first_day_fraction:.0%}"
          " (paper: ~10%)")
    print(f"  median delay (all):        {timing.median_delay_days:.1f} days")
    if not np.isnan(timing.median_delay_days_no_home):
        print(
            f"  median delay (no home AP): "
            f"{timing.median_delay_days_no_home:.1f} days"
            " (paper: +3.5 days vs home users)"
        )
    print(f"  no-home users who updated: {timing.updated_fraction_no_home:.0%}"
          " (paper: 14%)")
    if timing.no_home_update_network:
        print("  networks no-home users updated on:",
              dict(sorted(timing.no_home_update_network.items())))

    days, cdf = timing.cdf_curve()
    horizon = int(days.max()) + 1
    per_day = np.zeros(horizon)
    for d in days:
        per_day[int(d)] += 1
    print()
    print("  updates per day since release (flash crowd + tail):")
    print("  " + render_ascii_series(per_day, width=min(horizon, 60)))
    print(f"  cumulative after 4 days: {cdf[np.searchsorted(days, 4, 'right') - 1]:.0%}"
          " of the iOS panel (paper: half of updaters in the first four days)")

    print()
    print("Exposure reading: every un-updated device carries the un-patched")
    print("vulnerability; the WiFi-gated distribution concentrates that risk")
    print("on exactly the users without home broadband.")


if __name__ == "__main__":
    main()
