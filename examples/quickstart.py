#!/usr/bin/env python3
"""Quickstart: simulate the three campaigns and print headline findings.

Usage::

    python examples/quickstart.py [scale]

``scale`` (default 0.08) shrinks the ~1600-user panels for a fast run.
"""

import sys

from repro import AnalysisContext, run_experiment, run_study
import repro.analysis as analysis


def main() -> None:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.08
    print(f"Simulating the 2013/2014/2015 campaigns at scale {scale}...")
    study = run_study(scale=scale, seed=7)
    context = AnalysisContext(study)

    print()
    print(run_experiment("table1", context).render())
    print()
    print(run_experiment("table3", context).render())
    print()

    print("Headline findings (paper -> this run):")
    shares = {
        year: analysis.aggregate_traffic(context.campaign(year)).wifi_share
        for year in context.years
    }
    print(
        f"  WiFi share of total volume: 59% -> 67% (paper) | "
        f"{shares[2013]:.0%} -> {shares[2015]:.0%} (measured)"
    )
    heat13 = analysis.wifi_cell_heatmap(context.campaign(2013))
    heat15 = analysis.wifi_cell_heatmap(context.campaign(2015))
    print(
        f"  Cellular-intensive user-days: 35% -> 22% (paper) | "
        f"{heat13.cellular_intensive_fraction:.0%} -> "
        f"{heat15.cellular_intensive_fraction:.0%} (measured)"
    )
    for year in (2013, 2015):
        cls = context.classification(year)
        frac = cls.fraction_devices_with_home_ap(context.clean(year).n_devices)
        print(f"  Users with inferred home AP in {year}: {frac:.0%}")

    print()
    print(run_experiment("fig05", context).render())


if __name__ == "__main__":
    main()
