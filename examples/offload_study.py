#!/usr/bin/env python3
"""WiFi-offloading deep dive: who offloads, when, and how it evolved.

Reproduces the §3.3 analysis flow on a fresh simulated study: user types
(Figure 5), the WiFi-traffic / WiFi-user ratios for light users and heavy
hitters (Figures 6-8), and the §4.1 impact estimate on home broadband.

Usage::

    python examples/offload_study.py [scale]
"""

import sys

import numpy as np

import repro.analysis as analysis
from repro import AnalysisContext, run_study
from repro.reporting.tables import Table


def peak_and_trough(folded: np.ndarray) -> str:
    finite = np.where(np.isfinite(folded), folded, np.nan)
    peak = int(np.nanargmax(finite))
    trough = int(np.nanargmin(finite))
    days = ["Sat", "Sun", "Mon", "Tue", "Wed", "Thu", "Fri"]
    return (
        f"peak {days[peak // 24]} {peak % 24:02d}:00 "
        f"({np.nanmax(finite):.2f}), trough {days[trough // 24]} "
        f"{trough % 24:02d}:00 ({np.nanmin(finite):.2f})"
    )


def main() -> None:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.08
    study = run_study(scale=scale, seed=11)
    context = AnalysisContext(study)

    types = Table(
        "User types per device-day (Figure 5)",
        ["year", "cellular-intensive", "wifi-intensive", "mixed",
         "mixed offloading (above diagonal)"],
    )
    for year in context.years:
        heat = analysis.wifi_cell_heatmap(context.campaign(year))
        types.add_row(
            year, f"{heat.cellular_intensive_fraction:.0%}",
            f"{heat.wifi_intensive_fraction:.0%}",
            f"{heat.mixed_fraction:.0%}",
            f"{heat.mixed_above_diagonal_fraction:.0%}",
        )
    print(types.render())
    print()

    ratios_table = Table(
        "Mean WiFi ratios by subset (Figures 6-8)",
        ["year", "traffic all", "traffic light", "traffic heavy",
         "users all", "users light", "users heavy"],
    )
    for year in context.years:
        ratios = analysis.wifi_ratios(context.campaign(year))
        ratios_table.add_row(
            year,
            *[f"{ratios.traffic(s).mean:.2f}" for s in ("all", "light", "heavy")],
            *[f"{ratios.users(s).mean:.2f}" for s in ("all", "light", "heavy")],
        )
    print(ratios_table.render())
    print()

    ratios15 = analysis.wifi_ratios(context.campaign(2015))
    print("2015 WiFi-traffic ratio weekly shape:",
          peak_and_trough(ratios15.traffic("all").folded_week()))
    print("2015 WiFi-user ratio weekly shape:   ",
          peak_and_trough(ratios15.users("all").folded_week()))
    print()

    impact = Table(
        "Offload impact (§4.1)",
        ["year", "median cell MB", "median wifi MB", "wifi:cell",
         "offload share of broadband", "one phone's share of home volume"],
    )
    for year in context.years:
        estimate = analysis.offload_impact(context.campaign(year))
        impact.add_row(
            year, f"{estimate.median_cell_mb:.1f}",
            f"{estimate.median_wifi_mb:.1f}",
            f"{estimate.wifi_to_cell_ratio:.2f}",
            f"{estimate.offload_share_of_broadband:.0%}",
            f"{estimate.smartphone_share_of_home_broadband:.0%}",
        )
    print(impact.render())


if __name__ == "__main__":
    main()
