#!/usr/bin/env python3
"""Counterfactual policy analysis: the §4 levers, quantified.

Re-runs the 2013 and 2015 campaigns under three interventions the paper
discusses — free home routers for everyone, universal SIM-auth enrollment in
public WiFi, and doubling the public deployment — and reports how the
offloading picture moves.

Usage::

    python examples/whatif_policy.py [scale]
"""

import sys

from repro.whatif import (
    Scenario,
    compare,
    enroll_everyone,
    give_everyone_home_wifi,
    scale_public_deployment,
)


def main() -> None:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.05
    runs = (
        (2013, Scenario("free home routers for all", give_everyone_home_wifi())),
        (2015, Scenario("universal public-WiFi enrollment", enroll_everyone())),
        (2015, Scenario("2x public AP rollout", scale_public_deployment(2.0))),
    )
    for year, scenario in runs:
        result = compare(year, scenario, scale=scale, seed=17)
        print(result.render())
        print()
    print("Reading: home WiFi is the big lever (it moves the total WiFi")
    print("share), while enrollment and rollout move the public slice the")
    print("paper says is still only ~2% of WiFi volume (§3.4.1).")


if __name__ == "__main__":
    main()
