#!/usr/bin/env python3
"""Public-WiFi planning view: coverage, quality, and untapped offload.

An operator/planner reading of §3.4-§3.5 and §4.3: where public APs are
(density cells), how good they are (RSSI, 5 GHz rollout, channel planning),
and how much cellular traffic WiFi-available users could offload if led to
those networks.

Usage::

    python examples/public_wifi_planning.py [scale]
"""

import sys

import repro.analysis as analysis
from repro import AnalysisContext, run_study
from repro.reporting.tables import Table


def main() -> None:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.08
    study = run_study(scale=scale, seed=23)
    context = AnalysisContext(study)

    coverage = Table(
        "Public-AP coverage (Figure 10 / §3.5 style cell counts)",
        ["year", "public APs seen", "cells with >=1", "cells with >=10",
         "densest cell"],
    )
    for year in context.years:
        maps = analysis.association_density_maps(context.campaign(year))
        grid = maps.grid("public")
        counts = context.classification(year).counts()
        coverage.add_row(
            year, counts["public"], grid.n_cells_with_at_least(1),
            grid.n_cells_with_at_least(10), grid.max_count(),
        )
    print(coverage.render())
    print()

    quality = Table(
        "Public network quality (Figures 14-16)",
        ["year", "5GHz fraction", "mean RSSI (dBm)", "weak (<-70dBm)",
         "channels on 1/6/11"],
    )
    from repro.errors import AnalysisError

    for year in context.years:
        campaign = context.campaign(year)
        bands = analysis.band_fractions(campaign)
        rssi = analysis.rssi_distributions(campaign)
        try:
            channels = analysis.channel_distributions(campaign)
            trio = (
                f"{channels.trio_share('public'):.0%}"
                if "public" in channels.pdf else "n/a"
            )
        except (AnalysisError, KeyError):
            trio = "n/a"  # tiny panels may see no 2.4 GHz public APs
        quality.add_row(
            year, f"{bands.fraction('public'):.0%}",
            f"{rssi.mean.get('public', float('nan')):.1f}",
            f"{rssi.weak_fraction.get('public', float('nan')):.0%}",
            trio,
        )
    print(quality.render())
    print()

    offload = Table(
        "Untapped offload among WiFi-available users (Figure 17 / §3.5)",
        ["year", "available devices", "see >=1 strong public",
         "offloadable cellular share"],
    )
    for year in context.years:
        estimate = analysis.offload_estimate(context.campaign(year))
        availability = analysis.public_availability(context.campaign(year))
        offload.add_row(
            year, estimate.n_available_devices,
            f"{estimate.devices_with_opportunity:.0%}",
            f"{estimate.offloadable_fraction:.0%}",
        )
        del availability  # Figure 17 CCDFs available via run_experiment("fig17")
    print(offload.render())
    print()
    print("Planner takeaways (mirroring §4.3):")
    print("  - Public 5 GHz rollout outpaces home/office; quality tail"
          " (<-70 dBm) persists on 2.4 GHz.")
    print("  - Channel planning is already near-optimal (1/6/11);"
          " interference risk comes from home APs on overlapping channels.")
    print("  - 15-20% of available users' cellular volume is offloadable"
          " with zero new hardware: lead users to existing strong APs.")


if __name__ == "__main__":
    main()
