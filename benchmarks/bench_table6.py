"""Benchmark: regenerate Table 6 — top application categories by RX volume per network context.

Runs the ``table6`` experiment end to end over the shared benchmark study
and saves the rendered artifact to ``benchmarks/output/table6.txt``.
"""

from repro import run_experiment

from .conftest import save_output


def test_table6(bench_cache, output_dir, benchmark):
    result = benchmark(run_experiment, "table6", bench_cache)
    save_output(output_dir, "table6", result)
