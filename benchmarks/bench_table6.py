"""Benchmark: regenerate Table 6 — top application categories by RX volume per network context.

One-liner on the shared harness: runs the experiment end to end over
the benchmark study and saves the rendered artifact under
``benchmarks/output/``. Timing body lives in
:func:`benchmarks.harness.experiment_benchmark`.
"""

from .harness import experiment_benchmark

test_table6 = experiment_benchmark("table6")
