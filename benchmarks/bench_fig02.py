"""Benchmark: regenerate Figure 2 — aggregated weekly cellular/WiFi traffic in Mbps.

Runs the ``fig02`` experiment end to end over the shared benchmark study
and saves the rendered artifact to ``benchmarks/output/fig02.txt``.
"""

from repro import run_experiment

from .conftest import save_output


def test_fig02(bench_cache, output_dir, benchmark):
    result = benchmark(run_experiment, "fig02", bench_cache)
    save_output(output_dir, "fig02", result)
