"""Benchmark: regenerate Figure 2 — aggregated weekly cellular/WiFi traffic in Mbps.

One-liner on the shared harness: runs the experiment end to end over
the benchmark study and saves the rendered artifact under
``benchmarks/output/``. Timing body lives in
:func:`benchmarks.harness.experiment_benchmark`.
"""

from .harness import experiment_benchmark

test_fig02 = experiment_benchmark("fig02")
