"""Storage scale ladder: prove the disk store runs where memory cannot.

The acceptance gate for out-of-core execution, run by the CI
``storage-scale`` job (Linux only — it needs ``RLIMIT_AS`` and procfs):

1. Run ``repro simulate`` once per path unconstrained, recording each
   interpreter's peak address space (``VmPeak``) — the quantity
   ``ulimit -v`` constrains.
2. Derive a hard ceiling halfway between the two peaks. The ceiling is
   only meaningful if the in-memory path actually needs more than the
   disk path; the script fails loudly when the gap closes.
3. Under that ceiling (``RLIMIT_AS``, the programmatic ``ulimit -v``):
   - the in-memory path must FAIL — the ceiling really binds;
   - ``repro simulate --store disk`` must complete at jobs 1 AND jobs 2;
   - ``repro analyze --data <store>`` must complete;
   and every constrained run's dataset digest and rendered analysis
   output must be bit-identical to the unconstrained in-memory reference.

Run standalone::

    PYTHONPATH=src python benchmarks/storage_ladder.py [--scale S] [--out DIR]
"""

from __future__ import annotations

import argparse
import filecmp
import hashlib
import json
import os
import subprocess
import sys
from pathlib import Path

import repro  # noqa: F401  (resolves PYTHONPATH for the children)
from repro.traces.io import load_dataset

DEFAULT_SCALE = 0.3
DEFAULT_SEED = 3
EXPERIMENTS = ("table1", "fig05", "fig19")

#: Child wrapper: run the CLI in-process, then report this interpreter's
#: peak address space to a side file (stdout belongs to the CLI).
_WRAPPER = r"""
import sys
from pathlib import Path
from repro.cli import main

peak_file = sys.argv[1]
code = main(sys.argv[2:])
for line in Path("/proc/self/status").read_text().splitlines():
    if line.startswith("VmPeak:"):
        Path(peak_file).write_text(line.split(":")[1].split()[0])
sys.exit(code)
"""


def _run_cli(cli_args, peak_file=None, limit_kb=None):
    """Run ``repro <cli_args>`` in a child; return its exit code."""
    env = dict(os.environ)
    src = str(Path(repro.__file__).resolve().parents[1])
    env["PYTHONPATH"] = src + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    env.pop("REPRO_JOBS", None)

    def _limit():
        if limit_kb is not None:
            import resource

            resource.setrlimit(resource.RLIMIT_AS,
                               (limit_kb * 1024, limit_kb * 1024))

    command = [sys.executable, "-c", _WRAPPER,
               str(peak_file or os.devnull)] + [str(a) for a in cli_args]
    proc = subprocess.run(command, env=env, preexec_fn=_limit,
                          stdout=subprocess.DEVNULL,
                          stderr=subprocess.PIPE, text=True)
    if proc.returncode != 0 and limit_kb is None:
        raise SystemExit(
            f"unconstrained run failed ({cli_args}): "
            f"{proc.stderr.strip()[-800:]}"
        )
    return proc.returncode


def _simulate(out, scale, seed, jobs, disk, peak_file=None, limit_kb=None):
    cli = ["simulate", "--scale", scale, "--seed", seed, "--jobs", jobs,
           "--out", out]
    if disk:
        cli += ["--store", "disk"]
    return _run_cli(cli, peak_file=peak_file, limit_kb=limit_kb)


def _digest(root: Path) -> str:
    """SHA-256 over every campaign's sorted column bytes under ``root``."""
    h = hashlib.sha256()
    for campaign in sorted(Path(root).glob("campaign*")):
        dataset = load_dataset(campaign)
        for table in dataset.table_names:
            for name, column in sorted(getattr(dataset, table)
                                       .columns.items()):
                h.update(f"{campaign.name}.{table}.{name}".encode())
                h.update(column.tobytes())
    return h.hexdigest()


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", type=float, default=DEFAULT_SCALE)
    parser.add_argument("--seed", type=int, default=DEFAULT_SEED)
    parser.add_argument("--out", type=Path, default=Path("ladder"),
                        help="working directory (default ./ladder)")
    args = parser.parse_args(argv)
    if sys.platform != "linux":
        print("storage ladder needs Linux (RLIMIT_AS + /proc); skipping")
        return 0
    work = args.out
    work.mkdir(parents=True, exist_ok=True)

    # 1. Unconstrained probes: the reference bits and both VmPeaks.
    print(f"[1/4] probing both paths unconstrained at scale {args.scale}")
    mem_peak_file = work / "mem_peak_kb"
    disk_peak_file = work / "disk_peak_kb"
    _simulate(work / "mem", args.scale, args.seed, 1, disk=False,
              peak_file=mem_peak_file)
    _simulate(work / "probe", args.scale, args.seed, 1, disk=True,
              peak_file=disk_peak_file)
    mem_peak = int(mem_peak_file.read_text())
    disk_peak = int(disk_peak_file.read_text())

    # 2. The ceiling must separate the paths, or the ladder proves nothing.
    ceiling = (mem_peak + disk_peak) // 2
    print(f"      VmPeak memory={mem_peak}kB disk={disk_peak}kB "
          f"-> ceiling {ceiling}kB")
    if disk_peak * 105 >= mem_peak * 100:
        raise SystemExit(
            f"no out-of-core headroom: disk VmPeak {disk_peak}kB is within "
            f"5% of memory VmPeak {mem_peak}kB at scale {args.scale} — "
            f"the store is buffering too much; raise --scale or fix the spill"
        )

    # 3. Constrained runs: memory must break, disk must not.
    print(f"[2/4] in-memory path under the {ceiling}kB ceiling (must fail)")
    code = _simulate(work / "mem_capped", args.scale, args.seed, 1,
                     disk=False, limit_kb=ceiling)
    if code == 0:
        raise SystemExit(
            f"in-memory run fit under {ceiling}kB — the ceiling does not "
            f"bind; the ladder scale {args.scale} is too small"
        )
    print(f"[3/4] disk-store path under the same ceiling at jobs 1 and 2")
    for jobs in (1, 2):
        code = _simulate(work / f"disk{jobs}", args.scale, args.seed, jobs,
                         disk=True, limit_kb=ceiling)
        if code != 0:
            raise SystemExit(
                f"disk-store run (jobs {jobs}) died under the {ceiling}kB "
                f"ceiling (exit {code}) — out-of-core regression"
            )

    # 4. Bit-identity: datasets and rendered analyses.
    print("[4/4] digests and analysis outputs vs the in-memory reference")
    reference = _digest(work / "mem")
    for jobs in (1, 2):
        got = _digest(work / f"disk{jobs}")
        if got != reference:
            raise SystemExit(
                f"disk-store dataset (jobs {jobs}) diverged: "
                f"{got[:16]} != {reference[:16]}"
            )
    analyze = ["analyze", *EXPERIMENTS]
    _run_cli(analyze + ["--data", work / "mem", "--out", work / "a_mem"])
    code = _run_cli(
        analyze + ["--data", work / "disk1", "--out", work / "a_disk"],
        limit_kb=ceiling,
    )
    if code != 0:
        raise SystemExit(f"store-backed analyze died under the ceiling "
                         f"(exit {code})")
    for name in EXPERIMENTS:
        if not filecmp.cmp(work / "a_mem" / f"{name}.txt",
                           work / "a_disk" / f"{name}.txt", shallow=False):
            raise SystemExit(f"analysis output {name}.txt diverged between "
                             f"memory and store paths")

    summary = {
        "scale": args.scale,
        "seed": args.seed,
        "mem_peak_vm_kb": mem_peak,
        "disk_peak_vm_kb": disk_peak,
        "ceiling_kb": ceiling,
        "digest": reference,
    }
    (work / "ladder.json").write_text(json.dumps(summary, indent=2) + "\n")
    print(f"ladder passed: digest {reference[:16]} identical on every rung; "
          f"wrote {work / 'ladder.json'}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
