"""Benchmark: regenerate Table 1 — campaign overview: panel sizes, windows, LTE share of cellular traffic.

Runs the ``table1`` experiment end to end over the shared benchmark study
and saves the rendered artifact to ``benchmarks/output/table1.txt``.
"""

from repro import run_experiment

from .conftest import save_output


def test_table1(bench_cache, output_dir, benchmark):
    result = benchmark(run_experiment, "table1", bench_cache)
    save_output(output_dir, "table1", result)
