"""Benchmark: regenerate Figure 14 — fraction of associated unique 5GHz APs by class and year.

Runs the ``fig14`` experiment end to end over the shared benchmark study
and saves the rendered artifact to ``benchmarks/output/fig14.txt``.
"""

from repro import run_experiment

from .conftest import save_output


def test_fig14(bench_cache, output_dir, benchmark):
    result = benchmark(run_experiment, "fig14", bench_cache)
    save_output(output_dir, "fig14", result)
