"""Benchmark: regenerate Figure 14 — fraction of associated unique 5GHz APs by class and year.

One-liner on the shared harness: runs the experiment end to end over
the benchmark study and saves the rendered artifact under
``benchmarks/output/``. Timing body lives in
:func:`benchmarks.harness.experiment_benchmark`.
"""

from .harness import experiment_benchmark

test_fig14 = experiment_benchmark("fig14")
