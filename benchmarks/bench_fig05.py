"""Benchmark: regenerate Figure 5 — cellular-vs-WiFi per-user-day heat map and user types.

Runs the ``fig05`` experiment end to end over the shared benchmark study
and saves the rendered artifact to ``benchmarks/output/fig05.txt``.
"""

from repro import run_experiment

from .conftest import save_output


def test_fig05(bench_cache, output_dir, benchmark):
    result = benchmark(run_experiment, "fig05", bench_cache)
    save_output(output_dir, "fig05", result)
