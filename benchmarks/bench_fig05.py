"""Benchmark: regenerate Figure 5 — cellular-vs-WiFi per-user-day heat map and user types.

One-liner on the shared harness: runs the experiment end to end over
the benchmark study and saves the rendered artifact under
``benchmarks/output/``. Timing body lives in
:func:`benchmarks.harness.experiment_benchmark`.
"""

from .harness import experiment_benchmark

test_fig05 = experiment_benchmark("fig05")
