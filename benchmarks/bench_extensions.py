"""Benchmarks for the §4.3 extension analyses.

Not paper tables/figures, but analyses the discussion section calls for:
multi-provider shared APs (found "by checking similar BSSIDs assigned to
different providers") and neighbourhood channel interference.
"""

from repro.analysis import channel_interference, shared_infrastructure
from repro.reporting.tables import Table

from .harness import save_output


def test_shared_infrastructure(bench_cache, output_dir, benchmark):
    dataset = bench_cache.clean(2015)
    result = benchmark(shared_infrastructure, dataset)
    table = Table(
        "Section 4.3: multi-provider shared APs (2015)",
        ["shared boxes", "APs on shared hw", "public APs", "shared fraction"],
    )
    table.add_row(
        result.n_shared_groups, result.n_shared_aps, result.n_public_aps,
        f"{result.shared_fraction:.0%}",
    )
    save_output(output_dir, "sec43_shared_infra", table)
    assert result.n_shared_groups > 0


def test_channel_interference(bench_cache, output_dir, benchmark):
    dataset = bench_cache.clean(2015)
    classification = bench_cache.classification(2015)
    result = benchmark(channel_interference, dataset, classification)
    table = Table(
        "Section 3.4.5/4.3: cross-channel interference by class",
        ["year", "class", "mean interfering-pair fraction", "on 1/6/11",
         "evaluable cells"],
    )
    for year in bench_cache.years:
        summary = channel_interference(
            bench_cache.clean(year), bench_cache.classification(year)
        )
        for cls in ("home", "public"):
            table.add_row(
                year, cls, summary.mean_fraction[cls], summary.trio_share[cls],
                summary.evaluable_cells[cls],
            )
    save_output(output_dir, "sec43_interference", table)
    # Planned public deployments avoid cross-channel overlap entirely.
    assert result.mean_fraction["public"] <= result.mean_fraction["home"]


def test_battery_drain(bench_cache, output_dir, benchmark):
    from repro.analysis import battery_drain

    dataset = bench_cache.raw(2015)
    result = benchmark(battery_drain, dataset)
    table = Table(
        "Extension: battery discharge by WiFi state (2015)",
        ["state", "drain %/hour", "samples"],
    )
    for state, rate in sorted(result.drain_pct_per_hour.items()):
        table.add_row(state, f"{rate:.2f}", result.n_samples[state])
    table.add_row("extra cost of WiFi", f"{result.extra_cost_of_wifi():.2f}", "-")
    save_output(output_dir, "ext_battery", table)
    # §4.2(4): battery was not a significant factor.
    assert result.extra_cost_of_wifi() < 2.0


def test_survey_gap(bench_cache, output_dir, benchmark):
    from repro.analysis import survey_gap

    dataset = bench_cache.clean(2015)
    responses = bench_cache.study.surveys[2015]
    classification = bench_cache.classification(2015)
    result = benchmark(survey_gap, dataset, responses, classification)
    table = Table(
        "Section 4.2: survey claims vs measured association (2015)",
        ["location", "claimed %", "measured %", "gap (pp)"],
    )
    for loc in ("home", "office", "public"):
        table.add_row(
            loc, f"{result.claimed_pct[loc]:.1f}",
            f"{result.measured_pct[loc]:.1f}", f"{result.gap(loc):+.1f}",
        )
    save_output(output_dir, "sec42_survey_gap", table)
    # §4.2: public connectivity is over-reported.
    assert result.gap("public") > 0.0


def test_mobility_stats(bench_cache, output_dir, benchmark):
    from repro.analysis import mobility_stats

    dataset = bench_cache.clean(2015)
    classes = bench_cache.user_classes(2015)
    result = benchmark(mobility_stats, dataset, classes)
    table = Table(
        "Section 3.4.2: mobility vs traffic volume (2015)",
        ["metric", "value"],
    )
    table.add_row("corr(distinct cells, log volume)", result.corr_cells_vs_volume)
    table.add_row("corr(distinct APs, log volume)", result.corr_aps_vs_volume)
    table.add_row("mean cells/day, heavy hitters", result.mean_cells_heavy)
    table.add_row("mean cells/day, light users", result.mean_cells_light)
    save_output(output_dir, "sec342_mobility", table)
    # §3.4.2: traffic volume does not correlate with mobility.
    assert result.uncorrelated()
