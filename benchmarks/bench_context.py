"""Cold vs. warm experiment-sweep benchmark for the AnalysisContext memo.

Runs the full experiment registry twice over one simulated study: the cold
sweep hands every experiment a fresh :class:`AnalysisContext` (nothing
shared, every artifact recomputed per experiment), the warm sweep reuses
one shared context the way the CLI and the test suite do. Results land in
``BENCH_context.json`` at the repository root, including the per-artifact
:class:`CacheStats` of the warm context so the hit rates that produce the
speedup are visible next to the wall times.

Timing goes through :func:`repro.obs.bench.best_of` — the same
warmup/repeat primitive behind ``python -m repro bench``, which also runs
these sweeps as the ``context_cold_sweep``/``context_warm_sweep`` cases.
This standalone entry point exists to refresh the committed baseline.

Run standalone (pytest collects this file but it defines no tests)::

    PYTHONPATH=src python benchmarks/bench_context.py [--scale S] [--out PATH]
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro import AnalysisContext, run_study
from repro.obs.bench import best_of
from repro.reporting.experiments import list_experiments, run_experiment

SCALE = 0.08
SEED = 7
REPEATS = 2

DEFAULT_OUT = Path(__file__).resolve().parents[1] / "BENCH_context.json"


def _time_sweep(study, shared: bool) -> tuple:
    """Best-of-``REPEATS`` wall time for one full experiment sweep."""

    def sweep(context=None):
        for experiment in list_experiments():
            cache = context if shared else AnalysisContext(study)
            run_experiment(experiment.experiment_id, cache)
        return context.stats if shared else None

    timing = best_of(
        sweep, repeat=REPEATS, warmup=0,
        setup=(lambda: AnalysisContext(study)) if shared else None,
    )
    return timing.best_s, timing.best_result


def run_benchmark(scale: float, seed: int) -> dict:
    study = run_study(scale=scale, seed=seed)
    n_experiments = len(list_experiments())
    cold, _ = _time_sweep(study, shared=False)
    warm, stats = _time_sweep(study, shared=True)
    return {
        "benchmark": "context_cold_vs_warm_sweep",
        "scale": scale,
        "seed": seed,
        "repeats_best_of": REPEATS,
        "n_experiments": n_experiments,
        "cold_sweep_s": round(cold, 4),
        "warm_sweep_s": round(warm, 4),
        "speedup": round(cold / warm, 3),
        "warm_cache_stats": stats.as_dict(),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", type=float, default=SCALE,
                        help=f"study scale (default {SCALE})")
    parser.add_argument("--seed", type=int, default=SEED)
    parser.add_argument("--out", type=Path, default=DEFAULT_OUT,
                        help=f"output JSON path (default {DEFAULT_OUT})")
    args = parser.parse_args(argv)

    report = run_benchmark(args.scale, args.seed)
    args.out.write_text(json.dumps(report, indent=2) + "\n")
    print(f"cold sweep (fresh context per experiment): "
          f"{report['cold_sweep_s']}s")
    print(f"warm sweep (one shared context):           "
          f"{report['warm_sweep_s']}s")
    print(f"speedup {report['speedup']}x over "
          f"{report['n_experiments']} experiments")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
