"""Benchmark: regenerate Figure 6 — WiFi-traffic ratio and WiFi-user ratio over the week.

Runs the ``fig06`` experiment end to end over the shared benchmark study
and saves the rendered artifact to ``benchmarks/output/fig06.txt``.
"""

from repro import run_experiment

from .conftest import save_output


def test_fig06(bench_cache, output_dir, benchmark):
    result = benchmark(run_experiment, "fig06", bench_cache)
    save_output(output_dir, "fig06", result)
