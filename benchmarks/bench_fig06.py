"""Benchmark: regenerate Figure 6 — WiFi-traffic ratio and WiFi-user ratio over the week.

One-liner on the shared harness: runs the experiment end to end over
the benchmark study and saves the rendered artifact under
``benchmarks/output/``. Timing body lives in
:func:`benchmarks.harness.experiment_benchmark`.
"""

from .harness import experiment_benchmark

test_fig06 = experiment_benchmark("fig06")
