"""Benchmark: regenerate Table 7 — top application categories by TX volume per network context.

One-liner on the shared harness: runs the experiment end to end over
the benchmark study and saves the rendered artifact under
``benchmarks/output/``. Timing body lives in
:func:`benchmarks.harness.experiment_benchmark`.
"""

from .harness import experiment_benchmark

test_table7 = experiment_benchmark("table7")
