"""Benchmark: regenerate Table 7 — top application categories by TX volume per network context.

Runs the ``table7`` experiment end to end over the shared benchmark study
and saves the rendered artifact to ``benchmarks/output/table7.txt``.
"""

from repro import run_experiment

from .conftest import save_output


def test_table7(bench_cache, output_dir, benchmark):
    result = benchmark(run_experiment, "table7", bench_cache)
    save_output(output_dir, "table7", result)
