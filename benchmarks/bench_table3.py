"""Benchmark: regenerate Table 3 — median/mean daily download per user and annual growth rates.

One-liner on the shared harness: runs the experiment end to end over
the benchmark study and saves the rendered artifact under
``benchmarks/output/``. Timing body lives in
:func:`benchmarks.harness.experiment_benchmark`.
"""

from .harness import experiment_benchmark

test_table3 = experiment_benchmark("table3")
