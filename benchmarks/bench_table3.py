"""Benchmark: regenerate Table 3 — median/mean daily download per user and annual growth rates.

Runs the ``table3`` experiment end to end over the shared benchmark study
and saves the rendered artifact to ``benchmarks/output/table3.txt``.
"""

from repro import run_experiment

from .conftest import save_output


def test_table3(bench_cache, output_dir, benchmark):
    result = benchmark(run_experiment, "table3", bench_cache)
    save_output(output_dir, "table3", result)
