"""Shared pytest-benchmark harness for the ``benchmarks/`` suite.

Everything the 37 ``bench_*.py`` scripts used to duplicate lives here:
the benchmark scale knob, output persistence (text + SVG for figures),
and :func:`experiment_benchmark` — a factory that turns a registered
experiment id into a complete pytest-benchmark test, so each per-figure
script is one line instead of a copy-pasted timing body.

The same experiments are also runnable outside pytest through
``python -m repro bench`` (see :mod:`repro.obs.bench`), which shares this
scale/seed convention and writes a consolidated ``BENCH_all.json``.

The benchmark study scale is controlled by ``REPRO_BENCH_SCALE`` (default
0.12 — about 200 users per campaign). Rendered experiment outputs are saved
under ``benchmarks/output/`` so paper-vs-measured comparisons can be read
after a run.
"""

from __future__ import annotations

import os
from pathlib import Path

from repro import run_experiment
from repro.reporting.experiments import EXPERIMENTS

OUTPUT_DIR = Path(__file__).parent / "output"


def bench_scale() -> float:
    return float(os.environ.get("REPRO_BENCH_SCALE", "0.12"))


#: Figures whose paper originals use log axes.
_LOG_X = {"fig03", "fig04", "fig13", "fig17", "fig19"}
_LOG_Y = {"fig13", "fig17"}


def save_output(output_dir: Path, experiment_id: str, result) -> None:
    """Persist a rendered experiment artifact (text, plus SVG for figures)."""
    text = result.render() if hasattr(result, "render") else str(result)
    (output_dir / f"{experiment_id}.txt").write_text(text + "\n")
    from repro.reporting.figures import Figure
    from repro.reporting.svg import figure_to_svg

    if isinstance(result, Figure):
        svg = figure_to_svg(
            result,
            log_x=experiment_id in _LOG_X,
            log_y=experiment_id in _LOG_Y,
        )
        (output_dir / f"{experiment_id}.svg").write_text(svg)


def experiment_benchmark(experiment_id: str):
    """Build the standard pytest-benchmark test for one registered experiment.

    The returned function runs the experiment end to end over the shared
    benchmark study (``bench_cache`` fixture) and saves the rendered
    artifact to ``benchmarks/output/<id>.txt`` (plus ``.svg`` for figures).
    """
    if experiment_id not in EXPERIMENTS:
        raise ValueError(f"unknown experiment id: {experiment_id}")

    def test(bench_cache, output_dir, benchmark):
        result = benchmark(run_experiment, experiment_id, bench_cache)
        save_output(output_dir, experiment_id, result)

    spec = EXPERIMENTS[experiment_id]
    test.__name__ = f"test_{experiment_id}"
    test.__doc__ = f"Benchmark: regenerate {spec.paper_item} — {spec.title}."
    return test
