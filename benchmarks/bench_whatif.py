"""Benchmark the counterfactual engine on the §4 policy levers."""

from repro.whatif import Scenario, compare, give_everyone_home_wifi

from .harness import bench_scale, save_output


def test_whatif_home_wifi_for_all(output_dir, benchmark):
    scale = min(bench_scale(), 0.06)
    result = benchmark(
        compare, 2013,
        Scenario("free home routers for all", give_everyone_home_wifi()),
        scale, 19,
    )
    save_output(output_dir, "whatif_home_wifi", result)
    assert result.delta("wifi_share") > 0.0
