"""Benchmark: regenerate Figure 10 — associated unique APs per 5km cell (home vs public).

Runs the ``fig10`` experiment end to end over the shared benchmark study
and saves the rendered artifact to ``benchmarks/output/fig10.txt``.
"""

from repro import run_experiment

from .conftest import save_output


def test_fig10(bench_cache, output_dir, benchmark):
    result = benchmark(run_experiment, "fig10", bench_cache)
    save_output(output_dir, "fig10", result)
