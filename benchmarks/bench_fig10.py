"""Benchmark: regenerate Figure 10 — associated unique APs per 5km cell (home vs public).

One-liner on the shared harness: runs the experiment end to end over
the benchmark study and saves the rendered artifact under
``benchmarks/output/``. Timing body lives in
:func:`benchmarks.harness.experiment_benchmark`.
"""

from .harness import experiment_benchmark

test_fig10 = experiment_benchmark("fig10")
