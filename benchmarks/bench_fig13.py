"""Benchmark: regenerate Figure 13 — CCDFs of consecutive WiFi association duration.

Runs the ``fig13`` experiment end to end over the shared benchmark study
and saves the rendered artifact to ``benchmarks/output/fig13.txt``.
"""

from repro import run_experiment

from .conftest import save_output


def test_fig13(bench_cache, output_dir, benchmark):
    result = benchmark(run_experiment, "fig13", bench_cache)
    save_output(output_dir, "fig13", result)
