"""Serial vs. parallel campaign execution wall-time benchmark.

Times ``run_campaign`` through the sharded execution engine at two panel
scales, once on the :class:`SerialExecutor` and once on the process-pool
:class:`ParallelExecutor`, and records the results in ``BENCH_engine.json``
at the repository root — the first data point of the engine's performance
trajectory. The world cache is cleared before every timed run (the
``setup`` hook of :func:`repro.obs.bench.best_of`, the shared
warmup/repeat primitive behind ``python -m repro bench``) so each
measurement pays the full plan → execute → merge cost.

Run standalone (pytest collects this file but it defines no tests)::

    PYTHONPATH=src python benchmarks/bench_engine.py [--jobs N] [--out PATH]

Speedup is only expected on multi-core hardware; the report records
``cpu_count`` so single-core numbers are not mistaken for regressions.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path

from repro.obs.bench import best_of
from repro.simulation.campaign import clear_world_cache, run_campaign
from repro.simulation.study import default_campaign_config

#: (small, large) panel scales: ~32 and ~130 devices for the 2015 campaign.
SCALES = (0.02, 0.08)
YEAR = 2015
SEED = 3
REPEATS = 2

#: Absolute parallel-speedup floor (ROADMAP item 2): on a >=2-core host
#: the jobs=2 campaign must beat serial by this factor. Committed only
#: for cells at or above ``SPEEDUP_FLOOR_MIN_SCALE`` — the ~32-device
#: panel is pool-overhead-dominated and would gate on noise. The floor
#: rides in the baseline cell so ``bench --check`` can arm it even when
#: the baseline host itself was single-core (``speedup: null``).
SPEEDUP_FLOOR = 1.5
SPEEDUP_FLOOR_MIN_SCALE = 0.05

DEFAULT_OUT = Path(__file__).resolve().parents[1] / "BENCH_engine.json"


def _time_campaign(scale: float, n_jobs: int) -> dict:
    """Best-of-``REPEATS`` wall time for one (scale, n_jobs) cell."""
    config = default_campaign_config(YEAR, scale=scale, seed=SEED)
    timing = best_of(
        lambda: run_campaign(config, n_jobs=n_jobs),
        repeat=REPEATS, warmup=0, setup=clear_world_cache,
    )
    devices = timing.best_result.dataset.n_devices
    info = timing.best_result.execution
    cell = {
        "n_jobs": n_jobs,
        "executor": "serial" if n_jobs == 1 else "parallel",
        "devices": devices,
        "wall_s": round(timing.best_s, 4),
        "devices_per_s": round(devices / timing.best_s, 2),
    }
    if info is not None:
        cell["n_shards"] = info.n_shards
        cell["steals"] = getattr(info, "steals", 0)
        cell["transport_bytes"] = getattr(info, "transport_bytes", 0)
        cell["payload_bytes_per_shard"] = (
            round(cell["transport_bytes"] / info.n_shards)
            if info.n_shards else 0
        )
    return cell


def run_benchmark(n_jobs: int) -> dict:
    cpu_count = os.cpu_count() or 1
    cells = []
    for scale in SCALES:
        serial = _time_campaign(scale, 1)
        parallel = _time_campaign(scale, n_jobs)
        cell = {
            "scale": scale,
            "year": YEAR,
            "seed": SEED,
            "serial": serial,
            "parallel": parallel,
        }
        if scale >= SPEEDUP_FLOOR_MIN_SCALE:
            cell["speedup_floor"] = SPEEDUP_FLOOR
        if cpu_count >= 2:
            cell["speedup"] = round(serial["wall_s"] / parallel["wall_s"], 3)
        else:
            # A single core cannot show parallel speedup; recording the
            # <1.0 ratio would bake a bogus regression target into the
            # baseline (``bench --check`` skips the criterion instead).
            cell["speedup"] = None
            cell["speedup_note"] = (
                "single-core host: parallel wall time is pool overhead, "
                "not a speedup measurement"
            )
        cells.append(cell)
    return {
        "benchmark": "engine_serial_vs_parallel",
        "cpu_count": cpu_count,
        "parallel_jobs": n_jobs,
        "repeats_best_of": REPEATS,
        "scales": cells,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--jobs", type=int, default=None,
                        help="parallel worker count (default: CPU count, "
                             "minimum 2 so the pool path is exercised)")
    parser.add_argument("--out", type=Path, default=DEFAULT_OUT,
                        help=f"output JSON path (default {DEFAULT_OUT})")
    args = parser.parse_args(argv)
    n_jobs = args.jobs if args.jobs else max(2, os.cpu_count() or 1)

    report = run_benchmark(n_jobs)
    args.out.write_text(json.dumps(report, indent=2) + "\n")
    for cell in report["scales"]:
        speedup = (f"speedup {cell['speedup']}x" if cell["speedup"]
                   else "speedup n/a (single core)")
        print(f"scale {cell['scale']}: serial {cell['serial']['wall_s']}s, "
              f"parallel({n_jobs}) {cell['parallel']['wall_s']}s "
              f"-> {speedup}")
    print(f"wrote {args.out} (cpu_count={report['cpu_count']})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
