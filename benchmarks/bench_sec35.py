"""Benchmark: regenerate Section 3.5 — offloadable cellular traffic for WiFi-available users.

Runs the ``sec35`` experiment end to end over the shared benchmark study
and saves the rendered artifact to ``benchmarks/output/sec35.txt``.
"""

from repro import run_experiment

from .conftest import save_output


def test_sec35(bench_cache, output_dir, benchmark):
    result = benchmark(run_experiment, "sec35", bench_cache)
    save_output(output_dir, "sec35", result)
