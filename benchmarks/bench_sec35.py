"""Benchmark: regenerate Section 3.5 — offloadable cellular traffic for WiFi-available users.

One-liner on the shared harness: runs the experiment end to end over
the benchmark study and saves the rendered artifact under
``benchmarks/output/``. Timing body lives in
:func:`benchmarks.harness.experiment_benchmark`.
"""

from .harness import experiment_benchmark

test_sec35 = experiment_benchmark("sec35")
