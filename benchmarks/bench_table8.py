"""Benchmark: regenerate Table 8 — survey: where users connected to WiFi APs.

One-liner on the shared harness: runs the experiment end to end over
the benchmark study and saves the rendered artifact under
``benchmarks/output/``. Timing body lives in
:func:`benchmarks.harness.experiment_benchmark`.
"""

from .harness import experiment_benchmark

test_table8 = experiment_benchmark("table8")
