"""Benchmark: regenerate Table 8 — survey: where users connected to WiFi APs.

Runs the ``table8`` experiment end to end over the shared benchmark study
and saves the rendered artifact to ``benchmarks/output/table8.txt``.
"""

from repro import run_experiment

from .conftest import save_output


def test_table8(bench_cache, output_dir, benchmark):
    result = benchmark(run_experiment, "table8", bench_cache)
    save_output(output_dir, "table8", result)
