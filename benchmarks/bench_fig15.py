"""Benchmark: regenerate Figure 15 — PDFs of per-AP max RSSI, home vs public.

One-liner on the shared harness: runs the experiment end to end over
the benchmark study and saves the rendered artifact under
``benchmarks/output/``. Timing body lives in
:func:`benchmarks.harness.experiment_benchmark`.
"""

from .harness import experiment_benchmark

test_fig15 = experiment_benchmark("fig15")
