"""Benchmark: regenerate Figure 15 — PDFs of per-AP max RSSI, home vs public.

Runs the ``fig15`` experiment end to end over the shared benchmark study
and saves the rendered artifact to ``benchmarks/output/fig15.txt``.
"""

from repro import run_experiment

from .conftest import save_output


def test_fig15(bench_cache, output_dir, benchmark):
    result = benchmark(run_experiment, "fig15", bench_cache)
    save_output(output_dir, "fig15", result)
