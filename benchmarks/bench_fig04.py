"""Benchmark: regenerate Figure 4 — CDFs of daily traffic per interface type (2015).

Runs the ``fig04`` experiment end to end over the shared benchmark study
and saves the rendered artifact to ``benchmarks/output/fig04.txt``.
"""

from repro import run_experiment

from .conftest import save_output


def test_fig04(bench_cache, output_dir, benchmark):
    result = benchmark(run_experiment, "fig04", bench_cache)
    save_output(output_dir, "fig04", result)
