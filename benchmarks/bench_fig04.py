"""Benchmark: regenerate Figure 4 — CDFs of daily traffic per interface type (2015).

One-liner on the shared harness: runs the experiment end to end over
the benchmark study and saves the rendered artifact under
``benchmarks/output/``. Timing body lives in
:func:`benchmarks.harness.experiment_benchmark`.
"""

from .harness import experiment_benchmark

test_fig04 = experiment_benchmark("fig04")
