"""Ablation benchmarks for the generator's load-bearing design choices.

DESIGN.md calls out three mechanisms the headline reproductions rest on;
each ablation disables one and shows the corresponding paper shape collapse:

1. **WiFi uplift + binge bursts** drive the WiFi volume dominance (§3.1,
   Table 3). Without them WiFi no longer out-carries cellular.
2. **Policy conditioning on home-AP ownership** drives the home-AP inference
   rate (§3.4.1). With unconditioned policies far fewer owners ever
   associate at night.
3. **The soft cap's throttle + demand response** create the Figure 19 gap.
   Without them capped device-days look like everyone else (regression to
   the mean only).

Ablations run small dedicated simulations, so these benches are heavier than
the per-figure ones.
"""

import dataclasses

import numpy as np

import repro.analysis as analysis
from repro.population.profiles import WifiPolicy
from repro.population.recruitment import default_policy_mix
from repro.reporting.tables import Table
from repro.simulation.campaign import run_campaign
from repro.simulation.cap import SoftCapPolicy
from repro.simulation.study import default_campaign_config
from repro.traces.cleaning import clean_for_main_analysis

from .harness import bench_scale, save_output

_SCALE = min(bench_scale(), 0.08)


def _run(config):
    return clean_for_main_analysis(run_campaign(config).dataset)


def test_ablate_wifi_uplift(output_dir, benchmark):
    """No uplift/binges -> WiFi stops dominating total volume."""
    base_config = default_campaign_config(2015, scale=_SCALE, seed=41)
    ablated_params = dataclasses.replace(
        base_config.params, wifi_uplift=1.0, binge_burst_p=0.0, sync_burst_p=0.0
    )
    ablated_config = dataclasses.replace(base_config, params=ablated_params)

    baseline = analysis.aggregate_traffic(_run(base_config))
    ablated = analysis.aggregate_traffic(benchmark(_run, ablated_config))

    table = Table(
        "Ablation: WiFi uplift + binge bursts (2015)",
        ["variant", "wifi share of volume"],
    )
    table.add_row("full model", f"{baseline.wifi_share:.2f}")
    table.add_row("uplift/binges off", f"{ablated.wifi_share:.2f}")
    save_output(output_dir, "ablation_uplift", table)
    assert ablated.wifi_share < baseline.wifi_share - 0.05


def test_ablate_policy_conditioning(output_dir, benchmark):
    """Ownership-independent WiFi policies -> home inference collapses."""
    base_config = default_campaign_config(2015, scale=_SCALE, seed=43)
    # Same aggregate mix for owners and non-owners.
    flat = {
        WifiPolicy.ALWAYS_ON: 0.40, WifiPolicy.DAYTIME_OFF: 0.28,
        WifiPolicy.ALWAYS_OFF: 0.07, WifiPolicy.NO_CONFIG: 0.25,
    }
    mix = default_policy_mix(2015)
    for os_name in mix:
        mix[os_name] = {"owner": dict(flat), "nonowner": dict(flat)}
    recruitment = dataclasses.replace(base_config.recruitment, policy_mix=mix)
    ablated_config = dataclasses.replace(base_config, recruitment=recruitment)

    base_ds = _run(base_config)
    ablated_ds = benchmark(_run, ablated_config)
    base_frac = analysis.classify_aps(base_ds).fraction_devices_with_home_ap(
        base_ds.n_devices
    )
    ablated_frac = analysis.classify_aps(ablated_ds).fraction_devices_with_home_ap(
        ablated_ds.n_devices
    )
    table = Table(
        "Ablation: policy conditioning on home-AP ownership (2015)",
        ["variant", "devices with inferred home AP"],
    )
    table.add_row("conditioned (full model)", f"{base_frac:.2f}")
    table.add_row("unconditioned", f"{ablated_frac:.2f}")
    save_output(output_dir, "ablation_policy", table)
    assert ablated_frac < base_frac


def test_ablate_soft_cap(output_dir, benchmark):
    """No throttle/response -> the capped-vs-others gap narrows."""
    base_config = default_campaign_config(2014, scale=_SCALE, seed=47)
    uncapped_params = dataclasses.replace(
        base_config.params,
        cap_demand_response=1.0,
        cap_policy=SoftCapPolicy(limit_bps=1e9, penalty_days=0),
    )
    ablated_config = dataclasses.replace(base_config, params=uncapped_params)

    base_effect = analysis.cap_effect(_run(base_config))
    ablated_effect = analysis.cap_effect(benchmark(_run, ablated_config))

    table = Table(
        "Ablation: soft bandwidth cap (2014)",
        ["variant", "capped median ratio", "others median ratio", "gap"],
    )
    table.add_row(
        "cap enforced", f"{base_effect.capped_ratio_cdf.median():.2f}",
        f"{base_effect.others_ratio_cdf.median():.2f}",
        f"{base_effect.median_gap():.2f}",
    )
    table.add_row(
        "cap disabled", f"{ablated_effect.capped_ratio_cdf.median():.2f}",
        f"{ablated_effect.others_ratio_cdf.median():.2f}",
        f"{ablated_effect.median_gap():.2f}",
    )
    save_output(output_dir, "ablation_cap", table)
    assert ablated_effect.median_gap() < base_effect.median_gap()
