"""Benchmark: regenerate Table 5 — breakdown of home/public/other AP combinations per device-day.

One-liner on the shared harness: runs the experiment end to end over
the benchmark study and saves the rendered artifact under
``benchmarks/output/``. Timing body lives in
:func:`benchmarks.harness.experiment_benchmark`.
"""

from .harness import experiment_benchmark

test_table5 = experiment_benchmark("table5")
