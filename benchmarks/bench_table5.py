"""Benchmark: regenerate Table 5 — breakdown of home/public/other AP combinations per device-day.

Runs the ``table5`` experiment end to end over the shared benchmark study
and saves the rendered artifact to ``benchmarks/output/table5.txt``.
"""

from repro import run_experiment

from .conftest import save_output


def test_table5(bench_cache, output_dir, benchmark):
    result = benchmark(run_experiment, "table5", bench_cache)
    save_output(output_dir, "table5", result)
