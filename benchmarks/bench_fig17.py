"""Benchmark: regenerate Figure 17 — CCDFs of detected public networks per available device per 10 min.

Runs the ``fig17`` experiment end to end over the shared benchmark study
and saves the rendered artifact to ``benchmarks/output/fig17.txt``.
"""

from repro import run_experiment

from .conftest import save_output


def test_fig17(bench_cache, output_dir, benchmark):
    result = benchmark(run_experiment, "fig17", bench_cache)
    save_output(output_dir, "fig17", result)
