"""Benchmark: regenerate Figure 17 — CCDFs of detected public networks per available device per 10 min.

One-liner on the shared harness: runs the experiment end to end over
the benchmark study and saves the rendered artifact under
``benchmarks/output/``. Timing body lives in
:func:`benchmarks.harness.experiment_benchmark`.
"""

from .harness import experiment_benchmark

test_fig17 = experiment_benchmark("fig17")
