"""Benchmark: regenerate Figure 11 — WiFi traffic volume by location class over the week.

Runs the ``fig11`` experiment end to end over the shared benchmark study
and saves the rendered artifact to ``benchmarks/output/fig11.txt``.
"""

from repro import run_experiment

from .conftest import save_output


def test_fig11(bench_cache, output_dir, benchmark):
    result = benchmark(run_experiment, "fig11", bench_cache)
    save_output(output_dir, "fig11", result)
