"""Benchmark: regenerate Figure 11 — WiFi traffic volume by location class over the week.

One-liner on the shared harness: runs the experiment end to end over
the benchmark study and saves the rendered artifact under
``benchmarks/output/``. Timing body lives in
:func:`benchmarks.harness.experiment_benchmark`.
"""

from .harness import experiment_benchmark

test_fig11 = experiment_benchmark("fig11")
