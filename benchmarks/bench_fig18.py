"""Benchmark: regenerate Figure 18 — iOS software-update timing CDF and the no-home-AP lag.

One-liner on the shared harness: runs the experiment end to end over
the benchmark study and saves the rendered artifact under
``benchmarks/output/``. Timing body lives in
:func:`benchmarks.harness.experiment_benchmark`.
"""

from .harness import experiment_benchmark

test_fig18 = experiment_benchmark("fig18")
