"""Benchmark: regenerate Figure 18 — iOS software-update timing CDF and the no-home-AP lag.

Runs the ``fig18`` experiment end to end over the shared benchmark study
and saves the rendered artifact to ``benchmarks/output/fig18.txt``.
"""

from repro import run_experiment

from .conftest import save_output


def test_fig18(bench_cache, output_dir, benchmark):
    result = benchmark(run_experiment, "fig18", bench_cache)
    save_output(output_dir, "fig18", result)
