"""Benchmark: regenerate Figure 19 — soft-bandwidth-cap effect: capped vs other device-days.

Runs the ``fig19`` experiment end to end over the shared benchmark study
and saves the rendered artifact to ``benchmarks/output/fig19.txt``.
"""

from repro import run_experiment

from .conftest import save_output


def test_fig19(bench_cache, output_dir, benchmark):
    result = benchmark(run_experiment, "fig19", bench_cache)
    save_output(output_dir, "fig19", result)
