"""Benchmark: regenerate Figure 19 — soft-bandwidth-cap effect: capped vs other device-days.

One-liner on the shared harness: runs the experiment end to end over
the benchmark study and saves the rendered artifact under
``benchmarks/output/``. Timing body lives in
:func:`benchmarks.harness.experiment_benchmark`.
"""

from .harness import experiment_benchmark

test_fig19 = experiment_benchmark("fig19")
