"""Benchmark: regenerate Figure 12 — number of associated APs per device-day (all/heavy/light).

One-liner on the shared harness: runs the experiment end to end over
the benchmark study and saves the rendered artifact under
``benchmarks/output/``. Timing body lives in
:func:`benchmarks.harness.experiment_benchmark`.
"""

from .harness import experiment_benchmark

test_fig12 = experiment_benchmark("fig12")
