"""Benchmark: regenerate Figure 12 — number of associated APs per device-day (all/heavy/light).

Runs the ``fig12`` experiment end to end over the shared benchmark study
and saves the rendered artifact to ``benchmarks/output/fig12.txt``.
"""

from repro import run_experiment

from .conftest import save_output


def test_fig12(bench_cache, output_dir, benchmark):
    result = benchmark(run_experiment, "fig12", bench_cache)
    save_output(output_dir, "fig12", result)
