"""Benchmark: regenerate Figure 16 — PDF of associated 2.4GHz channels, 2013 vs 2015.

One-liner on the shared harness: runs the experiment end to end over
the benchmark study and saves the rendered artifact under
``benchmarks/output/``. Timing body lives in
:func:`benchmarks.harness.experiment_benchmark`.
"""

from .harness import experiment_benchmark

test_fig16 = experiment_benchmark("fig16")
