"""Benchmark: regenerate Figure 16 — PDF of associated 2.4GHz channels, 2013 vs 2015.

Runs the ``fig16`` experiment end to end over the shared benchmark study
and saves the rendered artifact to ``benchmarks/output/fig16.txt``.
"""

from repro import run_experiment

from .conftest import save_output


def test_fig16(bench_cache, output_dir, benchmark):
    result = benchmark(run_experiment, "fig16", bench_cache)
    save_output(output_dir, "fig16", result)
