"""Benchmark: regenerate Figure 3 — CDFs of daily total traffic per user across three years.

One-liner on the shared harness: runs the experiment end to end over
the benchmark study and saves the rendered artifact under
``benchmarks/output/``. Timing body lives in
:func:`benchmarks.harness.experiment_benchmark`.
"""

from .harness import experiment_benchmark

test_fig03 = experiment_benchmark("fig03")
