"""Benchmark: regenerate Figure 3 — CDFs of daily total traffic per user across three years.

Runs the ``fig03`` experiment end to end over the shared benchmark study
and saves the rendered artifact to ``benchmarks/output/fig03.txt``.
"""

from repro import run_experiment

from .conftest import save_output


def test_fig03(bench_cache, output_dir, benchmark):
    result = benchmark(run_experiment, "fig03", bench_cache)
    save_output(output_dir, "fig03", result)
