"""Out-of-core store benchmark: peak RSS and merge throughput.

Measures one campaign simulated + analyzed through the in-memory path and
through the disk-backed :class:`~repro.traces.store.CampaignStore`, each
in a fresh subprocess (see :func:`repro.obs.bench.measure_store_paths`)
so ``ru_maxrss`` is an honest per-path high-water mark. The results land
in ``BENCH_store.json`` at the repository root — the baseline the
``store`` kind of ``repro bench --check`` gates against: the disk/memory
peak-RSS *ratio* (machine-portable), an absolute ``rss_ceiling_ratio``
the out-of-core path must clear outright on any host, and the disk
path's per-row streaming-merge cost.

Run standalone (pytest collects this file but it defines no tests)::

    PYTHONPATH=src python benchmarks/bench_store.py [--scale S] [--out PATH]
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path

from repro.obs.bench import (
    ENGINE_BENCH_SEED,
    ENGINE_BENCH_YEAR,
    measure_store_paths,
)

#: Default measurement scale: large enough (~250 devices, year 2015) that
#: table bytes dominate interpreter baseline RSS and the out-of-core
#: saving is visible above noise, small enough for a CI smoke job.
DEFAULT_SCALE = 0.3

#: Absolute ceiling committed into the baseline: the disk-store path's
#: peak RSS may never exceed this fraction of the in-memory path's. The
#: margin over the measured ratio absorbs allocator and interpreter noise
#: across hosts while still failing if the store ever starts buffering
#: whole tables again.
RSS_CEILING_RATIO = 0.95

DEFAULT_OUT = Path(__file__).resolve().parents[1] / "BENCH_store.json"


def run_benchmark(scale: float) -> dict:
    measured = measure_store_paths(
        scale, seed=ENGINE_BENCH_SEED, year=ENGINE_BENCH_YEAR
    )
    return {
        "benchmark": "store",
        "cpu_count": os.cpu_count() or 1,
        "scale": scale,
        "year": ENGINE_BENCH_YEAR,
        "seed": ENGINE_BENCH_SEED,
        "memory": measured["memory"],
        "disk": measured["disk"],
        "rss_ratio": measured["rss_ratio"],
        "rss_ceiling_ratio": RSS_CEILING_RATIO,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", type=float, default=DEFAULT_SCALE,
                        help=f"campaign scale (default {DEFAULT_SCALE})")
    parser.add_argument("--out", type=Path, default=DEFAULT_OUT,
                        help=f"output JSON path (default {DEFAULT_OUT})")
    args = parser.parse_args(argv)

    report = run_benchmark(args.scale)
    args.out.write_text(json.dumps(report, indent=2) + "\n")
    memory, disk = report["memory"], report["disk"]
    print(f"scale {args.scale}: "
          f"memory {memory['peak_rss_kb']}kB / {memory['wall_s']}s, "
          f"disk {disk['peak_rss_kb']}kB / {disk['wall_s']}s "
          f"({disk['rows_per_s']:.0f} rows/s)")
    print(f"peak-RSS ratio disk/memory: {report['rss_ratio']} "
          f"(committed ceiling {report['rss_ceiling_ratio']})")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
