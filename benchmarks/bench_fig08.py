"""Benchmark: regenerate Figure 8 — WiFi-user ratio of heavy hitters vs light users.

Runs the ``fig08`` experiment end to end over the shared benchmark study
and saves the rendered artifact to ``benchmarks/output/fig08.txt``.
"""

from repro import run_experiment

from .conftest import save_output


def test_fig08(bench_cache, output_dir, benchmark):
    result = benchmark(run_experiment, "fig08", bench_cache)
    save_output(output_dir, "fig08", result)
