"""Benchmark: regenerate Figure 8 — WiFi-user ratio of heavy hitters vs light users.

One-liner on the shared harness: runs the experiment end to end over
the benchmark study and saves the rendered artifact under
``benchmarks/output/``. Timing body lives in
:func:`benchmarks.harness.experiment_benchmark`.
"""

from .harness import experiment_benchmark

test_fig08 = experiment_benchmark("fig08")
