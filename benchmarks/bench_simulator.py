"""Benchmarks for the measurement-campaign simulator itself.

These are throughput benchmarks (devices simulated per second), not paper
artifacts: they track the cost of generating a campaign and of the two most
expensive analyses.
"""

from repro import clean_for_main_analysis, run_campaign
from repro.analysis import classify_aps, wifi_ratios
from repro.simulation.study import default_campaign_config


def test_simulate_small_campaign(benchmark):
    config = default_campaign_config(2015, scale=0.01, seed=3)
    result = benchmark(run_campaign, config)
    assert result.dataset.n_devices > 5


def test_simulate_small_campaign_sharded(benchmark):
    # Same campaign through the process-pool executor; tracks the engine's
    # shard/merge overhead relative to the serial path above.
    config = default_campaign_config(2015, scale=0.01, seed=3)
    result = benchmark(run_campaign, config, n_jobs=2)
    assert result.dataset.n_devices > 5
    assert result.execution.executor == "parallel"


def test_classify_aps_speed(bench_cache, benchmark):
    dataset = bench_cache.clean(2015)
    result = benchmark(classify_aps, dataset)
    assert result.counts()["total"] > 0


def test_wifi_ratios_speed(bench_cache, benchmark):
    dataset = bench_cache.clean(2015)
    classes = bench_cache.user_classes(2015)
    result = benchmark(wifi_ratios, dataset, classes)
    assert 0 < result.traffic("all").mean < 1
