"""Benchmark: regenerate Figure 9 — Android WiFi-user/off/available ratios and iOS comparison.

Runs the ``fig09`` experiment end to end over the shared benchmark study
and saves the rendered artifact to ``benchmarks/output/fig09.txt``.
"""

from repro import run_experiment

from .conftest import save_output


def test_fig09(bench_cache, output_dir, benchmark):
    result = benchmark(run_experiment, "fig09", bench_cache)
    save_output(output_dir, "fig09", result)
