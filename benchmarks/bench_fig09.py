"""Benchmark: regenerate Figure 9 — Android WiFi-user/off/available ratios and iOS comparison.

One-liner on the shared harness: runs the experiment end to end over
the benchmark study and saves the rendered artifact under
``benchmarks/output/``. Timing body lives in
:func:`benchmarks.harness.experiment_benchmark`.
"""

from .harness import experiment_benchmark

test_fig09 = experiment_benchmark("fig09")
