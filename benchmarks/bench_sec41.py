"""Benchmark: regenerate Section 4.1 — offload impact on residential broadband volume.

One-liner on the shared harness: runs the experiment end to end over
the benchmark study and saves the rendered artifact under
``benchmarks/output/``. Timing body lives in
:func:`benchmarks.harness.experiment_benchmark`.
"""

from .harness import experiment_benchmark

test_sec41 = experiment_benchmark("sec41")
