"""Benchmark: regenerate Section 4.1 — offload impact on residential broadband volume.

Runs the ``sec41`` experiment end to end over the shared benchmark study
and saves the rendered artifact to ``benchmarks/output/sec41.txt``.
"""

from repro import run_experiment

from .conftest import save_output


def test_sec41(bench_cache, output_dir, benchmark):
    result = benchmark(run_experiment, "sec41", bench_cache)
    save_output(output_dir, "sec41", result)
