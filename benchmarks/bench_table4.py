"""Benchmark: regenerate Table 4 — number of estimated APs by inferred class and year.

One-liner on the shared harness: runs the experiment end to end over
the benchmark study and saves the rendered artifact under
``benchmarks/output/``. Timing body lives in
:func:`benchmarks.harness.experiment_benchmark`.
"""

from .harness import experiment_benchmark

test_table4 = experiment_benchmark("table4")
