"""Benchmark: regenerate Table 4 — number of estimated APs by inferred class and year.

Runs the ``table4`` experiment end to end over the shared benchmark study
and saves the rendered artifact to ``benchmarks/output/table4.txt``.
"""

from repro import run_experiment

from .conftest import save_output


def test_table4(bench_cache, output_dir, benchmark):
    result = benchmark(run_experiment, "table4", bench_cache)
    save_output(output_dir, "table4", result)
