"""Benchmark: regenerate Figure 1 — national residential-broadband vs cellular traffic growth.

Runs the ``fig01`` experiment end to end over the shared benchmark study
and saves the rendered artifact to ``benchmarks/output/fig01.txt``.
"""

from repro import run_experiment

from .conftest import save_output


def test_fig01(bench_cache, output_dir, benchmark):
    result = benchmark(run_experiment, "fig01", bench_cache)
    save_output(output_dir, "fig01", result)
