"""Benchmark: regenerate Table 2 — user demographics from the post-campaign survey.

Runs the ``table2`` experiment end to end over the shared benchmark study
and saves the rendered artifact to ``benchmarks/output/table2.txt``.
"""

from repro import run_experiment

from .conftest import save_output


def test_table2(bench_cache, output_dir, benchmark):
    result = benchmark(run_experiment, "table2", bench_cache)
    save_output(output_dir, "table2", result)
