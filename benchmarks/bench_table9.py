"""Benchmark: regenerate Table 9 — survey: reasons for WiFi unavailability.

Runs the ``table9`` experiment end to end over the shared benchmark study
and saves the rendered artifact to ``benchmarks/output/table9.txt``.
"""

from repro import run_experiment

from .conftest import save_output


def test_table9(bench_cache, output_dir, benchmark):
    result = benchmark(run_experiment, "table9", bench_cache)
    save_output(output_dir, "table9", result)
