"""Benchmark: regenerate Table 9 — survey: reasons for WiFi unavailability.

One-liner on the shared harness: runs the experiment end to end over
the benchmark study and saves the rendered artifact under
``benchmarks/output/``. Timing body lives in
:func:`benchmarks.harness.experiment_benchmark`.
"""

from .harness import experiment_benchmark

test_table9 = experiment_benchmark("table9")
