"""Shared benchmark fixtures.

Scale knobs, output persistence and the per-experiment benchmark factory
live in :mod:`benchmarks.harness`; this file only provides the pytest
fixtures wired to them.
"""

from __future__ import annotations

import pytest

from repro import AnalysisContext, run_study

from .harness import OUTPUT_DIR, bench_scale


@pytest.fixture(scope="session")
def bench_cache():
    study = run_study(scale=bench_scale(), seed=7)
    return AnalysisContext(study)


@pytest.fixture(scope="session")
def output_dir():
    OUTPUT_DIR.mkdir(exist_ok=True)
    return OUTPUT_DIR
