"""Shared benchmark fixtures.

The benchmark study scale is controlled by ``REPRO_BENCH_SCALE`` (default
0.12 — about 200 users per campaign). Rendered experiment outputs are saved
under ``benchmarks/output/`` so paper-vs-measured comparisons can be read
after a run.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro import AnalysisContext, run_study

OUTPUT_DIR = Path(__file__).parent / "output"


def bench_scale() -> float:
    return float(os.environ.get("REPRO_BENCH_SCALE", "0.12"))


@pytest.fixture(scope="session")
def bench_cache():
    study = run_study(scale=bench_scale(), seed=7)
    return AnalysisContext(study)


@pytest.fixture(scope="session")
def output_dir():
    OUTPUT_DIR.mkdir(exist_ok=True)
    return OUTPUT_DIR


#: Figures whose paper originals use log axes.
_LOG_X = {"fig03", "fig04", "fig13", "fig17", "fig19"}
_LOG_Y = {"fig13", "fig17"}


def save_output(output_dir: Path, experiment_id: str, result) -> None:
    """Persist a rendered experiment artifact (text, plus SVG for figures)."""
    text = result.render() if hasattr(result, "render") else str(result)
    (output_dir / f"{experiment_id}.txt").write_text(text + "\n")
    from repro.reporting.figures import Figure
    from repro.reporting.svg import figure_to_svg

    if isinstance(result, Figure):
        svg = figure_to_svg(
            result,
            log_x=experiment_id in _LOG_X,
            log_y=experiment_id in _LOG_Y,
        )
        (output_dir / f"{experiment_id}.svg").write_text(svg)
