"""Benchmark: regenerate Figure 7 — WiFi-traffic ratio of heavy hitters vs light users.

One-liner on the shared harness: runs the experiment end to end over
the benchmark study and saves the rendered artifact under
``benchmarks/output/``. Timing body lives in
:func:`benchmarks.harness.experiment_benchmark`.
"""

from .harness import experiment_benchmark

test_fig07 = experiment_benchmark("fig07")
