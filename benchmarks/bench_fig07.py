"""Benchmark: regenerate Figure 7 — WiFi-traffic ratio of heavy hitters vs light users.

Runs the ``fig07`` experiment end to end over the shared benchmark study
and saves the rendered artifact to ``benchmarks/output/fig07.txt``.
"""

from repro import run_experiment

from .conftest import save_output


def test_fig07(bench_cache, output_dir, benchmark):
    result = benchmark(run_experiment, "fig07", bench_cache)
    save_output(output_dir, "fig07", result)
