"""Unit tests for the soft bandwidth cap."""

import pytest

from repro.errors import ConfigurationError
from repro.simulation.cap import SoftCapPolicy, SoftCapTracker


class TestPolicy:
    def test_defaults_match_paper(self):
        policy = SoftCapPolicy()
        assert policy.threshold_bytes == 1e9
        assert policy.window_days == 3
        assert policy.limit_bps == 128_000

    def test_limit_bytes_per_slot(self):
        policy = SoftCapPolicy(limit_bps=128_000)
        # 128 kbps * 600 s / 8 = 9.6 MB.
        assert policy.limit_bytes_per_slot == pytest.approx(9.6e6)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            SoftCapPolicy(threshold_bytes=0)
        with pytest.raises(ConfigurationError):
            SoftCapPolicy(window_days=0)
        with pytest.raises(ConfigurationError):
            SoftCapPolicy(limit_bps=0)
        with pytest.raises(ConfigurationError):
            SoftCapPolicy(peak_hours=(25,))


class TestTracker:
    def test_starts_uncapped(self):
        tracker = SoftCapTracker(SoftCapPolicy())
        assert not tracker.potentially_capped()
        assert tracker.slot_limit(20) == float("inf")

    def test_caps_after_threshold(self):
        tracker = SoftCapTracker(SoftCapPolicy())
        tracker.record_day(0.6e9)
        tracker.record_day(0.6e9)
        assert tracker.potentially_capped()  # 1.2 GB over two days
        assert tracker.slot_limit(20) == pytest.approx(9.6e6)

    def test_off_peak_not_throttled(self):
        tracker = SoftCapTracker(SoftCapPolicy(peak_hours=(20,)))
        tracker.record_day(2e9)
        assert tracker.slot_limit(20) < float("inf")
        assert tracker.slot_limit(3) == float("inf")

    def test_window_slides(self):
        tracker = SoftCapTracker(SoftCapPolicy(penalty_days=0))
        tracker.record_day(1.5e9)
        assert tracker.potentially_capped()
        tracker.record_day(0.0)
        tracker.record_day(0.0)
        assert tracker.potentially_capped()  # 1.5 GB still in window
        tracker.record_day(0.0)
        assert not tracker.potentially_capped()

    def test_penalty_days_extend_throttle(self):
        tracker = SoftCapTracker(SoftCapPolicy(penalty_days=2))
        tracker.record_day(2e9)
        for _ in range(3):
            tracker.record_day(0.0)
        # Window is now clean but penalty lingers.
        assert not tracker.potentially_capped()
        assert tracker.throttled_today()

    def test_negative_volume_rejected(self):
        tracker = SoftCapTracker(SoftCapPolicy())
        with pytest.raises(ConfigurationError):
            tracker.record_day(-1.0)

    def test_window_total(self):
        tracker = SoftCapTracker(SoftCapPolicy())
        tracker.record_day(1e8)
        tracker.record_day(2e8)
        assert tracker.window_total() == pytest.approx(3e8)
