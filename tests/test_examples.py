"""Smoke tests: every example script runs end to end at a tiny scale."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def _run(script: str, *args: str) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, str(EXAMPLES / script), *args],
        capture_output=True, text=True, timeout=480,
    )


@pytest.mark.parametrize("script,needle", [
    ("quickstart.py", "Headline findings"),
    ("offload_study.py", "Offload impact"),
    ("public_wifi_planning.py", "Planner takeaways"),
    ("update_delay.py", "iOS 8.2 rollout"),
    ("whatif_policy.py", "What-if"),
])
def test_study_examples_run(script, needle):
    result = _run(script, "0.02")
    assert result.returncode == 0, result.stderr
    assert needle in result.stdout


def test_collection_pipeline_example():
    result = _run("collection_pipeline.py")
    assert result.returncode == 0, result.stderr
    assert "Data loss after retries: 0 samples" in result.stdout
