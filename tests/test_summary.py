"""Tests for the paper-vs-measured summary report."""

import pytest

from repro.errors import AnalysisError
from repro.reporting.summary import Finding, render_markdown, study_summary


def test_summary_covers_every_section(cache):
    findings = study_summary(cache)
    sections = {f.section for f in findings}
    for section in ("§3.1", "§3.2", "§3.3.1", "§3.3.2", "§3.3.4",
                    "§3.4.1", "§3.4.3", "§3.4.4", "§3.5", "§3.7",
                    "§3.8", "§4.1"):
        assert section in sections


def test_summary_mostly_holds(cache):
    findings = study_summary(cache)
    checked = [f for f in findings if f.holds is not None]
    passing = sum(1 for f in checked if f.holds)
    # The reproduction must carry the vast majority of shape checks.
    assert passing / len(checked) > 0.8


def test_summary_needs_multiple_years():
    from repro import AnalysisCache, run_study
    study = run_study(scale=0.02, seed=3, years=(2015,))
    with pytest.raises(AnalysisError):
        study_summary(AnalysisCache(study))


def test_render_markdown():
    findings = [
        Finding("§3.1", "a claim", "1", "2", True),
        Finding("§3.2", "another", "3", "4", False),
        Finding("§3.7", "info only", "x", "y", None),
    ]
    text = render_markdown(findings, title="T")
    assert text.startswith("# T")
    assert "| §3.1 | a claim | 1 | 2 | ✓ |" in text
    assert "| §3.2 | another | 3 | 4 | ✗ |" in text
    assert "Shape checks passing: 1/2." in text


def test_cli_report(tmp_path, capsys):
    from repro.cli import main
    out = tmp_path / "report.md"
    assert main(["report", "--scale", "0.02", "--seed", "3",
                 "--out", str(out)]) == 0
    text = out.read_text()
    assert text.startswith("# Study summary")
    assert "Shape checks passing" in text
