"""Unit tests for the network substrate: identifiers, APs, cellular, WiFi."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, SchemaError
from repro.geo.coords import Coordinate
from repro.net.accesspoint import AccessPoint, APType
from repro.net.cellular import (
    CARRIERS,
    Carrier,
    CellularNetwork,
    CellularTechnology,
    assign_technology,
    pick_carrier,
)
from repro.net.identifiers import (
    is_fon_public_essid,
    is_public_essid,
    is_valid_bssid,
    normalize_essid,
    random_bssid,
    validate_bssid,
)
from repro.net.wifi import WifiRadio, WifiState
from repro.radio.bands import Band


class TestIdentifiers:
    def test_random_bssid_valid_and_local(self, rng):
        for _ in range(50):
            bssid = random_bssid(rng)
            assert is_valid_bssid(bssid)
            first_octet = int(bssid[:2], 16)
            assert first_octet & 0x02  # locally administered
            assert not first_octet & 0x01  # unicast

    def test_random_bssids_unique(self, rng):
        bssids = {random_bssid(rng) for _ in range(1000)}
        assert len(bssids) > 995

    def test_validate_bssid_lowercases(self):
        assert validate_bssid("02:AB:CD:00:11:22") == "02:ab:cd:00:11:22"

    def test_validate_bssid_rejects_garbage(self):
        for bad in ("", "02:00", "0g:00:00:00:00:00", "02-00-00-00-00-00"):
            with pytest.raises(SchemaError):
                validate_bssid(bad)

    def test_public_essid_matching(self):
        assert is_public_essid("0000docomo")
        assert is_public_essid("0001softbank")
        assert is_public_essid("eduroam")
        assert is_public_essid("7SPOT")
        assert is_public_essid("Metro Free Wi-Fi")
        assert not is_public_essid("home-00001-42")
        assert not is_public_essid("corp-12345")

    def test_fon_essid_matching(self):
        assert is_fon_public_essid("FON_FREE_INTERNET")
        assert is_fon_public_essid("fon")
        assert not is_fon_public_essid("0000docomo")

    def test_normalize_essid(self):
        assert normalize_essid("  Metro Free Wi-Fi ") == "metro_free_wi-fi"


class TestAccessPoint:
    def _ap(self, **kwargs):
        defaults = dict(
            ap_id=1,
            bssid="02:00:00:00:00:01",
            essid="test-net",
            band=Band.GHZ_2_4,
            channel=6,
            location=Coordinate(35.68, 139.76),
            ap_type=APType.HOME,
        )
        defaults.update(kwargs)
        return AccessPoint(**defaults)

    def test_key_is_bssid_essid_pair(self):
        ap = self._ap()
        assert ap.key == ("02:00:00:00:00:01", "test-net")

    def test_channel_must_match_band(self):
        with pytest.raises(ConfigurationError):
            self._ap(band=Band.GHZ_5, channel=6)
        with pytest.raises(ConfigurationError):
            self._ap(band=Band.GHZ_2_4, channel=36)

    def test_rssi_deterministic_without_rng(self):
        ap = self._ap()
        assert ap.rssi_at(10.0) == ap.rssi_at(10.0)
        assert ap.rssi_at(5.0) > ap.rssi_at(50.0)

    def test_coverage(self):
        ap = self._ap(coverage_m=50.0)
        assert ap.in_coverage(49.0)
        assert not ap.in_coverage(51.0)
        with pytest.raises(ConfigurationError):
            self._ap(coverage_m=0.0)


class TestCellular:
    def test_market_shares_sum_to_one(self):
        assert sum(c.market_share for c in CARRIERS) == pytest.approx(1.0)

    def test_pick_carrier_respects_shares(self, rng):
        picks = [pick_carrier(rng).name for _ in range(3000)]
        docomo_share = picks.count("docomo") / len(picks)
        assert 0.40 < docomo_share < 0.50

    def test_assign_technology_extremes(self, rng):
        carrier = Carrier("x", 1.0, lte_rollout_bias=0.0)
        assert assign_technology(0.0, carrier, rng) is CellularTechnology.THREE_G
        assert assign_technology(1.0, carrier, rng) is CellularTechnology.LTE

    def test_assign_technology_share(self, rng):
        carrier = Carrier("x", 1.0)
        picks = [assign_technology(0.7, carrier, rng) for _ in range(2000)]
        lte = sum(1 for p in picks if p is CellularTechnology.LTE) / len(picks)
        assert 0.65 < lte < 0.75

    def test_assign_technology_validates(self, rng):
        with pytest.raises(ConfigurationError):
            assign_technology(1.5, CARRIERS[0], rng)

    def test_capacity_lte_larger_than_3g(self):
        lte = CellularNetwork(CellularTechnology.LTE, CARRIERS[0])
        threeg = CellularNetwork(CellularTechnology.THREE_G, CARRIERS[0])
        assert lte.capacity_bytes(600) > threeg.capacity_bytes(600)
        with pytest.raises(ConfigurationError):
            lte.capacity_bytes(-1)


class TestWifiRadio:
    def _ap(self, ap_id, distance_anchor, essid="net"):
        return AccessPoint(
            ap_id=ap_id,
            bssid=f"02:00:00:00:00:{ap_id:02x}",
            essid=essid,
            band=Band.GHZ_2_4,
            channel=6,
            location=distance_anchor,
            ap_type=APType.HOME,
            coverage_m=200.0,
        )

    def test_scan_filters_by_coverage(self, rng):
        here = Coordinate(35.68, 139.76)
        near = self._ap(1, here)
        far = self._ap(2, Coordinate(35.8, 139.76))  # ~13 km away
        radio = WifiRadio()
        results = radio.scan(here, [near, far], rng)
        assert [r.ap.ap_id for r in results] == [1]

    def test_scan_sorted_by_rssi(self, rng):
        here = Coordinate(35.68, 139.76)
        aps = [self._ap(i, here) for i in range(5)]
        results = WifiRadio().scan(here, aps, rng)
        rssis = [r.rssi_dbm for r in results]
        assert rssis == sorted(rssis, reverse=True)

    def test_select_requires_credentials_and_strength(self, rng):
        here = Coordinate(35.68, 139.76)
        ap = self._ap(1, here)
        radio = WifiRadio()
        scan = radio.scan(here, [ap], rng)
        assert radio.select(scan) is None  # not configured
        radio.add_network(ap)
        assoc = radio.select(scan)
        assert assoc is not None and assoc.ap.ap_id == 1
        radio.forget_network(ap)
        assert radio.select(scan) is None

    def test_wifi_state_enum(self):
        assert {s.value for s in WifiState} == {"off", "available", "associated"}
