"""Unit tests for the radio substrate: bands, path loss, channels."""

import numpy as np
import pytest

from repro.constants import NUM_24GHZ_CHANNELS
from repro.errors import ConfigurationError
from repro.radio.bands import Band
from repro.radio.channels import (
    CHANNELS_24GHZ,
    CHANNELS_5GHZ,
    NON_OVERLAPPING_24GHZ,
    ChannelPlanner,
    channels_interfere,
    interference_fraction,
    interference_pairs,
)
from repro.radio.pathloss import PathLossModel, RssiModel


class TestBands:
    def test_two_bands(self):
        assert Band.GHZ_2_4.value == "2.4GHz"
        assert Band.GHZ_5.value == "5GHz"

    def test_center_frequencies_ordered(self):
        assert Band.GHZ_2_4.center_frequency_mhz < Band.GHZ_5.center_frequency_mhz


class TestPathLoss:
    def test_loss_increases_with_distance(self):
        model = PathLossModel(exponent=3.0)
        assert model.loss_db(10.0) > model.loss_db(2.0)

    def test_reference_clamp_below_1m(self):
        model = PathLossModel()
        assert model.loss_db(0.1) == model.loss_db(1.0)

    def test_log_distance_slope(self):
        model = PathLossModel(exponent=3.0)
        # 10x distance -> 10*n dB more loss.
        assert model.loss_db(100.0) - model.loss_db(10.0) == pytest.approx(30.0)

    def test_5ghz_reference_higher(self):
        loss24 = PathLossModel.for_band(Band.GHZ_2_4).loss_db(10.0)
        loss5 = PathLossModel.for_band(Band.GHZ_5).loss_db(10.0)
        assert loss5 > loss24

    def test_invalid_exponent(self):
        with pytest.raises(ConfigurationError):
            PathLossModel(exponent=0.0)


class TestRssiModel:
    def test_mean_rssi_monotone_in_distance(self):
        model = RssiModel()
        assert model.mean_rssi(5.0) > model.mean_rssi(50.0)

    def test_sample_is_clamped(self, rng):
        model = RssiModel(floor_dbm=-90.0, ceiling_dbm=-30.0)
        samples = [model.sample(1000.0, rng) for _ in range(200)]
        assert all(-90.0 <= s <= -30.0 for s in samples)

    def test_sample_many_matches_scalar_statistics(self, rng):
        model = RssiModel(shadowing_sigma_db=4.0)
        distances = np.full(4000, 20.0)
        batch = model.sample_many(distances, rng)
        assert batch.mean() == pytest.approx(model.mean_rssi(20.0), abs=0.5)
        assert batch.std() == pytest.approx(4.0, abs=0.5)

    def test_invalid_configs(self):
        with pytest.raises(ConfigurationError):
            RssiModel(shadowing_sigma_db=-1.0)
        with pytest.raises(ConfigurationError):
            RssiModel(floor_dbm=-20.0, ceiling_dbm=-30.0)


class TestChannels:
    def test_13_channels_in_japan(self):
        assert len(CHANNELS_24GHZ) == NUM_24GHZ_CHANNELS == 13

    def test_interference_rule_five_channels(self):
        assert channels_interfere(1, 5)
        assert not channels_interfere(1, 6)
        assert not channels_interfere(6, 11)
        assert channels_interfere(3, 3)

    def test_interference_symmetric(self):
        assert channels_interfere(2, 6) == channels_interfere(6, 2)

    def test_invalid_channel_rejected(self):
        with pytest.raises(ConfigurationError):
            channels_interfere(0, 5)
        with pytest.raises(ConfigurationError):
            channels_interfere(1, 14)

    def test_non_overlapping_trio_clean(self):
        assert list(interference_pairs(NON_OVERLAPPING_24GHZ)) == []

    def test_interference_pairs_indexes(self):
        pairs = list(interference_pairs([1, 2, 11]))
        assert pairs == [(0, 1)]

    def test_interference_fraction(self):
        assert interference_fraction([1, 1, 1]) == 1.0
        assert interference_fraction([1, 6, 11]) == 0.0
        assert interference_fraction([1]) == 0.0
        assert interference_fraction([1, 6]) == 0.0
        assert interference_fraction([1, 4]) == 1.0


class TestChannelPlanner:
    def test_default_mode_always_channel_1(self, rng):
        planner = ChannelPlanner(mode="default")
        assert set(planner.assign_many(50, rng)) == {1}

    def test_planned_mode_uses_trio(self, rng):
        planner = ChannelPlanner(mode="planned")
        assert set(planner.assign_many(300, rng)) <= set(NON_OVERLAPPING_24GHZ)

    def test_auto_mode_disperses(self, rng):
        planner = ChannelPlanner(mode="auto")
        channels = planner.assign_many(2000, rng)
        assert len(set(channels)) > 5
        assert all(1 <= c <= 13 for c in channels)

    def test_default_share_concentrates_on_ch1(self, rng):
        concentrated = ChannelPlanner(mode="auto", default_share=0.9)
        channels = concentrated.assign_many(1000, rng)
        assert channels.count(1) / len(channels) > 0.8

    def test_invalid_mode_and_share(self):
        with pytest.raises(ConfigurationError):
            ChannelPlanner(mode="bogus")
        with pytest.raises(ConfigurationError):
            ChannelPlanner(default_share=1.5)

    def test_assign_many_negative(self, rng):
        with pytest.raises(ConfigurationError):
            ChannelPlanner().assign_many(-1, rng)

    def test_5ghz_channel_list_nonoverlapping_spacing(self):
        diffs = np.diff(CHANNELS_5GHZ)
        assert (diffs >= 4).all()
