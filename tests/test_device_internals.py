"""Unit tests for device-simulator internals and helpers."""

from datetime import date

import numpy as np
import pytest

from repro.apps.demand import DemandModel
from repro.network_env.deployment import DeploymentConfig, build_deployment
from repro.network_env.home_wifi import HomeWifiConfig
from repro.network_env.public_wifi import PublicWifiConfig
from repro.population.recruitment import RecruitmentConfig, recruit
from repro.simulation.device import DeviceSimulator
from repro.simulation.params import default_params
from repro.timeutil import TimeAxis


class TestDeviceSimulator:
    @pytest.fixture()
    def world(self, rng):
        params = default_params(2015)
        demand = DemandModel(2, appetite_median_mb=50.0,
                             wifi_uplift=params.wifi_uplift)
        config = RecruitmentConfig(
            year=2015, n_android=10, n_ios=4, lte_share=0.8, home_ap_share=0.9
        )
        profiles = recruit(config, demand, rng)
        deployment = build_deployment(
            profiles,
            DeploymentConfig(
                year=2015,
                home=HomeWifiConfig(2015, 0.15, 0.15),
                public=PublicWifiConfig(2015, 200, 0.5),
                open_ap_count=20,
            ),
            rng,
        )
        return profiles, deployment, demand, params

    def test_run_produces_all_streams(self, world, rng):
        from repro.traces.dataset import DatasetBuilder
        from repro.traces.records import DeviceInfo
        profiles, deployment, demand, params = world
        axis = TimeAxis(date(2015, 3, 2), 4)
        builder = DatasetBuilder(2015, axis)
        for p in profiles:
            builder.add_device(DeviceInfo(p.user_id, p.os, p.carrier.name,
                                          p.technology, occupation=p.occupation.value))
        for p in profiles:
            DeviceSimulator(
                p, axis, deployment, demand, params, None,
                np.random.default_rng(p.user_id),
            ).run(builder)
        for ap_id, ap in deployment.aps.items():
            from repro.traces.records import ApDirectoryEntry
            builder.add_ap(ApDirectoryEntry(ap_id, ap.bssid, ap.essid,
                                            ap.band, ap.channel))
        ds = builder.build()
        assert len(ds.traffic) > 0
        assert len(ds.wifi) > 0
        assert len(ds.geo) == len(profiles) * axis.n_slots
        assert len(ds.battery) == len(profiles) * axis.n_slots // 3
        from repro.traces.validate import validate_dataset
        validate_dataset(ds)

    def test_cap_throttle_applies(self, world):
        """A monster cellular day gets clipped during peak hours."""
        import dataclasses
        profiles, deployment, demand, params = world
        profile = next(p for p in profiles if not p.has_home_ap and
                       not p.cellular_data_off)
        profile = dataclasses.replace(profile) if False else profile
        profile.appetite_bytes = 3e9  # 3 GB/day demand
        axis = TimeAxis(date(2015, 3, 2), 6)
        from repro.traces.dataset import DatasetBuilder
        from repro.traces.records import DeviceInfo
        builder = DatasetBuilder(2015, axis)
        for p in profiles:
            builder.add_device(DeviceInfo(p.user_id, p.os, p.carrier.name,
                                          p.technology))
        sim = DeviceSimulator(
            profile, axis, deployment, demand, params, None,
            np.random.default_rng(0),
        )
        sim.run(builder)
        assert sim.cap.potentially_capped()
