"""Tests for the §4.3 extension analyses and BSSID hardware helpers."""

import numpy as np
import pytest

from repro.analysis.interference import channel_interference
from repro.analysis.shared_infra import shared_infrastructure
from repro.errors import AnalysisError, SchemaError
from repro.net.identifiers import bssid_prefix, sibling_bssid
from repro.radio.channels import cross_channel_interference_fraction
from tests.helpers import (
    add_ap,
    add_association_span,
    add_geo_span,
    make_builder,
    slot,
)


class TestBssidHardware:
    def test_prefix(self):
        assert bssid_prefix("02:AB:cd:00:11:22") == "02:ab:cd:00:11"
        assert bssid_prefix("02:ab:cd:00:11:22", octets=3) == "02:ab:cd"

    def test_prefix_validation(self):
        with pytest.raises(SchemaError):
            bssid_prefix("02:ab:cd:00:11:22", octets=0)
        with pytest.raises(SchemaError):
            bssid_prefix("not-a-mac")

    def test_sibling(self):
        assert sibling_bssid("02:00:00:00:00:10", 1) == "02:00:00:00:00:11"
        assert sibling_bssid("02:00:00:00:00:ff", 1) == "02:00:00:00:00:00"
        assert sibling_bssid("02:00:00:00:00:05", -2) == "02:00:00:00:00:03"

    def test_sibling_shares_prefix(self):
        base = "02:aa:bb:cc:dd:40"
        assert bssid_prefix(sibling_bssid(base, 3)) == bssid_prefix(base)


class TestCrossChannelFraction:
    def test_co_channel_excluded(self):
        assert cross_channel_interference_fraction([6, 6, 6]) == 0.0

    def test_partial_overlap_counted(self):
        assert cross_channel_interference_fraction([1, 3]) == 1.0
        assert cross_channel_interference_fraction([1, 6]) == 0.0

    def test_mixed(self):
        # Pairs: (1,1)=co, (1,4)=cross, (1,4)=cross -> 2/3.
        assert cross_channel_interference_fraction([1, 1, 4]) == pytest.approx(2 / 3)

    def test_single_ap(self):
        assert cross_channel_interference_fraction([5]) == 0.0


class TestSharedInfrastructure:
    def _dataset(self):
        builder = make_builder(n_devices=1, n_days=1)
        # One shared box: two providers on sibling BSSIDs.
        add_ap(builder, 0, "0000docomo", bssid="02:00:00:00:aa:01")
        add_ap(builder, 1, "0001softbank", bssid="02:00:00:00:aa:02")
        # A standalone provider AP on different hardware.
        add_ap(builder, 2, "7SPOT", bssid="02:00:00:00:bb:01")
        # Same hardware, same provider: NOT multi-provider.
        add_ap(builder, 3, "Wi2premium", bssid="02:00:00:00:cc:01")
        add_ap(builder, 4, "Wi2premium", bssid="02:00:00:00:cc:02")
        # Non-public AP on shared-looking hardware: excluded entirely.
        add_ap(builder, 5, "home-123", bssid="02:00:00:00:aa:03")
        for ap in range(6):
            add_association_span(builder, 0, ap, slot(0, 9) + ap, slot(0, 9) + ap + 1)
        return builder.build()

    def test_detection(self):
        result = shared_infrastructure(self._dataset())
        assert result.n_shared_groups == 1
        assert result.n_shared_aps == 2
        assert result.n_public_aps == 5
        assert result.shared_fraction == pytest.approx(0.4)
        assert result.providers_per_group() == [2]

    def test_requires_observations(self):
        with pytest.raises(AnalysisError):
            shared_infrastructure(make_builder().build())

    def test_study_shared_fraction(self, raw2015):
        result = shared_infrastructure(raw2015)
        # Deployment seeds ~10% shared boxes; observed fraction is higher
        # because shared boxes carry several APs each.
        assert 0.02 < result.shared_fraction < 0.5
        assert all(n >= 2 for n in result.providers_per_group())


class TestChannelInterference:
    def _dataset(self, home_channels):
        builder = make_builder(n_devices=len(home_channels), n_days=2)
        for device, channel in enumerate(home_channels):
            add_ap(builder, device, f"home-{device}", channel=channel)
            add_association_span(
                builder, device, device, slot(0, 22), slot(0, 24)
            )
            add_association_span(builder, device, device, slot(0, 0), slot(0, 6))
            add_geo_span(builder, device, (0, 0), 0, builder.axis.n_slots)
        return builder.build()

    def test_all_default_channel_is_co_channel_only(self):
        summary = channel_interference(self._dataset([1, 1, 1]), classes=("home",))
        assert summary.fraction("home") == 0.0  # co-channel excluded
        assert summary.trio_share["home"] == 1.0

    def test_adjacent_channels_interfere(self):
        summary = channel_interference(self._dataset([1, 3, 6]), classes=("home",))
        # Pairs: (1,3) cross, (3,6) cross, (1,6) clean -> 2/3.
        assert summary.fraction("home") == pytest.approx(2 / 3)

    def test_unknown_class(self):
        summary = channel_interference(self._dataset([1, 6]), classes=("home",))
        with pytest.raises(AnalysisError):
            summary.fraction("public")

    def test_study_public_cleaner_than_home(self, dataset2015, cache):
        summary = channel_interference(dataset2015, cache.classification(2015))
        if not np.isnan(summary.mean_fraction["public"]):
            assert summary.mean_fraction["public"] <= summary.mean_fraction["home"]
        assert summary.trio_share["public"] > 0.95
