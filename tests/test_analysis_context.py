"""The AnalysisContext memo layer: equivalence, instrumentation, immutability.

The central contract is that memoization is invisible: every experiment
produces bit-identical output whether its analyses run against a warm shared
context or a cold per-experiment one. The rest pins the CacheStats counters
and the read-only guarantee on cached arrays.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import AnalysisCache, AnalysisContext
from repro.analysis.context import CacheStats, _cached_nbytes
from repro.errors import AnalysisError
from repro.reporting.experiments import list_experiments, run_experiment
from repro.reporting.figures import Figure
from repro.reporting.tables import Table


def _same_cell(a, b) -> bool:
    if isinstance(a, float) and isinstance(b, float) and a != a and b != b:
        return True  # NaN == NaN for our purposes
    return a == b


def assert_same_artifact(a, b) -> None:
    """Exact structural equality for Table/Figure experiment outputs."""
    assert type(a) is type(b)
    if isinstance(a, Table):
        assert a.title == b.title
        assert list(a.columns) == list(b.columns)
        assert len(a.rows) == len(b.rows)
        for row_a, row_b in zip(a.rows, b.rows):
            assert len(row_a) == len(row_b)
            assert all(_same_cell(x, y) for x, y in zip(row_a, row_b))
    elif isinstance(a, Figure):
        assert a.figure_id == b.figure_id
        assert a.caption == b.caption
        assert [s.label for s in a.series] == [s.label for s in b.series]
        for s_a, s_b in zip(a.series, b.series):
            assert np.array_equal(s_a.x, s_b.x, equal_nan=True)
            assert np.array_equal(s_a.y, s_b.y, equal_nan=True)
    else:  # pragma: no cover - new artifact kinds must extend this helper
        raise AssertionError(f"unexpected artifact type {type(a).__name__}")


@pytest.fixture(scope="module")
def warm_context(study):
    """A context with every experiment already run once (all-hot memo)."""
    context = AnalysisContext(study)
    for experiment in list_experiments():
        run_experiment(experiment.experiment_id, context)
    return context


@pytest.mark.parametrize(
    "experiment_id", [e.experiment_id for e in list_experiments()]
)
def test_cached_and_uncached_sweeps_are_bit_identical(
    experiment_id, study, warm_context
):
    cold = run_experiment(experiment_id, AnalysisContext(study))
    warm = run_experiment(experiment_id, warm_context)
    assert_same_artifact(cold, warm)


def test_analysis_function_results_identical_via_context(dataset2015):
    from repro.analysis import classify_aps, classify_user_days

    direct = classify_aps(dataset2015)
    ctx = AnalysisContext.of(dataset2015)
    via_context = classify_aps(ctx)
    assert direct.ap_class == via_context.ap_class
    assert direct.home_ap_of_device == via_context.home_ap_of_device
    assert direct.wifi_devices == via_context.wifi_devices

    classes_direct = classify_user_days(dataset2015)
    classes_ctx = classify_user_days(ctx)
    assert np.array_equal(classes_direct.volumes, classes_ctx.volumes)
    assert np.array_equal(classes_direct.light, classes_ctx.light)
    assert np.array_equal(classes_direct.heavy, classes_ctx.heavy)


class TestCacheStats:
    def test_miss_then_hit_counters(self, dataset2015):
        ctx = AnalysisContext.of(dataset2015)
        stats = ctx.stats.artifact("daily_matrix")
        assert (stats.hits, stats.misses) == (0, 0)

        first = ctx.daily_matrix("all", "rx")
        stats = ctx.stats.artifact("daily_matrix")
        assert (stats.hits, stats.misses) == (0, 1)
        assert stats.compute_seconds >= 0.0
        assert stats.cached_bytes == first.nbytes

        second = ctx.daily_matrix("all", "rx")
        assert second is first
        stats = ctx.stats.artifact("daily_matrix")
        assert (stats.hits, stats.misses) == (1, 1)

    def test_distinct_keys_in_one_family(self, dataset2015):
        ctx = AnalysisContext.of(dataset2015)
        ctx.daily_matrix("all", "rx")
        ctx.daily_matrix("wifi", "rx")
        ctx.daily_matrix("cell", "rx")
        stats = ctx.stats.artifact("daily_matrix")
        assert stats.misses == 3
        assert stats.cached_bytes > 0

    def test_nested_artifacts_share_the_memo(self, dataset2015):
        # user_classes reads the daily matrix through the same context, so
        # a prior daily_matrix() call is reused, not recomputed.
        ctx = AnalysisContext.of(dataset2015)
        matrix = ctx.daily_matrix("all", "rx")
        classes = ctx.user_classes()
        assert classes.volumes is matrix
        assert ctx.stats.artifact("daily_matrix").misses == 1
        assert ctx.stats.artifact("daily_matrix").hits == 1

    def test_render_lists_artifacts(self, dataset2015):
        ctx = AnalysisContext.of(dataset2015)
        ctx.daily_matrix()
        ctx.hourly_series()
        report = ctx.stats.render()
        assert "analysis cache" in report
        assert "daily_matrix" in report
        assert "hourly_series" in report
        assert "total" in report

    def test_as_dict_round_trip(self, dataset2015):
        ctx = AnalysisContext.of(dataset2015)
        ctx.daily_matrix()
        ctx.daily_matrix()
        payload = ctx.stats.as_dict()
        assert payload["daily_matrix"]["hits"] == 1
        assert payload["daily_matrix"]["misses"] == 1
        assert payload["daily_matrix"]["cached_bytes"] > 0

    def test_empty_stats(self):
        stats = CacheStats()
        assert stats.hits == 0 and stats.misses == 0
        assert stats.artifact("anything").requests == 0
        assert stats.artifact("anything").hit_rate == 0.0


class TestReadOnlyArtifacts:
    def test_daily_matrix_is_immutable(self, dataset2015):
        ctx = AnalysisContext.of(dataset2015)
        matrix = ctx.daily_matrix("all", "rx")
        with pytest.raises(ValueError):
            matrix[0, 0] = 1.0

    def test_hourly_series_is_immutable(self, dataset2015):
        ctx = AnalysisContext.of(dataset2015)
        series = ctx.hourly_series("all", "rx")
        with pytest.raises(ValueError):
            series[0] = 1.0

    def test_index_arrays_are_immutable(self, dataset2015):
        ctx = AnalysisContext.of(dataset2015)
        index = ctx.geo_index()
        with pytest.raises(ValueError):
            index.keys[0] = 0
        assoc, ap_sorted = ctx.association_index()
        with pytest.raises(ValueError):
            ap_sorted[0] = 0


class TestContextConstruction:
    def test_of_context_is_identity(self, dataset2015):
        ctx = AnalysisContext.of(dataset2015)
        assert AnalysisContext.of(ctx) is ctx

    def test_of_dataset_is_verbatim(self, raw2015):
        # of(dataset) analyzes the dataset as handed in — no implicit clean.
        assert AnalysisContext.of(raw2015).dataset() is raw2015

    def test_of_rejects_other_types(self):
        with pytest.raises(AnalysisError):
            AnalysisContext.of(object())

    def test_study_context_analyzes_cleaned_data(self, cache, dataset2015):
        assert cache.campaign(2015).dataset().n_devices == dataset2015.n_devices

    def test_multi_campaign_requires_year(self, cache):
        with pytest.raises(AnalysisError, match="year is required"):
            cache.daily_matrix()

    def test_unknown_year_rejected(self, cache):
        with pytest.raises(AnalysisError, match="no campaign for year"):
            cache.campaign(1999)

    def test_campaign_view_shares_memo(self, study):
        context = AnalysisContext(study)
        view = context.campaign(2015)
        assert view.daily_matrix() is context.daily_matrix(year=2015)
        assert view.stats is context.stats

    def test_empty_mapping_rejected(self):
        with pytest.raises(AnalysisError):
            AnalysisContext({})

    def test_deprecated_alias(self):
        assert AnalysisCache is AnalysisContext


def test_cached_nbytes_counts_arrays_and_containers():
    arr = np.zeros(10, dtype=np.int64)
    assert _cached_nbytes(arr) == 80
    assert _cached_nbytes((arr, arr)) == 160
    assert _cached_nbytes({"a": arr}) >= 80
    assert _cached_nbytes(object()) == 0
