"""Unit tests for schedules and the mobility model."""

from datetime import date

import numpy as np
import pytest

from repro.apps.demand import DemandModel
from repro.constants import SAMPLES_PER_DAY
from repro.errors import ConfigurationError
from repro.mobility.model import MobilityModel, activity_weights
from repro.mobility.schedule import DaySchedule, LocationState, ScheduleGenerator
from repro.population.demographics import Occupation
from repro.population.recruitment import RecruitmentConfig, recruit
from repro.timeutil import TimeAxis


def _generator(occupation, seed=0):
    return ScheduleGenerator(occupation, np.random.default_rng(seed))


class TestScheduleGenerator:
    def test_schedule_length_and_codes(self, rng):
        gen = _generator(Occupation.OFFICE)
        day = gen.day(1, rng)
        assert len(day) == SAMPLES_PER_DAY
        valid = {int(s) for s in LocationState}
        assert set(np.unique(day)) <= valid

    def test_commuter_weekday_has_work_and_commute(self, rng):
        gen = _generator(Occupation.OFFICE)
        day = gen.day(2, rng)
        assert (day == int(LocationState.WORK)).sum() >= 6 * 6  # >= 6 hours
        assert (day == int(LocationState.COMMUTE)).any()

    def test_commuter_night_at_home(self, rng):
        gen = _generator(Occupation.ENGINEER)
        day = gen.day(0, rng)
        assert (day[:30] == int(LocationState.HOME)).all()  # 0:00-5:00

    def test_commuter_weekend_no_work(self, rng):
        gen = _generator(Occupation.OFFICE)
        for weekday in (5, 6):
            day = gen.day(weekday, rng)
            assert not (day == int(LocationState.WORK)).any()

    def test_housewife_mostly_home(self, rng):
        gen = _generator(Occupation.HOUSEWIFE)
        days = [gen.day(d, rng) for d in range(7)]
        home_frac = np.mean([
            (d == int(LocationState.HOME)).mean() for d in days
        ])
        assert home_frac > 0.7

    def test_bad_weekday_rejected(self, rng):
        with pytest.raises(ConfigurationError):
            _generator(Occupation.OFFICE).day(7, rng)

    def test_habits_stable_across_days(self, rng):
        gen = _generator(Occupation.OFFICE, seed=3)
        leaves = []
        for _ in range(10):
            day = gen.day(1, rng)
            commute = np.flatnonzero(day == int(LocationState.COMMUTE))
            leaves.append(commute[0] if len(commute) else -1)
        leaves = [l for l in leaves if l >= 0]
        assert np.std(leaves) < 6  # within an hour of the habit

    def test_some_self_owned_work_from_home(self):
        wfh = [
            _generator(Occupation.SELF_OWNED, seed=s).works_from_home
            for s in range(40)
        ]
        assert any(wfh) and not all(wfh)


class TestActivityWeights:
    def test_nonnegative_and_shaped(self, rng):
        day = np.full(SAMPLES_PER_DAY, int(LocationState.HOME), dtype=np.int8)
        weights = activity_weights(day, weekend=False, rng=rng)
        assert (weights >= 0).all()
        # Deep night much quieter than evening.
        assert weights[18:30].mean() < weights[120:138].mean()

    def test_work_suppresses_activity(self, rng):
        home_day = np.full(SAMPLES_PER_DAY, int(LocationState.HOME), dtype=np.int8)
        work_day = np.full(SAMPLES_PER_DAY, int(LocationState.WORK), dtype=np.int8)
        reference = np.random.default_rng(1)
        home_weights = activity_weights(home_day, False, np.random.default_rng(1))
        work_weights = activity_weights(work_day, False, np.random.default_rng(1))
        assert work_weights.sum() < home_weights.sum()


class TestMobilityModel:
    @pytest.fixture()
    def profile(self, rng):
        demand = DemandModel(0, appetite_median_mb=40.0)
        config = RecruitmentConfig(
            year=2013, n_android=30, n_ios=0, lte_share=0.3, home_ap_share=0.7
        )
        panel = recruit(config, demand, rng)
        return next(p for p in panel if p.is_commuter)

    def test_day_mobility_consistent(self, profile, rng):
        axis = TimeAxis(date(2013, 3, 7), 15)
        model = MobilityModel(profile, axis, rng)
        mobility = model.day(0, rng)
        assert len(mobility.states) == SAMPLES_PER_DAY
        assert len(mobility.activity) == SAMPLES_PER_DAY

    def test_locations_per_state(self, profile, rng):
        axis = TimeAxis(date(2013, 3, 7), 15)
        model = MobilityModel(profile, axis, rng)
        mobility = model.day(0, rng)
        home = model.location_for(int(LocationState.HOME), mobility)
        work = model.location_for(int(LocationState.WORK), mobility)
        assert home == profile.home
        assert work == profile.office
        commute = model.location_for(int(LocationState.COMMUTE), mobility)
        # Commute waypoint lies between home and office (roughly).
        assert commute.distance_km(home) <= home.distance_km(work) + 5.0
