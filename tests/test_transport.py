"""Zero-copy shard transport, warm worker pools, and work stealing.

Three layers of the columnar end-to-end path are pinned here:

* :class:`ShardPayload` — pack/attach round trips are bit-identical,
  handles pickle small, unlink/sweep lifecycle never leaks ``/dev/shm``
  segments (clean exit, chaos kill, timed-out straggler);
* the warm-pool cache — pools are parked and reused across executors and
  runs, and reuse never changes results;
* the work-stealing scheduler — idle slots drain a busy sibling's queue,
  and stealing never changes results either.
"""

import dataclasses
import pickle
import time

import numpy as np
import pytest

from repro.engine.chaos import ChaosKill, ChaosPlan
from repro.engine.executor import (
    ParallelExecutor,
    shutdown_warm_pools,
    warm_pool_stats,
)
from repro.engine.planner import (
    MIN_UNIT_DEVICES,
    UNIT_OVERSPLIT,
    plan_units,
)
from repro.engine.resilience import (
    CheckpointStore,
    ResilienceConfig,
    RetryPolicy,
)
from repro.engine.transport import (
    ShardPayload,
    run_token,
    segment_names,
    sweep_orphans,
)
from repro.errors import EngineError
from repro.simulation.campaign import run_campaign
from repro.simulation.study import default_campaign_config

from tests.test_engine import assert_datasets_identical


def _small_config(year=2013, **kwargs):
    config = default_campaign_config(year, scale=0.004, seed=11, **kwargs)
    return dataclasses.replace(config, n_days=4)


def _chunks():
    """A synthetic multi-table, multi-chunk, mixed-dtype ChunkMap."""
    rng = np.random.default_rng(42)
    return {
        "traffic": [
            {"t": np.arange(7, dtype=np.int64),
             "rx": rng.random(7),
             "wifi": rng.random(7) < 0.5},
            {"t": np.arange(3, dtype=np.int64),
             "rx": rng.random(3),
             "wifi": rng.random(3) < 0.5},
        ],
        "geo": [
            {"pos": rng.random((5, 2)),
             "code": np.array([1, 2, 3, 4, 5], dtype=np.int16)},
        ],
        "empty": [{"t": np.array([], dtype=np.int64)}],
    }


def assert_chunkmaps_identical(expected, actual):
    assert set(expected) == set(actual)
    for table, chunk_list in expected.items():
        assert len(actual[table]) == len(chunk_list), table
        for i, chunk in enumerate(chunk_list):
            assert set(actual[table][i]) == set(chunk), (table, i)
            for column, arr in chunk.items():
                got = actual[table][i][column]
                assert got.dtype == arr.dtype, (table, i, column)
                np.testing.assert_array_equal(
                    got, arr, err_msg=f"{table}[{i}].{column}"
                )


# ---------------------------------------------------------------------------
# ShardPayload pack/attach round trips
# ---------------------------------------------------------------------------

class TestShardPayload:
    def test_round_trip_bit_identical(self):
        chunks = _chunks()
        payload = ShardPayload.pack(chunks, run_token())
        try:
            assert_chunkmaps_identical(chunks, payload.chunk_map())
        finally:
            payload.unlink()
            payload.release()

    def test_handle_pickles_small(self):
        """The payload crosses the pool queue as a handle, not a buffer."""
        big = {"t": [{"x": np.zeros(1 << 20)}]}  # 8 MB of column data
        payload = ShardPayload.pack(big, run_token())
        try:
            wire = pickle.dumps(payload)
            assert len(wire) < 4096
            clone = pickle.loads(wire)
            np.testing.assert_array_equal(
                clone.chunk_map()["t"][0]["x"], big["t"][0]["x"]
            )
            clone.release()
        finally:
            payload.unlink()
            payload.release()

    def test_transport_bytes_accounts_payload(self):
        payload = ShardPayload.pack(_chunks(), run_token())
        try:
            total = sum(
                arr.nbytes
                for chunk_list in _chunks().values()
                for chunk in chunk_list for arr in chunk.values()
            )
            # Padding only ever rounds columns up to 16-byte alignment.
            assert total <= payload.n_bytes < total + 16 * 12
        finally:
            payload.unlink()

    def test_materialize_survives_segment_teardown(self):
        payload = ShardPayload.pack(_chunks(), run_token())
        copied = payload.materialize()
        payload.unlink()
        payload.release()
        assert_chunkmaps_identical(_chunks(), copied)

    def test_unlink_is_idempotent_and_attach_after_sweep_fails(self):
        payload = ShardPayload.pack(_chunks(), run_token())
        assert payload.name in segment_names(run_token())
        assert payload.unlink() is True
        assert payload.unlink() is False
        assert payload.name not in segment_names(run_token())
        fresh = pickle.loads(pickle.dumps(payload))
        with pytest.raises(EngineError, match="gone"):
            fresh.attach()
        payload.release()

    def test_empty_chunkmap(self):
        payload = ShardPayload.pack({}, run_token())
        try:
            assert payload.chunk_map() == {}
            assert payload.n_bytes == 1  # zero-size segments don't exist
        finally:
            payload.unlink()
            payload.release()

    def test_sweep_is_token_scoped(self):
        mine = ShardPayload.pack(_chunks(), run_token())
        other = ShardPayload.pack(_chunks(), "feedfacecafe")
        try:
            removed = sweep_orphans("feedfacecafe")
            assert removed == [other.name]
            assert mine.name in segment_names(run_token())
        finally:
            sweep_orphans()  # unscoped: reap whatever is left
        assert segment_names() == []


# ---------------------------------------------------------------------------
# Unit planning (oversplit for stealing)
# ---------------------------------------------------------------------------

class TestPlanUnits:
    def test_serial_is_one_unit(self):
        plan = plan_units(range(100), 1)
        assert plan.n_shards == 1

    def test_small_panel_keeps_one_unit_per_worker(self):
        # Below MIN_UNIT_DEVICES per split there is nothing worth
        # stealing; the plan must match the old one-shard-per-worker.
        ids = range(2 * MIN_UNIT_DEVICES - 1)
        assert plan_units(ids, 2).n_shards == 2

    def test_large_panel_oversplits(self):
        ids = range(2 * UNIT_OVERSPLIT * MIN_UNIT_DEVICES)
        plan = plan_units(ids, 2)
        assert plan.n_shards == 2 * UNIT_OVERSPLIT
        assert plan.device_order() == tuple(ids)

    def test_oversplit_is_bounded_by_unit_floor(self):
        n = 3 * MIN_UNIT_DEVICES  # enough for 3 units, not 8
        plan = plan_units(range(n), 2)
        assert plan.n_shards == 3
        assert min(s.n_devices for s in plan.shards) >= MIN_UNIT_DEVICES


# ---------------------------------------------------------------------------
# Work stealing
# ---------------------------------------------------------------------------

def _sleepy(unit):
    index, delay = unit
    time.sleep(delay)
    return index * 10


class TestWorkStealing:
    def test_idle_slot_steals_from_busy_sibling(self):
        # Slot 0 starts on units 0-3, slot 1 on units 4-7. Unit 0 is the
        # fat straggler: slot 1 drains its own queue fast and must steal
        # slot 0's tail instead of idling.
        units = [(0, 1.0)] + [(i, 0.01) for i in range(1, 8)]
        with ParallelExecutor(2) as executor:
            results = executor.run(_sleepy, units)
        assert results == [i * 10 for i in range(8)]
        assert executor.steals >= 1

    def test_balanced_units_need_no_steals_to_finish(self):
        units = [(i, 0.0) for i in range(4)]
        with ParallelExecutor(2) as executor:
            results = executor.run(_sleepy, units)
        assert results == [0, 10, 20, 30]

    def test_stealing_campaign_matches_serial(self):
        # A panel big enough to oversplit: stealing (or not, depending on
        # timing) must be invisible in the merged dataset.
        config = default_campaign_config(2015, scale=0.04, seed=3)
        config = dataclasses.replace(config, n_days=3)
        serial = run_campaign(config, n_jobs=1)
        parallel = run_campaign(config, n_jobs=2)
        assert parallel.execution.n_shards > 2  # oversplit engaged
        assert parallel.execution.transport_bytes > 0
        assert_datasets_identical(serial.dataset, parallel.dataset)


# ---------------------------------------------------------------------------
# Warm pools
# ---------------------------------------------------------------------------

class TestWarmPools:
    def test_close_parks_and_next_executor_reuses(self):
        shutdown_warm_pools()
        before = warm_pool_stats()
        with ParallelExecutor(2) as executor:
            executor.run(_sleepy, [(i, 0.0) for i in range(4)])
        parked = warm_pool_stats()
        assert parked["parked"] >= 1
        with ParallelExecutor(2) as executor:
            executor.run(_sleepy, [(i, 0.0) for i in range(4)])
        after = warm_pool_stats()
        assert after["reused"] >= before["reused"] + 1

    def test_reused_pool_runs_are_bit_identical(self):
        config = _small_config(2014)
        baseline = run_campaign(config, n_jobs=1)
        first = run_campaign(config, n_jobs=2)
        reused_before = warm_pool_stats()["reused"]
        second = run_campaign(config, n_jobs=2)
        assert warm_pool_stats()["reused"] > reused_before
        assert_datasets_identical(baseline.dataset, first.dataset)
        assert_datasets_identical(baseline.dataset, second.dataset)

    def test_shutdown_empties_the_cache(self):
        with ParallelExecutor(2) as executor:
            executor.run(_sleepy, [(0, 0.0)])
        assert shutdown_warm_pools() >= 1
        assert warm_pool_stats()["parked"] == 0


# ---------------------------------------------------------------------------
# Segment hygiene: /dev/shm leak checks
# ---------------------------------------------------------------------------

class TestSegmentHygiene:
    def test_clean_parallel_run_leaves_no_segments(self):
        run_campaign(_small_config(2014), n_jobs=2)
        assert segment_names(run_token()) == []

    def test_chaos_kill_leaves_no_segments(self, tmp_path):
        res = ResilienceConfig(
            store=CheckpointStore(tmp_path),
            chaos=ChaosPlan(kill_after_shards=1),
        )
        with pytest.raises(ChaosKill):
            run_campaign(_small_config(2014), n_jobs=2, resilience=res)
        assert segment_names(run_token()) == []

    def test_timed_out_straggler_is_janitored(self, tmp_path):
        """A hung worker that packs after the run's sweep is still reaped.

        The run itself cannot unlink a segment that does not exist yet
        (the worker is asleep inside the chaos hang when the run ends);
        the janitor contract is that the *next* sweep gets it — which is
        what the campaign/study runners and the atexit hook provide.
        """
        hang_s = 2.0
        res = ResilienceConfig(
            policy=RetryPolicy(max_attempts=1, backoff_base_s=0.01,
                               shard_timeout_s=0.5),
            partial=True,
            chaos=ChaosPlan(hang_units=("2014:0",), hang_attempts=1,
                            hang_s=hang_s, state_dir=tmp_path),
        )
        started = time.monotonic()
        result = run_campaign(_small_config(2014), n_jobs=2, resilience=res)
        assert result.losses is not None
        assert len(result.losses.dropped_shards) >= 1
        # Let the abandoned worker wake up, finish its shard, and pack.
        time.sleep(max(0.0, started + hang_s + 2.0 - time.monotonic()))
        sweep_orphans(run_token())
        assert segment_names(run_token()) == []


# ---------------------------------------------------------------------------
# The removed legacy kernel flag
# ---------------------------------------------------------------------------

class TestLegacyKernelRemoved:
    def test_cli_rejects_legacy_with_migration_message(self, tmp_path, capsys):
        from repro.cli import main

        code = main(["simulate", "--kernel", "legacy",
                     "--out", str(tmp_path / "data")])
        assert code == 2
        err = capsys.readouterr().err
        assert "--kernel legacy was removed" in err
        assert "batch" in err

    def test_fidelity_rejects_legacy_too(self, tmp_path, capsys):
        from repro.cli import main

        code = main(["fidelity", "--kernel", "legacy",
                     "--out", str(tmp_path / "f.json")])
        assert code == 2
        assert "removed" in capsys.readouterr().err

    def test_study_config_rejects_legacy(self):
        from repro.errors import ConfigurationError
        from repro.simulation.study import StudyConfig

        with pytest.raises(ConfigurationError, match="unknown kernel"):
            StudyConfig(kernel="legacy")

    def test_device_simulator_has_no_collect(self):
        from repro.simulation.device import DeviceSimulator

        assert not hasattr(DeviceSimulator, "collect")
