"""Unit tests for the run-telemetry subsystem (``repro.obs``).

Covers the span/tracer core, the metrics registry's duck-typed ingestors,
run-manifest round-trips, the unified bench harness (discovery, the
``best_of`` timing primitive, suite runs) and the CI regression gate.
"""

import json
import time

import pytest

from repro.errors import ConfigurationError, ReproError
from repro.obs.manifest import RunManifest, build_manifest, config_hash_of
from repro.obs.metrics import MetricsRegistry
from repro.obs.span import (
    NOOP_TRACER,
    NoopTracer,
    Span,
    Tracer,
    get_tracer,
    set_tracer,
    spans_from_chrome_trace,
    telemetry_enabled,
    to_chrome_trace,
    use_tracer,
    write_chrome_trace,
)


# ---------------------------------------------------------------------------
# Span / Tracer core
# ---------------------------------------------------------------------------

def test_span_nesting_and_counters():
    tracer = Tracer("root")
    with tracer.span("outer", year=2015):
        tracer.count("ticks", 3)
        with tracer.span("inner"):
            tracer.count("ticks", 2)
    tree = tracer.export()
    outer = tree["children"][0]
    assert outer["name"] == "outer"
    assert outer["attrs"] == {"year": 2015}
    assert outer["counters"] == {"ticks": 3}
    assert outer["wall_s"] >= outer["children"][0]["wall_s"] >= 0.0
    (inner,) = outer["children"]
    assert inner["name"] == "inner"
    assert inner["counters"] == {"ticks": 2}


def test_span_dict_round_trip():
    tracer = Tracer("root", {"pid": 1})
    with tracer.span("a", k="v"):
        tracer.count("n", 7)
    exported = tracer.export()
    rebuilt = Span.from_dict(exported).as_dict()
    assert rebuilt == exported
    # Export must be plain-JSON serialisable (crosses process boundaries).
    assert json.loads(json.dumps(exported)) == exported


def test_tracer_attach_grafts_subtree():
    parent = Tracer("parent")
    worker = Tracer("worker", {"shard": 3})
    with worker.span("work"):
        worker.count("items", 5)
    with parent.span("merge"):
        parent.attach(worker.export())
    tree = parent.export()
    merge = tree["children"][0]
    grafted = merge["children"][0]
    assert grafted["name"] == "worker"
    assert grafted["attrs"] == {"shard": 3}
    assert grafted["children"][0]["counters"] == {"items": 5}


def test_default_tracer_is_noop_singleton():
    assert get_tracer() is NOOP_TRACER
    assert isinstance(get_tracer(), NoopTracer)
    assert not get_tracer().enabled
    # The no-op handle is one shared object: entering a span allocates
    # nothing, which is what keeps telemetry-off runs overhead-free.
    assert get_tracer().span("a") is get_tracer().span("b", k=1)
    with get_tracer().span("works-as-context-manager"):
        get_tracer().count("ignored", 1)


def test_set_tracer_returns_previous_and_resets():
    tracer = Tracer("t")
    assert set_tracer(tracer) is NOOP_TRACER
    try:
        assert get_tracer() is tracer
    finally:
        assert set_tracer(None) is tracer
    assert get_tracer() is NOOP_TRACER


def test_use_tracer_restores_on_exit():
    tracer = Tracer("scoped")
    with use_tracer(tracer):
        assert get_tracer() is tracer
        with pytest.raises(RuntimeError):
            with use_tracer(Tracer("inner")):
                raise RuntimeError("boom")
        assert get_tracer() is tracer
    assert get_tracer() is NOOP_TRACER


def test_telemetry_enabled_reads_env(monkeypatch):
    monkeypatch.delenv("REPRO_TELEMETRY", raising=False)
    assert not telemetry_enabled()
    for truthy in ("1", "true", "ON", "yes"):
        monkeypatch.setenv("REPRO_TELEMETRY", truthy)
        assert telemetry_enabled()
    monkeypatch.setenv("REPRO_TELEMETRY", "0")
    assert not telemetry_enabled()


def test_noop_tracer_per_op_cost_is_negligible():
    """The telemetry-off span path must stay within noise of a bare call.

    Budget: < 5µs per span enter/exit (a small campaign opens a few
    thousand spans, so this bounds total overhead well under 1%).
    """
    tracer = get_tracer()
    n = 50_000
    start = time.perf_counter()
    for _ in range(n):
        with tracer.span("x", a=1):
            pass
    per_op = (time.perf_counter() - start) / n
    assert per_op < 5e-6, f"no-op span cost {per_op * 1e6:.2f}µs"


# ---------------------------------------------------------------------------
# Chrome-trace export
# ---------------------------------------------------------------------------

def test_chrome_trace_round_trip(tmp_path):
    tracer = Tracer("run", {"seed": 7})
    with tracer.span("outer", year=2015):
        tracer.count("items", 3)
        with tracer.span("fast"):
            pass
        with tracer.span("slow"):
            tracer.count("bytes", 12)
    exported = tracer.export()

    trace = to_chrome_trace(exported)
    # The tracer method re-exports (the root's wall time is re-stamped),
    # so compare shape rather than timings.
    assert ([e["name"] for e in tracer.to_chrome_trace()["traceEvents"]]
            == [e["name"] for e in trace["traceEvents"]])
    meta, *events = trace["traceEvents"]
    assert meta["ph"] == "M" and meta["args"]["name"] == "repro"
    assert all(e["ph"] == "X" and e["dur"] >= 1 for e in events)
    assert [e["name"] for e in events] == ["run", "outer", "fast", "slow"]
    assert [e["args"]["depth"] for e in events] == [0, 1, 2, 2]
    # Siblings lay out sequentially: "slow" starts where "fast" ended.
    fast, slow = events[2], events[3]
    assert slow["ts"] == fast["ts"] + fast["dur"]

    # args carry the exact durations, so the rebuilt tree is identical
    # despite the microsecond rounding of ts/dur.
    assert spans_from_chrome_trace(trace).as_dict() == exported

    out = tmp_path / "trace.json"
    write_chrome_trace(exported, out)
    reloaded = json.loads(out.read_text())
    assert spans_from_chrome_trace(reloaded).as_dict() == exported


def test_chrome_trace_rejects_malformed():
    assert spans_from_chrome_trace({"traceEvents": []}) is None
    xs = [e for e in Tracer("a").to_chrome_trace()["traceEvents"]
          if e["ph"] == "X"]
    with pytest.raises(ValueError, match="more than one root"):
        spans_from_chrome_trace({"traceEvents": xs + xs})
    orphan = {"name": "x", "ph": "X", "ts": 0, "dur": 1,
              "args": {"depth": 2}}
    with pytest.raises(ValueError, match="has no parent"):
        spans_from_chrome_trace({"traceEvents": [orphan]})


# ---------------------------------------------------------------------------
# Metrics registry
# ---------------------------------------------------------------------------

def test_metrics_registry_ingests_span_tree():
    tracer = Tracer("run")
    with tracer.span("simulate"):
        tracer.count("devices", 4)
        with tracer.span("flush"):
            pass
    registry = MetricsRegistry()
    registry.ingest_span_tree(tracer.export())
    out = registry.as_dict()
    assert out["counters"]["span.simulate.devices"] == 4
    assert "simulate" in out["stages"]
    assert "flush" in out["stages"]
    assert out["stages"]["simulate"]["count"] == 1
    assert isinstance(registry.render(), str) and registry.render()


def test_metrics_registry_ingests_collection_report():
    from repro.collection.faults import CollectionReport, DeviceCollectionStats

    stats = DeviceCollectionStats(
        device_id=1, ticks=10, churn_slot=None, churned=0,
        uploaded=10, delivered=9, duplicates=1, dropped=1, cached=0,
    )
    report = CollectionReport(
        n_slots=10, devices=[stats], batches_received=9, duplicates_dropped=1
    )
    registry = MetricsRegistry()
    registry.ingest_collection_report(report, 2015)
    counters = registry.as_dict()["counters"]
    assert counters["collection.2015.delivered"] == 9
    assert counters["collection.2015.dropped"] == 1
    assert 0.0 < counters["collection.2015.completeness"] <= 1.0


# ---------------------------------------------------------------------------
# Run manifest
# ---------------------------------------------------------------------------

def test_config_hash_stable_and_sensitive():
    assert config_hash_of("a", 1) == config_hash_of("a", 1)
    assert config_hash_of("a", 1) != config_hash_of("a", 2)
    assert len(config_hash_of("x")) == 16


def test_manifest_round_trip(tmp_path):
    tracer = Tracer("repro.simulate")
    with tracer.span("study.run", scale=0.01):
        tracer.count("devices", 12)
    manifest = build_manifest(
        "simulate", tracer,
        config_hash=config_hash_of("cfg"),
        seed=11, scale=0.01, years=[2013],
        shards=[{"year": 2013, "n_shards": 2, "n_devices": 12}],
        extra_counters={"custom": 1},
    )
    path = tmp_path / "run_manifest.json"
    manifest.write(path)
    loaded = RunManifest.read(path)
    assert loaded == manifest
    assert loaded.command == "simulate"
    assert loaded.seed == 11
    assert loaded.counters["custom"] == 1
    assert loaded.counters["span.study.run.devices"] == 12
    assert loaded.stage_wall_s("study.run") >= 0.0
    assert loaded.spans["name"] == "repro.simulate"
    # The manifest file itself must be valid, plain JSON.
    assert json.loads(path.read_text())["schema_version"] == 1


# ---------------------------------------------------------------------------
# Bench harness
# ---------------------------------------------------------------------------

def test_best_of_repeat_warmup_and_setup():
    from repro.obs.bench import best_of

    calls = []
    setups = []

    def fn(arg=None):
        calls.append(arg)
        return len(calls)

    timing = best_of(fn, repeat=3, warmup=2, setup=lambda: setups.append(0))
    assert len(calls) == 5  # warmups run fn too
    assert len(setups) == 5  # setup runs before every invocation
    assert len(timing.times) == 3  # only timed reps kept
    assert timing.best_result in (3, 4, 5)
    assert timing.best_s <= timing.mean_s

    timing = best_of(lambda x: x, repeat=1, warmup=0, setup=lambda: "ctx")
    assert timing.best_result == "ctx"  # setup's value is passed to fn

    with pytest.raises(ConfigurationError):
        best_of(fn, repeat=0)
    with pytest.raises(ConfigurationError):
        best_of(fn, warmup=-1)


def test_discover_cases_covers_every_experiment():
    from repro.obs.bench import discover_cases
    from repro.reporting.experiments import EXPERIMENTS

    cases = discover_cases()
    names = [case.name for case in cases]
    assert len(names) == len(set(names)), "duplicate benchmark names"
    assert set(EXPERIMENTS) <= set(names)
    groups = {case.group for case in cases}
    assert {"experiment", "engine", "context", "collection"} <= groups


def test_run_suite_rejects_unknown_names():
    from repro.obs.bench import run_suite

    with pytest.raises(ReproError, match="unknown benchmarks"):
        run_suite(only=["not_a_bench"])


def test_run_suite_smoke_single_case(tmp_path):
    from repro.obs.bench import load_report, run_suite, write_report

    report = run_suite(scale=0.004, seed=11, repeat=1, warmup=0,
                       only=["table1"])
    assert report["n_benchmarks"] == 1
    (row,) = report["results"]
    assert row["name"] == "table1"
    assert row["wall_s"] > 0
    path = write_report(report, tmp_path / "BENCH_all.json")
    assert load_report(path) == report


# ---------------------------------------------------------------------------
# CI regression gate
# ---------------------------------------------------------------------------

def _suite_report(**rows):
    return {
        "benchmark": "all",
        "scale": 0.02,
        "results": [dict(name=name, **row) for name, row in rows.items()],
    }


def test_check_regression_context_speedup():
    from repro.obs.bench import check_regression

    baseline = {"benchmark": "context_cold_vs_warm_sweep", "speedup": 2.4}
    healthy = _suite_report(
        context_cold_sweep={"wall_s": 4.8}, context_warm_sweep={"wall_s": 2.0}
    )
    assert check_regression(healthy, baseline) == []
    regressed = _suite_report(
        context_cold_sweep={"wall_s": 2.0}, context_warm_sweep={"wall_s": 2.0}
    )
    failures = check_regression(regressed, baseline)
    assert failures and "speedup regressed" in failures[0]
    # Missing sweep benchmarks must fail loudly, not silently pass.
    assert check_regression(_suite_report(), baseline)


def test_check_regression_engine_per_device_cost():
    from repro.obs.bench import check_regression

    baseline = {
        "benchmark": "engine_serial_vs_parallel",
        "scales": [
            {"scale": 0.02, "serial": {"wall_s": 1.0, "devices": 100}},
            {"scale": 0.08, "serial": {"wall_s": 4.0, "devices": 400}},
        ],
    }
    healthy = _suite_report(campaign_serial={"wall_s": 1.5, "devices": 100})
    assert check_regression(healthy, baseline) == []
    regressed = _suite_report(campaign_serial={"wall_s": 2.5, "devices": 100})
    failures = check_regression(regressed, baseline)
    assert failures and "per device" in failures[0]
    assert check_regression(_suite_report(), baseline)


def test_check_regression_engine_speedup_floor():
    """The committed floor arms on current cpu_count alone.

    A single-core baseline records ``speedup: null`` (the relative
    criterion stays dormant) but still carries ``speedup_floor``; any
    multi-core host must clear it outright.
    """
    from repro.obs.bench import check_regression

    baseline = {
        "benchmark": "engine_serial_vs_parallel",
        "cpu_count": 1,
        "scales": [
            {"scale": 0.08, "speedup": None, "speedup_floor": 1.5,
             "serial": {"wall_s": 4.0, "devices": 400}},
        ],
    }
    fast = dict(_suite_report(
        campaign_serial={"wall_s": 3.0, "devices": 400},
        campaign_sharded={"wall_s": 1.5, "devices": 400, "n_jobs": 2},
    ), scale=0.08, cpu_count=4)
    assert check_regression(fast, baseline) == []
    slow = dict(_suite_report(
        campaign_serial={"wall_s": 3.0, "devices": 400},
        campaign_sharded={"wall_s": 2.5, "devices": 400, "n_jobs": 2,
                          "steals": 3, "transport_bytes": 123456},
    ), scale=0.08, cpu_count=4)
    failures = check_regression(slow, baseline)
    assert failures and "floor" in failures[0]
    # A cross-host floor failure must be diagnosable from the message
    # alone: both hosts' core counts and the sharded run's scheduling
    # and transport counters.
    assert "baseline=1" in failures[0] and "current=4" in failures[0]
    assert "steals=3" in failures[0]
    assert "transport_bytes=123456" in failures[0]
    # On a single-core host the same ratio is pool overhead, not a
    # regression: the floor stays dormant.
    assert check_regression(dict(slow, cpu_count=1), baseline) == []


def test_check_regression_store_rss_and_cost():
    """The ``store`` kind gates the disk/memory peak-RSS ratio (relative
    to baseline and against the committed absolute ceiling) plus the disk
    path's per-row merge cost."""
    from repro.obs.bench import check_regression

    baseline = {
        "benchmark": "store",
        "memory": {"peak_rss_kb": 800_000},
        "disk": {"peak_rss_kb": 600_000, "rows": 8_000_000, "wall_s": 6.0},
        "rss_ceiling_ratio": 0.95,
    }
    healthy = {
        "memory": {"peak_rss_kb": 780_000},
        "disk": {"peak_rss_kb": 610_000, "rows": 8_000_000, "wall_s": 7.0},
    }
    assert check_regression(healthy, baseline) == []
    # Above the absolute ceiling: fails even though the relative ratio
    # only doubled (within the default 2x factor).
    bloated = {
        "memory": {"peak_rss_kb": 800_000},
        "disk": {"peak_rss_kb": 790_000, "rows": 8_000_000, "wall_s": 6.0},
    }
    failures = check_regression(bloated, baseline)
    assert failures and "ceiling" in failures[0]
    # Relative ratio regression beyond the factor.
    relative = {
        "memory": {"peak_rss_kb": 3_000_000},
        "disk": {"peak_rss_kb": 2_800_000, "rows": 8_000_000, "wall_s": 6.0},
    }
    assert any("ratio regressed" in f
               for f in check_regression(relative, baseline, factor=1.2))
    # Per-row merge cost regression.
    slow = {
        "memory": {"peak_rss_kb": 800_000},
        "disk": {"peak_rss_kb": 600_000, "rows": 8_000_000, "wall_s": 20.0},
    }
    failures = check_regression(slow, baseline)
    assert failures and "per-row cost" in failures[0]
    # A report without the subprocess measurements fails loudly.
    assert check_regression(_suite_report(), baseline)


def test_check_regression_all_name_by_name():
    from repro.obs.bench import check_regression

    baseline = _suite_report(table1={"wall_s": 0.1}, fig05={"wall_s": 0.2})
    same = _suite_report(table1={"wall_s": 0.15}, fig05={"wall_s": 0.2})
    assert check_regression(same, baseline) == []
    slow = _suite_report(table1={"wall_s": 0.5}, fig05={"wall_s": 0.2})
    failures = check_regression(slow, baseline)
    assert failures and "table1" in failures[0]
    # Wall times are not comparable across scales: the gate skips.
    other_scale = dict(baseline, scale=0.08)
    assert check_regression(slow, other_scale) == []


def test_check_regression_rejects_bad_factor():
    from repro.obs.bench import check_regression

    with pytest.raises(ConfigurationError):
        check_regression({}, {"benchmark": "all"}, factor=1.0)


def test_check_regression_rejects_unknown_kind():
    """A typo'd baseline kind is a misconfiguration, not a regression."""
    from repro.obs.bench import check_regression

    with pytest.raises(ConfigurationError,
                       match="unrecognised baseline benchmark kind"):
        check_regression(_suite_report(), {"benchmark": "nonsense"})


def test_committed_baselines_are_loadable():
    """The repo's committed baselines must stay parseable by the gate."""
    from pathlib import Path

    from repro.obs.bench import check_regression, load_report

    root = Path(__file__).resolve().parents[1]
    context = load_report(root / "BENCH_context.json")
    engine = load_report(root / "BENCH_engine.json")
    store = load_report(root / "BENCH_store.json")
    assert context["benchmark"] == "context_cold_vs_warm_sweep"
    assert engine["benchmark"] == "engine_serial_vs_parallel"
    assert store["benchmark"] == "store"
    assert store["rss_ratio"] < store["rss_ceiling_ratio"]
    # An empty current report fails (loudly) rather than erroring.
    assert check_regression({"benchmark": "all", "results": []}, context)
    assert check_regression({"benchmark": "all", "results": []}, engine)
    assert check_regression({"benchmark": "all", "results": []}, store)
