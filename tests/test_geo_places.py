"""Unit tests for named places."""

import pytest

from repro.errors import ConfigurationError
from repro.geo.places import PLACES, TOKYO_REGION, place


def test_all_figure10_cities_present():
    for name in (
        "tokyo", "yokohama", "chiba", "narita", "saitama", "kawasaki",
        "hachioji", "funabashi", "odawara", "yokosuka",
    ):
        assert name in PLACES


def test_place_lookup_case_insensitive():
    assert place("Tokyo") == PLACES["tokyo"]
    assert place("SHINJUKU") == PLACES["shinjuku"]


def test_unknown_place_raises():
    with pytest.raises(ConfigurationError, match="unknown place"):
        place("osaka")


def test_all_places_inside_region():
    for coord in PLACES.values():
        assert TOKYO_REGION["lat_min"] <= coord.lat <= TOKYO_REGION["lat_max"]
        assert TOKYO_REGION["lon_min"] <= coord.lon <= TOKYO_REGION["lon_max"]


def test_downtown_wards_near_tokyo():
    assert place("shinjuku").distance_km(place("tokyo")) < 12
    assert place("shibuya").distance_km(place("tokyo")) < 12
