"""Unit tests for §3.4.1 AP classification on hand-crafted datasets."""

import numpy as np
import pytest

from repro.analysis.ap_classification import classify_aps
from repro.net.accesspoint import APType
from tests.helpers import (
    add_ap,
    add_association_span,
    add_geo_span,
    make_builder,
    nightly_home_association,
    slot,
)


def test_nightly_ap_classified_home():
    builder = make_builder(n_devices=1, n_days=5)
    add_ap(builder, 0, "my-router")
    nightly_home_association(builder, 0, 0, n_days=5)
    result = classify_aps(builder.build())
    assert result.ap_class[0] == "home"
    assert result.home_ap_of_device == {0: 0}


def test_provider_essid_classified_public():
    builder = make_builder(n_devices=1, n_days=2)
    add_ap(builder, 0, "0000docomo")
    add_association_span(builder, 0, 0, slot(0, 12), slot(0, 13))
    result = classify_aps(builder.build())
    assert result.ap_class[0] == "public"


def test_eduroam_is_public():
    builder = make_builder(n_devices=1, n_days=2)
    add_ap(builder, 0, "eduroam")
    add_association_span(builder, 0, 0, slot(0, 12), slot(0, 16))
    result = classify_aps(builder.build())
    assert result.ap_class[0] == "public"


def test_weekday_business_hours_ap_is_office():
    builder = make_builder(n_devices=1, n_days=5)  # Mon-Fri (starts Monday)
    add_ap(builder, 0, "corp-00001")
    for day in range(5):
        add_association_span(builder, 0, 0, slot(day, 11), slot(day, 17))
    result = classify_aps(builder.build())
    assert result.ap_class[0] == "office"


def test_weekend_venue_is_other():
    # Make a 7-day week starting Monday; associate Saturday afternoon.
    builder = make_builder(n_devices=1, n_days=7)
    add_ap(builder, 0, "cafe-guest-1234")
    add_association_span(builder, 0, 0, slot(5, 13), slot(5, 15))  # Saturday
    result = classify_aps(builder.build())
    assert result.ap_class[0] == "other"


def test_evening_venue_is_other_not_office():
    builder = make_builder(n_devices=1, n_days=5)
    add_ap(builder, 0, "hotel-guest-0001")
    for day in range(5):
        add_association_span(builder, 0, 0, slot(day, 19), slot(day, 21))
    result = classify_aps(builder.build())
    assert result.ap_class[0] == "other"


def test_fon_used_all_night_reclassified_home():
    builder = make_builder(n_devices=1, n_days=5)
    add_ap(builder, 0, "FON_FREE_INTERNET")
    # Nightly + daytime usage: > 24 cumulative hours.
    for day in range(5):
        add_association_span(builder, 0, 0, slot(day, 0), slot(day, 8))
        add_association_span(builder, 0, 0, slot(day, 20), slot(day, 24))
    result = classify_aps(builder.build())
    assert result.ap_class[0] == "home"
    assert result.home_ap_of_device.get(0) == 0


def test_fon_used_briefly_stays_public():
    builder = make_builder(n_devices=1, n_days=5)
    add_ap(builder, 0, "FON_FREE_INTERNET")
    add_association_span(builder, 0, 0, slot(0, 12), slot(0, 14))
    result = classify_aps(builder.build())
    assert result.ap_class[0] == "public"


def test_mobile_ap_detected_from_many_cells():
    builder = make_builder(n_devices=1, n_days=3)
    add_ap(builder, 0, "WM-00042")
    # Same AP seen from three different 5km cells.
    for day, cell in enumerate(((0, 0), (3, 0), (0, 4))):
        add_association_span(builder, 0, 0, slot(day, 9), slot(day, 11))
        add_geo_span(builder, 0, cell, slot(day, 9), slot(day, 11))
    result = classify_aps(builder.build())
    assert result.ap_class[0] == "mobile"
    # Mobile is folded into 'other' in the paper's buckets.
    assert result.wifi_class_of(0) == "other"


def test_short_night_evidence_insufficient():
    builder = make_builder(n_devices=1, n_days=3)
    add_ap(builder, 0, "some-net")
    # Only 30 minutes at night: below the 1-hour evidence minimum.
    add_association_span(builder, 0, 0, slot(0, 23), slot(0, 23) + 3)
    result = classify_aps(builder.build())
    assert 0 not in result.home_ap_of_device.values() or (
        result.home_ap_of_device == {}
    )
    assert result.ap_class[0] != "home"


def test_mixed_night_needs_70_percent():
    builder = make_builder(n_devices=1, n_days=2)
    add_ap(builder, 0, "router-a")
    add_ap(builder, 1, "router-b")
    # Night split 50/50 between two APs within each day: neither reaches 70%.
    for day in range(2):
        add_association_span(builder, 0, 0, slot(day, 22), slot(day, 24))
        add_association_span(builder, 0, 1, slot(day, 0), slot(day, 2))
    result = classify_aps(builder.build())
    assert result.home_ap_of_device == {}


def test_counts_table4_buckets():
    builder = make_builder(n_devices=2, n_days=5)
    add_ap(builder, 0, "router-a")
    add_ap(builder, 1, "0000docomo")
    add_ap(builder, 2, "corp-77777")
    add_ap(builder, 3, "cafe-guest-0007")
    nightly_home_association(builder, 0, 0, n_days=5)
    add_association_span(builder, 1, 1, slot(0, 12), slot(0, 13))
    for day in range(5):
        add_association_span(builder, 1, 2, slot(day, 11), slot(day, 17))
    add_association_span(builder, 0, 3, slot(2, 19), slot(2, 20))
    result = classify_aps(builder.build())
    counts = result.counts()
    assert counts["home"] == 1
    assert counts["public"] == 1
    assert counts["office"] == 1
    assert counts["other"] == 2  # office + open cafe
    assert counts["total"] == 4


def test_empty_dataset():
    result = classify_aps(make_builder().build())
    assert result.ap_class == {}
    assert result.wifi_devices == set()


def test_against_simulator_ground_truth(study):
    """Inference agrees with ground truth for the dominant classes."""
    raw = study.dataset(2015)
    truth = raw.ground_truth
    result = classify_aps(raw)
    checked = agreements = 0
    for ap_id, inferred in result.ap_class.items():
        actual = truth.ap_types[ap_id]
        if actual is APType.HOME:
            expected = "home"
        elif actual is APType.PUBLIC:
            expected = "public"
        elif actual is APType.OFFICE:
            # eduroam campuses legitimately classify public.
            essid = raw.ap_directory[ap_id].essid
            expected = "public" if essid == "eduroam" else "office"
        else:
            continue
        checked += 1
        agreements += inferred == expected
    assert checked > 50
    assert agreements / checked > 0.85


def test_home_device_fraction_matches_truth(study):
    raw = study.dataset(2015)
    truth = raw.ground_truth
    result = classify_aps(raw)
    inferred = set(result.home_ap_of_device)
    actual = set(truth.home_ap_of_user)
    # Every inferred home user truly owns a home AP...
    assert len(inferred - actual) <= max(2, len(inferred) // 20)
    # ...and most owners who use WiFi are found.
    overlap = len(inferred & actual) / max(len(inferred), 1)
    assert overlap > 0.9
