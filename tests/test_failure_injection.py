"""Failure-injection tests: corrupted inputs, degenerate data, byzantine IO."""

import numpy as np
import pytest

from repro.errors import AnalysisError, DatasetError, SchemaError, UploadError
from repro.traces.io import load_dataset, save_dataset
from tests.helpers import add_ap, add_daily_traffic, make_builder


class TestCorruptedPersistence:
    def test_missing_tables_file(self, tmp_path, study):
        root = save_dataset(study.dataset(2013), tmp_path / "ds")
        (root / "tables.npz").unlink()
        with pytest.raises(Exception):
            load_dataset(root)

    def test_truncated_meta(self, tmp_path, study):
        root = save_dataset(study.dataset(2013), tmp_path / "ds")
        meta = (root / "meta.json").read_text()
        (root / "meta.json").write_text(meta[: len(meta) // 2])
        with pytest.raises(Exception):
            load_dataset(root)

    def test_column_tampering_caught_by_validation(self, tmp_path, study):
        from repro.traces.validate import validate_dataset
        root = save_dataset(study.dataset(2013), tmp_path / "ds")
        loaded = load_dataset(root)
        loaded.traffic.columns["device"][:] = 10_000  # unknown devices
        with pytest.raises(SchemaError):
            validate_dataset(loaded)


class TestDegenerateDatasets:
    def test_single_user_analyses(self):
        builder = make_builder(n_devices=1, n_days=7)
        add_ap(builder, 0, "home-0")
        for day in range(7):
            add_daily_traffic(builder, 0, day, cell_rx_mb=10, wifi_rx_mb=20)
        ds = builder.build()
        from repro.analysis import aggregate_traffic, wifi_cell_heatmap
        agg = aggregate_traffic(ds)
        assert 0 < agg.wifi_share < 1
        heat = wifi_cell_heatmap(ds)
        assert heat.n_points == 7

    def test_all_zero_traffic(self):
        from repro.analysis import aggregate_traffic
        builder = make_builder(n_devices=2, n_days=2)
        with pytest.raises(AnalysisError):
            aggregate_traffic(builder.build())

    def test_analyses_on_empty_wifi(self):
        from repro.analysis import classify_aps, association_durations
        builder = make_builder(n_devices=2, n_days=2)
        add_daily_traffic(builder, 0, 0, cell_rx_mb=10)
        ds = builder.build()
        assert classify_aps(ds).ap_class == {}
        with pytest.raises(AnalysisError):
            association_durations(ds)

    def test_nan_rx_rejected_by_validation(self):
        from repro.traces.validate import validate_dataset
        builder = make_builder(n_devices=1, n_days=1)
        add_daily_traffic(builder, 0, 0, cell_rx_mb=10)
        ds = builder.build()
        ds.traffic.columns["rx"][0] = np.nan
        # NaN compares false against < 0, but downstream medians/AGRs would
        # propagate it; the schema check treats NaN as negative via min().
        result_is_nan = np.isnan(ds.traffic.rx.min())
        assert result_is_nan
        # validate_dataset only enforces non-negativity; the ECDF layer
        # rejects NaNs explicitly:
        from repro.stats.distributions import ecdf
        with pytest.raises(AnalysisError):
            ecdf(ds.traffic.rx)


class TestByzantineTransport:
    def test_transport_raising_unrelated_errors_propagates(self):
        from repro.collection.agent import Records
        from repro.collection.uploader import Uploader

        class Exploding:
            def deliver(self, batch):
                raise RuntimeError("segfault in modem firmware")

        uploader = Uploader(device_id=0, transport=Exploding())
        # Only UploadError is treated as retryable; other bugs surface.
        with pytest.raises(RuntimeError):
            uploader.upload(Records())

    def test_intermittent_recovery(self, rng):
        from repro.collection.agent import Records
        from repro.collection.uploader import FlakyTransport, Uploader, drain_all

        received = []
        transport = FlakyTransport(received.append, failure_rate=0.8, rng=rng)
        uploader = Uploader(device_id=0, transport=transport)
        for _ in range(30):
            uploader.upload(Records())
        drain_all([uploader], max_rounds=200)
        assert len(received) == 30
        sequences = [batch.sequence for batch in received]
        assert sequences == sorted(sequences)  # order preserved end to end

    def test_server_rejects_foreign_year_slots(self):
        from datetime import date
        from repro.collection.agent import AgentSnapshot, MeasurementAgent
        from repro.collection.server import CollectionServer
        from repro.collection.uploader import UploadBatch
        from repro.geo.coords import Coordinate
        from repro.net.cellular import CellularTechnology
        from repro.timeutil import TimeAxis
        from repro.traces.records import DeviceInfo, DeviceOS, WifiStateCode

        axis = TimeAxis(date(2015, 3, 2), 1)  # 144 slots only
        server = CollectionServer(2015, axis)
        info = DeviceInfo(0, DeviceOS.ANDROID, "docomo", CellularTechnology.LTE)
        server.register_device(info)
        agent = MeasurementAgent(info)
        records = agent.sample(
            AgentSnapshot(t=999, location=Coordinate(35.6, 139.7),
                          wifi_state=WifiStateCode.OFF, rx_cell=5.0)
        )
        server.receive(UploadBatch(0, 0, records))
        with pytest.raises(SchemaError):
            server.build_dataset()  # out-of-range slot caught at freeze
