"""Failure-injection tests: corrupted inputs, degenerate data, byzantine IO."""

import numpy as np
import pytest

from repro.errors import AnalysisError, DatasetError, SchemaError, UploadError
from repro.traces.io import load_dataset, save_dataset
from tests.helpers import add_ap, add_daily_traffic, make_builder


class TestCorruptedPersistence:
    def test_missing_tables_file(self, tmp_path, study):
        root = save_dataset(study.dataset(2013), tmp_path / "ds")
        (root / "tables.npz").unlink()
        with pytest.raises(Exception):
            load_dataset(root)

    def test_truncated_meta(self, tmp_path, study):
        root = save_dataset(study.dataset(2013), tmp_path / "ds")
        meta = (root / "meta.json").read_text()
        (root / "meta.json").write_text(meta[: len(meta) // 2])
        with pytest.raises(Exception):
            load_dataset(root)

    def test_column_tampering_caught_by_validation(self, tmp_path, study):
        from repro.traces.validate import validate_dataset
        root = save_dataset(study.dataset(2013), tmp_path / "ds")
        loaded = load_dataset(root)
        loaded.traffic.columns["device"][:] = 10_000  # unknown devices
        with pytest.raises(SchemaError):
            validate_dataset(loaded)


class TestDegenerateDatasets:
    def test_single_user_analyses(self):
        builder = make_builder(n_devices=1, n_days=7)
        add_ap(builder, 0, "home-0")
        for day in range(7):
            add_daily_traffic(builder, 0, day, cell_rx_mb=10, wifi_rx_mb=20)
        ds = builder.build()
        from repro.analysis import aggregate_traffic, wifi_cell_heatmap
        agg = aggregate_traffic(ds)
        assert 0 < agg.wifi_share < 1
        heat = wifi_cell_heatmap(ds)
        assert heat.n_points == 7

    def test_all_zero_traffic(self):
        from repro.analysis import aggregate_traffic
        builder = make_builder(n_devices=2, n_days=2)
        with pytest.raises(AnalysisError):
            aggregate_traffic(builder.build())

    def test_analyses_on_empty_wifi(self):
        from repro.analysis import classify_aps, association_durations
        builder = make_builder(n_devices=2, n_days=2)
        add_daily_traffic(builder, 0, 0, cell_rx_mb=10)
        ds = builder.build()
        assert classify_aps(ds).ap_class == {}
        with pytest.raises(AnalysisError):
            association_durations(ds)

    def test_nan_rx_rejected_by_validation(self):
        from repro.traces.validate import validate_dataset
        builder = make_builder(n_devices=1, n_days=1)
        add_daily_traffic(builder, 0, 0, cell_rx_mb=10)
        ds = builder.build()
        ds.traffic.columns["rx"][0] = np.nan
        # NaN compares false against < 0, but downstream medians/AGRs would
        # propagate it; the schema check treats NaN as negative via min().
        result_is_nan = np.isnan(ds.traffic.rx.min())
        assert result_is_nan
        # validate_dataset only enforces non-negativity; the ECDF layer
        # rejects NaNs explicitly:
        from repro.stats.distributions import ecdf
        with pytest.raises(AnalysisError):
            ecdf(ds.traffic.rx)


class TestByzantineTransport:
    def test_transport_raising_unrelated_errors_propagates(self):
        from repro.collection.agent import Records
        from repro.collection.uploader import Uploader

        class Exploding:
            def deliver(self, batch):
                raise RuntimeError("segfault in modem firmware")

        uploader = Uploader(device_id=0, transport=Exploding())
        # Only UploadError is treated as retryable; other bugs surface.
        with pytest.raises(RuntimeError):
            uploader.upload(Records())

    def test_intermittent_recovery(self, rng):
        from repro.collection.agent import Records
        from repro.collection.uploader import FlakyTransport, Uploader, drain_all

        received = []
        transport = FlakyTransport(received.append, failure_rate=0.8, rng=rng)
        uploader = Uploader(device_id=0, transport=transport)
        for _ in range(30):
            uploader.upload(Records())
        drain_all([uploader], max_rounds=200)
        assert len(received) == 30
        sequences = [batch.sequence for batch in received]
        assert sequences == sorted(sequences)  # order preserved end to end

    def test_server_rejects_foreign_year_slots(self):
        from datetime import date
        from repro.collection.agent import AgentSnapshot, MeasurementAgent
        from repro.collection.server import CollectionServer
        from repro.collection.uploader import UploadBatch
        from repro.geo.coords import Coordinate
        from repro.net.cellular import CellularTechnology
        from repro.timeutil import TimeAxis
        from repro.traces.records import DeviceInfo, DeviceOS, WifiStateCode

        axis = TimeAxis(date(2015, 3, 2), 1)  # 144 slots only
        server = CollectionServer(2015, axis)
        info = DeviceInfo(0, DeviceOS.ANDROID, "docomo", CellularTechnology.LTE)
        server.register_device(info)
        agent = MeasurementAgent(info)
        records = agent.sample(
            AgentSnapshot(t=999, location=Coordinate(35.6, 139.7),
                          wifi_state=WifiStateCode.OFF, rx_cell=5.0)
        )
        server.receive(UploadBatch(0, 0, records))
        with pytest.raises(SchemaError):
            server.build_dataset()  # out-of-range slot caught at freeze


class TestFaultPlanScenarios:
    def test_outage_window_caches_then_recovers(self):
        from repro.collection.agent import Records
        from repro.collection.faults import FaultedTransport, FaultPlan, OutageWindow
        from repro.collection.uploader import Uploader
        from repro.net.cellular import CellularTechnology

        received = []
        plan = FaultPlan(outages=(OutageWindow(3, 7),))
        transport = FaultedTransport(
            received.append, plan, CellularTechnology.LTE,
            np.random.default_rng(0),
        )
        uploader = Uploader(device_id=0, transport=transport)
        for t in range(10):
            transport.now = t
            uploader.upload(Records())
            if 3 <= t < 7:
                assert uploader.cached_batches == t - 3 + 1
        # Every batch made it out once coverage returned, in order.
        assert uploader.cached_batches == 0
        assert [b.sequence for b in received] == list(range(10))
        assert transport.failures == 4

    def test_outage_covering_campaign_end_strands_cache(self):
        from repro.collection.agent import Records
        from repro.collection.faults import FaultedTransport, FaultPlan, OutageWindow
        from repro.collection.uploader import Uploader
        from repro.net.cellular import CellularTechnology

        plan = FaultPlan(outages=(OutageWindow(0, 10_000),))
        transport = FaultedTransport(
            lambda b: None, plan, CellularTechnology.LTE,
            np.random.default_rng(0),
        )
        uploader = Uploader(device_id=0, transport=transport)
        for t in range(5):
            transport.now = t
            assert not uploader.upload(Records())
        for _ in range(4):  # bounded final drain: stalls, never raises
            uploader.flush()
        assert uploader.cached_batches == 5
        assert uploader.delivered == 0

    def test_churn_stops_reporting_mid_campaign(self):
        from repro.collection.faults import FaultPlan
        from repro.simulation.study import default_campaign_config
        from repro.simulation.campaign import run_campaign

        plan = FaultPlan(dropout_p=1.0, dropout_min_frac=0.5)
        config = default_campaign_config(2013, scale=0.003, seed=9, faults=plan)
        result = run_campaign(config)
        report = result.collection
        n_slots = result.dataset.n_slots
        for stats in report.devices:
            assert stats.churn_slot is not None
            assert stats.churn_slot >= n_slots // 2
            assert stats.churned > 0
            assert 0.0 < stats.completeness < 1.0
            # Nothing recorded after the dropout slot reached the server.
            rows = result.dataset.geo.device == stats.device_id
            assert result.dataset.geo.t[rows].max() < stats.churn_slot
        assert report.n_valid(0.99) == 0

    def test_total_blackout_yields_empty_but_valid_dataset(self):
        from repro.collection.faults import FaultPlan
        from repro.simulation.study import default_campaign_config
        from repro.simulation.campaign import run_campaign

        plan = FaultPlan(upload_failure_p=1.0, final_drain_rounds=2)
        config = default_campaign_config(2013, scale=0.003, seed=9, faults=plan)
        result = run_campaign(config)  # no exception escapes the campaign
        assert len(result.dataset.traffic) == 0
        assert len(result.dataset.geo) == 0
        report = result.collection
        assert report.n_valid(0.01) == 0
        for stats in report.devices:
            assert stats.delivered == 0
            assert stats.uploaded == stats.dropped + stats.cached
