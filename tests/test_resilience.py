"""Self-healing execution tests: checkpoints, retries, chaos, degradation.

The acceptance bar: the chaos harness can crash 30% of shards, hang one,
and kill the campaign mid-run — and every recovered (or resumed) run is
bit-for-bit identical to an uninterrupted one at any worker count.
"""

import dataclasses
import json

import pytest

from repro.engine import (
    CheckpointStore,
    ChaosCrash,
    ChaosKill,
    ChaosPlan,
    ExecutionLosses,
    ParallelExecutor,
    ResilienceConfig,
    ResilienceReport,
    RetryPolicy,
    SerialExecutor,
    corrupt_checkpoints,
    missing_shards,
)
from repro.engine.chaos import ChaosInjector, ChaosMonkey, unit_key_of
from repro.engine.resilience import (
    FAILURE_BROKEN_POOL,
    FAILURE_CRASH,
    FAILURE_TIMEOUT,
    OUTCOME_DROPPED,
    OUTCOME_OK,
    OUTCOME_RETRIED,
    classify_exception,
)
from repro.errors import ConfigurationError, EngineError
from repro.obs.manifest import RunManifest, build_manifest
from repro.obs.metrics import MetricsRegistry
from repro.simulation.campaign import (
    merge_campaign,
    plan_campaign,
    run_campaign,
)
from repro.simulation.study import default_campaign_config, run_study
from tests.test_engine import assert_datasets_identical


def _small_config(year=2013, **kwargs):
    config = default_campaign_config(year, scale=0.004, seed=11, **kwargs)
    return dataclasses.replace(config, n_days=4)


# ---------------------------------------------------------------------------
# Retry policy
# ---------------------------------------------------------------------------

class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ConfigurationError):
            RetryPolicy(backoff_factor=0.5)
        with pytest.raises(ConfigurationError):
            RetryPolicy(jitter_frac=1.0)
        with pytest.raises(ConfigurationError):
            RetryPolicy(shard_timeout_s=0)

    def test_backoff_deterministic_and_bounded(self):
        policy = RetryPolicy(backoff_base_s=0.1, backoff_factor=2.0,
                             backoff_max_s=0.5, jitter_frac=0.25, seed=3)
        for attempt in range(1, 8):
            a = policy.backoff_s("2013:0", attempt)
            b = policy.backoff_s("2013:0", attempt)
            assert a == b
            raw = min(0.5, 0.1 * 2.0 ** (attempt - 1))
            assert raw * 0.75 <= a <= raw * 1.25

    def test_jitter_varies_by_unit(self):
        policy = RetryPolicy(backoff_base_s=1.0, jitter_frac=0.25)
        assert policy.backoff_s("a", 1) != policy.backoff_s("b", 1)

    def test_zero_jitter_exact(self):
        policy = RetryPolicy(backoff_base_s=0.2, jitter_frac=0.0)
        assert policy.backoff_s("x", 1) == pytest.approx(0.2)

    def test_classify(self):
        from concurrent.futures import BrokenExecutor, CancelledError
        from concurrent.futures import TimeoutError as FuturesTimeout

        assert classify_exception(ValueError("x")) == FAILURE_CRASH
        assert classify_exception(FuturesTimeout()) == FAILURE_TIMEOUT
        assert classify_exception(BrokenExecutor()) == FAILURE_BROKEN_POOL
        assert classify_exception(CancelledError()) == FAILURE_BROKEN_POOL


# ---------------------------------------------------------------------------
# Checkpoint store
# ---------------------------------------------------------------------------

class TestCheckpointStore:
    def test_round_trip(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.initialize({"k": "v"}, resume=False)
        payload = {"rows": list(range(50)), "year": 2013}
        store.save("abc", 7, 3, payload)
        fresh = CheckpointStore(tmp_path)
        assert fresh.load("abc", 7, 3) == payload
        assert fresh.hits == 1
        assert fresh.load("abc", 7, 4) is None
        assert fresh.misses == 1

    @pytest.mark.parametrize("mode", ["truncate", "flip"])
    def test_corruption_degrades_gracefully(self, tmp_path, mode):
        store = CheckpointStore(tmp_path)
        store.initialize({"k": "v"}, resume=False)
        store.save("abc", 7, 0, {"x": 1})
        damaged = corrupt_checkpoints(tmp_path, mode=mode)
        assert len(damaged) == 1
        assert store.load("abc", 7, 0) is None
        assert store.corrupt == 1
        # The poisoned file was deleted, so a re-save round-trips again.
        assert not store.path_for("abc", 7, 0).exists()
        store.save("abc", 7, 0, {"x": 1})
        assert store.load("abc", 7, 0) == {"x": 1}

    def test_wrong_key_in_header_rejected(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.save("abc", 7, 0, {"x": 1})
        path = store.path_for("abc", 7, 0)
        path.rename(store.path_for("abc", 7, 1))
        assert store.load("abc", 7, 1) is None
        assert store.corrupt == 1

    def test_resume_identity_mismatch_refused(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.initialize({"seed": 7, "config_keys": {"2013": "aa"}},
                         resume=False)
        store.save("aa", 7, 0, {"x": 1})
        other = CheckpointStore(tmp_path)
        with pytest.raises(ConfigurationError, match="different run"):
            other.initialize({"seed": 8, "config_keys": {"2013": "bb"}},
                             resume=True)

    def test_fresh_run_purges_stale_directory(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.initialize({"seed": 7}, resume=False)
        store.save("aa", 7, 0, {"x": 1})
        other = CheckpointStore(tmp_path)
        other.initialize({"seed": 8}, resume=False)
        assert other.load("aa", 7, 0) is None

    def test_resume_over_empty_directory_is_fresh(self, tmp_path):
        store = CheckpointStore(tmp_path / "new")
        store.initialize({"seed": 7}, resume=True)  # must not raise

    def test_resume_without_meta_refused(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.save("aa", 7, 0, {"x": 1})  # files but no meta written
        with pytest.raises(ConfigurationError, match="unknown provenance"):
            CheckpointStore(tmp_path).initialize({"seed": 7}, resume=True)


# ---------------------------------------------------------------------------
# Chaos plan
# ---------------------------------------------------------------------------

class TestChaosPlan:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ChaosPlan(crash_rate=1.5, state_dir="x")
        with pytest.raises(ConfigurationError):
            ChaosPlan(kill_after_shards=0)
        with pytest.raises(ConfigurationError):
            ChaosPlan(crash_rate=0.5)  # worker faults need a state_dir

    def test_selection_deterministic(self, tmp_path):
        plan = ChaosPlan(crash_rate=0.5, seed=3, state_dir=tmp_path)
        keys = [f"2013:{i}" for i in range(64)]
        first = [plan.selects("crash", k) for k in keys]
        again = [plan.selects("crash", k) for k in keys]
        assert first == again
        assert any(first) and not all(first)

    def test_explicit_units_always_selected(self, tmp_path):
        plan = ChaosPlan(crash_units=("2013:1",), state_dir=tmp_path)
        assert plan.selects("crash", "2013:1")
        assert not plan.selects("crash", "2013:0")

    def test_attempt_counting_is_cross_instance(self, tmp_path):
        plan = ChaosPlan(crash_units=("7",), crash_attempts=2,
                         state_dir=tmp_path)
        injector = ChaosInjector(_double, plan)
        with pytest.raises(ChaosCrash):
            injector(7)
        # A fresh injector (fresh process in real runs) continues counting.
        with pytest.raises(ChaosCrash):
            ChaosInjector(_double, plan)(7)
        assert ChaosInjector(_double, plan)(7) == 14

    def test_monkey_kills_after_n(self):
        monkey = ChaosMonkey(ChaosPlan(kill_after_shards=2))
        monkey.on_shard_complete()
        with pytest.raises(ChaosKill):
            monkey.on_shard_complete()

    def test_unit_key_of_shard_work(self):
        plan = plan_campaign(_small_config(), 2)
        assert unit_key_of(plan.work[0]) == "2013:0"


# ---------------------------------------------------------------------------
# Executor retry / deadline / partial semantics
# ---------------------------------------------------------------------------

def _double(x):
    return x * 2


def _always_fails(x):
    raise ValueError(f"boom {x}")


class TestSerialExecutorResilience:
    def test_retry_recovers(self, tmp_path):
        plan = ChaosPlan(crash_units=("3",), crash_attempts=1,
                         state_dir=tmp_path)
        executor = SerialExecutor(policy=RetryPolicy(
            max_attempts=2, backoff_base_s=0.0))
        results = executor.run(ChaosInjector(_double, plan), [2, 3, 4])
        assert results == [4, 6, 8]
        assert executor.retries == 1
        outcomes = [log.outcome for log in executor.history]
        assert outcomes == [OUTCOME_OK, OUTCOME_RETRIED, OUTCOME_OK]

    def test_exhausted_raises_in_strict_mode(self):
        executor = SerialExecutor(policy=RetryPolicy(
            max_attempts=2, backoff_base_s=0.0))
        with pytest.raises(ValueError):
            executor.run(_always_fails, [1])
        assert executor.history[0].attempts == 2

    def test_partial_drops_exhausted_unit(self):
        executor = SerialExecutor(
            policy=RetryPolicy(max_attempts=2, backoff_base_s=0.0),
            allow_partial=True,
        )
        results = executor.run(_always_fails, [1])
        assert results == [None]
        assert executor.dropped == 1
        assert executor.history[0].outcome == OUTCOME_DROPPED
        assert [f.kind for f in executor.failures] == ["crash", "crash"]


class TestParallelExecutorResilience:
    def test_in_pool_retry_recovers(self, tmp_path):
        plan = ChaosPlan(crash_units=("1", "3"), crash_attempts=1,
                         state_dir=tmp_path)
        with ParallelExecutor(
            2, policy=RetryPolicy(max_attempts=3, backoff_base_s=0.01),
        ) as executor:
            results = executor.run(ChaosInjector(_double, plan),
                                   [0, 1, 2, 3])
            assert results == [0, 2, 4, 6]
            assert executor.retries == 2
            assert executor.fallbacks == 0

    def test_deadline_charges_only_the_running_shard(self, tmp_path):
        """Regression: queued shards must never be charged queue wait.

        With the legacy sequential ``future.result(timeout=...)``
        accounting, fast units queued behind a hung sibling on a saturated
        pool were timed out through no fault of their own. The deadline is
        now measured from each shard's observed start: only the hung unit
        may record a timeout failure.
        """
        plan = ChaosPlan(hang_units=("0",), hang_attempts=1, hang_s=8.0,
                         state_dir=tmp_path)
        with ParallelExecutor(
            2,
            policy=RetryPolicy(max_attempts=2, backoff_base_s=0.01,
                               shard_timeout_s=1.0),
        ) as executor:
            results = executor.run(ChaosInjector(_double, plan),
                                   list(range(6)))
        assert results == [x * 2 for x in range(6)]
        timed_out = {f.unit_index for f in executor.failures
                     if f.kind == FAILURE_TIMEOUT}
        assert timed_out == {0}
        for log in executor.history[1:]:
            assert log.attempts == 1
            assert not log.failures

    def test_partial_drops_poisoned_unit(self, tmp_path):
        plan = ChaosPlan(crash_units=("2",), crash_attempts=99,
                         state_dir=tmp_path)
        with ParallelExecutor(
            2, policy=RetryPolicy(max_attempts=2, backoff_base_s=0.01),
            allow_partial=True,
        ) as executor:
            results = executor.run(ChaosInjector(_double, plan), [1, 2, 3])
        assert results == [2, None, 6]
        assert executor.dropped == 1
        assert executor.history[1].outcome == OUTCOME_DROPPED

    def test_strict_mode_still_raises_after_fallback(self):
        with ParallelExecutor(
            2, policy=RetryPolicy(max_attempts=2, backoff_base_s=0.01),
        ) as executor:
            with pytest.raises(ValueError):
                executor.run(_always_fails, [1])


# ---------------------------------------------------------------------------
# Campaign-level checkpoint / resume bit-identity
# ---------------------------------------------------------------------------

class TestCheckpointResume:
    @pytest.mark.parametrize("n_jobs", [1, 2])
    def test_interrupt_then_resume_bit_identical(self, tmp_path, n_jobs):
        """The tentpole guarantee: kill after k shards, resume, same bits."""
        config = _small_config(2014)
        baseline = run_campaign(config, n_jobs=n_jobs)

        kill_after = 1  # with 1-2 shards per run this interrupts mid-way
        res = ResilienceConfig(
            store=CheckpointStore(tmp_path),
            chaos=ChaosPlan(kill_after_shards=kill_after),
        )
        interrupted = False
        try:
            run_campaign(config, n_jobs=n_jobs, resilience=res)
        except ChaosKill:
            interrupted = True
        if n_jobs > 1:
            assert interrupted

        resumed = run_campaign(
            config, n_jobs=n_jobs,
            resilience=ResilienceConfig(store=CheckpointStore(tmp_path),
                                        resume=True),
        )
        assert_datasets_identical(baseline.dataset, resumed.dataset)
        assert resumed.resilience.checkpoint_hits >= kill_after
        assert resumed.losses is None
        if baseline.collection is not None:
            assert resumed.collection.totals() == \
                baseline.collection.totals()

    def test_full_resume_skips_all_simulation(self, tmp_path):
        config = _small_config()
        res = ResilienceConfig(store=CheckpointStore(tmp_path))
        first = run_campaign(config, n_jobs=2, resilience=res)
        resumed = run_campaign(
            config, n_jobs=2,
            resilience=ResilienceConfig(store=CheckpointStore(tmp_path),
                                        resume=True),
        )
        n_shards = first.execution.n_shards
        assert resumed.resilience.checkpoint_hits == n_shards
        assert resumed.resilience.shard_attempts == []  # nothing executed
        assert_datasets_identical(first.dataset, resumed.dataset)

    def test_resume_with_different_shard_layout_refused(self, tmp_path):
        config = _small_config()
        run_campaign(config, n_jobs=2,
                     resilience=ResilienceConfig(
                         store=CheckpointStore(tmp_path)))
        with pytest.raises(ConfigurationError, match="different run"):
            run_campaign(config, n_jobs=1,
                         resilience=ResilienceConfig(
                             store=CheckpointStore(tmp_path), resume=True))

    def test_corrupted_checkpoints_recompute_identically(self, tmp_path):
        config = _small_config(2014)
        baseline = run_campaign(config, n_jobs=2)
        run_campaign(config, n_jobs=2,
                     resilience=ResilienceConfig(
                         store=CheckpointStore(tmp_path)))
        damaged = corrupt_checkpoints(tmp_path, rate=1.0, mode="flip")
        assert damaged
        resumed = run_campaign(
            config, n_jobs=2,
            resilience=ResilienceConfig(store=CheckpointStore(tmp_path),
                                        resume=True),
        )
        assert resumed.resilience.checkpoint_corrupt == len(damaged)
        assert_datasets_identical(baseline.dataset, resumed.dataset)

    def test_resume_without_store_rejected(self):
        with pytest.raises(ConfigurationError, match="checkpoint"):
            ResilienceConfig(resume=True)


# ---------------------------------------------------------------------------
# Chaos acceptance: crashes + a hang + retries, still bit-identical
# ---------------------------------------------------------------------------

class TestChaosAcceptance:
    def test_crash_rate_plus_hang_recovers_identically(self, tmp_path):
        """Crash ~30% of shards, hang one, retry everything back to green."""
        config = _small_config(2015)
        n_jobs = 4
        baseline = run_campaign(config, n_jobs=n_jobs)

        plan = plan_campaign(config, n_jobs)
        keys = [f"{config.year}:{w.shard_index}" for w in plan.work]
        chaos = ChaosPlan(
            crash_rate=0.3,
            crash_units=(keys[0],),  # >= one crash regardless of the draw
            hang_units=(keys[-1],),
            hang_s=6.0,
            seed=5,
            state_dir=tmp_path / "chaos",
        )
        res = ResilienceConfig(
            policy=RetryPolicy(max_attempts=3, backoff_base_s=0.01,
                               shard_timeout_s=1.5),
            chaos=chaos,
        )
        result = run_campaign(config, n_jobs=n_jobs, resilience=res)
        assert_datasets_identical(baseline.dataset, result.dataset)
        kinds = result.resilience.failures_by_kind
        assert kinds.get("crash", 0) >= 1
        assert kinds.get("timeout", 0) >= 1
        assert result.resilience.retries >= 2
        assert result.losses is None

    def test_study_resume_and_fidelity_json_identical(self, tmp_path):
        """Interrupted+resumed study scores bit-identical fidelity JSON."""
        from repro.analysis.context import AnalysisContext
        from repro.obs.fidelity import score_fidelity

        kwargs = dict(scale=0.004, seed=11)
        baseline = run_study(n_jobs=2, **kwargs)

        store_dir = tmp_path / "ck"
        with pytest.raises(ChaosKill):
            run_study(n_jobs=2,
                      resilience=ResilienceConfig(
                          store=CheckpointStore(store_dir),
                          chaos=ChaosPlan(kill_after_shards=2)),
                      **kwargs)
        resumed = run_study(n_jobs=2,
                            resilience=ResilienceConfig(
                                store=CheckpointStore(store_dir),
                                resume=True),
                            **kwargs)
        for year in (2013, 2014, 2015):
            assert_datasets_identical(baseline.dataset(year),
                                      resumed.dataset(year))
        checks = ["t1_panel_shrinks", "t1_lte_share", "t3_median_all"]
        base_json = score_fidelity(AnalysisContext(baseline), checks=checks,
                                   scale=0.004, seed=11).to_json()
        resumed_json = score_fidelity(AnalysisContext(resumed),
                                      checks=checks,
                                      scale=0.004, seed=11).to_json()
        assert base_json == resumed_json


# ---------------------------------------------------------------------------
# Graceful degradation (--partial-results)
# ---------------------------------------------------------------------------

class TestPartialResults:
    def _poisoned(self, tmp_path, config, shard_index):
        return ResilienceConfig(
            policy=RetryPolicy(max_attempts=2, backoff_base_s=0.01),
            partial=True,
            chaos=ChaosPlan(
                crash_units=(f"{config.year}:{shard_index}",),
                crash_attempts=99, state_dir=tmp_path,
            ),
        )

    def test_dropped_shard_accounted_and_roster_kept(self, tmp_path):
        config = _small_config(2014)
        baseline = run_campaign(config, n_jobs=2)
        result = run_campaign(config, n_jobs=2,
                              resilience=self._poisoned(tmp_path, config, 0))
        assert result.losses is not None
        assert result.losses.dropped_shards == (0,)
        assert 0.0 < result.losses.device_completeness < 1.0
        # Dropped devices keep their roster entries (dense id space).
        assert result.dataset.n_devices == baseline.dataset.n_devices
        assert result.dataset.devices == baseline.dataset.devices
        assert result.resilience.dropped_shards == 1
        # Surviving shards' records are untouched.
        assert len(result.dataset.traffic) < len(baseline.dataset.traffic)

    def test_all_shards_dropped_is_an_error(self, tmp_path):
        config = _small_config(2014)
        res = ResilienceConfig(
            policy=RetryPolicy(max_attempts=1, backoff_base_s=0.0),
            partial=True,
            chaos=ChaosPlan(crash_rate=1.0, crash_attempts=99,
                            state_dir=tmp_path),
        )
        with pytest.raises(EngineError, match="lost every shard"):
            run_campaign(config, n_jobs=2, resilience=res)

    def test_strict_mode_missing_shard_still_rejected(self):
        config = _small_config()
        plan = plan_campaign(config, 2)
        outputs = [simulate_one(plan, 0), None]
        with pytest.raises(EngineError, match="shard outputs"):
            merge_campaign(plan, outputs)

    def test_missing_shards_helper(self):
        config = _small_config()
        plan = plan_campaign(config, 2)
        outputs = [None, simulate_one(plan, 1)]
        assert missing_shards(outputs, plan.shard_plan) == (0,)
        assert missing_shards([], plan.shard_plan) == (0, 1)

    def test_fidelity_skips_instead_of_crashing_on_partial(self, tmp_path,
                                                           monkeypatch):
        from repro.analysis.context import AnalysisContext
        from repro.obs import fidelity as fidelity_mod

        config = _small_config(2013)
        partial = run_campaign(config, n_jobs=2,
                               resilience=self._poisoned(tmp_path, config, 0))

        class _FakeStudy:
            campaigns = {2013: partial}

            def dataset(self, year):
                return partial.dataset

        ctx = AnalysisContext(_FakeStudy())
        assert fidelity_mod._context_is_partial(ctx)

        def explode(_ctx):
            raise RuntimeError("hole in the data")

        monkeypatch.setitem(fidelity_mod._EXTRACTORS, "t1_panel_shrinks",
                            explode)
        report = fidelity_mod.score_fidelity(ctx,
                                             checks=["t1_panel_shrinks"])
        assert report.records[0].verdict == "skip"
        # A complete context still surfaces the bug instead of hiding it.
        full = AnalysisContext(run_campaign(config, n_jobs=1).dataset)
        with pytest.raises(RuntimeError):
            fidelity_mod.score_fidelity(full, checks=["t1_panel_shrinks"])


def simulate_one(plan, shard_index):
    from repro.simulation.campaign import simulate_shard

    return simulate_shard(plan.work[shard_index])


# ---------------------------------------------------------------------------
# Observability surfaces
# ---------------------------------------------------------------------------

class TestObservability:
    def _report(self):
        return ResilienceReport(
            shard_attempts=[{"year": 2013, "shard": 0, "unit": 0,
                             "attempts": 2, "outcome": "retried",
                             "failures": []}],
            retries=1, fallbacks=0, dropped_shards=0,
            failures_by_kind={"crash": 1},
            checkpoint_saved=2, checkpoint_hits=1, checkpoint_corrupt=0,
        )

    def test_metrics_ingest_resilience(self):
        registry = MetricsRegistry()
        registry.ingest_resilience(self._report())
        counters = registry.counters
        assert counters["engine.retries"] == 1
        assert counters["engine.failures.crash"] == 1
        assert counters["checkpoint.saved"] == 2
        assert counters["checkpoint.hits"] == 1

    def test_metrics_ingest_losses(self):
        losses = ExecutionLosses(year=2014, n_shards=4, dropped_shards=(1,),
                                 n_devices=16, dropped_devices=4)
        registry = MetricsRegistry()
        registry.ingest_losses(losses)
        assert registry.counters["engine.2014.devices_dropped"] == 4
        assert registry.counters["engine.2014.device_completeness"] == 0.75

    def test_manifest_carries_shard_attempts_and_round_trips(self, tmp_path):
        losses = ExecutionLosses(year=2014, n_shards=4, dropped_shards=(1,),
                                 n_devices=16, dropped_devices=4)
        manifest = build_manifest("simulate", resilience=self._report(),
                                  losses=[losses])
        assert manifest.shard_attempts[0]["outcome"] == "retried"
        assert manifest.losses[0]["dropped_shards"] == [1]
        assert manifest.counters["engine.retries"] == 1
        path = manifest.write(tmp_path / "run_manifest.json")
        assert RunManifest.read(path) == manifest

    def test_losses_describe_and_dict(self):
        losses = ExecutionLosses(year=2013, n_shards=2, dropped_shards=(0,),
                                 n_devices=10, dropped_devices=5)
        assert "dropped 1/2 shards" in losses.describe()
        assert losses.to_dict()["device_completeness"] == 0.5
        assert losses.shard_completeness == 0.5

    def test_report_describe(self):
        text = self._report().describe()
        assert "1 retried" in text
        assert "crash=1" in text

    def test_losses_table_renders(self):
        from repro.reporting.collection import execution_losses_table

        losses = ExecutionLosses(year=2014, n_shards=4, dropped_shards=(1,),
                                 n_devices=16, dropped_devices=4)
        text = execution_losses_table([losses]).render()
        assert "2014" in text and "1/4" in text and "75.0%" in text


# ---------------------------------------------------------------------------
# CLI flow
# ---------------------------------------------------------------------------

class TestCli:
    def test_kill_resume_flow(self, tmp_path, capsys):
        from repro.cli import main
        from repro.traces.io import load_dataset

        base = tmp_path / "base"
        out = tmp_path / "out"
        ck = tmp_path / "ck"
        common = ["simulate", "--scale", "0.004", "--seed", "11",
                  "--jobs", "2"]
        assert main(common + ["--out", str(base)]) == 0

        rc = main(common + ["--out", str(out), "--checkpoint-dir", str(ck),
                            "--chaos-kill-after", "2"])
        assert rc == 3
        assert "interrupted" in capsys.readouterr().err

        rc = main(common + ["--out", str(out), "--checkpoint-dir", str(ck),
                            "--resume", "--telemetry",
                            "--manifest", str(tmp_path / "m.json")])
        assert rc == 0
        manifest = json.loads((tmp_path / "m.json").read_text())
        assert manifest["counters"]["checkpoint.hits"] >= 2
        for year in (2013, 2014, 2015):
            assert_datasets_identical(
                load_dataset(base / f"campaign{year}"),
                load_dataset(out / f"campaign{year}"),
            )

    def test_resume_mismatch_exits_2(self, tmp_path, capsys):
        from repro.cli import main

        ck = tmp_path / "ck"
        common = ["simulate", "--scale", "0.004", "--jobs", "2",
                  "--out", str(tmp_path / "out"),
                  "--checkpoint-dir", str(ck)]
        assert main(common + ["--seed", "11"]) == 0
        rc = main(common + ["--seed", "12", "--resume"])
        assert rc == 2
        assert "different run" in capsys.readouterr().err

    def test_resume_without_checkpoint_dir_exits_2(self, tmp_path, capsys):
        from repro.cli import main

        rc = main(["simulate", "--scale", "0.004",
                   "--out", str(tmp_path / "out"), "--resume"])
        assert rc == 2
        assert "--checkpoint-dir" in capsys.readouterr().err

    def test_partial_results_reports_losses(self, tmp_path, capsys):
        from repro.cli import main

        rc = main(["simulate", "--scale", "0.004", "--seed", "11",
                   "--jobs", "2", "--out", str(tmp_path / "out"),
                   "--partial-results", "--max-attempts", "2",
                   "--retry-backoff-s", "0.01",
                   "--chaos-crash-rate", "1.0",
                   "--chaos-crash-attempts", "99",
                   "--chaos-state-dir", str(tmp_path / "chaos")])
        # Every shard of every year crashes forever; the first fully-lost
        # campaign aborts the run with the explicit "lost every shard"
        # EngineError (exit 2) — losing only SOME shards would instead
        # degrade gracefully (covered above).
        assert rc == 2
        assert "lost every shard" in capsys.readouterr().err
