"""Unit tests for the density grid."""

import numpy as np
import pytest

from repro.errors import DatasetError
from repro.geo.coords import Coordinate, cell_center
from repro.geo.grid import DensityGrid


def test_empty_grid():
    grid = DensityGrid()
    assert len(grid) == 0
    assert grid.max_count() == 0
    array, origin = grid.to_array()
    assert array.shape == (0, 0)
    assert origin == (0, 0)


def test_add_counts_distinct_items():
    grid = DensityGrid()
    c = Coordinate(35.68, 139.77)
    grid.add(c, "ap1")
    grid.add(c, "ap2")
    grid.add(c, "ap1")  # duplicate: idempotent
    assert grid.max_count() == 2
    assert len(grid) == 1


def test_items_in_different_cells(rng):
    grid = DensityGrid()
    grid.add(cell_center((0, 0)), "a")
    grid.add(cell_center((3, 3)), "b")
    assert len(grid) == 2
    assert grid.count((0, 0)) == 1
    assert grid.count((3, 3)) == 1
    assert grid.count((9, 9)) == 0


def test_n_cells_with_at_least():
    grid = DensityGrid()
    for i in range(5):
        grid.add(cell_center((0, 0)), f"a{i}")
    grid.add(cell_center((1, 0)), "b")
    assert grid.n_cells_with_at_least(1) == 2
    assert grid.n_cells_with_at_least(2) == 1
    assert grid.n_cells_with_at_least(6) == 0


def test_n_cells_with_at_least_rejects_zero():
    with pytest.raises(DatasetError):
        DensityGrid().n_cells_with_at_least(0)


def test_to_array_layout():
    grid = DensityGrid()
    grid.add(cell_center((2, 1)), "a")
    grid.add(cell_center((2, 1)), "b")
    grid.add(cell_center((4, 3)), "c")
    array, origin = grid.to_array()
    assert origin == (2, 1)
    assert array.shape == (3, 3)
    assert array[0, 0] == 2  # cell (2, 1)
    assert array[2, 2] == 1  # cell (4, 3)
    assert array.sum() == 3


def test_cells_iteration_deterministic():
    grid = DensityGrid()
    grid.add(cell_center((1, 5)), "a")
    grid.add(cell_center((0, 0)), "b")
    grid.add(cell_center((2, 0)), "c")
    indexes = [cell.index for cell in grid.cells()]
    assert indexes == [(0, 0), (2, 0), (1, 5)]  # sorted by (row, col)


def test_same_item_in_two_cells_counts_twice():
    grid = DensityGrid()
    grid.add(cell_center((0, 0)), "ap")
    grid.add(cell_center((1, 0)), "ap")
    assert grid.n_cells_with_at_least(1) == 2
