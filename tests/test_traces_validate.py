"""Unit tests for dataset validation."""

import numpy as np
import pytest

from repro.errors import SchemaError
from repro.traces.dataset import CampaignDataset
from repro.traces.validate import validate_dataset
from tests.helpers import add_ap, add_association_span, add_daily_traffic, make_builder


def _valid_dataset():
    builder = make_builder(n_devices=2, n_days=2)
    add_ap(builder, 0, "home-x")
    add_daily_traffic(builder, 0, 0, cell_rx_mb=5, wifi_rx_mb=5)
    add_association_span(builder, 0, 0, 5, 10)
    builder.extend_geo(device=[0], t=[0], col=[0], row=[0])
    builder.extend_scans(device=[0], t=[0], n24_all=[3], n24_strong=[1],
                         n5_all=[0], n5_strong=[0])
    return builder.build()


def test_valid_dataset_summary():
    summary = validate_dataset(_valid_dataset())
    assert summary.n_devices == 2
    assert summary.n_aps == 1
    assert summary.rows["traffic"] == 2
    assert summary.rows["wifi"] == 5


def test_missing_ap_in_directory_detected():
    builder = make_builder(n_devices=1, n_days=1)
    add_association_span(builder, 0, 42, 0, 3)  # AP 42 never registered
    dataset = builder.build()
    with pytest.raises(SchemaError, match="missing from the directory"):
        validate_dataset(dataset)


def test_negative_bytes_detected():
    dataset = _valid_dataset()
    dataset.traffic.columns["rx"][0] = -5.0
    with pytest.raises(SchemaError, match="negative"):
        validate_dataset(dataset)


def test_bad_state_code_detected():
    dataset = _valid_dataset()
    dataset.wifi.columns["state"][0] = 9
    with pytest.raises(SchemaError, match="state"):
        validate_dataset(dataset)


def test_strong_exceeds_total_detected():
    dataset = _valid_dataset()
    dataset.scans.columns["n24_strong"][0] = 99
    with pytest.raises(SchemaError, match="strong"):
        validate_dataset(dataset)


def test_simulated_dataset_validates(study):
    for year in study.years:
        summary = validate_dataset(study.dataset(year))
        assert summary.rows["traffic"] > 0
        assert summary.rows["wifi"] > 0
        assert summary.rows["geo"] > 0
