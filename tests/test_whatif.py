"""Tests for the counterfactual (what-if) engine."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.simulation.study import default_campaign_config
from repro.whatif import (
    Scenario,
    ScenarioMetrics,
    compare,
    enroll_everyone,
    give_everyone_home_wifi,
    scale_public_deployment,
    set_cap,
)

SCALE = 0.035


class TestTransforms:
    def test_scale_public_deployment(self):
        config = default_campaign_config(2015, scale=0.1)
        bigger = scale_public_deployment(2.0)(config)
        assert bigger.deployment.public.n_aps == 2 * config.deployment.public.n_aps
        assert bigger.params.scan_scale == pytest.approx(
            2.0 * config.params.scan_scale
        )
        # Original config untouched (transforms are pure).
        assert config.deployment.public.n_aps != bigger.deployment.public.n_aps

    def test_scale_public_rejects_nonpositive(self):
        with pytest.raises(ConfigurationError):
            scale_public_deployment(0.0)

    def test_enroll_everyone(self):
        config = default_campaign_config(2013, scale=0.1)
        enrolled = enroll_everyone()(config)
        assert enrolled.recruitment.public_enrolled_share == 1.0

    def test_set_cap_disable(self):
        config = default_campaign_config(2014, scale=0.1)
        uncapped = set_cap(None)(config)
        assert uncapped.params.cap_policy.threshold_bytes > 1e12
        assert uncapped.params.cap_demand_response == 1.0

    def test_set_cap_tighten(self):
        config = default_campaign_config(2014, scale=0.1)
        tight = set_cap(0.5, limit_kbps=64.0)(config)
        assert tight.params.cap_policy.threshold_bytes == pytest.approx(0.5e9)
        assert tight.params.cap_policy.limit_bps == pytest.approx(64_000.0)

    def test_give_everyone_home_wifi(self):
        config = default_campaign_config(2013, scale=0.1)
        assert give_everyone_home_wifi()(config).recruitment.home_ap_share == 1.0


class TestCompare:
    def test_home_wifi_for_all_boosts_offload(self):
        # Seed chosen so the offload signal clears the threshold under both
        # kernels at this tiny panel scale; across seeds the delta
        # distribution is noisy enough that some realizations go negative.
        result = compare(
            2013, Scenario("home wifi for all", give_everyone_home_wifi()),
            scale=SCALE, seed=4,
        )
        assert result.delta("wifi_share") > 0.03
        assert result.delta("cellular_intensive") < 0.0

    def test_enrollment_increases_public_usage(self):
        result = compare(
            2015, Scenario("enroll everyone", enroll_everyone()),
            scale=SCALE, seed=5,
        )
        assert result.delta("public_volume_share") >= 0.0

    def test_render(self):
        result = compare(
            2013, Scenario("noop", lambda c: c), scale=SCALE, seed=5,
        )
        text = result.render()
        assert "What-if (2013): noop" in text
        assert "wifi_share" in text
        # A no-op scenario reproduces the baseline exactly (same seed).
        assert result.delta("wifi_share") == pytest.approx(0.0)
        assert result.delta("median_wifi_mb") == pytest.approx(0.0)

    def test_year_change_rejected(self):
        import dataclasses

        def bad(config):
            recruitment = dataclasses.replace(config.recruitment, year=2014)
            deployment = dataclasses.replace(config.deployment, year=2014)
            return dataclasses.replace(
                config, year=2014, recruitment=recruitment, deployment=deployment
            )

        with pytest.raises(ConfigurationError):
            compare(2013, Scenario("bad", bad), scale=SCALE)


class TestMetrics:
    def test_measure_fields(self, dataset2015):
        metrics = ScenarioMetrics.measure(dataset2015)
        assert 0 < metrics.wifi_share < 1
        assert metrics.median_wifi_mb > 0
        assert 0 <= metrics.cellular_intensive < 1
        assert 0 <= metrics.public_volume_share < 0.5
