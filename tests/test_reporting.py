"""Unit tests for tables, figures, context data, and the experiment registry."""

import numpy as np
import pytest

from repro.errors import AnalysisError, ReproError
from repro.reporting.context import (
    cellular_share_of_broadband,
    national_traffic_growth,
)
from repro.reporting.experiments import (
    EXPERIMENTS,
    AnalysisCache,
    list_experiments,
    run_experiment,
)
from repro.reporting.figures import Figure, FigureSeries, render_ascii_series
from repro.reporting.tables import Table


class TestTable:
    def test_render_alignment(self):
        table = Table("T", ["a", "bb"], [])
        table.add_row(1, 2.5)
        table.add_row("long-cell", 0.123)
        text = table.render()
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "long-cell" in text
        assert "0.123" in text

    def test_row_width_checked(self):
        table = Table("T", ["a", "b"])
        with pytest.raises(ReproError):
            table.add_row(1)

    def test_nan_rendered_na(self):
        table = Table("T", ["x"])
        table.add_row(float("nan"))
        assert "NA" in table.render()


class TestFigure:
    def test_series_management(self):
        figure = Figure("F", "caption")
        figure.add("s1", [1, 2, 3], [4, 5, 6])
        assert figure.get("s1").y.tolist() == [4.0, 5.0, 6.0]
        with pytest.raises(ReproError):
            figure.get("missing")

    def test_length_mismatch(self):
        with pytest.raises(ReproError):
            FigureSeries("s", np.array([1.0]), np.array([1.0, 2.0]))

    def test_ascii_rendering(self):
        ramp = render_ascii_series(np.arange(100.0), width=20)
        assert len(ramp) == 20
        assert ramp[0] != ramp[-1]
        assert render_ascii_series([]) == "(no data)"
        assert render_ascii_series([5.0, 5.0]) == "▁▁"

    def test_figure_render(self):
        figure = Figure("Figure 2", "test")
        figure.add("wifi", np.arange(10), np.arange(10.0))
        text = figure.render()
        assert "Figure 2" in text and "wifi" in text


class TestContext:
    def test_ten_years(self):
        national = national_traffic_growth()
        assert sorted(national) == list(range(2006, 2016))

    def test_monotone_growth(self):
        national = national_traffic_growth()
        rbb = [national[y].rbb_download_gbps for y in sorted(national)]
        cell = [national[y].cellular_download_gbps for y in sorted(national)]
        assert rbb == sorted(rbb)
        assert cell == sorted(cell)

    def test_cellular_share_about_20pct_2014(self):
        # Figure 1 / §4.1: cellular is ~20% of broadband by end of 2014.
        assert cellular_share_of_broadband(2014) == pytest.approx(0.20, abs=0.02)

    def test_unknown_year(self):
        with pytest.raises(AnalysisError):
            cellular_share_of_broadband(1999)


class TestExperimentRegistry:
    def test_all_paper_artifacts_registered(self):
        ids = set(EXPERIMENTS)
        expected = (
            {f"table{i}" for i in range(1, 10)}
            | {f"fig{i:02d}" for i in range(1, 20)}
            | {"sec35", "sec41"}
        )
        assert ids == expected

    def test_listing_sorted(self):
        ids = [e.experiment_id for e in list_experiments()]
        assert ids == sorted(ids)

    def test_unknown_experiment(self, cache):
        with pytest.raises(AnalysisError):
            run_experiment("fig99", cache)

    def test_cache_requires_run_study(self):
        from repro.simulation.study import Study
        with pytest.raises(AnalysisError):
            AnalysisCache(Study())

    def test_cache_memoizes(self, cache):
        assert cache.classification(2015) is cache.classification(2015)
        assert cache.clean(2015) is cache.clean(2015)
        assert cache.user_classes(2015) is cache.user_classes(2015)


@pytest.mark.parametrize("experiment_id", sorted(EXPERIMENTS))
def test_every_experiment_runs_and_renders(cache, experiment_id):
    result = run_experiment(experiment_id, cache)
    text = result.render() if hasattr(result, "render") else str(result)
    assert isinstance(text, str) and len(text) > 10
