"""Sharded execution engine tests.

The tentpole invariant lives here: ``n_jobs=1`` and ``n_jobs=k`` must
produce bit-for-bit identical ``CampaignDataset``s and equal
``CollectionReport``s for any valid ``FaultPlan`` — shard membership,
worker count, and completion order can never change results.
"""

import dataclasses
import multiprocessing
import time

import numpy as np
import pytest

from repro.collection.faults import FaultPlan, OutageWindow
from repro.engine import (
    ParallelExecutor,
    SerialExecutor,
    ShardPlanner,
    make_executor,
    resolve_jobs,
)
from repro.engine.merge import merge_reports, ordered_outputs
from repro.errors import ConfigurationError, EngineError
from repro.simulation.campaign import (
    merge_campaign,
    plan_campaign,
    run_campaign,
    simulate_shard,
)
from repro.simulation.study import default_campaign_config, run_study

TABLES = ("traffic", "wifi", "geo", "scans", "sightings", "apps",
          "updates", "battery")


def _small_config(year=2013, **kwargs):
    config = default_campaign_config(year, scale=0.004, seed=11, **kwargs)
    return dataclasses.replace(config, n_days=4)


def assert_datasets_identical(expected, actual):
    """Bit-for-bit dataset comparison: values, dtypes, row order, metadata."""
    for name in TABLES:
        left = getattr(expected, name)
        right = getattr(actual, name)
        assert set(left.columns) == set(right.columns), name
        for colname, col in left.columns.items():
            got = right.columns[colname]
            assert got.dtype == col.dtype, (name, colname)
            np.testing.assert_array_equal(got, col, err_msg=f"{name}.{colname}")
    assert actual.devices == expected.devices
    assert actual.ap_directory == expected.ap_directory
    assert actual.year == expected.year


# ---------------------------------------------------------------------------
# Shard planning
# ---------------------------------------------------------------------------

class TestShardPlanner:
    def test_partition_covers_panel_in_order(self):
        plan = ShardPlanner().plan(range(10), 3)
        assert plan.n_shards == 3
        assert plan.device_order() == tuple(range(10))
        sizes = [s.n_devices for s in plan.shards]
        assert sum(sizes) == 10
        assert max(sizes) - min(sizes) <= 1

    def test_deterministic(self):
        a = ShardPlanner().plan(range(100), 7)
        b = ShardPlanner().plan(range(100), 7)
        assert a == b

    def test_more_shards_than_devices(self):
        plan = ShardPlanner().plan(range(3), 8)
        assert plan.n_shards == 3
        assert all(s.n_devices == 1 for s in plan.shards)

    def test_empty_panel(self):
        plan = ShardPlanner().plan([], 4)
        assert plan.n_shards == 0 and plan.n_devices == 0

    def test_max_shard_devices_caps_shard_size(self):
        plan = ShardPlanner(max_shard_devices=3).plan(range(10), 2)
        assert all(s.n_devices <= 3 for s in plan.shards)
        assert plan.device_order() == tuple(range(10))

    def test_rejects_unordered_ids(self):
        with pytest.raises(ConfigurationError):
            ShardPlanner().plan([3, 1, 2], 2)
        with pytest.raises(ConfigurationError):
            ShardPlanner().plan(range(5), 0)


# ---------------------------------------------------------------------------
# Executors
# ---------------------------------------------------------------------------

def _double(x):
    return x * 2


def _fails_in_worker(x):
    # Raises only inside a pool worker, so the serial fallback succeeds.
    if multiprocessing.parent_process() is not None:
        raise RuntimeError("worker crash")
    return x * 2


def _slow_in_worker(x):
    if multiprocessing.parent_process() is not None:
        time.sleep(2.0)
    return x


def _always_fails(x):
    raise ValueError("poison unit")


class TestExecutors:
    def test_serial_runs_in_order(self):
        executor = SerialExecutor()
        assert executor.run(_double, [1, 2, 3]) == [2, 4, 6]
        assert executor.fallbacks == 0

    def test_parallel_matches_serial(self):
        with ParallelExecutor(2) as executor:
            assert executor.run(_double, list(range(8))) == \
                [x * 2 for x in range(8)]
            assert executor.fallbacks == 0

    def test_parallel_empty_units(self):
        with ParallelExecutor(2) as executor:
            assert executor.run(_double, []) == []

    def test_worker_failure_falls_back_to_serial(self):
        with ParallelExecutor(2) as executor:
            assert executor.run(_fails_in_worker, [1, 2, 3]) == [2, 4, 6]
            assert executor.fallbacks == 3

    def test_shard_timeout_falls_back_to_serial(self):
        with ParallelExecutor(2, shard_timeout_s=0.25) as executor:
            assert executor.run(_slow_in_worker, [7]) == [7]
            assert executor.fallbacks == 1

    def test_fallback_failure_propagates(self):
        with ParallelExecutor(2) as executor:
            with pytest.raises(ValueError, match="poison"):
                executor.run(_always_fails, [1])

    def test_make_executor(self):
        assert isinstance(make_executor(1), SerialExecutor)
        parallel = make_executor(3)
        assert isinstance(parallel, ParallelExecutor)
        assert parallel.n_jobs == 3
        parallel.close()

    def test_parallel_validates_args(self):
        with pytest.raises(ConfigurationError):
            ParallelExecutor(1)
        with pytest.raises(ConfigurationError):
            ParallelExecutor(2, shard_timeout_s=0.0)


class TestResolveJobs:
    def test_default_is_serial(self, monkeypatch):
        monkeypatch.delenv("REPRO_JOBS", raising=False)
        assert resolve_jobs() == 1

    def test_explicit_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "8")
        assert resolve_jobs(3) == 3

    def test_env_var_consulted(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "5")
        assert resolve_jobs() == 5

    def test_auto_uses_cpu_count(self, monkeypatch):
        monkeypatch.delenv("REPRO_JOBS", raising=False)
        assert resolve_jobs(0) >= 1
        assert resolve_jobs(None, default=0) >= 1

    def test_bad_env_var_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "many")
        with pytest.raises(ConfigurationError):
            resolve_jobs()


# ---------------------------------------------------------------------------
# Campaign-level determinism (the hard guarantee)
# ---------------------------------------------------------------------------

_FAULTED_PLAN = FaultPlan(
    upload_failure_p=0.3,
    upload_failure_p_3g_extra=0.2,
    outages=(OutageWindow(50, 150),),
    dropout_p=0.4,
    duplicate_p=0.1,
    max_cache_batches=32,
    seed=3,
)


class TestEngineEquivalence:
    @pytest.fixture(scope="class")
    def serial(self):
        return run_campaign(_small_config(), n_jobs=1)

    @pytest.mark.parametrize("n_jobs", [2, 4])
    def test_zero_fault_bit_identical(self, serial, n_jobs):
        parallel = run_campaign(_small_config(), n_jobs=n_jobs)
        assert_datasets_identical(serial.dataset, parallel.dataset)
        assert parallel.collection == serial.collection
        assert parallel.execution.executor == "parallel"
        assert parallel.execution.n_shards > 1

    @pytest.mark.parametrize("n_jobs", [2, 4])
    def test_nonzero_faults_bit_identical(self, n_jobs):
        serial = run_campaign(_small_config(faults=_FAULTED_PLAN), n_jobs=1)
        parallel = run_campaign(_small_config(faults=_FAULTED_PLAN),
                                n_jobs=n_jobs)
        assert_datasets_identical(serial.dataset, parallel.dataset)
        assert parallel.collection == serial.collection
        # The plan really does lose data, so this is a nontrivial guarantee.
        assert serial.collection.totals()["delivered"] < \
            serial.collection.totals()["ticks"]

    def test_rerun_is_deterministic(self, serial):
        again = run_campaign(_small_config(), n_jobs=1)
        assert_datasets_identical(serial.dataset, again.dataset)
        assert again.collection == serial.collection

    def test_update_year_parallel_identical(self):
        # 2015 carries the stateful iOS-update model; decisions must be
        # per-device so shard placement cannot change them.
        config = default_campaign_config(2015, scale=0.008, seed=11)
        serial = run_campaign(config, n_jobs=1)
        parallel = run_campaign(config, n_jobs=3)
        assert_datasets_identical(serial.dataset, parallel.dataset)
        assert len(serial.dataset.updates) > 0

    def test_direct_build_parallel_matches_pipeline(self, serial):
        direct = run_campaign(
            dataclasses.replace(_small_config(), direct_build=True), n_jobs=2
        )
        assert_datasets_identical(serial.dataset, direct.dataset)
        assert direct.collection is None

    def test_study_fans_years_across_one_executor(self, serial):
        study1 = run_study(scale=0.004, seed=11, n_jobs=1)
        study2 = run_study(scale=0.004, seed=11, n_jobs=2)
        for year in study1.years:
            assert_datasets_identical(study1.dataset(year),
                                      study2.dataset(year))
            assert study1.campaigns[year].collection == \
                study2.campaigns[year].collection
            assert study1.surveys[year] == study2.surveys[year]
        assert study2.execution.executor == "parallel"
        # All years' shards went through the shared executor.
        assert study2.execution.n_shards == sum(
            study2.campaigns[y].execution.n_shards for y in study2.years
        )


# ---------------------------------------------------------------------------
# Merge layer
# ---------------------------------------------------------------------------

class TestMerge:
    @pytest.fixture(scope="class")
    def plan_and_outputs(self):
        plan = plan_campaign(_small_config(), n_jobs=3)
        outputs = [simulate_shard(work) for work in plan.work]
        return plan, outputs

    def test_merge_is_order_insensitive(self, plan_and_outputs):
        plan, outputs = plan_and_outputs
        assert len(outputs) > 1
        canonical = merge_campaign(plan, outputs)
        shuffled = merge_campaign(plan, list(reversed(outputs)))
        assert_datasets_identical(canonical.dataset, shuffled.dataset)
        assert shuffled.collection == canonical.collection

    def test_report_stats_in_canonical_device_order(self, plan_and_outputs):
        plan, outputs = plan_and_outputs
        report = merge_reports(list(reversed(outputs)), plan.shard_plan,
                               plan.config.axis.n_slots)
        device_ids = [stats.device_id for stats in report.devices]
        assert device_ids == list(plan.shard_plan.device_order())

    def test_missing_shard_rejected(self, plan_and_outputs):
        plan, outputs = plan_and_outputs
        with pytest.raises(EngineError, match="shard outputs"):
            merge_campaign(plan, outputs[:-1])

    def test_duplicate_shard_rejected(self, plan_and_outputs):
        plan, outputs = plan_and_outputs
        with pytest.raises(EngineError):
            merge_campaign(plan, [outputs[0]] + list(outputs[:-1]))

    def test_device_coverage_mismatch_rejected(self, plan_and_outputs):
        plan, outputs = plan_and_outputs
        bad = dataclasses.replace(
            outputs[0],
            device_ids=tuple(d + 1000 for d in outputs[0].device_ids),
        )
        with pytest.raises(EngineError, match="covered devices"):
            ordered_outputs([bad] + list(outputs[1:]), plan.shard_plan)


# ---------------------------------------------------------------------------
# Engine path through the CLI
# ---------------------------------------------------------------------------

def test_cli_jobs_flag_surfaces_executor(tmp_path, capsys):
    from repro.cli import main

    out_dir = tmp_path / "data"
    assert main(["simulate", "--scale", "0.004", "--seed", "3",
                 "--out", str(out_dir), "--jobs", "2"]) == 0
    out = capsys.readouterr().out
    assert "executor: parallel (2 jobs" in out
    assert "shards)" in out
    assert "2 shards" in out  # per-campaign shard counts ride the save lines


def test_cli_jobs_serial(tmp_path, capsys):
    from repro.cli import main

    out_dir = tmp_path / "data"
    assert main(["simulate", "--scale", "0.004", "--seed", "3",
                 "--out", str(out_dir), "--jobs", "1"]) == 0
    out = capsys.readouterr().out
    assert "executor: serial (1 job" in out
