"""Property test: columnar bulk ingest == per-record ingest, bit for bit.

The batch kernel hands whole-device column arrays to
``DatasetBuilder.extend_*`` (direct build) or
``CollectionServer.receive_bulk`` (zero-fault collection), while the
legacy path feeds the same data one record dataclass at a time through
``DatasetBuilder.add_*``. The builder's stable ``(device, t)`` lexsort
makes all three ingest orders converge on the same built dataset, so the
property is exact equality — not statistical agreement — for *any* batch,
including the awkward ones (devices with no records at all, all-zero
traffic rows, tethering rows that per-record ingest drops and columnar
callers must pre-filter).

Fuzzed with hypothesis over a small panel; example counts are kept modest
because each example builds three datasets.
"""

from datetime import date

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.collection.server import CollectionServer
from repro.net.cellular import CellularTechnology
from repro.timeutil import TimeAxis
from repro.traces.dataset import DatasetBuilder
from repro.traces.records import (
    AppTrafficRecord,
    BatterySample,
    DeviceInfo,
    DeviceOS,
    GeoSample,
    IfaceKind,
    ScanSighting,
    ScanSummary,
    TrafficSample,
    UpdateEvent,
    WifiObservation,
    WifiStateCode,
)

from tests.test_engine import assert_datasets_identical

N_DAYS = 2
N_SLOTS = N_DAYS * 144
YEAR = 2015
START = date(2015, 3, 2)


def _axis():
    return TimeAxis(START, N_DAYS)


def _info(device_id):
    return DeviceInfo(
        device_id=device_id,
        os=DeviceOS.ANDROID if device_id % 2 == 0 else DeviceOS.IOS,
        carrier="docomo",
        technology=CellularTechnology.LTE,
        occupation="office worker",
    )


slots = st.integers(min_value=0, max_value=N_SLOTS - 1)
days = st.integers(min_value=0, max_value=N_DAYS - 1)
volumes = st.one_of(
    st.just(0.0),
    st.floats(min_value=0.0, max_value=1e9, allow_nan=False, width=32),
)


@st.composite
def device_batch(draw):
    """One device's campaign output as per-table row tuples."""
    traffic = draw(st.lists(st.tuples(
        slots,
        st.sampled_from([0, 1, 2]),      # iface
        volumes, volumes,                # rx, tx (both may be zero)
        st.integers(0, 10_000), st.integers(0, 10_000),  # pkts
        st.booleans(),                   # tethering (dropped at ingest)
    ), max_size=6))
    wifi = draw(st.lists(st.tuples(
        slots,
        st.sampled_from([0, 1, 2, 3]),   # WifiStateCode
        st.integers(0, 50),              # ap_id (used when associated)
        st.floats(-90.0, -30.0, width=32),
    ), max_size=6))
    geo = draw(st.lists(
        st.tuples(slots, st.integers(0, 40), st.integers(0, 40)), max_size=6
    ))
    scans = draw(st.lists(st.tuples(
        slots,
        st.integers(0, 8), st.integers(0, 8),   # n24: strong + extra
        st.integers(0, 8), st.integers(0, 8),   # n5: strong + extra
    ), max_size=4))
    sightings = draw(st.lists(st.tuples(
        slots, st.integers(0, 50), st.floats(-90.0, -30.0, width=32)
    ), max_size=4))
    apps = draw(st.lists(st.tuples(
        days,
        st.integers(0, 7),               # category
        st.booleans(),                   # cellular
        st.integers(0, 50),              # ap_id (WiFi rows)
        st.integers(0, 40), st.integers(0, 40),
        volumes, volumes,
    ), max_size=4))
    updates = draw(st.lists(
        st.tuples(slots, st.floats(0.0, 2e9, allow_nan=False)), max_size=2
    ))
    battery = draw(st.lists(st.tuples(
        slots, st.floats(0.0, 100.0, allow_nan=False, width=32), st.booleans()
    ), max_size=6))
    return {
        "traffic": traffic, "wifi": wifi, "geo": geo, "scans": scans,
        "sightings": sightings, "apps": apps, "updates": updates,
        "battery": battery,
    }


def _columns(device_id, batch):
    """The batch as columnar tables, as the kernel would emit it.

    Tethering traffic is pre-filtered: per-record ingest drops it inside
    ``add_traffic``; columnar callers own that filter (the kernel never
    emits tethering rows).
    """
    tables = {}
    rows = [r for r in batch["traffic"] if not r[6]]
    if rows:
        t, iface, rx, tx, rxp, txp, _ = zip(*rows)
        tables["traffic"] = dict(
            device=np.full(len(rows), device_id), t=np.array(t),
            iface=np.array(iface), rx=np.array(rx), tx=np.array(tx),
            rx_pkts=np.array(rxp), tx_pkts=np.array(txp),
        )
    if batch["wifi"]:
        t, state, ap_id, rssi = zip(*batch["wifi"])
        ap = [a if s == 2 else -1 for s, a in zip(state, ap_id)]
        tables["wifi"] = dict(
            device=np.full(len(t), device_id), t=np.array(t),
            state=np.array(state), ap_id=np.array(ap), rssi=np.array(rssi),
        )
    if batch["geo"]:
        t, col, row = zip(*batch["geo"])
        tables["geo"] = dict(
            device=np.full(len(t), device_id), t=np.array(t),
            col=np.array(col), row=np.array(row),
        )
    if batch["scans"]:
        t, s24, e24, s5, e5 = zip(*batch["scans"])
        tables["scans"] = dict(
            device=np.full(len(t), device_id), t=np.array(t),
            n24_all=np.array(s24) + np.array(e24), n24_strong=np.array(s24),
            n5_all=np.array(s5) + np.array(e5), n5_strong=np.array(s5),
        )
    if batch["sightings"]:
        t, ap_id, rssi = zip(*batch["sightings"])
        tables["sightings"] = dict(
            device=np.full(len(t), device_id), t=np.array(t),
            ap_id=np.array(ap_id), rssi=np.array(rssi),
        )
    if batch["apps"]:
        day, cat, cellular, ap_id, col, row, rx, tx = zip(*batch["apps"])
        ap = [a if not c else -1 for c, a in zip(cellular, ap_id)]
        tables["apps"] = dict(
            device=np.full(len(day), device_id), day=np.array(day),
            category=np.array(cat), cellular=np.array(cellular, dtype=int),
            ap_id=np.array(ap), col=np.array(col), row=np.array(row),
            rx=np.array(rx), tx=np.array(tx),
        )
    if batch["updates"]:
        t, nbytes = zip(*batch["updates"])
        tables["updates"] = dict(
            device=np.full(len(t), device_id), t=np.array(t),
            bytes=np.array(nbytes),
        )
    if batch["battery"]:
        t, level, charging = zip(*batch["battery"])
        tables["battery"] = dict(
            device=np.full(len(t), device_id), t=np.array(t),
            level=np.array(level), charging=np.array(charging, dtype=int),
        )
    return tables


def _add_records(builder, device_id, batch):
    """Feed the batch through the per-record ``add_*`` path, in order."""
    for t, iface, rx, tx, rxp, txp, tether in batch["traffic"]:
        builder.add_traffic(TrafficSample(
            device_id, t, IfaceKind(iface), rx, tx,
            rx_pkts=rxp, tx_pkts=txp, tethering=tether,
        ))
    for t, state, ap_id, rssi in batch["wifi"]:
        code = WifiStateCode(state)
        builder.add_wifi(WifiObservation(
            device_id, t, code,
            ap_id=ap_id if code is WifiStateCode.ASSOCIATED else -1,
            rssi_dbm=rssi,
        ))
    for t, col, row in batch["geo"]:
        builder.add_geo(GeoSample(device_id, t, col, row))
    for t, s24, e24, s5, e5 in batch["scans"]:
        builder.add_scan(ScanSummary(device_id, t, s24 + e24, s24, s5 + e5, s5))
    for t, ap_id, rssi in batch["sightings"]:
        builder.add_sighting(ScanSighting(device_id, t, ap_id, rssi))
    for day, cat, cellular, ap_id, col, row, rx, tx in batch["apps"]:
        builder.add_app_traffic(AppTrafficRecord(
            device_id, day, cat, cellular,
            ap_id if not cellular else -1, col, row, rx, tx,
        ))
    for t, nbytes in batch["updates"]:
        builder.add_update(UpdateEvent(device_id, t, nbytes))
    for t, level, charging in batch["battery"]:
        builder.add_battery(BatterySample(device_id, t, level, charging))


@given(st.lists(device_batch(), min_size=1, max_size=3))
@settings(max_examples=30, deadline=None)
def test_bulk_ingest_matches_per_record_ingest(batches):
    infos = [_info(device_id) for device_id in range(len(batches))]

    by_record = DatasetBuilder(YEAR, _axis())
    by_chunk = DatasetBuilder(YEAR, _axis())
    server = CollectionServer(YEAR, _axis())
    for info in infos:
        by_record.add_device(info)
        by_chunk.add_device(info)
        server.register_device(info)

    for info, batch in zip(infos, batches):
        _add_records(by_record, info.device_id, batch)
        tables = _columns(info.device_id, batch)
        for name, columns in tables.items():
            getattr(by_chunk, f"extend_{name}")(**columns)
        server.receive_bulk(info.device_id, tables, N_SLOTS)

    expected = by_record.build()
    assert_datasets_identical(expected, by_chunk.build())
    assert_datasets_identical(expected, server.build_dataset())


@given(device_batch())
@settings(max_examples=10, deadline=None)
def test_single_device_panel(batch):
    """The one-device panel (DeviceSimulator's shape) holds too."""
    info = _info(0)
    by_record = DatasetBuilder(YEAR, _axis())
    server = CollectionServer(YEAR, _axis())
    by_record.add_device(info)
    server.register_device(info)
    _add_records(by_record, 0, batch)
    tables = _columns(0, batch)
    server.receive_bulk(0, tables, N_SLOTS)
    assert_datasets_identical(by_record.build(), server.build_dataset())


def test_empty_batch_is_zero_ticks():
    """A device that reported nothing contributes no rows and no ticks."""
    info = _info(0)
    server = CollectionServer(YEAR, _axis())
    server.register_device(info)
    assert server.receive_bulk(0, {}, N_SLOTS) == 0
    assert server.batches_received == 0
    dataset = server.build_dataset()
    for name in ("traffic", "wifi", "geo", "scans", "sightings", "apps",
                 "updates", "battery"):
        assert len(getattr(dataset, name)) == 0


def test_all_zero_traffic_rows_are_kept():
    """Zero-byte counter rows survive both ingest paths identically."""
    info = _info(0)
    by_record = DatasetBuilder(YEAR, _axis())
    server = CollectionServer(YEAR, _axis())
    by_record.add_device(info)
    server.register_device(info)
    batch = {
        "traffic": [(5, 2, 0.0, 0.0, 0, 0, False),
                    (6, 0, 0.0, 0.0, 0, 0, False)],
        "wifi": [], "geo": [], "scans": [], "sightings": [], "apps": [],
        "updates": [], "battery": [],
    }
    _add_records(by_record, 0, batch)
    ticks = server.receive_bulk(0, _columns(0, batch), N_SLOTS)
    assert ticks == 2
    assert_datasets_identical(by_record.build(), server.build_dataset())
