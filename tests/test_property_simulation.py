"""Property-based tests over the simulation-side models."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.demand import DemandModel
from repro.apps.updates import UpdatePolicy
from repro.mobility.schedule import LocationState, ScheduleGenerator
from repro.net.identifiers import bssid_prefix, random_bssid, sibling_bssid
from repro.population.demographics import Occupation
from repro.radio.pathloss import PathLossModel


seeds = st.integers(0, 2**31 - 1)


class TestDemandProperties:
    @given(seeds, st.floats(5.0, 500.0))
    @settings(max_examples=40)
    def test_split_conserves_volume(self, seed, rx_mb):
        rng = np.random.default_rng(seed)
        model = DemandModel(1, appetite_median_mb=50.0)
        mix = model.sample_mix(rng)
        rx, tx = rx_mb * 1e6, rx_mb * 2e5
        for on_wifi in (True, False):
            splits = model.split_day(mix, rx, tx, on_wifi, rng)
            assert sum(s[1] for s in splits) == np.float64(rx).item() or (
                abs(sum(s[1] for s in splits) - rx) < 1e-3 * rx
            )
            assert abs(sum(s[2] for s in splits) - tx) < 1e-3 * tx
            assert all(s[1] >= 0 and s[2] >= 0 for s in splits)

    @given(seeds)
    @settings(max_examples=40)
    def test_mix_shares_are_distributions(self, seed):
        rng = np.random.default_rng(seed)
        model = DemandModel(2, appetite_median_mb=50.0)
        mix = model.sample_mix(rng)
        for on_wifi in (True, False):
            shares = mix.context_shares(on_wifi)
            assert shares.sum() == np.float64(1.0) or abs(shares.sum() - 1) < 1e-9
            assert (shares >= 0).all()

    @given(seeds)
    @settings(max_examples=30)
    def test_appetite_positive(self, seed):
        rng = np.random.default_rng(seed)
        model = DemandModel(0, appetite_median_mb=30.0)
        assert model.sample_appetite_bytes(rng) > 0


class TestScheduleProperties:
    occupations = st.sampled_from(list(Occupation))

    @given(occupations, seeds, st.integers(0, 6))
    @settings(max_examples=60)
    def test_schedule_always_valid(self, occupation, seed, weekday):
        rng = np.random.default_rng(seed)
        gen = ScheduleGenerator(occupation, np.random.default_rng(seed + 1))
        day = gen.day(weekday, rng)
        assert len(day) == 144
        valid = {int(s) for s in LocationState}
        assert set(np.unique(day)) <= valid
        # Everyone is home at 4am.
        assert day[24] == int(LocationState.HOME)

    @given(occupations, seeds)
    @settings(max_examples=40)
    def test_home_is_plurality_over_a_week(self, occupation, seed):
        rng = np.random.default_rng(seed)
        gen = ScheduleGenerator(occupation, np.random.default_rng(seed + 1))
        totals = np.zeros(5)
        for weekday in range(7):
            day = gen.day(weekday, rng)
            for code in range(5):
                totals[code] += (day == code).sum()
        assert totals[int(LocationState.HOME)] == totals.max()


class TestUpdatePolicyProperties:
    @given(st.integers(0, 20), st.booleans())
    def test_hazard_in_unit_interval(self, days_since, weekend):
        policy = UpdatePolicy(release_day=0)
        h = policy.hazard(days_since, weekend)
        assert 0.0 <= h <= 1.0

    @given(st.integers(1, 20))
    def test_tail_decays(self, day):
        policy = UpdatePolicy(release_day=0)
        assert policy.hazard(day + 1, False) <= policy.hazard(day, False)


class TestIdentifierProperties:
    @given(seeds)
    @settings(max_examples=50)
    def test_sibling_round_trip(self, seed):
        rng = np.random.default_rng(seed)
        bssid = random_bssid(rng)
        for offset in (-3, -1, 1, 2, 7):
            sibling = sibling_bssid(bssid, offset)
            assert bssid_prefix(sibling) == bssid_prefix(bssid)
            assert sibling_bssid(sibling, -offset) == bssid

    @given(seeds)
    @settings(max_examples=50)
    def test_sibling_zero_is_identity(self, seed):
        rng = np.random.default_rng(seed)
        bssid = random_bssid(rng)
        assert sibling_bssid(bssid, 0) == bssid


class TestPathLossProperties:
    @given(
        st.floats(1.5, 5.0),
        st.floats(1.0, 500.0),
        st.floats(1.0, 500.0),
    )
    def test_monotone_in_distance(self, exponent, d1, d2):
        model = PathLossModel(exponent=exponent)
        lo, hi = sorted((d1, d2))
        assert model.loss_db(lo) <= model.loss_db(hi) + 1e-9

    @given(st.floats(1.5, 5.0), st.floats(1.0, 1000.0))
    def test_loss_nonnegative_and_finite(self, exponent, distance):
        model = PathLossModel(exponent=exponent)
        loss = model.loss_db(distance)
        assert np.isfinite(loss) and loss > 0
