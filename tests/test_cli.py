"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


def test_list_command(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "table1" in out and "fig19" in out and "sec41" in out


def test_analyze_unknown_experiment(capsys):
    assert main(["analyze", "fig99", "--scale", "0.02"]) == 2
    err = capsys.readouterr().err
    assert "unknown experiments" in err


def test_simulate_then_validate_and_analyze(tmp_path, capsys):
    out_dir = tmp_path / "data"
    assert main(["simulate", "--scale", "0.02", "--seed", "3",
                 "--out", str(out_dir)]) == 0
    saved = sorted(p.name for p in out_dir.iterdir())
    assert saved == ["campaign2013", "campaign2014", "campaign2015"]

    assert main(["validate", str(out_dir / "campaign2015")]) == 0
    out = capsys.readouterr().out
    assert "dataset ok" in out

    artifact_dir = tmp_path / "artifacts"
    assert main(["analyze", "table4", "--data", str(out_dir),
                 "--out", str(artifact_dir)]) == 0
    out = capsys.readouterr().out
    assert "Table 4" in out
    assert (artifact_dir / "table4.txt").exists()


def test_analyze_skips_survey_experiments_on_saved_data(tmp_path, capsys):
    out_dir = tmp_path / "data"
    main(["simulate", "--scale", "0.02", "--seed", "3", "--out", str(out_dir)])
    capsys.readouterr()
    assert main(["analyze", "table8", "--data", str(out_dir)]) == 0
    out = capsys.readouterr().out
    assert "skipping survey experiments" in out


def test_analyze_simulates_when_no_data(capsys):
    assert main(["analyze", "fig01", "--scale", "0.02"]) == 0
    out = capsys.readouterr().out
    assert "Figure 1" in out


def test_analyze_on_missing_data_dir(tmp_path, capsys):
    assert main(["analyze", "table1", "--data", str(tmp_path / "void")]) == 2


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_analyze_all_runs_everything(tmp_path, capsys):
    from repro.cli import main
    artifact_dir = tmp_path / "all"
    assert main(["analyze", "all", "--scale", "0.02", "--seed", "3",
                 "--out", str(artifact_dir)]) == 0
    written = {p.stem for p in artifact_dir.glob("*.txt")}
    from repro.reporting.experiments import EXPERIMENTS
    assert written == set(EXPERIMENTS)
