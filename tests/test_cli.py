"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


def test_list_command(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "table1" in out and "fig19" in out and "sec41" in out


def test_analyze_unknown_experiment(capsys):
    assert main(["analyze", "fig99", "--scale", "0.02"]) == 2
    err = capsys.readouterr().err
    assert "unknown experiments" in err
    # The error names the valid id set so the fix is one copy-paste away.
    assert "valid ids" in err and "table1" in err and "fig19" in err


def test_version_flag_exits_zero(capsys):
    from repro import __version__

    assert main(["--version"]) == 0
    assert __version__ in capsys.readouterr().out


def test_missing_command_returns_usage_error(capsys):
    assert main([]) == 2
    assert "usage" in capsys.readouterr().err.lower()


def test_bench_list_exits_zero(capsys):
    assert main(["bench", "--list"]) == 0
    out = capsys.readouterr().out
    for name in ("table1", "fig19", "campaign_serial", "campaign_sharded",
                 "context_cold_sweep", "context_warm_sweep",
                 "collection_faulty_campaign"):
        assert name in out


def test_bench_unknown_name(capsys):
    assert main(["bench", "not_a_benchmark"]) == 2
    err = capsys.readouterr().err
    assert "unknown benchmarks" in err


def test_bench_run_writes_report_and_manifest(tmp_path, capsys):
    out = tmp_path / "BENCH_all.json"
    manifest = tmp_path / "run_manifest.json"
    assert main(["bench", "table1", "--scale", "0.02", "--seed", "3",
                 "--repeat", "1", "--warmup", "0", "--telemetry",
                 "--out", str(out), "--manifest", str(manifest)]) == 0
    import json

    report = json.loads(out.read_text())
    assert report["benchmark"] == "all"
    assert report["n_benchmarks"] == 1
    assert report["results"][0]["name"] == "table1"

    from repro.obs.manifest import RunManifest

    run = RunManifest.read(manifest)
    assert run.command == "bench"
    assert run.counters["benchmarks_run"] == 1
    assert "bench.table1" in run.stages
    text = capsys.readouterr().out
    assert "table1" in text and "wrote" in text


def test_bench_check_only_gates_saved_report(tmp_path, capsys):
    import json

    current = tmp_path / "current.json"
    current.write_text(json.dumps({
        "benchmark": "all", "scale": 0.02,
        "results": [{"name": "table1", "group": "experiment",
                     "wall_s": 1.0, "mean_s": 1.0}],
    }))
    good = tmp_path / "baseline_good.json"
    good.write_text(json.dumps({
        "benchmark": "all", "scale": 0.02,
        "results": [{"name": "table1", "wall_s": 0.9}],
    }))
    assert main(["bench", "--check-only", str(current),
                 "--check", str(good)]) == 0
    assert "threshold check passed" in capsys.readouterr().out

    bad = tmp_path / "baseline_bad.json"
    bad.write_text(json.dumps({
        "benchmark": "all", "scale": 0.02,
        "results": [{"name": "table1", "wall_s": 0.1}],
    }))
    assert main(["bench", "--check-only", str(current),
                 "--check", str(bad)]) == 1
    assert "REGRESSION" in capsys.readouterr().err


def test_simulate_telemetry_writes_manifest_and_identical_data(
    tmp_path, capsys
):
    plain_dir = tmp_path / "plain"
    traced_dir = tmp_path / "traced"
    args = ["simulate", "--scale", "0.02", "--seed", "3"]
    assert main(args + ["--out", str(plain_dir)]) == 0
    assert not (plain_dir / "run_manifest.json").exists()
    assert main(args + ["--out", str(traced_dir), "--telemetry"]) == 0
    capsys.readouterr()

    from repro.obs.manifest import RunManifest

    run = RunManifest.read(traced_dir / "run_manifest.json")
    assert run.command == "simulate"
    assert run.seed == 3 and run.scale == 0.02
    assert run.years == [2013, 2014, 2015]
    assert len(run.shards) == 3
    assert run.stage_wall_s("study.run") > 0.0

    # Telemetry must not change the saved datasets: byte-for-byte equal.
    for year in (2013, 2014, 2015):
        plain_files = sorted((plain_dir / f"campaign{year}").iterdir())
        traced_files = sorted((traced_dir / f"campaign{year}").iterdir())
        assert [p.name for p in plain_files] == [p.name for p in traced_files]
        for left, right in zip(plain_files, traced_files):
            assert left.read_bytes() == right.read_bytes(), left.name


def test_simulate_then_validate_and_analyze(tmp_path, capsys):
    out_dir = tmp_path / "data"
    assert main(["simulate", "--scale", "0.02", "--seed", "3",
                 "--out", str(out_dir)]) == 0
    saved = sorted(p.name for p in out_dir.iterdir())
    assert saved == ["campaign2013", "campaign2014", "campaign2015"]

    assert main(["validate", str(out_dir / "campaign2015")]) == 0
    out = capsys.readouterr().out
    assert "dataset ok" in out

    artifact_dir = tmp_path / "artifacts"
    assert main(["analyze", "table4", "--data", str(out_dir),
                 "--out", str(artifact_dir)]) == 0
    out = capsys.readouterr().out
    assert "Table 4" in out
    assert (artifact_dir / "table4.txt").exists()


def test_analyze_skips_survey_experiments_on_saved_data(tmp_path, capsys):
    out_dir = tmp_path / "data"
    main(["simulate", "--scale", "0.02", "--seed", "3", "--out", str(out_dir)])
    capsys.readouterr()
    assert main(["analyze", "table8", "--data", str(out_dir)]) == 0
    out = capsys.readouterr().out
    assert "skipping survey experiments" in out


def test_analyze_simulates_when_no_data(capsys):
    assert main(["analyze", "fig01", "--scale", "0.02"]) == 0
    out = capsys.readouterr().out
    assert "Figure 1" in out


def test_analyze_on_missing_data_dir(tmp_path, capsys):
    assert main(["analyze", "table1", "--data", str(tmp_path / "void")]) == 2


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_analyze_all_runs_everything(tmp_path, capsys):
    from repro.cli import main
    artifact_dir = tmp_path / "all"
    assert main(["analyze", "all", "--scale", "0.02", "--seed", "3",
                 "--out", str(artifact_dir)]) == 0
    written = {p.stem for p in artifact_dir.glob("*.txt")}
    from repro.reporting.experiments import EXPERIMENTS
    assert written == set(EXPERIMENTS)

def test_bench_check_unknown_kind_is_config_error(tmp_path, capsys):
    """A typo'd baseline kind must exit 2 (config error), not 1."""
    import json

    current = tmp_path / "current.json"
    current.write_text(json.dumps({
        "benchmark": "all", "scale": 0.02,
        "results": [{"name": "table1", "wall_s": 1.0}],
    }))
    bad = tmp_path / "baseline.json"
    bad.write_text(json.dumps({
        "benchmark": "bogus", "scale": 0.02, "results": [],
    }))
    assert main(["bench", "--check-only", str(current),
                 "--check", str(bad)]) == 2
    err = capsys.readouterr().err
    assert "unrecognised baseline benchmark kind" in err


def test_fidelity_full_run_gates_doc_report_and_trace(tmp_path, capsys):
    """One fidelity run: gate vs the committed baseline, rewrite a copy of
    EXPERIMENTS.md, render the HTML run report and export a Chrome trace."""
    import json
    import shutil
    from pathlib import Path

    root = Path(__file__).resolve().parents[1]
    out = tmp_path / "fidelity_report.json"
    html = tmp_path / "run_report.html"
    trace = tmp_path / "trace.json"
    doc = tmp_path / "EXPERIMENTS.md"
    shutil.copy(root / "EXPERIMENTS.md", doc)

    assert main(["fidelity", "--scale", "0.02", "--seed", "7",
                 "--out", str(out),
                 "--check", str(root / "FIDELITY_baseline.json"),
                 "--report", str(html), "--trace-out", str(trace),
                 "--write-doc", str(doc)]) == 0
    text = capsys.readouterr().out
    assert "fidelity check passed against FIDELITY_baseline.json" in text

    from repro.obs.reference import REFERENCES

    report = json.loads(out.read_text())
    assert report["n_checks"] == len(REFERENCES)
    assert {r["check_id"] for r in report["records"]} == set(REFERENCES)

    # The committed doc holds scale-0.2 numbers; a 0.02 run rewrites it.
    assert "rewrote" in text
    assert "Measured (scale 0.02)" in doc.read_text()

    page = html.read_text()
    for needle in ("<svg", "Fidelity scoreboard", "Run manifest",
                   "Timeline", "Metrics"):
        assert needle in page, needle

    # --report implies telemetry: the manifest lands next to --out.
    from repro.obs.manifest import RunManifest

    run = RunManifest.read(tmp_path / "run_manifest.json")
    assert run.command == "fidelity"
    assert run.counters["fidelity_checks"] == len(REFERENCES)

    from repro.obs.span import spans_from_chrome_trace

    rebuilt = spans_from_chrome_trace(json.loads(trace.read_text()))
    assert rebuilt is not None
    assert any(s.name == "fidelity.score" for s in rebuilt.walk())


def test_fidelity_check_flags_disappeared_check(tmp_path, capsys):
    """A baseline check the current run no longer produces must gate."""
    import json
    from pathlib import Path

    root = Path(__file__).resolve().parents[1]
    baseline = json.loads((root / "FIDELITY_baseline.json").read_text())
    subset = [r for r in baseline["records"]
              if r["experiment_id"] == "table3"]
    assert subset, "committed baseline lost its table3 checks"
    phantom = dict(subset[0], check_id="t3_phantom", verdict="pass")
    doctored = dict(baseline, records=subset + [phantom])
    doctored_path = tmp_path / "baseline.json"
    doctored_path.write_text(json.dumps(doctored))

    assert main(["fidelity", "table3", "--scale", "0.02", "--seed", "7",
                 "--out", str(tmp_path / "report.json"),
                 "--check", str(doctored_path)]) == 1
    err = capsys.readouterr().err
    assert "REGRESSION" in err and "t3_phantom" in err
