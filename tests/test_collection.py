"""Unit and integration tests for the collection substrate."""

from datetime import date

import numpy as np
import pytest

from repro.collection.agent import AgentSnapshot, MeasurementAgent, Records
from repro.collection.server import CollectionServer
from repro.collection.uploader import (
    FlakyTransport,
    UploadBatch,
    Uploader,
    drain_all,
)
from repro.errors import CollectionError, ConfigurationError, UploadError
from repro.geo.coords import Coordinate
from repro.net.cellular import CellularTechnology
from repro.timeutil import TimeAxis
from repro.traces.records import (
    DeviceInfo,
    DeviceOS,
    ScanSummary,
    UpdateEvent,
    WifiStateCode,
)

HERE = Coordinate(35.68, 139.76)


def _device(device_id=0, os=DeviceOS.ANDROID):
    return DeviceInfo(device_id, os, "docomo", CellularTechnology.LTE)


class TestAgent:
    def test_basic_sampling(self):
        agent = MeasurementAgent(_device())
        records = agent.sample(
            AgentSnapshot(
                t=0, location=HERE, wifi_state=WifiStateCode.ASSOCIATED,
                ap_id=3, rssi_dbm=-55.0, rx_wifi=1e6, tx_wifi=1e5,
                rx_cell=2e5, tx_cell=1e4,
            )
        )
        assert len(records.traffic) == 2
        assert len(records.wifi) == 1
        assert len(records.geo) == 1

    def test_geo_quantized_to_cells(self):
        agent = MeasurementAgent(_device())
        records = agent.sample(
            AgentSnapshot(t=0, location=HERE, wifi_state=WifiStateCode.OFF)
        )
        geo = records.geo[0]
        assert isinstance(geo.cell_col, int) and isinstance(geo.cell_row, int)

    def test_ios_hides_off_state(self):
        agent = MeasurementAgent(_device(os=DeviceOS.IOS))
        records = agent.sample(
            AgentSnapshot(t=0, location=HERE, wifi_state=WifiStateCode.OFF)
        )
        assert records.wifi == []

    def test_ios_reports_association(self):
        agent = MeasurementAgent(_device(os=DeviceOS.IOS))
        records = agent.sample(
            AgentSnapshot(
                t=0, location=HERE, wifi_state=WifiStateCode.ASSOCIATED,
                ap_id=5, rssi_dbm=-60.0,
            )
        )
        assert len(records.wifi) == 1

    def test_ios_drops_scans_and_apps(self):
        agent = MeasurementAgent(_device(os=DeviceOS.IOS))
        scan = ScanSummary(0, 0, 3, 1, 0, 0)
        records = agent.sample(
            AgentSnapshot(t=0, location=HERE, wifi_state=WifiStateCode.UNKNOWN,
                          scan=scan)
        )
        assert records.scans == []
        assert agent.daily_app_records([]) == []

    def test_monotonic_time_enforced(self):
        agent = MeasurementAgent(_device())
        agent.sample(AgentSnapshot(t=5, location=HERE, wifi_state=WifiStateCode.OFF))
        with pytest.raises(CollectionError):
            agent.sample(AgentSnapshot(t=5, location=HERE, wifi_state=WifiStateCode.OFF))

    def test_update_event_carried(self):
        agent = MeasurementAgent(_device(os=DeviceOS.IOS))
        update = UpdateEvent(0, 10, 565e6)
        records = agent.sample(
            AgentSnapshot(t=10, location=HERE, wifi_state=WifiStateCode.ASSOCIATED,
                          ap_id=1, update=update)
        )
        assert records.updates == [update]


class TestUploader:
    def test_reliable_transport_delivers(self):
        received = []
        transport = FlakyTransport(received.append, failure_rate=0.0)
        uploader = Uploader(device_id=0, transport=transport)
        assert uploader.upload(Records())
        assert len(received) == 1
        assert uploader.cached_batches == 0

    def test_failures_cached_and_retried(self, rng):
        received = []

        class FailNTimes:
            def __init__(self, n):
                self.n = n

            def deliver(self, batch):
                if self.n > 0:
                    self.n -= 1
                    raise UploadError("down")
                received.append(batch)

        uploader = Uploader(device_id=0, transport=FailNTimes(2))
        assert not uploader.upload(Records())
        assert uploader.cached_batches == 1
        assert not uploader.flush()
        assert uploader.flush()
        assert len(received) == 1

    def test_ordering_preserved_after_failure(self):
        received = []

        class FailFirst:
            def __init__(self):
                self.calls = 0

            def deliver(self, batch):
                self.calls += 1
                if self.calls == 1:
                    raise UploadError("down")
                received.append(batch.sequence)

        uploader = Uploader(device_id=0, transport=FailFirst())
        uploader.upload(Records())  # seq 0 fails
        uploader.upload(Records())  # retries 0, then 1
        assert received == [0, 1]

    def test_cache_overflow_evicts_oldest(self):
        received = []

        class Down:
            def __init__(self):
                self.up = False

            def deliver(self, batch):
                if not self.up:
                    raise UploadError("down")
                received.append(batch.sequence)

        transport = Down()
        uploader = Uploader(device_id=0, transport=transport, max_cache_batches=2)
        for _ in range(4):
            uploader.upload(Records())
        # Bounded storage: the two oldest batches were evicted, recorded as
        # data loss, and the uploader keeps working.
        assert uploader.dropped_batches == 2
        assert uploader.cached_batches == 2
        transport.up = True
        assert uploader.flush()
        assert received == [2, 3]

    def test_flaky_transport_rejects_bad_rate(self):
        with pytest.raises(ConfigurationError):
            FlakyTransport(lambda b: None, failure_rate=1.5)
        with pytest.raises(ConfigurationError):
            FlakyTransport(lambda b: None, failure_rate=-0.1)

    def test_flaky_transport_permanent_outage(self):
        # failure_rate == 1.0 is a valid permanent-outage configuration.
        transport = FlakyTransport(lambda b: None, failure_rate=1.0)
        uploader = Uploader(device_id=0, transport=transport)
        uploader.upload(Records())
        assert uploader.cached_batches == 1
        with pytest.raises(UploadError, match="did not drain"):
            drain_all([uploader], max_rounds=3)

    def test_flaky_transport_rate(self, rng):
        transport = FlakyTransport(lambda b: None, failure_rate=0.3, rng=rng)
        failures = 0
        for i in range(1000):
            try:
                transport.deliver(UploadBatch(0, i, Records()))
            except UploadError:
                failures += 1
        assert failures / 1000 == pytest.approx(0.3, abs=0.05)

    def test_drain_all_gives_up(self):
        def always_fail(batch):
            raise UploadError("down")

        class Down:
            def deliver(self, batch):
                always_fail(batch)

        uploader = Uploader(device_id=0, transport=Down())
        uploader.upload(Records())
        with pytest.raises(UploadError, match="did not drain"):
            drain_all([uploader], max_rounds=3)


class TestServerPipeline:
    def test_end_to_end_with_flaky_uploads(self, rng):
        """Agent -> flaky uploader -> server -> dataset, no data loss."""
        axis = TimeAxis(date(2015, 3, 2), 2)
        server = CollectionServer(2015, axis)
        infos = [_device(0), _device(1, os=DeviceOS.IOS)]
        for info in infos:
            server.register_device(info)

        uploaders = []
        for info in infos:
            agent = MeasurementAgent(info)
            transport = FlakyTransport(
                server.receive, failure_rate=0.4,
                rng=np.random.default_rng(info.device_id),
            )
            uploader = Uploader(device_id=info.device_id, transport=transport)
            uploaders.append((agent, uploader))

        n_ticks = 50
        for t in range(n_ticks):
            for agent, uploader in uploaders:
                records = agent.sample(
                    AgentSnapshot(
                        t=t, location=HERE,
                        wifi_state=WifiStateCode.AVAILABLE,
                        rx_cell=1000.0 + t, tx_cell=100.0,
                    )
                )
                uploader.upload(records)
        drain_all([u for _, u in uploaders])

        dataset = server.build_dataset()
        # Every tick's traffic arrived exactly once despite 40% failures.
        assert len(dataset.traffic) == n_ticks * 2
        assert server.duplicates_dropped == 0
        for device in (0, 1):
            rows = dataset.traffic.device == device
            assert sorted(dataset.traffic.t[rows]) == list(range(n_ticks))

    def test_duplicate_batches_dropped(self):
        axis = TimeAxis(date(2015, 3, 2), 1)
        server = CollectionServer(2015, axis)
        server.register_device(_device(0))
        batch = UploadBatch(0, 0, Records())
        server.receive(batch)
        server.receive(batch)
        assert server.batches_received == 1
        assert server.duplicates_dropped == 1

    def test_unregistered_device_rejected(self):
        axis = TimeAxis(date(2015, 3, 2), 1)
        server = CollectionServer(2015, axis)
        with pytest.raises(CollectionError):
            server.receive(UploadBatch(3, 0, Records()))

    def test_registration_checked_against_actual_ids(self):
        # Validation is against the registered id set, not a dense-range
        # assumption: with two devices enrolled, device 2 is still foreign.
        axis = TimeAxis(date(2015, 3, 2), 1)
        server = CollectionServer(2015, axis)
        server.register_device(_device(0))
        server.register_device(_device(1))
        server.receive(UploadBatch(1, 0, Records()))
        with pytest.raises(CollectionError, match="unregistered device 2"):
            server.receive(UploadBatch(2, 0, Records()))
        assert server.received_by_device == {1: 1}
