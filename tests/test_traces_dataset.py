"""Unit tests for the columnar dataset and builder."""

import numpy as np
import pytest

from repro.errors import DatasetError, SchemaError
from repro.net.cellular import CellularTechnology
from repro.traces.dataset import DatasetBuilder
from repro.traces.records import (
    DeviceInfo,
    DeviceOS,
    IfaceKind,
    TrafficSample,
    WifiObservation,
    WifiStateCode,
)
from tests.helpers import add_ap, add_daily_traffic, make_builder, slot


class TestBuilder:
    def test_device_ids_must_be_dense(self):
        builder = make_builder(n_devices=1)
        with pytest.raises(SchemaError):
            builder.add_device(
                DeviceInfo(5, DeviceOS.ANDROID, "docomo", CellularTechnology.LTE)
            )

    def test_duplicate_ap_rejected(self):
        builder = make_builder()
        add_ap(builder, 1, "net")
        with pytest.raises(SchemaError):
            add_ap(builder, 1, "net2")

    def test_tethering_dropped_at_ingest(self):
        builder = make_builder()
        builder.add_traffic(
            TrafficSample(0, 0, IfaceKind.WIFI, 100.0, 10.0, tethering=True)
        )
        builder.add_traffic(
            TrafficSample(0, 1, IfaceKind.WIFI, 200.0, 20.0, tethering=False)
        )
        dataset = builder.build()
        assert len(dataset.traffic) == 1
        assert dataset.traffic.rx[0] == 200.0

    def test_rows_sorted_by_device_then_time(self):
        builder = make_builder(n_devices=2)
        builder.extend_traffic(device=[1, 0, 1], t=[5, 9, 2],
                               iface=[2, 2, 2], rx=[1.0, 2.0, 3.0], tx=[0, 0, 0])
        dataset = builder.build()
        assert list(dataset.traffic.device) == [0, 1, 1]
        assert list(dataset.traffic.t) == [9, 2, 5]

    def test_out_of_range_device_rejected(self):
        builder = make_builder(n_devices=1)
        builder.extend_traffic(device=[3], t=[0], iface=[2], rx=[1.0], tx=[0.0])
        with pytest.raises(SchemaError):
            builder.build()

    def test_out_of_range_slot_rejected(self):
        builder = make_builder(n_devices=1, n_days=1)
        builder.extend_traffic(device=[0], t=[144], iface=[2], rx=[1.0], tx=[0.0])
        with pytest.raises(SchemaError):
            builder.build()

    def test_ragged_chunk_rejected(self):
        builder = make_builder()
        with pytest.raises(SchemaError):
            builder.extend_traffic(device=[0, 1], t=[0], iface=[2], rx=[1.0], tx=[0.0])

    def test_empty_build(self):
        dataset = make_builder().build()
        assert len(dataset.traffic) == 0
        assert len(dataset.wifi) == 0
        assert dataset.n_devices == 2


class TestDailyMatrix:
    def test_daily_matrix_aggregates_by_day(self):
        builder = make_builder(n_devices=2, n_days=3)
        add_daily_traffic(builder, 0, 0, cell_rx_mb=10, wifi_rx_mb=5)
        add_daily_traffic(builder, 0, 2, cell_rx_mb=1)
        add_daily_traffic(builder, 1, 1, wifi_rx_mb=7)
        ds = builder.build()
        total = ds.daily_matrix("all", "rx") / 1e6
        assert total[0, 0] == pytest.approx(15)
        assert total[0, 2] == pytest.approx(1)
        assert total[1, 1] == pytest.approx(7)
        assert total[1, 0] == 0.0

    def test_kind_filters(self):
        builder = make_builder(n_devices=1, n_days=1)
        builder.extend_traffic(
            device=[0, 0, 0], t=[0, 1, 2],
            iface=[int(IfaceKind.CELL_3G), int(IfaceKind.CELL_LTE), int(IfaceKind.WIFI)],
            rx=[1e6, 2e6, 4e6], tx=[0, 0, 0],
        )
        ds = builder.build()
        assert ds.daily_matrix("3g", "rx").sum() == 1e6
        assert ds.daily_matrix("lte", "rx").sum() == 2e6
        assert ds.daily_matrix("cell", "rx").sum() == 3e6
        assert ds.daily_matrix("wifi", "rx").sum() == 4e6
        assert ds.daily_matrix("all", "rx").sum() == 7e6

    def test_unknown_kind_or_direction(self):
        ds = make_builder().build()
        with pytest.raises(DatasetError):
            ds.daily_matrix("fiber", "rx")
        with pytest.raises(DatasetError):
            ds.daily_matrix("all", "sideways")

    def test_hourly_series(self):
        builder = make_builder(n_devices=1, n_days=2)
        builder.extend_traffic(
            device=[0, 0], t=[slot(0, 10), slot(1, 10)],
            iface=[2, 2], rx=[5e6, 7e6], tx=[0, 0],
        )
        ds = builder.build()
        series = ds.hourly_series("wifi", "rx")
        assert len(series) == 48
        assert series[10] == 5e6
        assert series[34] == 7e6
        assert series.sum() == 12e6


class TestDeviceAccessors:
    def test_device_lookup(self):
        ds = make_builder(n_devices=2).build()
        assert ds.device(0).device_id == 0
        with pytest.raises(DatasetError):
            ds.device(9)

    def test_os_split(self):
        ds = make_builder(
            n_devices=4, os_plan=[DeviceOS.ANDROID, DeviceOS.IOS]
        ).build()
        assert list(ds.android_ids()) == [0, 2]
        assert list(ds.ios_ids()) == [1, 3]
