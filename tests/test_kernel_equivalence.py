"""Batch-kernel determinism and bulk-collection equivalence.

The columnar batch kernel (`repro.simulation.kernel`) is the only
simulation kernel (the scalar legacy loop completed its deprecation
window and was removed after a full release of CI-gated equivalence).
What this module pins:

* **The batch kernel is fully deterministic** and its per-device
  streams are shard-layout independent: simulating a panel in one call
  or any partition of calls yields bit-identical per-device tables.
* **Bulk collection is exact.** With a zero fault plan,
  ``CollectionPump.transmit_bulk`` must produce a bit-identical built
  dataset and the same accounting as the per-tick replay it replaces.
"""

import dataclasses

import numpy as np

from repro.collection.faults import FaultPlan
from repro.collection.pipeline import CollectionPump
from repro.collection.server import CollectionServer
from repro.simulation.campaign import plan_campaign, run_campaign
from repro.simulation.kernel import simulate_devices
from repro.simulation.study import default_campaign_config

from tests.test_engine import assert_datasets_identical


class TestBatchDeterminism:
    def test_same_config_is_bit_identical(self):
        config = dataclasses.replace(
            default_campaign_config(2013, scale=0.004, seed=11), n_days=4
        )
        first = run_campaign(config).dataset
        second = run_campaign(config).dataset
        assert_datasets_identical(first, second)

    def test_per_device_streams_are_shard_layout_independent(self):
        """One call over the panel == any partition of calls, bit for bit.

        This is the property that makes `n_jobs` invisible: the kernel
        streams key only on the device id, never on shard membership.
        """
        config = dataclasses.replace(
            default_campaign_config(2014, scale=0.006, seed=5), n_days=3
        )
        plan = plan_campaign(config, 1)
        world = plan.world
        axis = config.axis
        ids = [info.device_id for info in world.infos]

        def run(device_ids):
            return {
                result.device_id: result.tables
                for result in simulate_devices(
                    world.profiles, axis, world.deployment, world.demand,
                    config.params, seed=config.seed, year=config.year,
                    device_ids=device_ids,
                )
            }

        whole = run(ids)
        # Contiguous halves, interleaved evens/odds, and a singleton: all
        # must reproduce the whole-panel result exactly.
        split = run(ids[: len(ids) // 2])
        split.update(run(ids[len(ids) // 2:]))
        interleaved = run(ids[::2])
        interleaved.update(run(ids[1::2]))
        lone = run([ids[0]])
        for device_id in ids:
            for layout in (split, interleaved):
                for name, columns in whole[device_id].items():
                    for colname, col in columns.items():
                        np.testing.assert_array_equal(
                            layout[device_id][name][colname], col,
                            err_msg=f"device {device_id} {name}.{colname}",
                        )
        for name, columns in whole[ids[0]].items():
            for colname, col in columns.items():
                np.testing.assert_array_equal(
                    lone[ids[0]][name][colname], col
                )


class TestBulkCollection:
    def test_transmit_bulk_matches_per_tick_replay(self):
        """Zero-fault bulk hand-off == tick-by-tick replay, bit for bit."""
        config = dataclasses.replace(
            default_campaign_config(2013, scale=0.004, seed=11), n_days=4
        )
        plan = plan_campaign(config, 1)
        world = plan.world
        axis = config.axis
        results = list(simulate_devices(
            world.profiles, axis, world.deployment, world.demand,
            config.params, seed=config.seed, year=config.year,
            device_ids=[info.device_id for info in world.infos],
        ))

        def collect(method_name):
            server = CollectionServer(config.year, axis)
            for info in world.infos:
                server.register_device(info)
            pump = CollectionPump(
                server, FaultPlan.zero(), n_slots=axis.n_slots,
                seed=config.seed, year=config.year,
            )
            stats = [
                getattr(pump, method_name)(
                    world.infos[result.device_id], result.tables
                )
                for result in results
            ]
            server.flush_buffers()
            return server, stats

        replay_server, replay_stats = collect("transmit")
        bulk_server, bulk_stats = collect("transmit_bulk")

        assert_datasets_identical(
            replay_server.build_dataset(), bulk_server.build_dataset()
        )
        assert bulk_server.batches_received == replay_server.batches_received
        assert bulk_server.duplicates_dropped == 0
        for replay, bulk in zip(replay_stats, bulk_stats):
            assert bulk.device_id == replay.device_id
            assert bulk.ticks == replay.ticks
            assert bulk.uploaded == replay.uploaded
            assert bulk.delivered == replay.delivered
            assert (bulk.churned, bulk.duplicates, bulk.dropped,
                    bulk.cached) == (0, 0, 0, 0)

    def test_transmit_bulk_falls_back_under_faults(self):
        """A lossy plan must take the per-tick path (faults need ticks)."""
        config = dataclasses.replace(
            default_campaign_config(2013, scale=0.004, seed=11), n_days=4
        )
        faulty = FaultPlan(upload_failure_p=0.5, duplicate_p=0.1, seed=2)
        config = dataclasses.replace(config, faults=faulty)
        result = run_campaign(config)
        report = result.collection
        assert report is not None
        # Under 50% upload failure something must be retried or lost;
        # closed-form zero-fault accounting would show none of that.
        assert any(
            s.duplicates > 0 or s.dropped > 0 or s.cached > 0
            for s in report.devices
        )
