"""Batch-kernel equivalence: the columnar kernel vs the legacy scalar loop.

The batch kernel (`repro.simulation.kernel`) is a *documented equivalence*
rewrite, not a bit-identity one: it draws from a per-device stream keyed
``(seed, year, device_id, 7919)`` in a fixed 13-stage order, while the
legacy `DeviceSimulator` interleaves draws tick by tick from
``(seed, year, device_id)``. Same models, same parameters, different
random realizations. What must therefore hold, and what this module pins:

* **Structure is exact.** Schemas, dtypes, the device registry, and the
  deterministic sampling cadences (geo every slot, battery every third
  slot) are identical between kernels — any drift here is a bug, not
  noise.
* **Distributions agree.** Per-device volumes, WiFi share, row counts,
  and battery levels from the two kernels are different draws from the
  same model, so their aggregates must land within tolerances calibrated
  against the observed batch/legacy spread (roughly 2x the worst ratio
  seen across the pinned cells; see each assertion).
* **The batch kernel itself is fully deterministic** and its per-device
  streams are shard-layout independent: simulating a panel in one call
  or any partition of calls yields bit-identical per-device tables.
* **Bulk collection is exact.** With a zero fault plan,
  ``CollectionPump.transmit_bulk`` must produce a bit-identical built
  dataset and the same accounting as the per-tick replay it replaces.

Cells: two scales x two seeds as required by the migration plan — small
enough for CI, large enough that every table has rows.
"""

import dataclasses

import numpy as np
import pytest

from repro.collection.faults import FaultPlan
from repro.collection.pipeline import CollectionPump
from repro.collection.server import CollectionServer
from repro.simulation.campaign import plan_campaign, run_campaign
from repro.simulation.kernel import simulate_devices
from repro.simulation.study import default_campaign_config

from tests.test_engine import TABLES, assert_datasets_identical

#: The migration-gate cells: two scales x two seeds.
SCALES = (0.02, 0.04)
SEEDS = (3, 7)
YEAR = 2015


def _config(scale, seed, kernel="batch"):
    return default_campaign_config(YEAR, scale=scale, seed=seed, kernel=kernel)


@pytest.fixture(scope="module")
def cells():
    """Both kernels' datasets for every (scale, seed) cell, run once."""
    out = {}
    for scale in SCALES:
        for seed in SEEDS:
            batch = run_campaign(_config(scale, seed)).dataset
            legacy = run_campaign(_config(scale, seed, "legacy")).dataset
            out[(scale, seed)] = (batch, legacy)
    return out


def _aggregates(ds):
    cell = ds.daily_matrix("cell").sum()
    wifi = ds.daily_matrix("wifi").sum()
    return {
        "cell_per_dev": cell / ds.n_devices,
        "wifi_per_dev": wifi / ds.n_devices,
        "wifi_share": wifi / (wifi + cell),
        "traffic_rows": len(ds.traffic) / ds.n_devices,
        "sighting_rows": len(ds.sightings) / ds.n_devices,
        "assoc_share": float((ds.wifi.state == 2).mean()),
        "battery_mean": float(ds.battery.level.mean()),
    }


class TestBatchVsLegacy:
    """The documented-equivalence gate at two scales x two seeds."""

    @pytest.mark.parametrize("scale", SCALES)
    @pytest.mark.parametrize("seed", SEEDS)
    def test_structure_is_exact(self, cells, scale, seed):
        batch, legacy = cells[(scale, seed)]
        n_slots = _config(scale, seed).axis.n_slots
        assert batch.devices == legacy.devices
        assert batch.year == legacy.year == YEAR
        for name in TABLES:
            left = getattr(batch, name)
            right = getattr(legacy, name)
            assert set(left.columns) == set(right.columns), name
            for colname, col in left.columns.items():
                assert col.dtype == right.columns[colname].dtype, (
                    name, colname,
                )
        # Deterministic cadences: geo logs every slot, battery every third
        # slot, under either kernel.
        for ds in (batch, legacy):
            assert len(ds.geo) == ds.n_devices * n_slots
            assert len(ds.battery) == ds.n_devices * (n_slots // 3)
        np.testing.assert_array_equal(
            np.sort(batch.geo.t), np.sort(legacy.geo.t)
        )
        np.testing.assert_array_equal(
            np.sort(batch.battery.t), np.sort(legacy.battery.t)
        )

    @pytest.mark.parametrize("scale", SCALES)
    @pytest.mark.parametrize("seed", SEEDS)
    def test_value_domains(self, cells, scale, seed):
        n_slots = _config(scale, seed).axis.n_slots
        for ds in cells[(scale, seed)]:
            for name in TABLES:
                table = getattr(ds, name)
                if "t" in table.columns and len(table):
                    assert table.t.min() >= 0
                    assert table.t.max() < n_slots
            assert ds.traffic.rx.min() >= 0.0
            assert ds.traffic.tx.min() >= 0.0
            assert 0.0 <= ds.battery.level.min()
            assert ds.battery.level.max() <= 100.0

    @pytest.mark.parametrize("scale", SCALES)
    @pytest.mark.parametrize("seed", SEEDS)
    def test_aggregates_agree(self, cells, scale, seed):
        batch, legacy = cells[(scale, seed)]
        b = _aggregates(batch)
        l = _aggregates(legacy)
        # Ratio tolerances are ~2x the worst batch/legacy spread observed
        # across these cells (volumes drift up to ~5%, sightings ~10%).
        assert b["cell_per_dev"] == pytest.approx(l["cell_per_dev"], rel=0.15)
        assert b["wifi_per_dev"] == pytest.approx(l["wifi_per_dev"], rel=0.15)
        assert b["traffic_rows"] == pytest.approx(l["traffic_rows"], rel=0.10)
        assert b["sighting_rows"] == pytest.approx(
            l["sighting_rows"], rel=0.25
        )
        # Shares and levels compare absolutely (observed drift: wifi_share
        # <= 0.02, association share <= 0.05, battery mean <= 0.1).
        assert abs(b["wifi_share"] - l["wifi_share"]) < 0.05
        assert abs(b["assoc_share"] - l["assoc_share"]) < 0.10
        assert abs(b["battery_mean"] - l["battery_mean"]) < 1.0


class TestBatchDeterminism:
    def test_same_config_is_bit_identical(self):
        config = dataclasses.replace(
            default_campaign_config(2013, scale=0.004, seed=11), n_days=4
        )
        first = run_campaign(config).dataset
        second = run_campaign(config).dataset
        assert_datasets_identical(first, second)

    def test_per_device_streams_are_shard_layout_independent(self):
        """One call over the panel == any partition of calls, bit for bit.

        This is the property that makes `n_jobs` invisible: the kernel
        streams key only on the device id, never on shard membership.
        """
        config = dataclasses.replace(
            default_campaign_config(2014, scale=0.006, seed=5), n_days=3
        )
        plan = plan_campaign(config, 1)
        world = plan.world
        axis = config.axis
        ids = [info.device_id for info in world.infos]

        def run(device_ids):
            return {
                result.device_id: result.tables
                for result in simulate_devices(
                    world.profiles, axis, world.deployment, world.demand,
                    config.params, seed=config.seed, year=config.year,
                    device_ids=device_ids,
                )
            }

        whole = run(ids)
        # Contiguous halves, interleaved evens/odds, and a singleton: all
        # must reproduce the whole-panel result exactly.
        split = run(ids[: len(ids) // 2])
        split.update(run(ids[len(ids) // 2:]))
        interleaved = run(ids[::2])
        interleaved.update(run(ids[1::2]))
        lone = run([ids[0]])
        for device_id in ids:
            for layout in (split, interleaved):
                for name, columns in whole[device_id].items():
                    for colname, col in columns.items():
                        np.testing.assert_array_equal(
                            layout[device_id][name][colname], col,
                            err_msg=f"device {device_id} {name}.{colname}",
                        )
        for name, columns in whole[ids[0]].items():
            for colname, col in columns.items():
                np.testing.assert_array_equal(
                    lone[ids[0]][name][colname], col
                )


class TestBulkCollection:
    def test_transmit_bulk_matches_per_tick_replay(self):
        """Zero-fault bulk hand-off == tick-by-tick replay, bit for bit."""
        config = dataclasses.replace(
            default_campaign_config(2013, scale=0.004, seed=11), n_days=4
        )
        plan = plan_campaign(config, 1)
        world = plan.world
        axis = config.axis
        results = list(simulate_devices(
            world.profiles, axis, world.deployment, world.demand,
            config.params, seed=config.seed, year=config.year,
            device_ids=[info.device_id for info in world.infos],
        ))

        def collect(method_name):
            server = CollectionServer(config.year, axis)
            for info in world.infos:
                server.register_device(info)
            pump = CollectionPump(
                server, FaultPlan.zero(), n_slots=axis.n_slots,
                seed=config.seed, year=config.year,
            )
            stats = [
                getattr(pump, method_name)(
                    world.infos[result.device_id], result.tables
                )
                for result in results
            ]
            server.flush_buffers()
            return server, stats

        replay_server, replay_stats = collect("transmit")
        bulk_server, bulk_stats = collect("transmit_bulk")

        assert_datasets_identical(
            replay_server.build_dataset(), bulk_server.build_dataset()
        )
        assert bulk_server.batches_received == replay_server.batches_received
        assert bulk_server.duplicates_dropped == 0
        for replay, bulk in zip(replay_stats, bulk_stats):
            assert bulk.device_id == replay.device_id
            assert bulk.ticks == replay.ticks
            assert bulk.uploaded == replay.uploaded
            assert bulk.delivered == replay.delivered
            assert (bulk.churned, bulk.duplicates, bulk.dropped,
                    bulk.cached) == (0, 0, 0, 0)

    def test_transmit_bulk_falls_back_under_faults(self):
        """A lossy plan must take the per-tick path (faults need ticks)."""
        config = dataclasses.replace(
            default_campaign_config(2013, scale=0.004, seed=11), n_days=4
        )
        faulty = FaultPlan(upload_failure_p=0.5, duplicate_p=0.1, seed=2)
        config = dataclasses.replace(config, faults=faulty)
        result = run_campaign(config)
        report = result.collection
        assert report is not None
        # Under 50% upload failure something must be retried or lost;
        # closed-form zero-fault accounting would show none of that.
        assert any(
            s.duplicates > 0 or s.dropped > 0 or s.cached > 0
            for s in report.devices
        )
