"""Collection-pipeline tests: zero-fault equivalence, fault accounting.

The tentpole invariant lives here: a campaign routed through the full
agent → uploader → transport → server path under a zero-fault plan must
produce a dataset *bit-for-bit identical* to the direct builder path.
"""

import dataclasses

import numpy as np
import pytest

from repro.collection.faults import CollectionReport, FaultPlan, OutageWindow
from repro.errors import ConfigurationError
from repro.simulation.campaign import run_campaign
from repro.simulation.study import default_campaign_config

TABLES = ("traffic", "wifi", "geo", "scans", "sightings", "apps",
          "updates", "battery")


def _small_config(**kwargs):
    config = default_campaign_config(2013, scale=0.004, seed=11, **kwargs)
    return dataclasses.replace(config, n_days=4)


@pytest.fixture(scope="module")
def equivalence_pair():
    direct = run_campaign(dataclasses.replace(_small_config(), direct_build=True))
    piped = run_campaign(_small_config())
    return direct, piped


class TestZeroFaultEquivalence:
    def test_tables_bit_identical(self, equivalence_pair):
        direct, piped = equivalence_pair
        for name in TABLES:
            expected = getattr(direct.dataset, name)
            actual = getattr(piped.dataset, name)
            assert set(expected.columns) == set(actual.columns), name
            for colname, col in expected.columns.items():
                got = actual.columns[colname]
                assert got.dtype == col.dtype, (name, colname)
                np.testing.assert_array_equal(got, col,
                                              err_msg=f"{name}.{colname}")

    def test_metadata_identical(self, equivalence_pair):
        direct, piped = equivalence_pair
        assert piped.dataset.devices == direct.dataset.devices
        assert piped.dataset.ap_directory == direct.dataset.ap_directory
        assert piped.dataset.year == direct.dataset.year

    def test_zero_fault_report_is_lossless(self, equivalence_pair):
        _, piped = equivalence_pair
        report = piped.collection
        assert isinstance(report, CollectionReport)
        assert report.recruited == piped.dataset.n_devices
        assert report.n_valid() == report.recruited
        assert report.duplicates_dropped == 0
        for stats in report.devices:
            assert stats.completeness == 1.0
            assert stats.churned == stats.dropped == stats.cached == 0
        assert piped.collection.totals()["delivered"] == report.batches_received

    def test_direct_build_has_no_report(self, equivalence_pair):
        direct, _ = equivalence_pair
        assert direct.collection is None


class TestConservation:
    """Every generated batch is accounted for exactly once."""

    @pytest.fixture(scope="class")
    def faulted(self):
        plan = FaultPlan(
            upload_failure_p=0.3,
            upload_failure_p_3g_extra=0.2,
            outages=(OutageWindow(50, 150),),
            dropout_p=0.4,
            duplicate_p=0.1,
            max_cache_batches=32,
            seed=3,
        )
        return run_campaign(_small_config(faults=plan))

    def test_per_device_conservation(self, faulted):
        for stats in faulted.collection.devices:
            assert stats.ticks == stats.churned + stats.uploaded
            assert stats.uploaded == (stats.delivered + stats.dropped
                                      + stats.cached)
            assert 0.0 <= stats.completeness <= 1.0

    def test_dedup_never_drops_a_first_delivery(self, faulted):
        report = faulted.collection
        totals = report.totals()
        # Every unique batch the server accepted is a delivered batch, and
        # every re-delivery it refused was a duplicate — nothing else.
        assert report.batches_received == totals["delivered"]
        assert report.duplicates_dropped == totals["duplicates"]

    def test_faults_explain_recruited_valid_gap(self, faulted):
        report = faulted.collection
        assert report.n_valid(0.99) < report.recruited
        completeness = report.completeness()
        assert completeness.min() < 1.0
        values, frac = report.completeness_cdf()
        assert np.all(np.diff(values) >= 0)
        assert frac[-1] == 1.0

    def test_lossy_dataset_is_a_subset(self, faulted):
        lossless = run_campaign(_small_config())
        for name in TABLES:
            assert len(getattr(faulted.dataset, name)) <= \
                len(getattr(lossless.dataset, name)), name


class TestFaultPlanValidation:
    def test_bad_probabilities_rejected(self):
        with pytest.raises(ConfigurationError):
            FaultPlan(upload_failure_p=1.5)
        with pytest.raises(ConfigurationError):
            FaultPlan(dropout_p=-0.1)
        with pytest.raises(ConfigurationError):
            FaultPlan(duplicate_p=2.0)

    def test_bad_bounds_rejected(self):
        with pytest.raises(ConfigurationError):
            FaultPlan(max_cache_batches=0)
        with pytest.raises(ConfigurationError):
            FaultPlan(dropout_min_frac=1.5)

    def test_bad_outage_rejected(self):
        with pytest.raises(ConfigurationError):
            OutageWindow(10, 10)
        with pytest.raises(ConfigurationError):
            OutageWindow(-1, 5)

    def test_zero_plan_is_zero(self):
        assert FaultPlan.zero().is_zero
        assert not FaultPlan(upload_failure_p=0.1).is_zero
        assert not FaultPlan(outages=(OutageWindow(0, 1),)).is_zero

    def test_direct_build_with_nonzero_faults_rejected(self):
        config = _small_config(faults=FaultPlan(upload_failure_p=0.5))
        with pytest.raises(ConfigurationError):
            dataclasses.replace(config, direct_build=True)


class TestCLIFaultFlags:
    def test_no_flags_means_no_plan(self):
        from repro.cli import _fault_plan_from_args, build_parser
        args = build_parser().parse_args(
            ["simulate", "--out", "/tmp/x", "--scale", "0.01"])
        assert _fault_plan_from_args(args) is None

    def test_flags_build_plan(self):
        from repro.cli import _fault_plan_from_args, build_parser
        args = build_parser().parse_args(
            ["simulate", "--out", "/tmp/x", "--fault-rate", "0.2",
             "--outage", "10:20", "--outage", "40:50",
             "--dropout-p", "0.3", "--cache-batches", "16"])
        plan = _fault_plan_from_args(args)
        assert plan.upload_failure_p == 0.2
        assert plan.outages == (OutageWindow(10, 20), OutageWindow(40, 50))
        assert plan.dropout_p == 0.3
        assert plan.max_cache_batches == 16

    def test_malformed_outage_rejected(self):
        from repro.cli import _fault_plan_from_args, build_parser
        args = build_parser().parse_args(
            ["simulate", "--out", "/tmp/x", "--outage", "banana"])
        with pytest.raises(ConfigurationError, match="START:END"):
            _fault_plan_from_args(args)


class TestReportRendering:
    def test_render_smoke(self):
        from repro.reporting.collection import render_collection_report
        plan = FaultPlan(upload_failure_p=0.4, dropout_p=0.3, seed=1)
        result = run_campaign(_small_config(faults=plan))
        text = render_collection_report(result.collection)
        assert "devices recruited" in text
        assert "completeness" in text
