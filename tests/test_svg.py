"""Tests for the SVG chart renderer."""

import numpy as np
import pytest

from repro.errors import ReproError
from repro.reporting.figures import Figure
from repro.reporting.svg import (
    Axis,
    SvgChart,
    figure_to_svg,
    span_timeline_svg,
)


def _chart(**kwargs):
    chart = SvgChart("Test", **kwargs)
    chart.add_series("a", [0, 1, 2], [1.0, 3.0, 2.0])
    return chart


def test_render_is_valid_svg_document():
    svg = _chart().render()
    assert svg.startswith("<svg")
    assert svg.endswith("</svg>")
    assert "polyline" in svg
    assert "Test" in svg


def test_multiple_series_distinct_colors():
    chart = _chart()
    chart.add_series("b", [0, 1, 2], [2.0, 2.5, 4.0])
    svg = chart.render()
    assert svg.count("<polyline") == 2
    assert "#0072B2" in svg and "#D55E00" in svg


def test_legend_labels_escaped():
    chart = SvgChart("T")
    chart.add_series("a<b&c", [0, 1], [0.0, 1.0])
    svg = chart.render()
    assert "a&lt;b&amp;c" in svg
    assert "a<b" not in svg


def test_log_axis_drops_nonpositive():
    chart = SvgChart("T", x_axis=Axis(log=True))
    chart.add_series("a", [0.0, 1.0, 10.0, 100.0], [1.0, 2.0, 3.0, 4.0])
    svg = chart.render()
    # Three finite points survive the log transform.
    line = [l for l in svg.splitlines() if "polyline" in l][0]
    assert line.count(",") == 3


def test_empty_chart_rejected():
    with pytest.raises(ReproError):
        SvgChart("T").render()


def test_shape_mismatch_rejected():
    chart = SvgChart("T")
    with pytest.raises(ReproError):
        chart.add_series("a", [0, 1], [1.0])


def test_margins_validated():
    with pytest.raises(ReproError):
        SvgChart("T", width=100, height=100, margin=60)


def test_constant_series_renders():
    chart = SvgChart("T")
    chart.add_series("flat", [0, 1, 2], [5.0, 5.0, 5.0])
    assert "<polyline" in chart.render()


def test_nan_points_skipped():
    chart = SvgChart("T")
    chart.add_series("gaps", [0, 1, 2, 3], [1.0, np.nan, 3.0, 4.0])
    svg = chart.render()
    line = [l for l in svg.splitlines() if "polyline" in l][0]
    assert line.count(",") == 3


def test_figure_to_svg(cache):
    from repro import run_experiment
    figure = run_experiment("fig03", cache)
    svg = figure_to_svg(figure, log_x=True)
    assert svg.startswith("<svg")
    assert "Figure 3" in svg


def test_save(tmp_path):
    path = tmp_path / "chart.svg"
    _chart().save(path)
    assert path.read_text().startswith("<svg")


def test_span_timeline_renders_flame_rows():
    exported = {
        "name": "run", "wall_s": 2.0, "cpu_s": 1.5,
        "children": [
            {"name": "simulate", "wall_s": 1.2, "cpu_s": 1.0,
             "counters": {"devices": 42},
             "children": [{"name": "shard", "wall_s": 0.6, "cpu_s": 0.5}]},
            {"name": "analyze", "wall_s": 0.7, "cpu_s": 0.4},
        ],
    }
    svg = span_timeline_svg(exported, title="demo run")
    assert svg.startswith("<svg") and svg.endswith("</svg>")
    assert "demo run" in svg and "2.00s wall" in svg
    # One bar per span, each with a tooltip carrying exact timings.
    assert svg.count("<rect") == 1 + 4  # background + four spans
    assert svg.count("<title>") == 4
    assert "devices=42" in svg
    # Wide bars get inline labels; every span name appears somewhere.
    for name in ("run", "simulate", "shard", "analyze"):
        assert name in svg


def test_span_timeline_rejects_empty_or_zero_wall():
    with pytest.raises(ReproError, match="no span tree"):
        span_timeline_svg({})
    with pytest.raises(ReproError, match="no recorded wall time"):
        span_timeline_svg({"name": "run", "wall_s": 0.0})
