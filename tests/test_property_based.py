"""Property-based tests (hypothesis) for core data structures and invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geo.coords import Coordinate, cell_center, cell_index, haversine_km, quantize
from repro.radio.channels import channels_interfere, interference_fraction
from repro.simulation.cap import SoftCapPolicy, SoftCapTracker
from repro.stats.distributions import ccdf, ecdf, percentile_band_mask
from repro.stats.growth import annual_growth_rate
from repro.stats.timeseries import HourlySeries

# Coordinates within the study region (keeps the equirectangular grid sane).
region_lat = st.floats(min_value=35.0, max_value=36.2)
region_lon = st.floats(min_value=138.8, max_value=140.6)
coords = st.builds(Coordinate, lat=region_lat, lon=region_lon)


class TestGeoProperties:
    @given(coords, coords)
    def test_haversine_symmetry_and_nonnegativity(self, a, b):
        d = haversine_km(a, b)
        assert d >= 0.0
        assert abs(d - haversine_km(b, a)) < 1e-9

    @given(coords, coords, coords)
    @settings(max_examples=50)
    def test_haversine_triangle_inequality(self, a, b, c):
        assert haversine_km(a, c) <= (
            haversine_km(a, b) + haversine_km(b, c) + 1e-9
        )

    @given(coords)
    def test_quantize_idempotent(self, c):
        assert quantize(quantize(c)) == quantize(c)

    @given(coords)
    def test_quantize_stays_in_cell(self, c):
        assert cell_index(quantize(c)) == cell_index(c)

    @given(st.integers(-50, 50), st.integers(-50, 50))
    def test_cell_center_round_trip(self, col, row):
        assert cell_index(cell_center((col, row))) == (col, row)


class TestChannelProperties:
    @given(st.integers(1, 13), st.integers(1, 13))
    def test_interference_symmetric(self, a, b):
        assert channels_interfere(a, b) == channels_interfere(b, a)

    @given(st.lists(st.integers(1, 13), min_size=2, max_size=10))
    def test_interference_fraction_bounds(self, channels):
        frac = interference_fraction(channels)
        assert 0.0 <= frac <= 1.0

    @given(st.integers(1, 13))
    def test_self_interference(self, ch):
        assert channels_interfere(ch, ch)


positive_samples = st.lists(
    st.floats(min_value=0.001, max_value=1e6, allow_nan=False),
    min_size=1, max_size=200,
)


class TestDistributionProperties:
    @given(positive_samples)
    def test_ecdf_monotone_and_bounded(self, samples):
        dist = ecdf(samples)
        assert (np.diff(dist.probs) >= 0).all()
        assert dist.probs[-1] == 1.0
        assert (np.diff(dist.values) >= 0).all()

    @given(positive_samples)
    def test_ccdf_complements_ecdf(self, samples):
        e, c = ecdf(samples), ccdf(samples)
        np.testing.assert_allclose(e.probs + c.probs, 1.0)

    @given(positive_samples, st.floats(min_value=0.01, max_value=1.0))
    def test_quantile_within_support(self, samples, q):
        dist = ecdf(samples)
        value = dist.quantile(q)
        assert dist.values[0] <= value <= dist.values[-1]

    @given(positive_samples)
    def test_median_splits_mass(self, samples):
        dist = ecdf(samples)
        assert dist.at(dist.median()) >= 0.5

    @given(st.lists(st.floats(1.0, 1e4), min_size=10, max_size=100))
    def test_percentile_bands_partition(self, samples):
        arr = np.asarray(samples)
        masks = [
            percentile_band_mask(arr, lo, hi)
            for lo, hi in ((0, 25), (25, 50), (50, 75), (75, 100))
        ]
        combined = np.zeros(len(arr), dtype=int)
        for m in masks:
            combined += m.astype(int)
        # Every sample falls in at least one quartile band (ties can land a
        # boundary sample in two adjacent bands).
        assert (combined >= 1).all()


class TestGrowthProperties:
    @given(st.floats(1.0, 1e3), st.floats(0.1, 4.0))
    def test_agr_recovers_geometric_rate(self, base, ratio):
        values = [base, base * ratio, base * ratio**2]
        agr = annual_growth_rate([2013, 2014, 2015], values)
        assert np.isclose(agr, ratio - 1.0, rtol=1e-6, atol=1e-9)


class TestTimeseriesProperties:
    @given(
        st.lists(st.floats(0.0, 1e6), min_size=24, max_size=24 * 21),
        st.integers(0, 6),
    )
    @settings(max_examples=30)
    def test_fold_week_preserves_mean(self, values, start_weekday):
        hours = (len(values) // 24) * 24
        if hours == 0:
            return
        series = HourlySeries(np.asarray(values[:hours]), start_weekday)
        folded = series.fold_week()
        # Weighted mean of fold equals overall mean (weights = coverage).
        finite = np.isfinite(folded)
        assert finite.sum() >= min(hours, 168)


class TestCapProperties:
    @given(st.lists(st.floats(0.0, 3e9), min_size=1, max_size=30))
    def test_tracker_window_bounded(self, days):
        tracker = SoftCapTracker(SoftCapPolicy())
        for volume in days:
            tracker.record_day(volume)
            assert 0 <= tracker.window_total() <= 3 * 3e9
            assert len(tracker._window) <= 3

    @given(st.lists(st.floats(0.0, 0.3e9), min_size=1, max_size=30))
    def test_light_usage_never_capped(self, days):
        tracker = SoftCapTracker(SoftCapPolicy())
        for volume in days:
            tracker.record_day(volume)
            assert not tracker.potentially_capped()
