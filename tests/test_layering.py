"""Layering guard: analysis modules must go through the AnalysisContext.

Only ``repro.analysis.context`` may call the expensive derivation entry
points directly (cleaning, user-day classification, AP classification);
every other analysis module gets them memoized from the context. A direct
call re-introduces the scattered ``classification=None`` recompute
fallbacks this layer removed, so the guard greps the source tree.
"""

from __future__ import annotations

import re
from pathlib import Path

ANALYSIS_DIR = (
    Path(__file__).resolve().parents[1] / "src" / "repro" / "analysis"
)

#: Callables only context.py may invoke directly.
GUARDED_CALLS = re.compile(
    r"\b(clean_for_main_analysis|classify_user_days|classify_aps)\("
)


def _violations():
    found = []
    for path in sorted(ANALYSIS_DIR.glob("*.py")):
        if path.name == "context.py":
            continue
        for lineno, line in enumerate(path.read_text().splitlines(), start=1):
            stripped = line.strip()
            if stripped.startswith(("def ", "#", '"', "'")):
                continue
            if GUARDED_CALLS.search(line):
                found.append(f"{path.name}:{lineno}: {stripped}")
    return found


def test_analysis_modules_use_the_context():
    violations = _violations()
    assert not violations, (
        "direct derivation calls outside context.py (use "
        "AnalysisContext.user_classes()/.classification()/.clean()):\n"
        + "\n".join(violations)
    )


def test_guard_sees_the_allowed_calls_in_context():
    # Sanity-check the regex: context.py itself does make these calls, so
    # an empty violation list above means the guard is looking correctly.
    text = (ANALYSIS_DIR / "context.py").read_text()
    assert GUARDED_CALLS.search(text)
