"""Layering guard: analysis modules must go through the AnalysisContext.

Only ``repro.analysis.context`` may call the expensive derivation entry
points directly (cleaning, user-day classification, AP classification);
every other analysis module gets them memoized from the context. A direct
call re-introduces the scattered ``classification=None`` recompute
fallbacks this layer removed, so the guard greps the source tree.
"""

from __future__ import annotations

import re
from pathlib import Path

ANALYSIS_DIR = (
    Path(__file__).resolve().parents[1] / "src" / "repro" / "analysis"
)

#: Callables only context.py may invoke directly.
GUARDED_CALLS = re.compile(
    r"\b(clean_for_main_analysis|classify_user_days|classify_aps)\("
)


def _violations():
    found = []
    for path in sorted(ANALYSIS_DIR.glob("*.py")):
        if path.name == "context.py":
            continue
        for lineno, line in enumerate(path.read_text().splitlines(), start=1):
            stripped = line.strip()
            if stripped.startswith(("def ", "#", '"', "'")):
                continue
            if GUARDED_CALLS.search(line):
                found.append(f"{path.name}:{lineno}: {stripped}")
    return found


def test_analysis_modules_use_the_context():
    violations = _violations()
    assert not violations, (
        "direct derivation calls outside context.py (use "
        "AnalysisContext.user_classes()/.classification()/.clean()):\n"
        + "\n".join(violations)
    )


def test_guard_sees_the_allowed_calls_in_context():
    # Sanity-check the regex: context.py itself does make these calls, so
    # an empty violation list above means the guard is looking correctly.
    text = (ANALYSIS_DIR / "context.py").read_text()
    assert GUARDED_CALLS.search(text)


KERNEL_PATH = (
    Path(__file__).resolve().parents[1]
    / "src" / "repro" / "simulation" / "kernel.py"
)

#: The simulation kernel is a leaf compute layer: it must never reach up
#: into presentation (``repro.reporting``) or the run-report side of obs
#: (``repro.obs.report``) — such an import would invert the layering and
#: drag matplotlib-adjacent code into every shard worker.
FORBIDDEN_KERNEL_IMPORTS = re.compile(
    r"^\s*(?:from|import)\s+repro\.(?:reporting\b|obs\.report\b)",
    re.MULTILINE,
)


def test_kernel_never_imports_reporting_or_obs_report():
    text = KERNEL_PATH.read_text()
    matches = [m.group(0).strip() for m in
               FORBIDDEN_KERNEL_IMPORTS.finditer(text)]
    assert not matches, (
        "simulation/kernel.py must stay a leaf compute layer; forbidden "
        "imports found:\n" + "\n".join(matches)
    )


def test_kernel_guard_regex_catches_violations():
    # Sanity-check the pattern against the imports it must catch.
    for bad in (
        "from repro.reporting import tables",
        "import repro.reporting",
        "from repro.obs.report import write_run_report",
        "import repro.obs.report",
    ):
        assert FORBIDDEN_KERNEL_IMPORTS.search(bad), bad
    assert not FORBIDDEN_KERNEL_IMPORTS.search(
        "from repro.obs.span import get_tracer"
    )
