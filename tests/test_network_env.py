"""Unit tests for the deployment environment."""

import numpy as np
import pytest

from repro.apps.demand import DemandModel
from repro.errors import ConfigurationError
from repro.net.accesspoint import APType
from repro.net.identifiers import is_public_essid
from repro.network_env.deployment import (
    Deployment,
    DeploymentConfig,
    build_deployment,
)
from repro.network_env.home_wifi import HomeWifiConfig, build_home_ap
from repro.network_env.public_wifi import (
    PROVIDER_ESSIDS,
    PublicWifiConfig,
    open_venue_essid,
    provider_essid_for,
)
from repro.population.demographics import Occupation
from repro.population.profiles import WifiPolicy
from repro.population.recruitment import RecruitmentConfig, recruit
from repro.radio.bands import Band
from repro.radio.channels import NON_OVERLAPPING_24GHZ


@pytest.fixture()
def panel(rng):
    demand = DemandModel(2, appetite_median_mb=50.0)
    config = RecruitmentConfig(
        year=2015, n_android=80, n_ios=80, lte_share=0.8,
        home_ap_share=0.8, office_ap_share=0.3, mobile_ap_share=0.1,
    )
    return recruit(config, demand, rng)


@pytest.fixture()
def deployment(panel, rng):
    config = DeploymentConfig(
        year=2015,
        home=HomeWifiConfig(2015, fraction_5ghz=0.15, default_channel_share=0.15),
        public=PublicWifiConfig(2015, n_aps=800, fraction_5ghz=0.55),
        open_ap_count=60,
    )
    return build_deployment(panel, config, rng)


class TestPublicWifi:
    def test_provider_essids_are_public(self, rng):
        for _ in range(50):
            essid, _ = provider_essid_for(rng)
            assert is_public_essid(essid)

    def test_carrier_restrictions(self):
        restrictions = {essid: c for essid, _, c in PROVIDER_ESSIDS}
        assert restrictions["0000docomo"] == "docomo"
        assert restrictions["0001softbank"] == "softbank"
        assert restrictions["7SPOT"] is None

    def test_open_essids_not_public(self, rng):
        for _ in range(30):
            assert not is_public_essid(open_venue_essid(rng))

    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            PublicWifiConfig(2015, n_aps=-1, fraction_5ghz=0.5)
        with pytest.raises(ConfigurationError):
            PublicWifiConfig(2015, n_aps=10, fraction_5ghz=1.5)


class TestHomeWifi:
    def test_build_home_ap_fields(self, rng):
        config = HomeWifiConfig(2013, fraction_5ghz=0.0, default_channel_share=1.0)
        from repro.geo.coords import Coordinate
        ap = build_home_ap(7, 3, Coordinate(35.7, 139.7), config, rng)
        assert ap.ap_type is APType.HOME
        assert ap.band is Band.GHZ_2_4
        assert ap.channel == 1  # default_channel_share = 1

    def test_fon_share(self, rng):
        config = HomeWifiConfig(2015, fraction_5ghz=0.0,
                                default_channel_share=0.0, fon_share=1.0)
        from repro.geo.coords import Coordinate
        ap = build_home_ap(0, 0, Coordinate(35.7, 139.7), config, rng)
        assert ap.essid == "FON_FREE_INTERNET"

    def test_5ghz_fraction(self, rng):
        from repro.geo.coords import Coordinate
        config = HomeWifiConfig(2015, fraction_5ghz=0.5, default_channel_share=0.1)
        bands = [
            build_home_ap(i, i, Coordinate(35.7, 139.7), config, rng).band
            for i in range(400)
        ]
        share = sum(1 for b in bands if b is Band.GHZ_5) / len(bands)
        assert share == pytest.approx(0.5, abs=0.08)


class TestDeployment:
    def test_profiles_wired_to_aps(self, panel, deployment):
        for profile in panel:
            if profile.has_home_ap:
                ap = deployment.ap(profile.home_ap_id)
                assert ap.ap_type is APType.HOME
                assert ap.location == profile.home
            else:
                assert profile.home_ap_id == -1
            if profile.office_has_ap:
                assert deployment.ap(profile.office_ap_id).ap_type is APType.OFFICE
            if profile.has_mobile_ap:
                assert deployment.ap(profile.mobile_ap_id).ap_type is APType.MOBILE

    def test_student_campus_is_eduroam(self, panel, deployment):
        students = [
            p for p in panel
            if p.occupation is Occupation.STUDENT and p.office_has_ap
        ]
        for p in students:
            assert deployment.ap(p.office_ap_id).essid == "eduroam"

    def test_public_universe_size(self, deployment):
        publics = [a for a in deployment.aps.values() if a.ap_type is APType.PUBLIC]
        assert len(publics) == 800

    def test_public_channels_planned(self, deployment):
        publics = [
            a for a in deployment.aps.values()
            if a.ap_type is APType.PUBLIC and a.band is Band.GHZ_2_4
        ]
        assert all(a.channel in NON_OVERLAPPING_24GHZ for a in publics)

    def test_public_5ghz_fraction(self, deployment):
        publics = [a for a in deployment.aps.values() if a.ap_type is APType.PUBLIC]
        share = sum(1 for a in publics if a.band is Band.GHZ_5) / len(publics)
        assert share == pytest.approx(0.55, abs=0.06)

    def test_cell_index_consistency(self, deployment):
        total_indexed = sum(len(v) for v in deployment.venue_aps_by_cell.values())
        venue_aps = [
            a for a in deployment.aps.values()
            if a.ap_type in (APType.PUBLIC, APType.OPEN)
        ]
        assert total_indexed == len(venue_aps)
        counted = sum(
            n24 + n5 for n24, n5 in deployment.public_counts_by_cell.values()
        )
        publics = [a for a in deployment.aps.values() if a.ap_type is APType.PUBLIC]
        assert counted == len(publics)

    def test_density_lookup(self, deployment):
        from repro.geo.places import place
        n24, n5 = deployment.public_density(place("shinjuku"))
        assert n24 + n5 > 0

    def test_downtown_denser_than_fringe(self, deployment):
        from repro.geo.places import place
        downtown = sum(deployment.public_density(place("shinjuku")))
        fringe = sum(deployment.public_density(place("odawara")))
        assert downtown > fringe

    def test_familiar_open_aps_only_always_on(self, panel, deployment):
        for user_id, aps in deployment.familiar_open_aps.items():
            profile = panel[user_id]
            assert profile.wifi_policy is WifiPolicy.ALWAYS_ON
            for ap_id in aps:
                assert deployment.ap(ap_id).ap_type is APType.OPEN

    def test_unique_bssids(self, deployment):
        bssids = [a.bssid for a in deployment.aps.values()]
        assert len(set(bssids)) == len(bssids)
