"""Cross-check the vectorized AP classification against a naive reference.

The production implementation uses numpy group-bys for speed; this test
re-implements the §3.4.1 home inference and the office/mobile counting the
obvious slow way and verifies both agree on simulated data.
"""

from collections import Counter, defaultdict

import numpy as np

from repro.analysis.ap_classification import (
    HOME_NIGHT_FRACTION,
    MIN_NIGHT_SLOTS,
    MOBILE_CELL_THRESHOLD,
    _infer_home_aps,
    _infer_mobile_aps,
)
from repro.analysis.context import AnalysisContext
from repro.constants import SAMPLES_PER_DAY, SAMPLES_PER_HOUR
from repro.traces.records import WifiStateCode


def _reference_home_aps(device, day, hour, ap_id):
    night = (hour >= 22) | (hour < 6)
    night_counts = defaultdict(Counter)
    for d, dy, a in zip(device[night], day[night], ap_id[night]):
        night_counts[(int(d), int(dy))][int(a)] += 1
    votes = defaultdict(Counter)
    for (d, _dy), counter in night_counts.items():
        total = sum(counter.values())
        if total < MIN_NIGHT_SLOTS:
            continue
        top_ap, top_count = counter.most_common(1)[0]
        if top_count / total >= HOME_NIGHT_FRACTION:
            votes[d][top_ap] += 1
    return {d: int(c.most_common(1)[0][0]) for d, c in votes.items()}


def _reference_mobile(dataset, device, t, ap_id):
    geo = dataset.geo
    lookup = {}
    for d, tt, c, r in zip(geo.device, geo.t, geo.col, geo.row):
        lookup[(int(d), int(tt))] = (int(c), int(r))
    cells = defaultdict(set)
    for d, tt, a in zip(device, t, ap_id):
        cell = lookup.get((int(d), int(tt)))
        if cell is not None:
            cells[(int(d), int(a))].add(cell)
    return {
        a for (_d, a), seen in cells.items() if len(seen) >= MOBILE_CELL_THRESHOLD
    }


def test_home_inference_matches_reference(dataset2015):
    wifi = dataset2015.wifi
    assoc = wifi.state == int(WifiStateCode.ASSOCIATED)
    device = wifi.device[assoc].astype(np.int64)
    t = wifi.t[assoc].astype(np.int64)
    ap_id = wifi.ap_id[assoc].astype(np.int64)
    hour = (t % SAMPLES_PER_DAY) // SAMPLES_PER_HOUR
    day = t // SAMPLES_PER_DAY

    fast = _infer_home_aps(device, day, hour, ap_id)
    slow = _reference_home_aps(device, day, hour, ap_id)
    # Vote winners can differ only on exact vote ties; allow a tiny slack.
    assert set(fast) == set(slow)
    disagreements = sum(1 for d in fast if fast[d] != slow[d])
    assert disagreements <= max(1, len(fast) // 50)


def test_mobile_inference_matches_reference(dataset2015):
    wifi = dataset2015.wifi
    assoc = wifi.state == int(WifiStateCode.ASSOCIATED)
    device = wifi.device[assoc].astype(np.int64)
    t = wifi.t[assoc].astype(np.int64)
    ap_id = wifi.ap_id[assoc].astype(np.int64)
    fast = _infer_mobile_aps(AnalysisContext.of(dataset2015), device, t, ap_id)
    slow = _reference_mobile(dataset2015, device, t, ap_id)
    assert fast == slow
