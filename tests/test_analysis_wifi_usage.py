"""Unit tests for AP density, location traffic, associations, spectrum, RSSI."""

import numpy as np
import pytest

from repro.analysis.ap_classification import classify_aps
from repro.analysis.ap_density import association_density_maps, detected_coverage
from repro.analysis.association import (
    aps_per_day,
    association_durations,
    hpo_breakdown,
)
from repro.analysis.location_traffic import location_traffic
from repro.analysis.signal import rssi_distributions
from repro.analysis.spectrum import band_fractions, channel_distributions
from repro.analysis.users import classify_user_days
from repro.errors import AnalysisError
from repro.radio.bands import Band
from repro.traces.records import IfaceKind
from tests.helpers import (
    add_ap,
    add_association_span,
    add_daily_traffic,
    add_geo_span,
    make_builder,
    nightly_home_association,
    slot,
)


def _usage_dataset():
    """Two devices, one home AP each, one shared public AP, one office AP."""
    builder = make_builder(n_devices=2, n_days=7)
    add_ap(builder, 0, "home-0", channel=1)
    add_ap(builder, 1, "home-1", channel=6)
    add_ap(builder, 2, "0000docomo", band=Band.GHZ_5, channel=36)
    add_ap(builder, 3, "corp-1", channel=11)
    nightly_home_association(builder, 0, 0, n_days=7, rssi=-50.0)
    nightly_home_association(builder, 1, 1, n_days=7, rssi=-58.0)
    # Device 0 visits the public AP daily at noon for 30 minutes.
    for day in range(7):
        add_association_span(builder, 0, 2, slot(day, 12), slot(day, 12) + 3,
                             rssi=-63.0)
    # Device 1 works on weekdays under the office AP.
    for day in range(5):
        add_association_span(builder, 1, 3, slot(day, 11), slot(day, 17),
                             rssi=-54.0)
    # Daily traffic so every device-day passes the 0.1 MB validity floor.
    for device in (0, 1):
        for day in range(7):
            add_daily_traffic(builder, device, day, cell_rx_mb=5, wifi_rx_mb=20)
    # Geo: both devices live in distinct cells; device 0 lunches downtown.
    for device, cell in ((0, (0, 0)), (1, (2, 2))):
        for day in range(7):
            add_geo_span(builder, device, cell, slot(day, 0), slot(day + 1, 0)
                         if day < 6 else builder.axis.n_slots)
    return builder


class TestDensityMaps:
    def test_home_aps_in_their_cells(self):
        builder = _usage_dataset()
        ds = builder.build()
        maps = association_density_maps(ds)
        home_grid = maps.grid("home")
        assert home_grid.count((0, 0)) == 1
        assert home_grid.count((2, 2)) == 1
        public_grid = maps.grid("public")
        assert public_grid.count((0, 0)) == 1  # device 0's noon cell

    def test_unknown_class(self, dataset2015, cache):
        maps = association_density_maps(dataset2015, cache.classification(2015))
        with pytest.raises(AnalysisError):
            maps.grid("bogus")

    def test_detected_coverage_from_sightings(self):
        builder = _usage_dataset()
        builder.extend_sightings(
            device=[0, 0, 0], t=[slot(0, 12)] * 3, ap_id=[2, 2, 2],
            rssi=[-60.0, -70.0, -70.0],
        )
        coverage = detected_coverage(builder.build())
        assert coverage.grids["5_all"].max_count() == 1
        assert coverage.grids["5_strong"].max_count() == 1

    def test_detected_coverage_requires_sightings(self):
        with pytest.raises(AnalysisError):
            detected_coverage(make_builder().build())

    def test_public_denser_downtown_in_study(self, dataset2015, cache):
        maps = association_density_maps(dataset2015, cache.classification(2015))
        public = maps.grid("public")
        home = maps.grid("home")
        # Homes spread over more cells; publics concentrate (Figure 10).
        assert public.max_count() >= home.max_count()


class TestLocationTraffic:
    def test_volume_shares_exact(self):
        builder = _usage_dataset()
        # Traffic only during associated slots with known volumes.
        builder.extend_traffic(
            device=[0, 0, 1],
            t=[slot(0, 22), slot(0, 12), slot(0, 11)],
            iface=[int(IfaceKind.WIFI)] * 3,
            rx=[90e6, 10e6, 50e6], tx=[0, 0, 0],
        )
        lt = location_traffic(builder.build())
        assert lt.volume_share["home"] == pytest.approx(90e6 / 150e6)
        assert lt.volume_share["public"] == pytest.approx(10e6 / 150e6)
        assert lt.volume_share["office"] == pytest.approx(50e6 / 150e6)

    def test_home_dominates_in_study(self, dataset2015, cache):
        lt = location_traffic(dataset2015, cache.classification(2015))
        assert lt.volume_share["home"] > 0.85  # paper: ~95%
        assert lt.volume_share["public"] < 0.10

    def test_series_keys(self, dataset2013, cache):
        lt = location_traffic(dataset2013, cache.classification(2013))
        for key in ("home_rx", "home_tx", "public_rx", "office_rx", "other_rx"):
            assert key in lt.series
        with pytest.raises(AnalysisError):
            lt.folded_week("bogus")


class TestApsPerDay:
    def test_counts_exact(self):
        ds = _usage_dataset().build()
        # Device 0: home + public every day (2 APs). Device 1: home always,
        # office on weekdays (the campaign starts Monday: 5 weekdays).
        result = aps_per_day(ds)
        assert result.pct("all", 2) == pytest.approx(100.0 * 12 / 14)
        assert result.pct("all", 1) == pytest.approx(100.0 * 2 / 14)

    def test_multi_ap_growth_in_study(self, dataset2013, dataset2015):
        r13 = aps_per_day(dataset2013)
        r15 = aps_per_day(dataset2015)
        assert r15.pct("all", 1) < r13.pct("all", 1)  # §3.4.2

    def test_requires_associations(self):
        with pytest.raises(AnalysisError):
            aps_per_day(make_builder().build())


class TestHpoBreakdown:
    def test_combos_exact(self):
        ds = _usage_dataset().build()
        breakdown = hpo_breakdown(ds)
        # Device 0 days: 1 home + 1 public = "110". Device 1 weekdays:
        # 1 home + 1 other(office) = "101"; weekends home only = "100".
        assert breakdown.pct(1, 1, 0) == pytest.approx(100.0 * 7 / 14)
        assert breakdown.pct(1, 0, 1) == pytest.approx(100.0 * 5 / 14)
        assert breakdown.pct(1, 0, 0) == pytest.approx(100.0 * 2 / 14)

    def test_percentages_sum_to_100(self, dataset2015, cache):
        breakdown = hpo_breakdown(dataset2015, cache.classification(2015))
        total = sum(breakdown.combos.values()) + breakdown.four_plus_pct
        assert total == pytest.approx(100.0)

    def test_home_only_dominates(self, dataset2015, cache):
        breakdown = hpo_breakdown(dataset2015, cache.classification(2015))
        assert breakdown.pct(1, 0, 0) > 30.0  # Table 5: ~46% in 2015


class TestAssociationDurations:
    def test_durations_exact(self):
        builder = make_builder(n_devices=1, n_days=2)
        add_ap(builder, 0, "0000docomo")
        add_association_span(builder, 0, 0, slot(0, 12), slot(0, 13))  # 1 h
        add_association_span(builder, 0, 0, slot(1, 9), slot(1, 12))   # 3 h
        durations = association_durations(builder.build())
        values = sorted(durations.ccdf_by_class["public"].values)
        assert values == [1.0, 3.0]

    def test_interruption_splits_runs(self):
        builder = make_builder(n_devices=1, n_days=1)
        add_ap(builder, 0, "0000docomo")
        add_association_span(builder, 0, 0, slot(0, 10), slot(0, 11))
        add_association_span(builder, 0, 0, slot(0, 12), slot(0, 13))
        durations = association_durations(builder.build())
        assert len(durations.ccdf_by_class["public"].values) == 2

    def test_ap_change_splits_runs(self):
        builder = make_builder(n_devices=1, n_days=1)
        add_ap(builder, 0, "0000docomo")
        add_ap(builder, 1, "0001softbank")
        add_association_span(builder, 0, 0, slot(0, 10), slot(0, 11))
        add_association_span(builder, 0, 1, slot(0, 11), slot(0, 12))
        durations = association_durations(builder.build())
        assert len(durations.ccdf_by_class["public"].values) == 2

    def test_study_ordering_home_longest(self, dataset2015, cache):
        durations = association_durations(dataset2015, cache.classification(2015))
        # Figure 13: home (~12h) > office (~8h) > public (~1h) at the 90th pct.
        assert durations.p90_hours["home"] > durations.p90_hours["public"]
        assert durations.p90_hours["public"] < 2.5


class TestSpectrum:
    def test_band_fraction_exact(self):
        ds = _usage_dataset().build()
        fractions = band_fractions(ds)
        assert fractions.fraction("public") == pytest.approx(1.0)  # the 5GHz AP
        assert fractions.fraction("home") == pytest.approx(0.0)

    def test_public_5ghz_grows(self, dataset2013, dataset2015, cache):
        f13 = band_fractions(dataset2013, cache.classification(2013))
        f15 = band_fractions(dataset2015, cache.classification(2015))
        assert f15.fraction("public") > f13.fraction("public")
        assert f15.fraction("home") < 0.35  # still mostly 2.4 GHz

    def test_channel_distribution_exact(self):
        # The only public AP is 5 GHz, so restrict to home/office classes.
        ds = _usage_dataset().build()
        dist = channel_distributions(ds, classes=("home", "office"))
        assert dist.channel_share("home", 1) == pytest.approx(0.5)
        assert dist.channel_share("home", 6) == pytest.approx(0.5)
        assert dist.channel_share("office", 11) == pytest.approx(1.0)

    def test_channel_requires_some_24ghz_aps(self):
        builder = make_builder(n_devices=1, n_days=1)
        add_ap(builder, 0, "0000docomo", band=Band.GHZ_5, channel=36)
        add_association_span(builder, 0, 0, 0, 6)
        with pytest.raises(AnalysisError):
            channel_distributions(builder.build(), classes=("public",))

    def test_channel_skips_empty_classes(self):
        builder = make_builder(n_devices=1, n_days=1)
        add_ap(builder, 0, "0000docomo", band=Band.GHZ_5, channel=36)
        add_ap(builder, 1, "cafe-guest-0001", band=Band.GHZ_2_4, channel=6)
        add_association_span(builder, 0, 0, 0, 6)
        add_association_span(builder, 0, 1, 12, 18)
        dist = channel_distributions(builder.build(), classes=("public", "other"))
        assert "public" not in dist.pdf
        assert dist.channel_share("other", 6) == pytest.approx(1.0)

    def test_public_channels_concentrated_on_trio(self, dataset2015, cache):
        dist = channel_distributions(dataset2015, cache.classification(2015))
        assert dist.trio_share("public") > 0.95  # Figure 16

    def test_home_ch1_declines(self, dataset2013, dataset2015, cache):
        d13 = channel_distributions(dataset2013, cache.classification(2013))
        d15 = channel_distributions(dataset2015, cache.classification(2015))
        assert d15.channel_share("home", 1) < d13.channel_share("home", 1)


class TestRssi:
    def test_max_rssi_per_ap(self):
        builder = make_builder(n_devices=1, n_days=1)
        add_ap(builder, 0, "0000docomo")
        builder.extend_wifi(device=[0, 0, 0], t=[0, 1, 2], state=[2, 2, 2],
                            ap_id=[0, 0, 0], rssi=[-70.0, -55.0, -62.0])
        dist = rssi_distributions(builder.build(), classes=("public",))
        assert dist.samples["public"].tolist() == [-55.0]

    def test_weak_fraction(self):
        builder = make_builder(n_devices=1, n_days=1)
        for ap_id, rssi in enumerate((-50.0, -70.0, -75.0, -80.0)):
            add_ap(builder, ap_id, "0000docomo", bssid=None)
            builder.extend_wifi(device=[0], t=[ap_id], state=[2],
                                ap_id=[ap_id], rssi=[rssi])
        dist = rssi_distributions(builder.build(), classes=("public",))
        # RSSI < -70 is weak: two of four.
        assert dist.weak_fraction["public"] == pytest.approx(0.5)

    def test_5ghz_aps_excluded(self):
        builder = make_builder(n_devices=1, n_days=1)
        add_ap(builder, 0, "0000docomo", band=Band.GHZ_5, channel=36)
        add_association_span(builder, 0, 0, 0, 3)
        with pytest.raises(AnalysisError):
            rssi_distributions(builder.build(), classes=("public",))

    def test_study_home_stronger_than_public(self, dataset2015, cache):
        dist = rssi_distributions(dataset2015, cache.classification(2015))
        assert dist.mean["home"] > dist.mean["public"]  # Figure 15
        assert dist.weak_fraction["public"] > dist.weak_fraction["home"]

    def test_pdf_shape(self, dataset2015, cache):
        dist = rssi_distributions(dataset2015, cache.classification(2015))
        centers, density = dist.pdf("home")
        assert len(centers) == len(density)
        assert density.min() >= 0
