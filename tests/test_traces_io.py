"""Round-trip tests for dataset persistence."""

import numpy as np
import pytest

from repro.errors import DatasetError
from repro.net.accesspoint import APType
from repro.traces.dataset import GroundTruth
from repro.traces.io import load_dataset, save_dataset
from tests.helpers import add_ap, add_association_span, add_daily_traffic, make_builder


@pytest.fixture()
def small_dataset():
    builder = make_builder(n_devices=2, n_days=3)
    add_ap(builder, 0, "home-1")
    add_ap(builder, 1, "0000docomo")
    add_daily_traffic(builder, 0, 0, cell_rx_mb=10, wifi_rx_mb=30)
    add_daily_traffic(builder, 1, 1, cell_rx_mb=4)
    add_association_span(builder, 0, 0, 10, 30, rssi=-52.0)
    builder.extend_geo(device=[0], t=[0], col=[2], row=[-1])
    builder.extend_scans(device=[0], t=[5], n24_all=[4], n24_strong=[1],
                         n5_all=[2], n5_strong=[0])
    builder.extend_sightings(device=[0], t=[6], ap_id=[1], rssi=[-66.0])
    builder.extend_apps(device=[0], day=[0], category=[2], cellular=[0],
                        ap_id=[0], col=[2], row=[-1], rx=[1e6], tx=[2e5])
    builder.extend_updates(device=[1], t=[200], bytes=[565e6])
    builder.ground_truth = GroundTruth(
        ap_types={0: APType.HOME, 1: APType.PUBLIC},
        home_ap_of_user={0: 0},
        wifi_policy_of_user={0: "always_on", 1: "no_config"},
    )
    return builder.build()


def test_round_trip(tmp_path, small_dataset):
    save_dataset(small_dataset, tmp_path / "ds")
    loaded = load_dataset(tmp_path / "ds")

    assert loaded.year == small_dataset.year
    assert loaded.axis == small_dataset.axis
    assert loaded.devices == small_dataset.devices
    assert loaded.ap_directory == small_dataset.ap_directory
    for table in ("traffic", "wifi", "geo", "scans", "sightings", "apps", "updates"):
        original = getattr(small_dataset, table)
        copy = getattr(loaded, table)
        assert set(original.columns) == set(copy.columns)
        for col in original.columns:
            np.testing.assert_array_equal(original.columns[col], copy.columns[col])


def test_ground_truth_round_trip(tmp_path, small_dataset):
    save_dataset(small_dataset, tmp_path / "ds")
    loaded = load_dataset(tmp_path / "ds")
    assert loaded.ground_truth is not None
    assert loaded.ground_truth.ap_types == {0: APType.HOME, 1: APType.PUBLIC}
    assert loaded.ground_truth.home_ap_of_user == {0: 0}
    assert loaded.ground_truth.wifi_policy_of_user[1] == "no_config"


def test_load_missing_path(tmp_path):
    with pytest.raises(DatasetError):
        load_dataset(tmp_path / "nope")


def test_load_bad_version(tmp_path, small_dataset):
    root = save_dataset(small_dataset, tmp_path / "ds")
    meta = (root / "meta.json").read_text().replace(
        '"format_version": 1', '"format_version": 99'
    )
    (root / "meta.json").write_text(meta)
    with pytest.raises(DatasetError, match="format version"):
        load_dataset(root)


def test_save_overwrites_cleanly(tmp_path, small_dataset):
    save_dataset(small_dataset, tmp_path / "ds")
    save_dataset(small_dataset, tmp_path / "ds")
    loaded = load_dataset(tmp_path / "ds")
    assert loaded.n_devices == 2
