"""Unit tests for availability (Fig 17, §3.5) and the app breakdown (T6/T7)."""

import numpy as np
import pytest

from repro.analysis.app_breakdown import app_breakdown, infer_home_cells
from repro.analysis.availability import offload_estimate, public_availability
from repro.analysis.users import classify_user_days
from repro.apps.categories import category_code
from repro.errors import AnalysisError
from repro.traces.records import IfaceKind, WifiStateCode
from tests.helpers import (
    add_ap,
    add_association_span,
    add_geo_span,
    add_state_span,
    make_builder,
    nightly_home_association,
    slot,
)


class TestPublicAvailability:
    def _scan_dataset(self):
        builder = make_builder(n_devices=2, n_days=1)
        # Device 0 available 9:00-12:00 with known scan counts.
        add_state_span(builder, 0, WifiStateCode.AVAILABLE, slot(0, 9), slot(0, 12))
        builder.extend_scans(
            device=[0, 0, 0],
            t=[slot(0, 9), slot(0, 10), slot(0, 11)],
            n24_all=[2, 12, 0], n24_strong=[1, 3, 0],
            n5_all=[0, 4, 0], n5_strong=[0, 1, 0],
        )
        # Device 1 scans while associated: must be excluded from Fig 17.
        add_ap(builder, 0, "net")
        add_association_span(builder, 1, 0, slot(0, 9), slot(0, 10))
        builder.extend_scans(
            device=[1], t=[slot(0, 9)], n24_all=[50], n24_strong=[25],
            n5_all=[0], n5_strong=[0],
        )
        return builder

    def test_only_available_samples_counted(self):
        availability = public_availability(self._scan_dataset().build())
        assert availability.n_samples == 3
        # Only device 0's counts contribute; the 50-AP sample is excluded.
        assert availability.ccdf("24_all").values.max() == 12

    def test_fraction_seeing(self):
        availability = public_availability(self._scan_dataset().build())
        assert availability.fraction_seeing("24_all", 10) == pytest.approx(1 / 3)
        assert availability.fraction_seeing("24_strong", 1) == pytest.approx(2 / 3)
        assert availability.fraction_seeing("24_all", 0) == 1.0

    def test_unknown_key(self):
        availability = public_availability(self._scan_dataset().build())
        with pytest.raises(AnalysisError):
            availability.ccdf("6ghz_all")

    def test_requires_scans(self):
        with pytest.raises(AnalysisError):
            public_availability(make_builder().build())

    def test_paper_shape_in_study(self, dataset2015):
        availability = public_availability(dataset2015)
        # Figure 17: most available samples see fewer than 10 2.4 GHz APs.
        assert availability.fraction_seeing("24_all", 10) < 0.35
        # Strong networks are rarer than all detected networks.
        strong1 = availability.fraction_seeing("24_strong", 1)
        all1 = availability.fraction_seeing("24_all", 1)
        assert strong1 < all1


class TestOffloadEstimate:
    def test_offloadable_fraction_exact(self):
        builder = make_builder(n_devices=1, n_days=1)
        add_state_span(builder, 0, WifiStateCode.AVAILABLE, slot(0, 9), slot(0, 12))
        # Strong public network visible only at 10:00.
        builder.extend_scans(
            device=[0, 0], t=[slot(0, 9), slot(0, 10)],
            n24_all=[3, 3], n24_strong=[0, 2], n5_all=[0, 0], n5_strong=[0, 0],
        )
        builder.extend_traffic(
            device=[0, 0], t=[slot(0, 9), slot(0, 10)],
            iface=[int(IfaceKind.CELL_LTE)] * 2, rx=[30e6, 10e6], tx=[0, 0],
        )
        estimate = offload_estimate(builder.build())
        assert estimate.offloadable_fraction == pytest.approx(0.25)
        assert estimate.devices_with_opportunity == 1.0
        assert estimate.n_available_devices == 1

    def test_study_range(self, dataset2015):
        estimate = offload_estimate(dataset2015)
        # §3.5: 15-20% offloadable; allow slack for the small panel.
        assert 0.05 < estimate.offloadable_fraction < 0.35
        assert estimate.devices_with_opportunity > 0.4


class TestHomeCellInference:
    def test_modal_night_cell(self):
        builder = make_builder(n_devices=1, n_days=2)
        for day in range(2):
            add_geo_span(builder, 0, (5, 5), slot(day, 0), slot(day, 9))
            add_geo_span(builder, 0, (9, 9), slot(day, 9), slot(day, 18))
            add_geo_span(builder, 0, (5, 5), slot(day, 18), slot(day, 24))
        homes = infer_home_cells(builder.build())
        assert homes[0] == (5, 5)

    def test_empty_geo(self):
        assert infer_home_cells(make_builder().build()) == {}


class TestAppBreakdown:
    def _app_dataset(self):
        builder = make_builder(n_devices=1, n_days=3)
        add_ap(builder, 0, "home-0")
        add_ap(builder, 1, "0000docomo")
        nightly_home_association(builder, 0, 0, n_days=3)
        add_geo_span(builder, 0, (0, 0), 0, builder.axis.n_slots)
        video = category_code("video")
        browser = category_code("browser")
        prod = category_code("productivity")
        # WiFi home: video-dominated.
        builder.extend_apps(
            device=[0, 0], day=[0, 0], category=[video, browser],
            cellular=[0, 0], ap_id=[0, 0], col=[0, 0], row=[0, 0],
            rx=[80e6, 20e6], tx=[4e6, 16e6],
        )
        # WiFi public: productivity upload.
        add_association_span(builder, 0, 1, slot(1, 12), slot(1, 13))
        builder.extend_apps(
            device=[0], day=[1], category=[prod], cellular=[0], ap_id=[1],
            col=[0], row=[0], rx=[5e6], tx=[20e6],
        )
        # Cellular at home cell vs away.
        builder.extend_apps(
            device=[0, 0], day=[2, 2], category=[browser, video],
            cellular=[1, 1], ap_id=[-1, -1], col=[0, 9], row=[0, 9],
            rx=[30e6, 10e6], tx=[3e6, 1e6],
        )
        return builder.build()

    def test_context_attribution(self):
        breakdown = app_breakdown(self._app_dataset())
        top_home = breakdown.top("wifi_home", n=1)
        assert top_home[0][0] == "video"
        assert top_home[0][1] == pytest.approx(80.0)
        top_public = breakdown.top("wifi_public", n=1)
        assert top_public[0][0] == "productivity"
        top_cell_home = breakdown.top("cell_home", n=1)
        assert top_cell_home[0][0] == "browser"
        top_cell_other = breakdown.top("cell_other", n=1)
        assert top_cell_other[0][0] == "video"

    def test_tx_direction(self):
        breakdown = app_breakdown(self._app_dataset())
        top_tx = breakdown.top("wifi_home", n=1, direction="tx")
        assert top_tx[0][0] == "browser"  # 16e6 vs 4e6

    def test_shares_sum_to_one(self):
        breakdown = app_breakdown(self._app_dataset())
        for ctx, shares in breakdown.shares_rx.items():
            if shares:
                assert sum(shares.values()) == pytest.approx(1.0)

    def test_unknown_context(self):
        breakdown = app_breakdown(self._app_dataset())
        with pytest.raises(AnalysisError):
            breakdown.top("wifi_moon")

    def test_requires_app_records(self):
        with pytest.raises(AnalysisError):
            app_breakdown(make_builder().build())

    def test_subset_requires_classes(self):
        with pytest.raises(AnalysisError):
            app_breakdown(self._app_dataset(), subset="light")

    def test_study_browser_and_video_top(self, dataset2015, cache):
        breakdown = app_breakdown(dataset2015, cache.classification(2015))
        top5_home = [name for name, _ in breakdown.top("wifi_home", n=5)]
        # Tables 6: video and browser lead WiFi-home RX by 2015.
        assert "video" in top5_home
        assert "browser" in top5_home

    def test_study_productivity_on_wifi_tx(self, dataset2015, cache):
        breakdown = app_breakdown(dataset2015, cache.classification(2015))
        top5 = [name for name, _ in breakdown.top("wifi_home", n=5, direction="tx")]
        assert "productivity" in top5  # Table 7

    def test_light_subset_runs(self, dataset2015, cache):
        classes = cache.user_classes(2015)
        breakdown = app_breakdown(
            dataset2015, cache.classification(2015), classes, subset="light"
        )
        assert breakdown.top("cell_home", n=3)
