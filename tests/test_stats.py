"""Unit tests for statistical helpers."""

import numpy as np
import pytest

from repro.errors import AnalysisError
from repro.stats.distributions import ccdf, ecdf, pdf_histogram, percentile_band_mask
from repro.stats.growth import annual_growth_rate, linear_fit
from repro.stats.timeseries import (
    HourlySeries,
    bytes_to_mbps,
    hour_of_week_labels,
)


class TestEcdf:
    def test_basic(self):
        dist = ecdf([3.0, 1.0, 2.0])
        assert list(dist.values) == [1.0, 2.0, 3.0]
        assert list(dist.probs) == pytest.approx([1 / 3, 2 / 3, 1.0])

    def test_at(self):
        dist = ecdf([1.0, 2.0, 3.0, 4.0])
        assert dist.at(0.5) == 0.0
        assert dist.at(2.0) == 0.5
        assert dist.at(2.5) == 0.5
        assert dist.at(10.0) == 1.0

    def test_quantile_and_median(self):
        dist = ecdf(np.arange(1, 101, dtype=float))
        assert dist.median() == 50.0
        assert dist.quantile(0.9) == 90.0
        assert dist.quantile(1.0) == 100.0

    def test_quantile_validation(self):
        dist = ecdf([1.0])
        with pytest.raises(AnalysisError):
            dist.quantile(0.0)
        with pytest.raises(AnalysisError):
            dist.quantile(1.5)

    def test_empty_rejected(self):
        with pytest.raises(AnalysisError):
            ecdf([])

    def test_nan_rejected(self):
        with pytest.raises(AnalysisError):
            ecdf([1.0, float("nan")])

    def test_ccdf_complements(self):
        samples = [1.0, 2.0, 3.0, 4.0]
        c = ccdf(samples)
        e = ecdf(samples)
        assert np.allclose(c.probs, 1.0 - e.probs)


class TestPdfHistogram:
    def test_density_integrates_to_one(self, rng):
        samples = rng.normal(-55, 7, 5000)
        centers, density = pdf_histogram(samples, bins=40)
        width = centers[1] - centers[0]
        assert (density * width).sum() == pytest.approx(1.0, abs=0.01)

    def test_empty_rejected(self):
        with pytest.raises(AnalysisError):
            pdf_histogram([])


class TestPercentileBand:
    def test_light_band_is_about_20pct(self, rng):
        samples = rng.exponential(100.0, 10_000)
        mask = percentile_band_mask(samples, 40, 60)
        assert mask.mean() == pytest.approx(0.20, abs=0.01)

    def test_top_band_inclusive(self):
        samples = np.arange(100, dtype=float)
        mask = percentile_band_mask(samples, 95, 100)
        assert mask.sum() == 5
        assert mask[-1]

    def test_bands_partition(self, rng):
        samples = rng.normal(0, 1, 1000)
        low = percentile_band_mask(samples, 0, 50)
        high = percentile_band_mask(samples, 50, 100)
        assert (low | high).all()
        assert not (low & high).any()

    def test_invalid_band(self):
        with pytest.raises(AnalysisError):
            percentile_band_mask(np.ones(5), 60, 40)

    def test_empty_returns_empty(self):
        assert percentile_band_mask(np.array([]), 40, 60).size == 0


class TestGrowth:
    def test_linear_fit_exact(self):
        intercept, slope = linear_fit([0, 1, 2], [1.0, 3.0, 5.0])
        assert intercept == pytest.approx(1.0)
        assert slope == pytest.approx(2.0)

    def test_linear_fit_needs_two_points(self):
        with pytest.raises(AnalysisError):
            linear_fit([1], [2.0])

    def test_agr_geometric_series(self):
        # Doubling every year -> AGR 100%.
        agr = annual_growth_rate([2013, 2014, 2015], [100.0, 200.0, 400.0])
        assert agr == pytest.approx(1.0)

    def test_agr_matches_table3_exactly(self):
        # Table 3 WiFi medians 9.2/24.3/50.7 -> reported AGR 134%.
        agr = annual_growth_rate([2013, 2014, 2015], [9.2, 24.3, 50.7])
        assert agr == pytest.approx(1.34, abs=0.02)
        # Table 3 "All" medians 57.9/90.3/126.5 -> reported AGR 48%.
        agr_all = annual_growth_rate([2013, 2014, 2015], [57.9, 90.3, 126.5])
        assert agr_all == pytest.approx(0.48, abs=0.01)

    def test_agr_rejects_nonpositive_values(self):
        with pytest.raises(AnalysisError):
            annual_growth_rate([0, 1, 2], [-10.0, 0.0, 10.0])


class TestTimeseries:
    def test_bytes_to_mbps(self):
        # 450 MB in one hour = 1 Mbps.
        assert bytes_to_mbps(np.array([450e6]))[0] == pytest.approx(1.0)
        with pytest.raises(AnalysisError):
            bytes_to_mbps(np.ones(3), interval_s=0)

    def test_fold_week_alignment(self):
        # Campaign starting Wednesday (weekday 2), one full week of hours.
        values = np.arange(168.0)
        series = HourlySeries(values, start_weekday=2)
        folded = series.fold_week(week_start_weekday=2)
        assert np.allclose(folded, values)

    def test_fold_week_averages_repeats(self):
        values = np.concatenate([np.full(168, 1.0), np.full(168, 3.0)])
        series = HourlySeries(values, start_weekday=5)
        folded = series.fold_week()
        assert np.allclose(folded, 2.0)

    def test_fold_week_nan_for_uncovered(self):
        series = HourlySeries(np.ones(24), start_weekday=5)  # one Saturday
        folded = series.fold_week(week_start_weekday=5)
        assert np.isfinite(folded[:24]).all()
        assert np.isnan(folded[24:]).all()

    def test_bad_weekday(self):
        with pytest.raises(AnalysisError):
            HourlySeries(np.ones(24), start_weekday=7)

    def test_labels(self):
        labels = hour_of_week_labels(week_start_weekday=5)
        assert labels[0] == "Sat 00:00"
        assert labels[24] == "Sun 00:00"
        assert len(labels) == 168
