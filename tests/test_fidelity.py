"""Fidelity observability: registry, predicates, scorer, gate, docgen."""

from __future__ import annotations

import json
import math

import pytest

from repro.errors import ReproError
from repro.obs import fidelity as F
from repro.obs.docgen import fidelity_tables, rewrite_experiments_doc
from repro.obs.fidelity import (
    FidelityReport,
    fidelity_regressions,
    resolve_check_ids,
    score_fidelity,
)
from repro.obs.reference import (
    REFERENCES,
    VERDICT_FAIL,
    VERDICT_PASS,
    VERDICT_SKIP,
    VERDICT_WARN,
    Crossover,
    Greater,
    Holds,
    Ordering,
    Range,
    RelTol,
    paper_item_of,
    refs_for,
    verdict_rank,
)


# ----------------------------------------------------------------------
# Registry invariants
# ----------------------------------------------------------------------

def test_every_reference_has_an_extractor():
    assert F.missing_extractors() == []
    assert set(F._EXTRACTORS) == set(REFERENCES)


def test_registry_covers_every_experiment():
    from repro.reporting.experiments import EXPERIMENTS

    covered = {ref.experiment_id for ref in REFERENCES.values()}
    assert covered == set(EXPERIMENTS)


def test_refs_are_well_formed():
    for check_id, ref in REFERENCES.items():
        assert ref.check_id == check_id
        assert ref.quantity and ref.paper
        assert ref.predicate.describe()
        assert paper_item_of(ref.experiment_id)[0].isupper()


def test_refs_for_groups_by_experiment():
    table3 = refs_for("table3")
    assert [r.experiment_id for r in table3] == ["table3"] * len(table3)
    assert len(table3) >= 3


def test_paper_item_of_display_names():
    assert paper_item_of("table3") == "Table 3"
    assert paper_item_of("fig05") == "Figure 5"
    assert paper_item_of("sec35") == "Section 3.5"


def test_verdict_rank_orders_severity():
    assert (verdict_rank(VERDICT_PASS) < verdict_rank(VERDICT_WARN)
            < verdict_rank(VERDICT_FAIL))
    with pytest.raises(ValueError):
        verdict_rank(VERDICT_SKIP)


# ----------------------------------------------------------------------
# Predicates
# ----------------------------------------------------------------------

def test_reltol_bands():
    pred = RelTol(tol=0.10)
    assert pred.verdict(100.0, 100.0) == (VERDICT_PASS, 0.0)
    verdict, div = pred.verdict(108.0, 100.0)   # 8% err / 10% tol
    assert verdict == VERDICT_PASS and div == pytest.approx(0.8)
    verdict, div = pred.verdict(115.0, 100.0)   # 15% err -> warn band
    assert verdict == VERDICT_WARN and div == pytest.approx(1.5)
    verdict, _ = pred.verdict(150.0, 100.0)     # 50% err -> fail
    assert verdict == VERDICT_FAIL


def test_reltol_elementwise_takes_worst():
    pred = RelTol(tol=0.25)
    verdict, div = pred.verdict((1.0, 2.0), (1.0, 1.0))
    assert verdict == VERDICT_FAIL and div == pytest.approx(4.0)
    with pytest.raises(ValueError):
        pred.divergence((1.0, 2.0), (1.0,))


def test_range_inside_and_outside():
    pred = Range(lo=1.0, hi=2.0)
    assert pred.verdict(1.5) == (VERDICT_PASS, 0.0)
    verdict, div = pred.verdict(2.5)            # half a span outside
    assert verdict == VERDICT_WARN and div == pytest.approx(1.5)
    assert pred.verdict(4.0)[0] == VERDICT_FAIL
    assert pred.verdict(0.0)[0] == VERDICT_WARN   # exactly the warn edge
    assert pred.verdict(-0.5)[0] == VERDICT_FAIL


def test_ordering_directions_and_slack():
    down = Ordering("decreasing")
    assert down.verdict([3.0, 2.0, 1.0]) == (VERDICT_PASS, 0.0)
    # A 2% uptick sits inside the 5% slack.
    assert down.verdict([3.0, 2.0, 2.04])[0] == VERDICT_PASS
    assert down.verdict([1.0, 3.0])[0] == VERDICT_FAIL
    up = Ordering("increasing")
    assert up.verdict([1.0, 2.0, 3.0]) == (VERDICT_PASS, 0.0)
    assert up.verdict([3.0, 1.0])[0] == VERDICT_FAIL


def test_crossover_requires_both_endpoints():
    pred = Crossover()
    measured = ((1.0, 10.0), (5.0, 6.0))        # a crosses b
    assert pred.verdict(measured) == (VERDICT_PASS, 0.0)
    never_crosses = ((1.0, 4.0), (5.0, 6.0))
    assert pred.verdict(never_crosses)[0] == VERDICT_FAIL
    started_above = ((6.0, 10.0), (5.0, 6.0))
    assert pred.verdict(started_above)[0] == VERDICT_FAIL


def test_greater_and_holds():
    assert Greater().verdict((2.0, 1.0)) == (VERDICT_PASS, 0.0)
    assert Greater().verdict((1.0, 2.0))[0] == VERDICT_FAIL
    assert Greater(min_ratio=1.5).verdict((1.4, 1.0))[0] != VERDICT_PASS
    assert Holds().verdict(1.0) == (VERDICT_PASS, 0.0)
    assert Holds().verdict(0.0)[0] == VERDICT_FAIL


def test_nan_divergence_fails():
    verdict, div = RelTol(tol=0.1).verdict(float("nan"), 1.0)
    assert verdict == VERDICT_FAIL and not math.isnan(div)


# ----------------------------------------------------------------------
# Check-id resolution
# ----------------------------------------------------------------------

def test_resolve_all_and_subsets():
    assert resolve_check_ids() == sorted(REFERENCES)
    assert resolve_check_ids(["all"]) == sorted(REFERENCES)
    t3 = resolve_check_ids(["table3"])
    assert t3 == [r.check_id for r in refs_for("table3")]
    assert resolve_check_ids(["t3_median_all"]) == ["t3_median_all"]
    # Mixing experiment and check ids dedups.
    mixed = resolve_check_ids(["table3", "t3_median_all"])
    assert mixed == t3


def test_resolve_unknown_raises_config_error():
    with pytest.raises(ReproError, match="unknown fidelity checks"):
        resolve_check_ids(["fig99"])


# ----------------------------------------------------------------------
# Scoring on the shared study fixture
# ----------------------------------------------------------------------

@pytest.fixture(scope="module")
def scored(cache):
    return score_fidelity(cache, scale=0.045, seed=42)


def test_score_covers_registry(scored):
    assert len(scored.records) == len(REFERENCES)
    assert [r.check_id for r in scored.records] == sorted(REFERENCES)
    assert (scored.n_pass + scored.n_warn + scored.n_fail
            + scored.n_skip) == len(scored.records)


def test_tolerance_check_passes(scored):
    rec = scored.record("t3_median_all")
    assert rec.verdict == VERDICT_PASS
    assert rec.divergence is not None and rec.divergence <= 1.0
    assert len(rec.measured) == 3


def test_shape_checks_pass(scored):
    # Ordering: the Table 3 AGR ranking WiFi >> all > cell.
    assert scored.record("t3_agr_ordering").verdict == VERDICT_PASS
    # Crossover: median WiFi starts below and ends above median cellular.
    assert scored.record("t3_wifi_overtakes_cell").verdict == VERDICT_PASS


def test_most_checks_pass_on_fixture_study(scored):
    # Small-panel noise may push a few checks out of band, but the
    # registry tolerances must hold for the vast majority.
    assert scored.n_pass >= 0.8 * len(scored.records)
    assert scored.n_skip == 0  # every quantity extractable at this scale


def test_fail_verdict_on_perturbed_quantity(cache, monkeypatch):
    # Simulate an analysis regression: home share of WiFi volume collapses.
    monkeypatch.setitem(F._EXTRACTORS, "f11_home_volume_share",
                        lambda ctx: 0.05)
    report = score_fidelity(cache, checks=["f11_home_volume_share"],
                            scale=0.045, seed=42)
    rec = report.record("f11_home_volume_share")
    assert rec.verdict == VERDICT_FAIL
    assert rec.divergence > 1.0


def test_skip_verdict_on_analysis_error(cache, monkeypatch):
    from repro.errors import AnalysisError

    def boom(ctx):
        raise AnalysisError("too few capped device-days")

    monkeypatch.setitem(F._EXTRACTORS, "f19_gap_narrows", boom)
    report = score_fidelity(cache, checks=["f19_gap_narrows"],
                            scale=0.045, seed=42)
    rec = report.record("f19_gap_narrows")
    assert rec.verdict == VERDICT_SKIP
    assert rec.measured is None and rec.divergence is None
    assert "capped" in rec.note


def test_survey_checks_skip_without_study(dataset2015):
    from repro.analysis import AnalysisContext

    ctx = AnalysisContext.of(dataset2015)
    report = score_fidelity(ctx, checks=["table8"])
    assert {r.verdict for r in report.records} == {VERDICT_SKIP}


def test_report_json_round_trip(scored, tmp_path):
    path = scored.write(tmp_path / "fidelity.json")
    loaded = F.load_fidelity_report(path)
    assert FidelityReport.from_dict(loaded).to_dict() == scored.to_dict()
    assert loaded["n_checks"] == len(REFERENCES)


def test_render_scoreboard(scored):
    text = scored.render()
    assert "fidelity scoreboard" in text
    assert "t3_median_all" in text
    assert f"{len(REFERENCES)} checks" in text


# ----------------------------------------------------------------------
# Determinism: jobs=1 vs jobs=2 produce bit-identical reports
# ----------------------------------------------------------------------

def test_report_bit_identical_across_jobs(study):
    from repro import AnalysisContext, run_study

    parallel = run_study(scale=0.045, seed=42, n_jobs=2)
    checks = ["table1", "table3", "fig02", "fig05", "sec41"]
    serial_json = score_fidelity(
        AnalysisContext(study), checks=checks, scale=0.045, seed=42
    ).to_json()
    parallel_json = score_fidelity(
        AnalysisContext(parallel), checks=checks, scale=0.045, seed=42
    ).to_json()
    assert serial_json == parallel_json


# ----------------------------------------------------------------------
# The regression gate
# ----------------------------------------------------------------------

def _report_dict(**verdicts) -> dict:
    return {
        "records": [
            {"check_id": check_id, "verdict": verdict, "divergence": 0.5,
             "measured_text": "x"}
            for check_id, verdict in verdicts.items()
        ]
    }


def test_gate_passes_on_identical_verdicts():
    base = _report_dict(a=VERDICT_PASS, b=VERDICT_WARN, c=VERDICT_FAIL)
    assert fidelity_regressions(base, base) == []


def test_gate_flags_worsened_verdicts():
    base = _report_dict(a=VERDICT_PASS, b=VERDICT_WARN)
    now = _report_dict(a=VERDICT_WARN, b=VERDICT_FAIL)
    failures = fidelity_regressions(now, base, baseline_name="BASE")
    assert len(failures) == 2
    assert any("a regressed pass -> warn" in f for f in failures)
    assert any("b regressed warn -> fail" in f for f in failures)


def test_gate_allows_improvement_and_skip():
    base = _report_dict(a=VERDICT_FAIL, b=VERDICT_SKIP, c=VERDICT_PASS)
    now = _report_dict(a=VERDICT_PASS, b=VERDICT_FAIL, c=VERDICT_SKIP)
    # a improved; b was skip in the baseline; c is skip now: none gate.
    assert fidelity_regressions(now, base) == []


def test_gate_flags_disappeared_check():
    base = _report_dict(a=VERDICT_PASS, b=VERDICT_PASS)
    now = _report_dict(a=VERDICT_PASS)
    failures = fidelity_regressions(now, base)
    assert len(failures) == 1 and "disappeared" in failures[0]


def test_gate_accepts_report_object(scored):
    assert fidelity_regressions(scored, scored.to_dict()) == []


def test_committed_baseline_is_loadable_and_complete():
    baseline = F.load_fidelity_report("FIDELITY_baseline.json")
    assert baseline["schema_version"] == F.FIDELITY_SCHEMA_VERSION
    assert {r["check_id"] for r in baseline["records"]} == set(REFERENCES)
    assert baseline["scale"] == 0.02 and baseline["seed"] == 7


# ----------------------------------------------------------------------
# Doc generation
# ----------------------------------------------------------------------

_DOC = """# doc

## Tables

<!-- BEGIN FIDELITY:tables -->
stale
<!-- END FIDELITY:tables -->

## Figures

<!-- BEGIN FIDELITY:figures -->
<!-- END FIDELITY:figures -->

## Sections

<!-- BEGIN FIDELITY:sections -->
<!-- END FIDELITY:sections -->

hand-written tail
"""


def test_fidelity_tables_group_by_paper_item(scored):
    tables = fidelity_tables(scored)
    assert set(tables) == {"tables", "figures", "sections"}
    assert "Table 3" in tables["tables"]
    assert "Figure 5" in tables["figures"]
    assert "Section 4.1" in tables["sections"]
    assert "Measured (scale 0.045)" in tables["tables"]


def test_rewrite_experiments_doc(tmp_path, scored):
    doc = tmp_path / "EXPERIMENTS.md"
    doc.write_text(_DOC)
    assert rewrite_experiments_doc(doc, scored) is True
    text = doc.read_text()
    assert "stale" not in text
    assert "hand-written tail" in text
    assert text.count("| Item | Quantity | Paper |") == 3
    # Idempotent: a second rewrite with the same report changes nothing.
    assert rewrite_experiments_doc(doc, scored) is False


def test_rewrite_requires_markers(tmp_path, scored):
    doc = tmp_path / "bare.md"
    doc.write_text("# no markers here\n")
    with pytest.raises(ReproError, match="marker"):
        rewrite_experiments_doc(doc, scored)


def test_committed_doc_matches_registry():
    """Every registered check appears in the committed EXPERIMENTS.md."""
    text = open("EXPERIMENTS.md").read()
    for key in ("tables", "figures", "sections"):
        assert f"<!-- BEGIN FIDELITY:{key} -->" in text
    for ref in REFERENCES.values():
        # Table cells escape pipes, so compare the escaped form.
        assert ref.quantity.replace("|", "\\|") in text, ref.check_id
