"""Flight recorder, resource sampler, run history, and the events/clean CLI.

The crash-durability contract is tested for real: a subprocess campaign is
SIGKILLed mid-execute by the chaos harness and ``repro events --postmortem``
must reconstruct the phase it died in, the completed-shard set, and the
last resource sample from the truncated log. A Hypothesis property pins the
weaker invariant underneath: *any* byte prefix of an event log parses to a
prefix of its events.
"""

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cli import main
from repro.obs.history import (
    append_history,
    bench_record,
    drift_warnings,
    fidelity_record,
    load_history,
    record_metrics,
    sparkline,
    sparkline_svg,
)
from repro.obs.recorder import (
    EVENT_KINDS,
    EVENTS_ENV_VAR,
    FlightRecorder,
    NoopRecorder,
    get_recorder,
    load_events,
    parse_events,
    reconstruct,
    set_recorder,
    summarize_events,
    use_recorder,
)
from repro.obs.resources import (
    ResourceSampler,
    render_prometheus,
    rss_bytes,
)

REPO = Path(__file__).resolve().parent.parent


# ----------------------------------------------------------------------
# FlightRecorder basics
# ----------------------------------------------------------------------

def test_recorder_appends_one_json_line_per_event(tmp_path):
    log = tmp_path / "events.jsonl"
    recorder = FlightRecorder(log)
    recorder.emit("run_start", command="test", seed=7)
    recorder.emit("shard_queued", year=2013, shard=0)
    recorder.close()
    lines = log.read_text().splitlines()
    assert len(lines) == 2
    first = json.loads(lines[0])
    assert first["kind"] == "run_start"
    assert first["command"] == "test"
    assert first["pid"] == os.getpid()
    assert isinstance(first["ts"], float)


def test_recorder_rejects_unknown_kind(tmp_path):
    recorder = FlightRecorder(tmp_path / "events.jsonl")
    with pytest.raises(ValueError, match="unknown event kind"):
        recorder.emit("made_up_kind")
    recorder.close()


def test_recorder_listener_only_and_swallows_listener_errors():
    seen = []

    def listener(event):
        seen.append(event["kind"])
        raise RuntimeError("display code must never kill the run")

    recorder = FlightRecorder(None, listener=listener)
    assert recorder.path is None
    recorder.emit("progress", done=1, total=2)
    recorder.emit("progress", done=2, total=2)
    recorder.close()
    assert seen == ["progress", "progress"]


def test_phase_context_emits_paired_events(tmp_path):
    log = tmp_path / "events.jsonl"
    recorder = FlightRecorder(log)
    with recorder.phase("execute", shards=4):
        pass
    with pytest.raises(RuntimeError):
        with recorder.phase("merge"):
            raise RuntimeError("boom")
    recorder.close()
    events = load_events(log)
    kinds = [(e["kind"], e["phase"]) for e in events]
    assert kinds == [("phase_start", "execute"), ("phase_end", "execute"),
                     ("phase_start", "merge"), ("phase_end", "merge")]
    assert events[1]["ok"] is True and events[1]["wall_s"] >= 0.0
    assert events[3]["ok"] is False


def test_noop_recorder_is_default_and_free(tmp_path):
    set_recorder(None)
    os.environ.pop(EVENTS_ENV_VAR, None)
    try:
        recorder = get_recorder()
        assert isinstance(recorder, NoopRecorder)
        assert not recorder.enabled
        assert recorder.emit("run_start") is None
        with recorder.phase("anything"):
            pass
    finally:
        set_recorder(None)


def test_get_recorder_resolves_env_like_a_spawned_worker(tmp_path):
    log = tmp_path / "worker_events.jsonl"
    set_recorder(None)
    os.environ[EVENTS_ENV_VAR] = str(log)
    try:
        recorder = get_recorder()
        assert isinstance(recorder, FlightRecorder)
        recorder.emit("spill", year=2013, partition="y2013-s0")
        recorder.close()
    finally:
        os.environ.pop(EVENTS_ENV_VAR, None)
        set_recorder(None)
    (event,) = load_events(log)
    assert event["kind"] == "spill"


def test_use_recorder_restores_previous():
    outer = NoopRecorder()
    set_recorder(outer)
    try:
        with use_recorder(FlightRecorder(None)) as inner:
            assert get_recorder() is inner
        assert get_recorder() is outer
    finally:
        set_recorder(None)


# ----------------------------------------------------------------------
# Truncation-tolerant parsing
# ----------------------------------------------------------------------

def _sample_log_bytes(n_events=6):
    recorder_lines = []
    for i in range(n_events):
        recorder_lines.append(json.dumps(
            {"ts": 1000.0 + i, "pid": 1, "kind": "shard_queued",
             "year": 2013, "shard": i}
        ))
    return ("\n".join(recorder_lines) + "\n").encode()


def test_parse_events_skips_malformed_interior_line():
    data = _sample_log_bytes(3)
    lines = data.split(b"\n")
    lines[1] = b'{"torn": '  # a torn write from a dying process
    events = parse_events(b"\n".join(lines))
    assert [e["shard"] for e in events] == [0, 2]


def test_parse_events_drops_truncated_final_line():
    data = _sample_log_bytes(3)
    assert len(parse_events(data[:-5])) == 2


@settings(max_examples=60, deadline=None)
@given(st.integers(min_value=0, max_value=1))
def test_any_byte_prefix_parses_to_an_event_prefix(offset_kind):
    # The kill -9 contract: however many bytes made it to disk, the log
    # parses, and what parses is a prefix of the full event list.
    data = _sample_log_bytes(5)
    full = parse_events(data)
    assert len(full) == 5
    for cut in range(len(data) + offset_kind):
        events = parse_events(data[:cut])
        assert events == full[:len(events)]


@settings(max_examples=30, deadline=None)
@given(st.binary(max_size=200))
def test_parse_events_never_raises_on_garbage(blob):
    events = parse_events(blob)
    assert all(isinstance(e, dict) and "kind" in e for e in events)


# ----------------------------------------------------------------------
# Postmortem reconstruction
# ----------------------------------------------------------------------

def _event(kind, **fields):
    return {"ts": 0.0, "pid": 1, "kind": kind, **fields}


def test_reconstruct_interrupted_run():
    events = [
        _event("run_start", command="simulate", seed=7, scale=0.01),
        _event("phase_start", phase="plan"),
        _event("phase_end", phase="plan", wall_s=0.1, ok=True),
        _event("phase_start", phase="execute"),
        _event("shard_queued", year=2013, shard=0),
        _event("shard_queued", year=2013, shard=1),
        _event("shard_completed", year=2013, shard=0),
        _event("checkpoint_saved", year=2013, shard=0),
        _event("shard_retry", failure="crash", unit="2013:1"),
        _event("resource_sample", rss_bytes=1024, cpu_s=0.5),
        _event("chaos", fault="kill", shard=1, hard=True),
    ]
    post = reconstruct(events)
    assert post.status == "interrupted"  # no run_end made it to disk
    assert post.last_phase == "execute"
    assert post.phases_seen == ["plan", "execute"]
    assert post.completed == [[2013, 0]]
    assert post.outstanding == [[2013, 1]]
    assert post.checkpoints_saved == 1
    assert post.retries == 1 and post.failures_by_kind == {"crash": 1}
    assert post.last_sample["rss_bytes"] == 1024
    assert post.chaos[0]["fault"] == "kill"
    text = post.render()
    assert "died in phase: execute" in text
    assert "1/2 completed" in text


def test_reconstruct_distinguishes_corrupt_checkpoints():
    events = [
        _event("run_start", command="simulate", seed=7),
        _event("checkpoint_loaded", year=2013, shard=0),
        _event("checkpoint_loaded", corrupt=True, shard=1, seed=7),
        _event("run_end", status="ok", exit_code=0),
    ]
    post = reconstruct(events)
    assert post.checkpoints_loaded == 1
    assert post.checkpoints_corrupt == 1
    assert "1 loaded, 1 corrupt" in post.render()


def test_reconstruct_clean_run_and_summary():
    events = [
        _event("run_start", command="bench", seed=7),
        _event("verdict", source="bench", gate="pass"),
        _event("run_end", status="ok", exit_code=0),
    ]
    post = reconstruct(events)
    assert post.status == "ok" and post.exit_code == 0
    assert post.verdicts[0]["gate"] == "pass"
    summary = summarize_events(events)
    assert "3 events" in summary and "verdict" in summary


# ----------------------------------------------------------------------
# Resource sampler
# ----------------------------------------------------------------------

def test_rss_and_sample_shapes(tmp_path):
    assert rss_bytes() > 0
    log = tmp_path / "events.jsonl"
    prom = tmp_path / "repro.prom"
    recorder = FlightRecorder(log)
    sampler = ResourceSampler(recorder, interval_s=10.0,
                              disk_paths=[tmp_path], prom_path=prom)
    sample = sampler.sample_once()
    recorder.close()
    assert sample["rss_bytes"] > 0
    assert sample["cpu_s"] >= 0.0
    assert {"shm_bytes", "disk_bytes", "steals", "retries",
            "pool_created"} <= set(sample)
    (event,) = load_events(log)
    assert event["kind"] == "resource_sample"
    text = prom.read_text()
    assert "repro_rss_bytes" in text and "# TYPE repro_rss_bytes gauge" in text
    assert "repro_steals_total" in text


def test_sampler_thread_start_stop(tmp_path):
    log = tmp_path / "events.jsonl"
    recorder = FlightRecorder(log)
    with ResourceSampler(recorder, interval_s=0.05) as sampler:
        pass
    recorder.close()
    # At least the immediate start sample and the final stop sample.
    assert sampler.n_samples >= 2
    assert all(e["kind"] == "resource_sample" for e in load_events(log))


def test_render_prometheus_skips_missing_fields():
    text = render_prometheus({"rss_bytes": 42})
    assert "repro_rss_bytes 42" in text
    assert "repro_shm_bytes" not in text


# ----------------------------------------------------------------------
# Run history: append/load, records, drift, sparklines
# ----------------------------------------------------------------------

def test_history_roundtrip_tolerates_truncation(tmp_path):
    path = tmp_path / "BENCH_history.jsonl"
    append_history(path, {"kind": "bench", "metrics": {"m": 1.0}})
    append_history(path, {"kind": "bench", "metrics": {"m": 2.0}})
    with path.open("ab") as f:
        f.write(b'{"torn')  # a run killed mid-append
    records = load_history(path)
    assert [r["metrics"]["m"] for r in records] == [1.0, 2.0]
    assert all("ts" in r for r in records)


def test_bench_record_extracts_trend_metrics():
    report = {
        "scale": 0.02, "seed": 7, "cpu_count": 4, "n_benchmarks": 2,
        "results": [
            {"name": "campaign_serial", "group": "engine", "wall_s": 2.0,
             "mean_s": 2.0, "devices": 100},
            {"name": "campaign_sharded", "group": "engine", "wall_s": 0.5,
             "mean_s": 0.5, "devices": 100},
            {"name": "context_cold_sweep", "group": "context", "wall_s": 1.0,
             "mean_s": 1.0},
            {"name": "context_warm_sweep", "group": "context", "wall_s": 0.1,
             "mean_s": 0.1},
        ],
    }
    record = bench_record(report, gate="pass", baselines=["B.json"])
    metrics = record["metrics"]
    assert metrics["campaign_serial"] == 2.0
    assert metrics["derived_serial_ms_per_device"] == pytest.approx(20.0)
    assert metrics["derived_parallel_speedup"] == pytest.approx(4.0)
    assert metrics["derived_cache_speedup"] == pytest.approx(10.0)
    assert record["gate"] == "pass" and record["baselines"] == ["B.json"]


def test_fidelity_record_shape():
    report = {
        "scale": 0.02, "seed": 7,
        "records": [{"check_id": "c1", "verdict": "pass"},
                    {"check_id": "c2", "verdict": "pass"},
                    {"check_id": "c3", "verdict": "fail"}],
    }
    record = fidelity_record(report, gate="pass")
    assert record["kind"] == "fidelity"
    assert record["metrics"] == {"n_pass": 2, "n_warn": 0, "n_fail": 1,
                                 "n_skip": 0}
    assert record["verdicts"]["c3"] == "fail"


def _bench_history(values, metric="campaign_serial"):
    return [{"kind": "bench", "metrics": {metric: v}} for v in values]


def test_drift_warns_on_rolling_regression():
    records = _bench_history([1.0, 1.0, 1.0, 1.0, 1.0, 1.6])
    warnings = drift_warnings(records)
    assert len(warnings) == 1
    assert "campaign_serial" in warnings[0]
    # Within tolerance: quiet.
    assert drift_warnings(_bench_history([1.0] * 5 + [1.1])) == []
    # A lone record has nothing to drift from.
    assert drift_warnings(_bench_history([9.0])) == []


def test_drift_direction_flips_for_speedups_and_counts():
    # Bigger is better for speedups: a drop warns, a rise does not.
    slower = _bench_history([4.0] * 5 + [2.0], metric="derived_parallel_speedup")
    faster = _bench_history([4.0] * 5 + [8.0], metric="derived_parallel_speedup")
    assert drift_warnings(slower) and not drift_warnings(faster)
    # Fidelity failures warn on a new high.
    worse = [{"kind": "fidelity", "metrics": {"n_fail": v}}
             for v in [4, 4, 4, 4, 4, 9]]
    assert drift_warnings(worse)


def test_sparklines():
    assert sparkline([]) == ""
    bars = sparkline([0.0, 1.0, 2.0, 3.0])
    assert len(bars) == 4 and bars[0] != bars[-1]
    svg = sparkline_svg([1.0, 2.0, 1.5, 3.0])
    assert svg.startswith("<svg") and "polyline" in svg
    assert sparkline_svg([1.0]) == ""  # no trend from one point


def test_record_metrics_skips_missing():
    records = _bench_history([1.0, 2.0]) + [{"kind": "bench", "metrics": {}}]
    assert record_metrics(records, "campaign_serial") == [1.0, 2.0]


# ----------------------------------------------------------------------
# events / clean subcommands (in-process)
# ----------------------------------------------------------------------

def _write_log(path, events):
    recorder = FlightRecorder(path)
    for kind, fields in events:
        recorder.emit(kind, **fields)
    recorder.close()


def test_events_cli_summary_tail_postmortem(tmp_path, capsys):
    log = tmp_path / "events.jsonl"
    _write_log(log, [
        ("run_start", {"command": "simulate", "seed": 7, "scale": 0.01}),
        ("shard_queued", {"year": 2013, "shard": 0}),
        ("shard_completed", {"year": 2013, "shard": 0}),
        ("run_end", {"status": "ok", "exit_code": 0}),
    ])
    assert main(["events", str(log)]) == 0
    out = capsys.readouterr().out
    assert "4 events" in out and "shard_completed" in out

    assert main(["events", str(log), "--tail", "2"]) == 0
    lines = capsys.readouterr().out.strip().splitlines()
    assert len(lines) == 2 and "run_end" in lines[-1]

    assert main(["events", str(log), "--postmortem"]) == 0
    assert "postmortem: ok" in capsys.readouterr().out

    assert main(["events", str(log), "--postmortem", "--json"]) == 0
    post = json.loads(capsys.readouterr().out)
    assert post["status"] == "ok" and post["completed"] == [[2013, 0]]

    assert main(["events", str(log), "--json"]) == 0
    summary = json.loads(capsys.readouterr().out)
    assert summary["n_events"] == 4 and summary["counts"]["shard_queued"] == 1


def test_bench_check_only_never_appends_history(tmp_path, monkeypatch,
                                                capsys):
    # Re-gating a saved report is not a run: no history record, and in
    # particular no BENCH_history.jsonl dropped into the cwd through the
    # --out default.
    report = {"benchmark": "all", "scale": 0.02,
              "results": [{"name": "table1", "wall_s": 1.0, "mean_s": 1.0}]}
    current = tmp_path / "current.json"
    current.write_text(json.dumps(report))
    baseline = tmp_path / "baseline.json"
    baseline.write_text(json.dumps(
        {"benchmark": "all", "scale": 0.02,
         "results": [{"name": "table1", "wall_s": 0.9}]}
    ))
    monkeypatch.chdir(tmp_path)
    assert main(["bench", "--check-only", str(current),
                 "--check", str(baseline)]) == 0
    capsys.readouterr()
    assert list(tmp_path.rglob("*history*")) == []


def test_events_cli_missing_file(tmp_path, capsys):
    assert main(["events", str(tmp_path / "nope.jsonl")]) == 2
    assert "no event log" in capsys.readouterr().err


def test_clean_cli_dry_run_then_sweep(tmp_path, capsys):
    from multiprocessing import shared_memory

    import repro.engine.transport as transport

    # A real orphan segment, as a killed run leaves behind.
    segment_name = f"{transport.SEGMENT_PREFIX}testclean-0-0"
    segment = shared_memory.SharedMemory(
        name=segment_name, create=True, size=64
    )
    segment.close()
    try:
        store = tmp_path / "store"
        parts = store / "campaign2013" / "parts"
        parts.mkdir(parents=True)
        (parts / "y2013-s0").mkdir()
        stale = store / "events.jsonl"
        stale.write_text("{}\n")
        os.utime(stale, (0, 0))  # ancient
        fresh = store / "run" / "events.jsonl"
        fresh.parent.mkdir()
        fresh.write_text("{}\n")
        history = store / "BENCH_history.jsonl"
        history.write_text("{}\n")

        assert main(["clean", str(store), "--dry-run"]) == 0
        out = capsys.readouterr().out
        assert f"would remove shm segment {segment_name}" in out
        assert "would remove orphan partition y2013-s0" in out
        assert f"would remove stale telemetry file {stale}" in out
        # Dry run removed nothing.
        assert stale.exists() and (parts / "y2013-s0").is_dir()
        assert segment_name in transport.segment_names()

        assert main(["clean", str(store)]) == 0
        out = capsys.readouterr().out
        assert f"removed stale telemetry file {stale}" in out
        assert not stale.exists()
        assert not parts.exists() or not list(parts.iterdir())
        assert segment_name not in transport.segment_names()
        # Fresh telemetry and history files survive.
        assert fresh.exists() and history.exists()
    finally:
        try:
            shared_memory.SharedMemory(name=segment_name).unlink()
        except FileNotFoundError:
            pass


# ----------------------------------------------------------------------
# The black box proves itself: kill -9 mid-campaign, then postmortem
# ----------------------------------------------------------------------

def test_hard_kill_leaves_reconstructable_black_box(tmp_path):
    log = tmp_path / "events.jsonl"
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src") + os.pathsep + env.get(
        "PYTHONPATH", "")
    # No pipes on the victim: orphaned pool workers inherit them and
    # would keep capture_output waiting long after the SIGKILL lands.
    result = subprocess.run(
        [sys.executable, "-m", "repro", "simulate",
         "--scale", "0.004", "--seed", "11", "--jobs", "2",
         "--out", str(tmp_path / "data"),
         "--checkpoint-dir", str(tmp_path / "ckpt"),
         "--chaos-kill-after", "1", "--chaos-kill-hard",
         "--events", str(log)],
        stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
        timeout=480, env=env, cwd=str(tmp_path),
    )
    # SIGKILL, not a clean chaos exit: the process had no chance to flush.
    assert result.returncode == -9

    events = load_events(log)
    post = reconstruct(events)
    assert post.status == "interrupted"  # no run_end was written
    assert post.run is not None and post.run["command"] == "simulate"
    # Died inside execute with work still in flight.
    assert "execute" in post.open_phases
    assert len(post.completed) >= 1
    assert post.outstanding
    # The completed shard checkpointed before the kill...
    assert post.checkpoints_saved >= 1
    # ...and the chaos event itself outlived its sender.
    assert any(e["kind"] == "chaos" and e.get("fault") == "kill"
               and e.get("hard") for e in events)
    # The sampler got at least its immediate start sample out.
    assert post.last_sample is not None and post.last_sample["rss_bytes"] > 0

    # The CLI postmortem agrees.
    proc = subprocess.run(
        [sys.executable, "-m", "repro", "events", str(log), "--postmortem"],
        capture_output=True, text=True, timeout=120, env=env,
        cwd=str(tmp_path),
    )
    assert proc.returncode == 0, proc.stderr
    assert "postmortem: interrupted" in proc.stdout
    assert "died in phase: execute" in proc.stdout


def test_hard_kill_run_resumes_bit_identically(tmp_path):
    # The postmortem's sibling guarantee: --resume completes the killed
    # run and matches an uninterrupted reference exactly.
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src") + os.pathsep + env.get(
        "PYTHONPATH", "")
    base = ["--scale", "0.004", "--seed", "11", "--jobs", "2"]
    killed = subprocess.run(
        [sys.executable, "-m", "repro", "simulate", *base,
         "--out", str(tmp_path / "data"),
         "--checkpoint-dir", str(tmp_path / "ckpt"),
         "--chaos-kill-after", "1", "--chaos-kill-hard"],
        stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
        timeout=480, env=env, cwd=str(tmp_path),
    )
    assert killed.returncode == -9
    resumed = subprocess.run(
        [sys.executable, "-m", "repro", "simulate", *base,
         "--out", str(tmp_path / "data"),
         "--checkpoint-dir", str(tmp_path / "ckpt"), "--resume"],
        capture_output=True, text=True, timeout=480, env=env,
        cwd=str(tmp_path),
    )
    assert resumed.returncode == 0, resumed.stderr
    reference = subprocess.run(
        [sys.executable, "-m", "repro", "simulate", *base,
         "--out", str(tmp_path / "ref")],
        capture_output=True, text=True, timeout=480, env=env,
        cwd=str(tmp_path),
    )
    assert reference.returncode == 0, reference.stderr

    from repro.traces.io import load_dataset

    from .test_engine import assert_datasets_identical

    for campaign in sorted((tmp_path / "ref").glob("campaign*")):
        assert_datasets_identical(
            load_dataset(tmp_path / "data" / campaign.name),
            load_dataset(campaign),
        )


# ----------------------------------------------------------------------
# Schema lint: every emit() kind is declared and documented
# ----------------------------------------------------------------------

def test_every_emitted_kind_is_declared_and_documented():
    import re

    src = REPO / "src"
    emitted = set()
    for path in src.rglob("*.py"):
        for kind in re.findall(r'\.emit\(\s*\n?\s*"([a-z_]+)"',
                               path.read_text()):
            emitted.add(kind)
    assert emitted, "schema lint found no emit() calls — pattern rot?"
    undeclared = emitted - set(EVENT_KINDS)
    assert not undeclared, (
        f"emit() calls with kinds missing from EVENT_KINDS: {undeclared}"
    )
    doc = (REPO / "docs" / "ARCHITECTURE.md").read_text()
    undocumented = [k for k in EVENT_KINDS if f"`{k}`" not in doc]
    assert not undocumented, (
        f"event kinds missing from the ARCHITECTURE.md schema table: "
        f"{undocumented}"
    )
