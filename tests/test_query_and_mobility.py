"""Tests for the query layer and the §3.4.2 mobility statistics."""

import numpy as np
import pytest

from repro.analysis.mobility_stats import mobility_stats
from repro.errors import AnalysisError
from repro.traces.query import (
    SlotIndex,
    association_index,
    composite_keys,
    distinct_cells_per_device_day,
    geo_cell_index,
)
from tests.helpers import (
    add_ap,
    add_association_span,
    add_daily_traffic,
    add_geo_span,
    make_builder,
    slot,
)


class TestSlotIndex:
    def test_lookup_found_and_missing(self):
        device = np.array([0, 0, 1])
        t = np.array([5, 9, 5])
        index = SlotIndex.build(device, t, n_slots=100)
        pos, found = index.lookup(np.array([0, 1, 1]), np.array([9, 5, 6]))
        assert list(found) == [True, True, False]
        values = index.gather(np.array([10.0, 20.0, 30.0]), pos)
        assert values[0] == 20.0  # (0, 9)
        assert values[1] == 30.0  # (1, 5)

    def test_empty_index(self):
        index = SlotIndex.build(np.array([]), np.array([]), n_slots=10)
        _pos, found = index.lookup(np.array([0]), np.array([0]))
        assert not found.any()

    def test_composite_keys_unique(self):
        keys = composite_keys(np.array([0, 1]), np.array([99, 0]), n_slots=100)
        assert keys[0] == 99 and keys[1] == 100

    def test_geo_cell_index_requires_geo(self):
        with pytest.raises(AnalysisError):
            geo_cell_index(make_builder().build())

    def test_association_index(self):
        builder = make_builder(n_devices=1, n_days=1)
        add_ap(builder, 7, "net")
        add_association_span(builder, 0, 7, 10, 12)
        ds = builder.build()
        index, aps = association_index(ds)
        pos, found = index.lookup(np.array([0]), np.array([11]))
        assert found[0]
        assert aps[pos[0]] == 7


class TestDistinctCells:
    def test_counts(self):
        builder = make_builder(n_devices=2, n_days=2)
        add_geo_span(builder, 0, (0, 0), slot(0, 0), slot(0, 12))
        add_geo_span(builder, 0, (1, 0), slot(0, 12), slot(0, 24))
        add_geo_span(builder, 1, (5, 5), slot(1, 0), slot(1, 24))
        counts = distinct_cells_per_device_day(builder.build())
        assert counts[0, 0] == 2
        assert counts[0, 1] == 0
        assert counts[1, 1] == 1


class TestMobilityStats:
    def test_uncorrelated_by_construction(self):
        """Volume varies, mobility constant -> correlation undefined/zero."""
        builder = make_builder(n_devices=8, n_days=1)
        for device in range(8):
            add_daily_traffic(builder, device, 0, cell_rx_mb=5 + 10 * device)
            add_geo_span(builder, device, (0, 0), 0, 144)
        stats = mobility_stats(builder.build())
        assert np.isnan(stats.corr_cells_vs_volume) or (
            abs(stats.corr_cells_vs_volume) < 0.2
        )

    def test_correlated_when_constructed(self):
        """Heavier users visiting more cells -> positive correlation."""
        builder = make_builder(n_devices=8, n_days=1)
        for device in range(8):
            add_daily_traffic(builder, device, 0, cell_rx_mb=2 ** device)
            for cell in range(device + 1):
                add_geo_span(builder, device, (cell, 0),
                             slot(0, cell), slot(0, cell + 1))
        stats = mobility_stats(builder.build())
        assert stats.corr_cells_vs_volume > 0.8

    def test_study_matches_paper_claim(self, dataset2015, cache):
        """§3.4.2: traffic volume does not correlate with mobility."""
        stats = mobility_stats(dataset2015, cache.user_classes(2015))
        assert stats.uncorrelated()
        # Heavy hitters and light users see similar numbers of cells (Fig 12).
        assert stats.mean_cells_heavy == pytest.approx(
            stats.mean_cells_light, rel=0.5
        )

    def test_requires_valid_days(self):
        with pytest.raises(AnalysisError):
            builder = make_builder(n_devices=1, n_days=1)
            add_geo_span(builder, 0, (0, 0), 0, 144)
            mobility_stats(builder.build())
