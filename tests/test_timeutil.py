"""Unit tests for the campaign time axis."""

from datetime import date, datetime

import numpy as np
import pytest

from repro.constants import SAMPLES_PER_DAY
from repro.errors import ConfigurationError
from repro.timeutil import TimeAxis


@pytest.fixture()
def axis():
    # 2015-02-25 is a Wednesday.
    return TimeAxis(date(2015, 2, 25), n_days=15)


def test_n_slots(axis):
    assert axis.n_slots == 15 * 144


def test_slot_datetime(axis):
    assert axis.slot_datetime(0) == datetime(2015, 2, 25, 0, 0)
    assert axis.slot_datetime(6) == datetime(2015, 2, 25, 1, 0)
    assert axis.slot_datetime(144) == datetime(2015, 2, 26, 0, 0)


def test_slot_datetime_out_of_range(axis):
    with pytest.raises(ConfigurationError):
        axis.slot_datetime(-1)
    with pytest.raises(ConfigurationError):
        axis.slot_datetime(axis.n_slots)


def test_day_hour_weekday_scalar(axis):
    t = axis.slot_of(day=2, hour=13, minute=30)
    assert axis.day_of(t) == 2
    assert axis.hour_of(t) == 13
    # Feb 25 is Wednesday (2); two days later is Friday (4).
    assert axis.weekday_of(t) == 4
    assert not axis.is_weekend(t)


def test_weekend_detection(axis):
    saturday = axis.slot_of(day=3, hour=12)  # Feb 28, 2015 was a Saturday
    assert axis.weekday_of(saturday) == 5
    assert axis.is_weekend(saturday)


def test_array_variants(axis):
    t = np.array([0, 144, 144 * 3 + 6])
    assert list(axis.day_of(t)) == [0, 1, 3]
    assert list(axis.hour_of(t)) == [0, 0, 1]
    weekends = axis.is_weekend(t)
    assert list(weekends) == [False, False, True]


def test_slot_of_validation(axis):
    with pytest.raises(ConfigurationError):
        axis.slot_of(day=20, hour=0)
    with pytest.raises(ConfigurationError):
        axis.slot_of(day=0, hour=24)
    with pytest.raises(ConfigurationError):
        axis.slot_of(day=0, hour=0, minute=60)


def test_bad_n_days():
    with pytest.raises(ConfigurationError):
        TimeAxis(date(2015, 1, 1), n_days=0)


def test_slot_of_round_trip(axis):
    for day in (0, 7, 14):
        for hour in (0, 9, 23):
            t = axis.slot_of(day, hour)
            assert axis.day_of(t) == day
            assert axis.hour_of(t) == hour
            assert t % SAMPLES_PER_DAY == hour * 6
