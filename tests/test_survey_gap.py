"""Tests for the survey-vs-measurement consistency analysis."""

import pytest

from repro.analysis.survey_gap import survey_gap
from repro.errors import AnalysisError
from repro.population.survey import SurveyResponse
from tests.helpers import add_ap, make_builder, nightly_home_association


def _response(user_id, home, office, public):
    answers = {"home": home, "office": office, "public": public}
    return SurveyResponse(
        user_id=user_id, occupation="office worker",
        connected=answers,
        reasons={loc: ("Other",) for loc, a in answers.items() if a != "yes"},
    )


def test_gap_computation():
    builder = make_builder(n_devices=4, n_days=3)
    add_ap(builder, 0, "home-0")
    # Only device 0 actually uses home WiFi...
    nightly_home_association(builder, 0, 0, n_days=3)
    ds = builder.build()
    # ...but three of four claim public connectivity (over-reporting).
    responses = [
        _response(0, "yes", "no", "yes"),
        _response(1, "no", "no", "yes"),
        _response(2, "no", "no", "yes"),
        _response(3, "no", "no", "no"),
    ]
    gap = survey_gap(ds, responses)
    assert gap.measured_pct["home"] == pytest.approx(25.0)
    assert gap.claimed_pct["home"] == pytest.approx(25.0)
    assert gap.gap("home") == pytest.approx(0.0)
    assert gap.measured_pct["public"] == 0.0
    assert gap.claimed_pct["public"] == pytest.approx(75.0)
    assert gap.overreported("public")
    assert not gap.overreported("home")


def test_requires_responses(dataset2015):
    with pytest.raises(AnalysisError):
        survey_gap(dataset2015, [])


def test_unknown_location(dataset2015, study):
    gap = survey_gap(dataset2015, study.surveys[2015])
    with pytest.raises(AnalysisError):
        gap.gap("moon")


def test_study_public_overreported(study, cache):
    """§4.2: public connectivity is over-reported; home roughly matches."""
    for year in (2013, 2015):
        gap = survey_gap(
            cache.clean(year), study.surveys[year], cache.classification(year)
        )
        assert gap.gap("public") > 0.0
        assert abs(gap.gap("home")) < 20.0
