"""Unit tests for the record schema."""

import pytest

from repro.errors import SchemaError
from repro.net.cellular import CellularTechnology
from repro.traces.records import (
    AppTrafficRecord,
    DeviceInfo,
    DeviceOS,
    GeoSample,
    IfaceKind,
    NetLocation,
    ScanSummary,
    TrafficSample,
    UpdateEvent,
    WifiObservation,
    WifiStateCode,
    netloc_for,
)


class TestIfaceKind:
    def test_cellular_predicate(self):
        assert IfaceKind.CELL_3G.is_cellular
        assert IfaceKind.CELL_LTE.is_cellular
        assert not IfaceKind.WIFI.is_cellular

    def test_from_technology(self):
        assert IfaceKind.from_technology(CellularTechnology.LTE) is IfaceKind.CELL_LTE
        assert IfaceKind.from_technology(CellularTechnology.THREE_G) is IfaceKind.CELL_3G


class TestRecordValidation:
    def test_device_info_rejects_negative_id(self):
        with pytest.raises(SchemaError):
            DeviceInfo(-1, DeviceOS.ANDROID, "docomo", CellularTechnology.LTE)

    def test_traffic_sample_rejects_negative_bytes(self):
        with pytest.raises(SchemaError):
            TrafficSample(0, 0, IfaceKind.WIFI, -1.0, 0.0)

    def test_wifi_observation_associated_needs_ap(self):
        with pytest.raises(SchemaError):
            WifiObservation(0, 0, WifiStateCode.ASSOCIATED, ap_id=-1)
        # Non-associated states do not need an AP.
        WifiObservation(0, 0, WifiStateCode.OFF)
        WifiObservation(0, 0, WifiStateCode.AVAILABLE)

    def test_scan_summary_strong_bounded_by_all(self):
        with pytest.raises(SchemaError):
            ScanSummary(0, 0, n24_all=3, n24_strong=4, n5_all=0, n5_strong=0)
        with pytest.raises(SchemaError):
            ScanSummary(0, 0, n24_all=-1, n24_strong=0, n5_all=0, n5_strong=0)
        ScanSummary(0, 0, 5, 2, 3, 1)

    def test_app_record_wifi_needs_ap(self):
        with pytest.raises(SchemaError):
            AppTrafficRecord(0, 0, 2, iface_cellular=False, ap_id=-1,
                             cell_col=0, cell_row=0, rx_bytes=1.0, tx_bytes=0.0)
        AppTrafficRecord(0, 0, 2, iface_cellular=True, ap_id=-1,
                         cell_col=0, cell_row=0, rx_bytes=1.0, tx_bytes=0.0)

    def test_app_record_rejects_negative(self):
        with pytest.raises(SchemaError):
            AppTrafficRecord(0, 0, 2, True, -1, 0, 0, -5.0, 0.0)

    def test_geo_and_update(self):
        GeoSample(0, 0, -3, 7)
        event = UpdateEvent(0, 100, 565e6)
        assert event.version == "ios-8.2"


class TestNetLocation:
    def test_netloc_for_cellular(self):
        assert netloc_for(True, cell_at_home=True) is NetLocation.CELL_HOME
        assert netloc_for(True, cell_at_home=False) is NetLocation.CELL_OTHER

    def test_netloc_for_wifi_classes(self):
        assert netloc_for(False, "home") is NetLocation.WIFI_HOME
        assert netloc_for(False, "public") is NetLocation.WIFI_PUBLIC
        assert netloc_for(False, "office") is NetLocation.WIFI_OFFICE
        assert netloc_for(False, "other") is NetLocation.WIFI_OTHER

    def test_netloc_for_unknown_class(self):
        with pytest.raises(SchemaError):
            netloc_for(False, "bogus")

    def test_labels(self):
        assert NetLocation.CELL_HOME.label == "Cell home"
        assert NetLocation.WIFI_PUBLIC.label == "WiFi public"


class TestPacketCounters:
    def test_estimation_defaults(self):
        from repro.traces.records import TrafficSample, estimate_packets
        sample = TrafficSample(0, 0, IfaceKind.WIFI, 12_000.0, 800.0)
        assert sample.rx_pkts == estimate_packets(12_000.0)
        assert sample.rx_pkts == 10
        assert sample.tx_pkts >= 1

    def test_explicit_counts_respected(self):
        from repro.traces.records import TrafficSample
        sample = TrafficSample(0, 0, IfaceKind.WIFI, 1000.0, 0.0,
                               rx_pkts=7, tx_pkts=0)
        assert sample.rx_pkts == 7
        assert sample.tx_pkts == 0

    def test_estimate_packets_floor(self):
        from repro.traces.records import estimate_packets
        assert estimate_packets(0.0) == 0
        assert estimate_packets(1.0) == 1
        assert estimate_packets(2400.0) == 2

    def test_builder_fills_packets(self):
        from tests.helpers import make_builder
        builder = make_builder(n_devices=1, n_days=1)
        builder.extend_traffic(device=[0], t=[0], iface=[2],
                               rx=[120_000.0], tx=[4000.0])
        ds = builder.build()
        assert ds.traffic.rx_pkts[0] == 100
        assert ds.traffic.tx_pkts[0] == 10

    def test_simulated_packets_consistent(self, raw2015):
        import numpy as np
        traffic = raw2015.traffic
        positive = traffic.rx > 0
        assert (traffic.rx_pkts[positive] >= 1).all()
        # Mean packet size lands near the configured estimate.
        mean_size = traffic.rx[positive].sum() / traffic.rx_pkts[positive].sum()
        assert 800 < mean_size < 1400
