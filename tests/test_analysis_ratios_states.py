"""Unit tests for WiFi ratios (Figures 6-8) and interface states (Figure 9)."""

import numpy as np
import pytest

from repro.analysis.interface_state import interface_state_ratios, ios_android_gap
from repro.analysis.ratios import wifi_ratios
from repro.analysis.users import classify_user_days
from repro.traces.records import DeviceOS, IfaceKind, WifiStateCode
from tests.helpers import (
    add_association_span,
    add_ap,
    add_state_span,
    make_builder,
    slot,
)


def _ratio_dataset():
    """10 devices; device volumes known per hour."""
    builder = make_builder(n_devices=10, n_days=1)
    add_ap(builder, 0, "net")
    for device in range(10):
        # Hour 10: every device downloads 6 MB cellular.
        builder.extend_traffic(
            device=[device], t=[slot(0, 10)], iface=[int(IfaceKind.CELL_LTE)],
            rx=[6e6], tx=[0],
        )
        # Hour 20: every device downloads 2 MB cellular + 6 MB wifi.
        builder.extend_traffic(
            device=[device, device], t=[slot(0, 20), slot(0, 20) + 1],
            iface=[int(IfaceKind.CELL_LTE), int(IfaceKind.WIFI)],
            rx=[2e6, 6e6], tx=[0, 0],
        )
        # Half the devices associate during hour 20.
        if device < 5:
            add_association_span(builder, device, 0, slot(0, 20), slot(0, 21))
    return builder.build()


class TestWifiTrafficRatio:
    def test_hourly_values_exact(self):
        ds = _ratio_dataset()
        ratios = wifi_ratios(ds)
        hourly = ratios.traffic("all").hourly.values
        assert hourly[10] == pytest.approx(0.0)
        assert hourly[20] == pytest.approx(0.75)  # 6 / (6+2)
        assert np.isnan(hourly[5])  # no traffic that hour

    def test_user_ratio_counts_distinct_devices(self):
        ds = _ratio_dataset()
        ratios = wifi_ratios(ds)
        hourly = ratios.users("all").hourly.values
        assert hourly[20] == pytest.approx(0.5)  # 5 of 10 devices
        assert hourly[10] == pytest.approx(0.0)

    def test_subset_ratios_follow_classification(self, dataset2015):
        classes = classify_user_days(dataset2015)
        ratios = wifi_ratios(dataset2015, classes)
        # Heavy hitters offload more than light users (Figure 7).
        assert ratios.traffic("heavy").mean > ratios.traffic("light").mean

    def test_means_finite(self, dataset2013):
        ratios = wifi_ratios(dataset2013)
        for subset in ("all", "light", "heavy"):
            assert 0.0 <= ratios.traffic(subset).mean <= 1.0
            assert 0.0 <= ratios.users(subset).mean <= 1.0

    def test_growth_2013_to_2015(self, dataset2013, dataset2015):
        r13 = wifi_ratios(dataset2013)
        r15 = wifi_ratios(dataset2015)
        # §3.3.2: both ratios grow between campaigns.
        assert r15.traffic("all").mean > r13.traffic("all").mean
        assert r15.users("all").mean > r13.users("all").mean


class TestInterfaceStates:
    def _state_dataset(self):
        builder = make_builder(
            n_devices=4, n_days=1,
            os_plan=[DeviceOS.ANDROID, DeviceOS.ANDROID,
                     DeviceOS.ANDROID, DeviceOS.IOS],
        )
        add_ap(builder, 0, "net")
        full_day = (0, 144)
        # Android device 0: associated all day.
        add_association_span(builder, 0, 0, *full_day)
        # Android device 1: off all day.
        add_state_span(builder, 1, WifiStateCode.OFF, *full_day)
        # Android device 2: available all day.
        add_state_span(builder, 2, WifiStateCode.AVAILABLE, *full_day)
        # iOS device 3: associated half the day.
        add_association_span(builder, 3, 0, 0, 72)
        return builder.build()

    def test_android_partition(self):
        ratios = interface_state_ratios(self._state_dataset())
        assert ratios.android_means["wifi_user"] == pytest.approx(1 / 3)
        assert ratios.android_means["wifi_off"] == pytest.approx(1 / 3)
        assert ratios.android_means["wifi_available"] == pytest.approx(1 / 3)

    def test_ios_ratio(self):
        ratios = interface_state_ratios(self._state_dataset())
        assert ratios.ios_user_mean == pytest.approx(0.5)

    def test_gap(self):
        ratios = interface_state_ratios(self._state_dataset())
        assert ios_android_gap(ratios) == pytest.approx(0.5)

    def test_android_states_partition_in_study(self, dataset2015):
        ratios = interface_state_ratios(dataset2015)
        total = sum(ratios.android_means.values())
        # Per slot the states partition; per hour a device can appear in two
        # states (it toggled mid-hour), so the sum can slightly exceed 1.
        assert 1.0 <= total < 1.15

    def test_ios_connects_more_than_android(self, dataset2015):
        ratios = interface_state_ratios(dataset2015)
        assert ios_android_gap(ratios) > 0.0  # §3.3.4

    def test_wifi_off_declines_2013_to_2015(self, dataset2013, dataset2015):
        r13 = interface_state_ratios(dataset2013)
        r15 = interface_state_ratios(dataset2015)
        assert r15.android_means["wifi_off"] < r13.android_means["wifi_off"]

    def test_folded_unknown_key(self, dataset2015):
        from repro.errors import AnalysisError
        ratios = interface_state_ratios(dataset2015)
        with pytest.raises(AnalysisError):
            ratios.folded("bogus")
