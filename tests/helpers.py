"""Hand-crafted dataset construction for analysis unit tests.

Building tiny datasets with known contents lets the analysis tests assert
exact outcomes instead of statistical ones.
"""

from __future__ import annotations

from datetime import date
from typing import Dict, Iterable, Optional, Tuple

import numpy as np

from repro.constants import SAMPLES_PER_DAY, SAMPLES_PER_HOUR
from repro.net.cellular import CellularTechnology
from repro.radio.bands import Band
from repro.timeutil import TimeAxis
from repro.traces.dataset import CampaignDataset, DatasetBuilder
from repro.traces.records import (
    ApDirectoryEntry,
    DeviceInfo,
    DeviceOS,
    IfaceKind,
    WifiStateCode,
)


def make_builder(
    n_devices: int = 2,
    year: int = 2015,
    start: date = date(2015, 3, 2),  # a Monday
    n_days: int = 7,
    os_plan: Optional[Iterable[DeviceOS]] = None,
) -> DatasetBuilder:
    """A builder pre-populated with devices."""
    builder = DatasetBuilder(year, TimeAxis(start, n_days))
    plans = list(os_plan) if os_plan else [DeviceOS.ANDROID] * n_devices
    for device_id in range(n_devices):
        builder.add_device(
            DeviceInfo(
                device_id=device_id,
                os=plans[device_id % len(plans)],
                carrier="docomo",
                technology=CellularTechnology.LTE,
                occupation="office worker",
            )
        )
    return builder


def add_ap(
    builder: DatasetBuilder,
    ap_id: int,
    essid: str,
    band: Band = Band.GHZ_2_4,
    channel: int = 6,
    bssid: Optional[str] = None,
) -> None:
    builder.add_ap(
        ApDirectoryEntry(
            ap_id=ap_id,
            bssid=bssid or f"02:00:00:00:{ap_id // 256:02x}:{ap_id % 256:02x}",
            essid=essid,
            band=band,
            channel=channel,
        )
    )


def slot(day: int, hour: int, minute: int = 0) -> int:
    """Slot index for day/hour/minute."""
    minutes_per_sample = 60 // SAMPLES_PER_HOUR
    return (
        day * SAMPLES_PER_DAY
        + hour * SAMPLES_PER_HOUR
        + minute // minutes_per_sample
    )


def add_association_span(
    builder: DatasetBuilder,
    device: int,
    ap_id: int,
    t_start: int,
    t_end: int,
    rssi: float = -55.0,
) -> None:
    """Associated observations for slots [t_start, t_end)."""
    ts = np.arange(t_start, t_end)
    builder.extend_wifi(
        device=np.full(len(ts), device),
        t=ts,
        state=np.full(len(ts), int(WifiStateCode.ASSOCIATED)),
        ap_id=np.full(len(ts), ap_id),
        rssi=np.full(len(ts), rssi),
    )


def add_state_span(
    builder: DatasetBuilder,
    device: int,
    state: WifiStateCode,
    t_start: int,
    t_end: int,
) -> None:
    """Non-associated observations for slots [t_start, t_end)."""
    ts = np.arange(t_start, t_end)
    builder.extend_wifi(
        device=np.full(len(ts), device),
        t=ts,
        state=np.full(len(ts), int(state)),
        ap_id=np.full(len(ts), -1),
        rssi=np.zeros(len(ts)),
    )


def add_geo_span(
    builder: DatasetBuilder,
    device: int,
    cell: Tuple[int, int],
    t_start: int,
    t_end: int,
) -> None:
    ts = np.arange(t_start, t_end)
    builder.extend_geo(
        device=np.full(len(ts), device),
        t=ts,
        col=np.full(len(ts), cell[0]),
        row=np.full(len(ts), cell[1]),
    )


def add_daily_traffic(
    builder: DatasetBuilder,
    device: int,
    day: int,
    cell_rx_mb: float = 0.0,
    wifi_rx_mb: float = 0.0,
    cell_tx_mb: float = 0.0,
    wifi_tx_mb: float = 0.0,
    hour: int = 20,
    iface_cell: IfaceKind = IfaceKind.CELL_LTE,
) -> None:
    """Lump a day's volume into a single slot per interface."""
    t = slot(day, hour)
    if cell_rx_mb or cell_tx_mb:
        builder.extend_traffic(
            device=[device], t=[t], iface=[int(iface_cell)],
            rx=[cell_rx_mb * 1e6], tx=[cell_tx_mb * 1e6],
        )
    if wifi_rx_mb or wifi_tx_mb:
        builder.extend_traffic(
            device=[device], t=[t + 1], iface=[int(IfaceKind.WIFI)],
            rx=[wifi_rx_mb * 1e6], tx=[wifi_tx_mb * 1e6],
        )


def nightly_home_association(
    builder: DatasetBuilder,
    device: int,
    ap_id: int,
    n_days: int,
    rssi: float = -55.0,
) -> None:
    """Associate ``device`` with ``ap_id`` every night 22:00-24:00 + 0:00-6:00."""
    for day in range(n_days):
        add_association_span(builder, device, ap_id, slot(day, 22), slot(day, 24), rssi)
        add_association_span(builder, device, ap_id, slot(day, 0), slot(day, 6), rssi)
