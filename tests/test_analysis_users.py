"""Unit tests for light/heavy user-day classification."""

import numpy as np
import pytest

from repro.analysis.users import classify_user_days
from repro.errors import AnalysisError
from tests.helpers import add_daily_traffic, make_builder


def _dataset_with_volumes(volumes_mb, n_days=1):
    """One device per volume, all on day 0."""
    builder = make_builder(n_devices=len(volumes_mb), n_days=max(n_days, 1))
    for device, mb in enumerate(volumes_mb):
        add_daily_traffic(builder, device, 0, cell_rx_mb=mb)
    return builder.build()


def test_light_band_is_40_to_60_percentile():
    volumes = list(range(1, 101))  # 1..100 MB
    ds = _dataset_with_volumes(volumes)
    classes = classify_user_days(ds)
    light_volumes = sorted(ds.daily_matrix("all", "rx")[classes.light[:, 0], 0] / 1e6)
    assert min(light_volumes) >= np.percentile(volumes, 40) - 1
    assert max(light_volumes) < np.percentile(volumes, 60) + 1
    assert classes.fraction_light() == pytest.approx(0.2, abs=0.05)


def test_heavy_is_top_5_percent():
    volumes = list(range(1, 101))
    ds = _dataset_with_volumes(volumes)
    classes = classify_user_days(ds)
    heavy = np.flatnonzero(classes.heavy[:, 0])
    heavy_volumes = ds.daily_matrix("all", "rx")[heavy, 0] / 1e6
    assert (heavy_volumes >= np.percentile(volumes, 95)).all()
    assert classes.fraction_heavy() == pytest.approx(0.05, abs=0.03)


def test_below_floor_excluded():
    ds = _dataset_with_volumes([0.05, 10, 20, 30, 40, 50, 60])
    classes = classify_user_days(ds)
    assert not classes.valid[0, 0]
    assert not classes.light[0, 0]
    assert not classes.heavy[0, 0]


def test_classification_is_per_day():
    builder = make_builder(n_devices=6, n_days=2)
    # Day 0: device 0 is the heaviest. Day 1: device 5 is.
    for device in range(6):
        add_daily_traffic(builder, device, 0, cell_rx_mb=10 + device)
        add_daily_traffic(builder, device, 1, cell_rx_mb=60 - 10 * device)
    ds = builder.build()
    classes = classify_user_days(ds)
    assert classes.heavy[5, 0]
    assert classes.heavy[0, 1]
    assert not classes.heavy[5, 1]


def test_small_days_skipped():
    ds = _dataset_with_volumes([10, 20, 30])  # fewer than 5 valid users
    classes = classify_user_days(ds)
    assert classes.light.sum() == 0
    assert classes.heavy.sum() == 0


def test_bad_percentiles_rejected():
    ds = _dataset_with_volumes([10, 20, 30, 40, 50])
    with pytest.raises(AnalysisError):
        classify_user_days(ds, light_low=60, light_high=40)


def test_masks_subset_of_valid(dataset2015):
    classes = classify_user_days(dataset2015)
    assert not (classes.light & ~classes.valid).any()
    assert not (classes.heavy & ~classes.valid).any()
    # Light and heavy are disjoint.
    assert not (classes.light & classes.heavy).any()


def test_study_fractions_reasonable(dataset2015):
    classes = classify_user_days(dataset2015)
    assert 0.15 < classes.fraction_light() < 0.25
    assert 0.03 < classes.fraction_heavy() < 0.09
