"""Unit tests for the application model: categories, demand, updates."""

import numpy as np
import pytest

from repro.apps.categories import (
    CATEGORIES,
    CATEGORY_BY_NAME,
    category,
    category_code,
    category_name,
)
from repro.apps.demand import CategoryMix, DemandModel
from repro.apps.updates import UpdateModel, UpdatePolicy
from repro.errors import ConfigurationError


class TestCategories:
    def test_exactly_26(self):
        assert len(CATEGORIES) == 26

    def test_codes_dense_and_unique(self):
        assert sorted(c.code for c in CATEGORIES) == list(range(26))

    def test_paper_categories_present(self):
        for name in ("browser", "social", "video", "communication", "news",
                     "game", "music", "travel", "shopping", "downloading",
                     "entertainment", "tools", "productivity", "lifestyle",
                     "health", "business"):
            assert name in CATEGORY_BY_NAME

    def test_lookups(self):
        assert category_code("video") == CATEGORY_BY_NAME["video"].code
        assert category_name(category_code("browser")) == "browser"
        assert category(0).name == "browser"

    def test_unknown_lookups(self):
        with pytest.raises(ConfigurationError):
            category_code("flappy")
        with pytest.raises(ConfigurationError):
            category_name(99)

    def test_wifi_only_is_productivity(self):
        wifi_only = [c.name for c in CATEGORIES if c.wifi_only]
        assert wifi_only == ["productivity"]

    def test_video_grows_and_prefers_wifi(self):
        video = CATEGORY_BY_NAME["video"]
        assert video.wifi_affinity > 1.0
        assert video.growth(2) > video.growth(0)
        assert video.rx_tx_ratio > 5.0

    def test_productivity_upload_heavy(self):
        assert CATEGORY_BY_NAME["productivity"].rx_tx_ratio < 1.0

    def test_growth_index_validated(self):
        with pytest.raises(ConfigurationError):
            CATEGORIES[0].growth(5)


class TestCategoryMix:
    def test_sample_mix_valid(self, rng):
        model = DemandModel(0, appetite_median_mb=50.0)
        mix = model.sample_mix(rng)
        assert mix.weights.sum() == pytest.approx(1.0)
        assert (mix.weights >= 0).all()

    def test_context_shares_cellular_excludes_wifi_only(self, rng):
        model = DemandModel(0, appetite_median_mb=50.0)
        mix = model.sample_mix(rng)
        cell_shares = mix.context_shares(on_wifi=False)
        prod = category_code("productivity")
        assert cell_shares[prod] == 0.0
        assert cell_shares.sum() == pytest.approx(1.0)

    def test_context_shares_wifi_boosts_video(self, rng):
        model = DemandModel(0, appetite_median_mb=50.0)
        mix = model.sample_mix(rng)
        wifi = mix.context_shares(on_wifi=True)
        cell = mix.context_shares(on_wifi=False)
        video = category_code("video")
        assert wifi[video] > cell[video]

    def test_invalid_mix_rejected(self):
        with pytest.raises(ConfigurationError):
            CategoryMix(np.ones(26))  # sums to 26
        with pytest.raises(ConfigurationError):
            CategoryMix(np.ones(5) / 5)


class TestDemandModel:
    def test_appetite_median(self, rng):
        model = DemandModel(2, appetite_median_mb=60.0, appetite_sigma=0.8)
        draws = np.array([model.sample_appetite_bytes(rng) for _ in range(4000)])
        assert np.median(draws) / 1e6 == pytest.approx(60.0, rel=0.1)

    def test_appetite_skew(self, rng):
        model = DemandModel(2, appetite_median_mb=60.0, appetite_sigma=0.85)
        draws = np.array([model.sample_appetite_bytes(rng) for _ in range(4000)])
        assert draws.mean() > np.median(draws) * 1.2

    def test_split_day_exact(self, rng):
        model = DemandModel(1, appetite_median_mb=50.0)
        mix = model.sample_mix(rng)
        splits = model.split_day(mix, 100e6, 20e6, on_wifi=True, rng=rng)
        assert sum(s[1] for s in splits) == pytest.approx(100e6, rel=1e-9)
        assert sum(s[2] for s in splits) == pytest.approx(20e6, rel=1e-9)

    def test_split_day_cellular_has_no_productivity(self, rng):
        model = DemandModel(1, appetite_median_mb=50.0)
        mix = model.sample_mix(rng)
        prod = category_code("productivity")
        for _ in range(20):
            splits = model.split_day(mix, 10e6, 1e6, on_wifi=False, rng=rng)
            assert all(code != prod for code, _, _ in splits)

    def test_split_day_zero_volume(self, rng):
        model = DemandModel(0, appetite_median_mb=50.0)
        mix = model.sample_mix(rng)
        assert model.split_day(mix, 0.0, 0.0, True, rng) == []

    def test_split_day_negative_rejected(self, rng):
        model = DemandModel(0, appetite_median_mb=50.0)
        mix = model.sample_mix(rng)
        with pytest.raises(ConfigurationError):
            model.split_day(mix, -1.0, 0.0, True, rng)

    def test_tx_fraction_reasonable(self, rng):
        model = DemandModel(0, appetite_median_mb=50.0)
        mix = model.sample_mix(rng)
        frac = model.tx_fraction(mix, on_wifi=False)
        # RX is roughly 5x TX in aggregate (Figure 3).
        assert 0.1 < frac < 0.5

    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            DemandModel(5, appetite_median_mb=50.0)
        with pytest.raises(ConfigurationError):
            DemandModel(0, appetite_median_mb=-1.0)
        with pytest.raises(ConfigurationError):
            DemandModel(0, appetite_median_mb=1.0, wifi_uplift=0.5)


class TestUpdates:
    def test_policy_hazard_shape(self):
        policy = UpdatePolicy(release_day=10)
        assert policy.hazard(-1, False) == 0.0
        assert policy.hazard(0, False) == policy.day0_hazard
        assert policy.hazard(1, False) > policy.hazard(5, False)
        assert policy.hazard(2, True) > policy.hazard(2, False)

    def test_policy_validation(self):
        with pytest.raises(ConfigurationError):
            UpdatePolicy(release_day=-1)
        with pytest.raises(ConfigurationError):
            UpdatePolicy(release_day=0, size_bytes=0.0)
        with pytest.raises(ConfigurationError):
            UpdatePolicy(release_day=0, daily_hazard=0.0)

    def test_update_requires_wifi(self, rng):
        model = UpdateModel(UpdatePolicy(release_day=0, day0_hazard=1.0))
        assert not model.maybe_update(1, 0, False, wifi_hours_today=0.0, rng=rng)
        assert model.maybe_update(1, 0, False, wifi_hours_today=5.0, rng=rng)
        assert model.updated(1)

    def test_update_happens_once(self, rng):
        model = UpdateModel(UpdatePolicy(release_day=0, day0_hazard=1.0,
                                         daily_hazard=1.0, tail_decay=1.0))
        assert model.maybe_update(1, 0, False, 5.0, rng)
        assert not model.maybe_update(1, 1, False, 5.0, rng)

    def test_no_update_before_release(self, rng):
        model = UpdateModel(UpdatePolicy(release_day=5, day0_hazard=1.0))
        assert not model.maybe_update(1, 3, False, 10.0, rng)

    def test_flash_crowd_statistics(self, rng):
        policy = UpdatePolicy(release_day=0)
        model = UpdateModel(policy)
        update_day = {}
        for device in range(600):
            for day in range(15):
                if model.maybe_update(device, day, day % 7 >= 5, 4.0, rng):
                    update_day[device] = day
        frac_updated = len(update_day) / 600
        assert 0.4 < frac_updated < 0.9  # §3.7: 58% in two weeks
        first_day = sum(1 for d in update_day.values() if d == 0) / 600
        assert 0.05 < first_day < 0.35
