"""Paper-shape assertions: the qualitative results the reproduction must hold.

Each test pins one claim from the paper's evaluation (who wins, which
direction a trend moves, rough magnitudes). Bands are generous because the
session fixture runs a small panel; benchmarks at larger scale tighten them.
"""

import numpy as np
import pytest

import repro.analysis as A


class TestHeadlineFindings:
    def test_wifi_share_grows_59_to_67(self, cache):
        """§3.1: WiFi share of total volume grows from 59% to 67%."""
        shares = {
            y: A.aggregate_traffic(cache.clean(y)).wifi_share for y in cache.years
        }
        assert shares[2013] < shares[2015]
        assert 0.4 < shares[2013] < 0.8
        assert 0.55 < shares[2015] < 0.9

    def test_lte_share_25_to_80(self, cache):
        """Table 1: LTE share of cellular traffic 25% -> 80%."""
        shares = {
            y: A.aggregate_traffic(cache.clean(y)).lte_share_of_cellular
            for y in cache.years
        }
        assert shares[2013] < 0.5
        assert shares[2015] > 0.6
        assert shares[2013] < shares[2014] < shares[2015]

    def test_wifi_median_overtakes_cellular(self, cache):
        """Table 3: median WiFi < cellular in 2013, > cellular by 2015."""
        growth = A.volume_growth_table([cache.clean(y) for y in cache.years])
        assert growth.median["wifi"][2013] < growth.median["cell"][2013]
        assert growth.median["wifi"][2015] > growth.median["cell"][2015]

    def test_wifi_agr_highest(self, cache):
        """Table 3: WiFi grows fastest (134%/yr median vs 35% cellular)."""
        growth = A.volume_growth_table([cache.clean(y) for y in cache.years])
        assert growth.agr_median["wifi"] > growth.agr_median["cell"] > 0

    def test_rx_about_5x_tx(self, cache):
        """Figure 3: download is about five times upload."""
        ds = cache.clean(2015)
        rx = ds.daily_matrix("all", "rx").sum()
        tx = ds.daily_matrix("all", "tx").sum()
        assert 2.5 < rx / tx < 9.0


class TestUserDiversity:
    def test_cellular_intensive_declines(self, cache):
        """Figure 5: cellular-intensive user-days 35% -> 22%."""
        fractions = {
            y: A.wifi_cell_heatmap(cache.clean(y)).cellular_intensive_fraction
            for y in cache.years
        }
        assert fractions[2015] < fractions[2013]
        assert 0.2 < fractions[2013] < 0.6
        assert 0.12 < fractions[2015] < 0.45

    def test_wifi_intensive_stable_small(self, cache):
        """Figure 5: WiFi-intensive users a stable small minority (~8%)."""
        for year in cache.years:
            frac = A.wifi_cell_heatmap(cache.clean(year)).wifi_intensive_fraction
            assert 0.01 < frac < 0.2

    def test_ratio_means_grow(self, cache):
        """§3.3.2: mean WiFi-traffic ratio 0.58->0.71; user ratio 0.32->0.48."""
        r13 = A.wifi_ratios(cache.clean(2013), cache.user_classes(2013))
        r15 = A.wifi_ratios(cache.clean(2015), cache.user_classes(2015))
        assert r15.traffic("all").mean > r13.traffic("all").mean
        assert r15.users("all").mean > r13.users("all").mean
        assert 0.45 < r13.traffic("all").mean < 0.75
        assert 0.25 < r13.users("all").mean < 0.5

    def test_heavy_hitters_offload_more(self, cache):
        """Figures 7-8: heavy hitters lead light users in both ratios."""
        for year in (2013, 2015):
            ratios = A.wifi_ratios(cache.clean(year), cache.user_classes(year))
            assert ratios.traffic("heavy").mean > ratios.traffic("light").mean
            assert ratios.users("heavy").mean > ratios.users("light").mean

    def test_android_wifi_off_declines_50_to_40(self, cache):
        """Figure 9 / §3.3.4: WiFi-off Android users drop ~50% -> ~40%."""
        off = {
            y: A.interface_state_ratios(cache.clean(y)).android_means["wifi_off"]
            for y in cache.years
        }
        assert off[2015] < off[2013]

    def test_ios_connects_about_30pct_more(self, cache):
        """§3.3.4: iOS WiFi-user ratio exceeds Android's."""
        gap = A.ios_android_gap(A.interface_state_ratios(cache.clean(2015)))
        assert gap > 0.05


class TestWifiEnvironment:
    def test_home_ap_users_grow_66_to_79(self, cache):
        """§3.4.1: users with inferred home AP 66% -> 79%."""
        fractions = {
            y: cache.classification(y).fraction_devices_with_home_ap(
                cache.clean(y).n_devices
            )
            for y in cache.years
        }
        assert fractions[2013] < fractions[2015]
        assert 0.5 < fractions[2013] < 0.8
        assert 0.6 < fractions[2015] < 0.92

    def test_public_aps_double(self, cache):
        """Table 4: detected public APs double 2013 -> 2015."""
        counts = {y: cache.classification(y).counts() for y in cache.years}
        assert counts[2015]["public"] > 1.5 * counts[2013]["public"]

    def test_office_aps_stable(self, cache):
        """Table 4: office APs stay flat while public explodes."""
        counts = {y: cache.classification(y).counts() for y in cache.years}
        assert counts[2015]["office"] < 3 * max(counts[2013]["office"], 1)

    def test_home_carries_most_wifi_volume(self, cache):
        """Figure 11: ~95% of WiFi volume is at home."""
        for year in (2013, 2015):
            lt = A.location_traffic(cache.clean(year), cache.classification(year))
            assert lt.volume_share["home"] > 0.8

    def test_single_ap_days_decline(self, cache):
        """Figure 12: 1-AP days drop from ~70% toward ~60%."""
        one_ap = {
            y: A.aps_per_day(cache.clean(y), cache.user_classes(y)).pct("all", 1)
            for y in cache.years
        }
        assert one_ap[2015] < one_ap[2013]

    def test_association_duration_ordering(self, cache):
        """Figure 13: home >> office-ish >> public durations."""
        durations = A.association_durations(
            cache.clean(2015), cache.classification(2015)
        )
        assert durations.p90_hours["home"] > 6.0
        assert durations.p90_hours["public"] < 2.5

    def test_public_5ghz_majority_2015(self, cache):
        """Figure 14: public 5 GHz > 50% by 2015; home/office < ~20%."""
        fractions = A.band_fractions(cache.clean(2015), cache.classification(2015))
        assert fractions.fraction("public") > 0.4
        assert fractions.fraction("home") < 0.35

    def test_rssi_home_vs_public(self, cache):
        """Figure 15: home ~ -54 dBm; public weaker with a ~12% weak tail."""
        dist = A.rssi_distributions(cache.clean(2015), cache.classification(2015))
        assert -62 < dist.mean["home"] < -45
        assert dist.mean["public"] < dist.mean["home"]
        assert 0.02 < dist.weak_fraction["public"] < 0.3
        assert dist.weak_fraction["home"] < 0.1

    def test_channels_public_planned_home_dispersing(self, cache):
        """Figure 16: public on 1/6/11; home Ch1 concentration declines."""
        d13 = A.channel_distributions(cache.clean(2013), cache.classification(2013))
        d15 = A.channel_distributions(cache.clean(2015), cache.classification(2015))
        assert d15.trio_share("public") > 0.9
        assert d15.channel_share("home", 1) < d13.channel_share("home", 1)


class TestUpdateAndCap:
    def test_update_story(self, cache):
        """§3.7: most iPhones update in two weeks; no-home users lag."""
        timing = A.update_timing(cache.raw(2015), cache.classification(2015))
        assert timing.updated_fraction > 0.3
        assert timing.updated_fraction_no_home < timing.updated_fraction
        if not np.isnan(timing.median_delay_days_no_home):
            assert timing.median_delay_days_no_home >= timing.median_delay_days

    def test_cap_gap_shrinks(self, cache):
        """Figure 19: capped-vs-others gap narrows after the 2015 change."""
        gap14 = A.cap_effect(cache.clean(2014)).median_gap()
        gap15 = A.cap_effect(cache.clean(2015)).median_gap()
        assert gap15 < gap14

    def test_offload_estimate_band(self, cache):
        """§3.5: 15-20% of WiFi-available users' cellular is offloadable."""
        estimate = A.offload_estimate(cache.clean(2015))
        assert 0.05 < estimate.offloadable_fraction < 0.35

    def test_offload_impact_magnitudes(self, cache):
        """§4.1: offload ~28% of broadband; one phone ~12% of home volume."""
        impact = A.offload_impact(cache.clean(2015))
        assert 0.1 < impact.offload_share_of_broadband < 0.7
        assert 0.04 < impact.smartphone_share_of_home_broadband < 0.3
