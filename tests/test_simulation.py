"""Integration-level tests of the device simulator, campaign, and study."""

import dataclasses

import numpy as np
import pytest

from repro.constants import SAMPLES_PER_DAY
from repro.errors import ConfigurationError
from repro.net.accesspoint import APType
from repro.population.profiles import WifiPolicy
from repro.simulation.params import SimParams, default_params
from repro.simulation.study import StudyConfig, default_campaign_config, run_study
from repro.simulation.campaign import run_campaign
from repro.traces.records import DeviceOS, IfaceKind, WifiStateCode


class TestParams:
    def test_defaults_exist_per_year(self):
        for year in (2013, 2014, 2015):
            params = default_params(year)
            assert params.year_index == year - 2013

    def test_only_2015_has_update(self):
        assert default_params(2013).update_policy is None
        assert default_params(2014).update_policy is None
        assert default_params(2015).update_policy is not None

    def test_2015_cap_relaxed(self):
        assert default_params(2015).cap_policy.limit_bps > (
            default_params(2014).cap_policy.limit_bps
        )

    def test_year_growth_in_uplift_and_assoc(self):
        p13, p15 = default_params(2013), default_params(2015)
        assert p15.wifi_uplift > p13.wifi_uplift
        assert p15.venue_assoc_p > p13.venue_assoc_p

    def test_unknown_year(self):
        with pytest.raises(ConfigurationError):
            default_params(2020)

    def test_invalid_params_rejected(self):
        with pytest.raises(ConfigurationError):
            SimParams(year_index=5)
        with pytest.raises(ConfigurationError):
            SimParams(year_index=0, venue_assoc_p=1.5)
        with pytest.raises(ConfigurationError):
            SimParams(year_index=0, sighting_period_slots=0)


class TestCampaignConfig:
    def test_scale_shrinks_panel(self):
        full = default_campaign_config(2015, scale=1.0)
        small = default_campaign_config(2015, scale=0.1)
        assert small.recruitment.n_total < full.recruitment.n_total
        assert small.deployment.public.n_aps < full.deployment.public.n_aps

    def test_scan_scale_compensates(self):
        full = default_campaign_config(2015, scale=1.0)
        small = default_campaign_config(2015, scale=0.1)
        assert small.params.scan_scale == pytest.approx(
            full.params.scan_scale * 10.0
        )

    def test_panel_sizes_match_table1_at_full_scale(self):
        config = default_campaign_config(2013, scale=1.0)
        assert config.recruitment.n_android == 948
        assert config.recruitment.n_ios == 807

    def test_year_mismatch_rejected(self):
        config = default_campaign_config(2015, scale=0.05)
        bad_recruitment = dataclasses.replace(config.recruitment, year=2014)
        with pytest.raises(ConfigurationError):
            dataclasses.replace(config, recruitment=bad_recruitment)

    def test_invalid_scale(self):
        with pytest.raises(ConfigurationError):
            default_campaign_config(2015, scale=0.0)
        with pytest.raises(ConfigurationError):
            default_campaign_config(2015, scale=1.5)


class TestCampaignOutput:
    def test_deterministic_with_seed(self):
        config = default_campaign_config(2013, scale=0.02, seed=9)
        a = run_campaign(config).dataset
        b = run_campaign(config).dataset
        np.testing.assert_array_equal(a.traffic.rx, b.traffic.rx)
        np.testing.assert_array_equal(a.wifi.ap_id, b.wifi.ap_id)

    def test_different_seed_differs(self):
        a = run_campaign(default_campaign_config(2013, scale=0.02, seed=1)).dataset
        b = run_campaign(default_campaign_config(2013, scale=0.02, seed=2)).dataset
        assert len(a.traffic) != len(b.traffic) or not np.array_equal(
            a.traffic.rx[:100], b.traffic.rx[:100]
        )

    def test_directory_only_observed_aps(self, study):
        for year in study.years:
            result = study.campaigns[year]
            dataset = result.dataset
            assert len(dataset.ap_directory) < len(result.deployment.aps)
            observed = set(
                int(a) for a in dataset.wifi.ap_id[dataset.wifi.ap_id >= 0]
            )
            assert observed <= set(dataset.ap_directory)


class TestSimulatedBehaviour:
    """Checks that device-level mechanics show up in the data."""

    def test_ios_reports_only_associations(self, raw2015):
        ios = set(raw2015.ios_ids())
        wifi = raw2015.wifi
        ios_rows = np.isin(wifi.device, list(ios))
        states = set(np.unique(wifi.state[ios_rows]))
        assert states <= {int(WifiStateCode.ASSOCIATED)}

    def test_android_reports_full_panel(self, raw2015):
        android = set(raw2015.android_ids())
        wifi = raw2015.wifi
        android_rows = np.isin(wifi.device, list(android))
        states = set(np.unique(wifi.state[android_rows]))
        assert int(WifiStateCode.OFF) in states
        assert int(WifiStateCode.AVAILABLE) in states
        assert int(WifiStateCode.ASSOCIATED) in states

    def test_scans_only_android(self, raw2015):
        ios = set(raw2015.ios_ids())
        assert not np.isin(raw2015.scans.device, list(ios)).any()
        assert not np.isin(raw2015.apps.device, list(ios)).any()

    def test_updates_only_ios_in_2015(self, study):
        raw = study.dataset(2015)
        ios = set(raw.ios_ids())
        assert len(raw.updates) > 0
        assert all(int(d) in ios for d in raw.updates.device)
        assert len(study.dataset(2013).updates) == 0

    def test_update_traffic_on_wifi(self, study):
        raw = study.dataset(2015)
        n_slots = raw.n_slots
        wifi_keys = set(
            (raw.traffic.device[i] * n_slots + raw.traffic.t[i])
            for i in np.flatnonzero(raw.traffic.iface == int(IfaceKind.WIFI))
        )
        for device, t in zip(raw.updates.device, raw.updates.t):
            assert int(device) * n_slots + int(t) in wifi_keys

    def test_always_off_users_never_associate(self, study):
        result = study.campaigns[2015]
        raw = result.dataset
        truth = raw.ground_truth
        off_users = [
            d for d, policy in truth.wifi_policy_of_user.items()
            if policy == "always_off"
        ]
        assoc = raw.wifi.state == int(WifiStateCode.ASSOCIATED)
        assert not np.isin(raw.wifi.device[assoc], off_users).any()

    def test_no_config_users_never_associate(self, study):
        raw = study.dataset(2015)
        truth = raw.ground_truth
        nc_users = [
            d for d, policy in truth.wifi_policy_of_user.items()
            if policy == "no_config"
        ]
        assoc = raw.wifi.state == int(WifiStateCode.ASSOCIATED)
        assert not np.isin(raw.wifi.device[assoc], nc_users).any()

    def test_home_association_matches_truth(self, study):
        raw = study.dataset(2015)
        truth = raw.ground_truth
        assoc = raw.wifi.state == int(WifiStateCode.ASSOCIATED)
        devices = raw.wifi.device[assoc]
        aps = raw.wifi.ap_id[assoc]
        home_type_aps = {
            ap for ap, t in truth.ap_types.items() if t is APType.HOME
        }
        for device, ap in zip(devices[:2000], aps[:2000]):
            if int(ap) in home_type_aps:
                # A device on a home-type AP must be on its own home AP.
                assert truth.home_ap_of_user.get(int(device)) == int(ap)

    def test_app_totals_track_traffic_totals(self, raw2015):
        """Per-device Android app volume ~= device traffic volume."""
        android = raw2015.android_ids()
        apps = raw2015.apps
        traffic = raw2015.traffic
        for device in android[:10]:
            app_total = apps.rx[apps.device == device].sum()
            traffic_total = traffic.rx[traffic.device == device].sum()
            if traffic_total == 0:
                continue
            # App records exclude trimmed tails and sub-byte rows.
            assert app_total == pytest.approx(traffic_total, rel=0.15)


class TestStudy:
    def test_all_years_run(self, study):
        assert set(study.years) == {2013, 2014, 2015}
        for year in study.years:
            assert study.dataset(year).n_devices > 10
            assert len(study.surveys[year]) == study.dataset(year).n_devices

    def test_missing_year_raises(self):
        from repro.simulation.study import Study
        with pytest.raises(ConfigurationError):
            Study().dataset(2015)

    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            StudyConfig(scale=0.0)
        with pytest.raises(ConfigurationError):
            StudyConfig(years=(2019,))

    def test_subset_of_years(self):
        study = run_study(scale=0.02, seed=3, years=(2014,))
        assert study.years == (2014,)
