"""Unit tests for demographics, profiles, recruitment, and the survey."""

import numpy as np
import pytest

from repro.apps.demand import DemandModel
from repro.errors import ConfigurationError
from repro.population.demographics import (
    OCCUPATION_SHARES,
    Occupation,
    occupation_probabilities,
    sample_occupation,
)
from repro.population.profiles import UserProfile, WifiPolicy
from repro.population.recruitment import (
    RecruitmentConfig,
    default_policy_mix,
    recruit,
)
from repro.population.survey import (
    REASONS,
    run_survey,
    tabulate_survey,
)
from repro.traces.records import DeviceOS


@pytest.fixture()
def demand():
    return DemandModel(2, appetite_median_mb=50.0)


@pytest.fixture()
def panel(demand, rng):
    config = RecruitmentConfig(
        year=2015, n_android=150, n_ios=150, lte_share=0.8, home_ap_share=0.8
    )
    return recruit(config, demand, rng)


class TestDemographics:
    def test_shares_sum_to_about_100(self):
        # The paper's own 2015 column sums to 97.9 (rounding in Table 2).
        for year, shares in OCCUPATION_SHARES.items():
            assert sum(shares.values()) == pytest.approx(100.0, abs=2.5)

    def test_table2_values(self):
        assert OCCUPATION_SHARES[2013][Occupation.OFFICE] == 20.0
        assert OCCUPATION_SHARES[2015][Occupation.STUDENT] == 2.7
        assert OCCUPATION_SHARES[2014][Occupation.HOUSEWIFE] == 14.2

    def test_probabilities_normalized(self):
        _, probs = occupation_probabilities(2014)
        assert probs.sum() == pytest.approx(1.0)

    def test_unknown_year(self):
        with pytest.raises(ConfigurationError):
            occupation_probabilities(2020)

    def test_sampling_matches_shares(self, rng):
        draws = [sample_occupation(2013, rng) for _ in range(4000)]
        office_share = draws.count(Occupation.OFFICE) / len(draws)
        assert office_share == pytest.approx(0.20, abs=0.03)


class TestRecruitment:
    def test_panel_size_and_os_split(self, panel):
        assert len(panel) == 300
        android = sum(1 for p in panel if p.os is DeviceOS.ANDROID)
        assert android == 150

    def test_user_ids_dense(self, panel):
        assert [p.user_id for p in panel] == list(range(300))

    def test_home_ap_share(self, panel):
        share = sum(1 for p in panel if p.has_home_ap) / len(panel)
        assert share == pytest.approx(0.8, abs=0.08)

    def test_lte_share(self, panel):
        from repro.net.cellular import CellularTechnology
        lte = sum(1 for p in panel if p.technology is CellularTechnology.LTE)
        assert lte / len(panel) == pytest.approx(0.8, abs=0.08)

    def test_commuters_have_offices(self, panel):
        for p in panel:
            if p.is_commuter:
                assert p.office is not None

    def test_data_off_requires_home_ap(self, panel):
        for p in panel:
            if p.cellular_data_off:
                assert p.has_home_ap
                assert p.wifi_policy in (WifiPolicy.ALWAYS_ON, WifiPolicy.DAYTIME_OFF)

    def test_policy_mix_owner_vs_nonowner(self, demand, rng):
        config = RecruitmentConfig(
            year=2013, n_android=800, n_ios=0, lte_share=0.3, home_ap_share=0.5
        )
        panel = recruit(config, demand, rng)
        owners = [p for p in panel if p.has_home_ap]
        nonowners = [p for p in panel if not p.has_home_ap]
        owner_noconfig = sum(
            1 for p in owners if p.wifi_policy is WifiPolicy.NO_CONFIG
        ) / len(owners)
        nonowner_noconfig = sum(
            1 for p in nonowners if p.wifi_policy is WifiPolicy.NO_CONFIG
        ) / len(nonowners)
        assert nonowner_noconfig > owner_noconfig + 0.2

    def test_default_policy_mix_unknown_year(self):
        with pytest.raises(ConfigurationError):
            default_policy_mix(2020)

    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            RecruitmentConfig(year=2015, n_android=-1, n_ios=0,
                              lte_share=0.5, home_ap_share=0.5)
        with pytest.raises(ConfigurationError):
            RecruitmentConfig(year=2015, n_android=1, n_ios=1,
                              lte_share=1.5, home_ap_share=0.5)

    def test_homes_spread_over_region(self, panel):
        lats = np.array([p.home.lat for p in panel])
        lons = np.array([p.home.lon for p in panel])
        assert lats.std() > 0.05
        assert lons.std() > 0.05


class TestProfileValidation:
    def test_commuter_without_office_rejected(self, demand, rng):
        mix = demand.sample_mix(rng)
        from repro.net.cellular import CARRIERS, CellularTechnology
        from repro.geo.coords import Coordinate
        with pytest.raises(ConfigurationError):
            UserProfile(
                user_id=0, os=DeviceOS.ANDROID, carrier=CARRIERS[0],
                technology=CellularTechnology.LTE,
                occupation=Occupation.OFFICE,
                home=Coordinate(35.6, 139.7), office=None,
                has_home_ap=True, office_has_ap=False,
                wifi_policy=WifiPolicy.ALWAYS_ON, public_enrolled=True,
                cellular_data_off=False, appetite_bytes=1e6, mix=mix,
            )

    def test_wifi_capable(self, panel):
        for p in panel:
            if p.wifi_policy in (WifiPolicy.ALWAYS_OFF, WifiPolicy.NO_CONFIG):
                assert not p.wifi_capable


class TestSurvey:
    def test_every_user_answers(self, panel, rng):
        responses = run_survey(panel, 2015, rng)
        assert len(responses) == len(panel)
        for r in responses:
            assert set(r.connected) == {"home", "office", "public"}

    def test_reasons_only_for_non_yes(self, panel, rng):
        responses = run_survey(panel, 2015, rng)
        for r in responses:
            for loc, answer in r.connected.items():
                if answer == "yes":
                    assert loc not in r.reasons
                else:
                    assert len(r.reasons[loc]) >= 1

    def test_tabulation_percentages(self, panel, rng):
        responses = run_survey(panel, 2015, rng)
        tables = tabulate_survey(responses, 2015)
        for loc in ("home", "office", "public"):
            total = sum(tables.connected_pct[loc].values())
            assert total == pytest.approx(100.0)
        assert sum(tables.occupation_pct.values()) == pytest.approx(100.0)

    def test_home_yes_tracks_ownership(self, panel, rng):
        responses = run_survey(panel, 2015, rng)
        tables = tabulate_survey(responses, 2015)
        # ~80% own a home AP; most of them report connecting (Table 8).
        assert 50.0 < tables.connected_pct["home"]["yes"] < 90.0

    def test_2013_has_no_security_question(self, panel, rng):
        responses = run_survey(panel, 2013, rng)
        tables = tabulate_survey(responses, 2013)
        assert np.isnan(tables.reason_pct["public"]["Security issue"])
        assert np.isnan(tables.reason_pct["home"]["LTE is enough"])

    def test_2015_has_security_concern_in_public(self, panel, rng):
        responses = run_survey(panel, 2015, rng)
        tables = tabulate_survey(responses, 2015)
        # §4.2(4): security is a significant public-WiFi concern.
        assert tables.reason_pct["public"]["Security issue"] > (
            tables.reason_pct["home"]["Security issue"]
        )

    def test_all_reasons_are_known(self, panel, rng):
        responses = run_survey(panel, 2015, rng)
        for r in responses:
            for reasons in r.reasons.values():
                assert set(reasons) <= set(REASONS)
