"""Telemetry must never change results.

The observability layer's core contract: a run with tracing, flight
recording, or resource sampling on is bit-for-bit identical to the same
run with them off, for any worker count. Telemetry reads outcomes — it
must not touch RNG streams, device ordering, or the collection path.
"""

import pytest

from repro.collection.faults import FaultPlan
from repro.obs.recorder import FlightRecorder, load_events, use_recorder
from repro.obs.resources import ResourceSampler
from repro.obs.span import Tracer, use_tracer
from repro.simulation.campaign import run_campaign
from repro.simulation.study import StudyConfig, Study

from .test_engine import _small_config, assert_datasets_identical


@pytest.fixture
def traced():
    """A real tracer installed for the duration of one test."""
    tracer = Tracer("test")
    with use_tracer(tracer):
        yield tracer


def test_campaign_identical_with_telemetry_on(traced):
    config = _small_config()
    baseline = run_campaign(config)  # runs under the real tracer too, but
    # the reference below is produced with the default no-op tracer:
    with use_tracer(None):
        untraced = run_campaign(config)
    assert_datasets_identical(untraced.dataset, baseline.dataset)


def test_campaign_identical_across_workers_with_telemetry(traced):
    config = _small_config()
    serial = run_campaign(config, n_jobs=1)
    sharded = run_campaign(config, n_jobs=2)
    assert_datasets_identical(serial.dataset, sharded.dataset)
    # Worker spans came back from both runs and were grafted into ours.
    names = [span["name"] for span in traced.export()["children"]]
    assert names.count("run_campaign") == 2


def test_faulty_campaign_identical_with_telemetry(traced):
    config = _small_config(faults=FaultPlan(
        upload_failure_p=0.1, dropout_p=0.1, duplicate_p=0.05
    ))
    traced_run = run_campaign(config, n_jobs=2)
    with use_tracer(None):
        untraced = run_campaign(config, n_jobs=2)
    assert_datasets_identical(untraced.dataset, traced_run.dataset)
    assert untraced.collection.totals() == traced_run.collection.totals()


def test_study_run_records_span_tree(traced):
    study = Study(StudyConfig(scale=0.004, seed=11, years=(2013,))).run(
        n_jobs=2
    )
    tree = traced.export()
    (study_span,) = [
        span for span in tree["children"] if span["name"] == "study.run"
    ]
    names = {name for name, _ in _walk(study_span)}
    # The pipeline's load-bearing stages all appear in the trace.
    assert {"plan_campaign", "execute_shards", "simulate_shard",
            "simulate_devices", "merge_campaign", "survey"} <= names
    # Worker spans carry per-shard attribution.
    shard_spans = [s for name, s in _walk(study_span)
                   if name == "simulate_shard"]
    n_shards = study.campaigns[2013].execution.n_shards
    assert len(shard_spans) == n_shards
    assert {s["attrs"]["shard"] for s in shard_spans} == set(range(n_shards))
    # Device counts in the trace match the simulated panel.
    devices = sum(s["counters"]["devices"] for name, s in _walk(study_span)
                  if name == "simulate_devices")
    assert devices == study.dataset(2013).n_devices


def _walk(span):
    yield span["name"], span
    for child in span.get("children", ()):
        yield from _walk(child)


def test_campaign_identical_with_flight_recorder(tmp_path):
    config = _small_config()
    with use_recorder(FlightRecorder(tmp_path / "events.jsonl")):
        recorded = run_campaign(config, n_jobs=2)
    unrecorded = run_campaign(config, n_jobs=2)
    assert_datasets_identical(unrecorded.dataset, recorded.dataset)
    kinds = {e["kind"] for e in load_events(tmp_path / "events.jsonl")}
    assert {"shard_queued", "shard_completed", "progress",
            "phase_start", "phase_end"} <= kinds


def test_campaign_identical_with_recorder_and_sampler_across_jobs(tmp_path):
    config = _small_config()
    recorder = FlightRecorder(tmp_path / "events.jsonl")
    with use_recorder(recorder):
        with ResourceSampler(recorder, interval_s=0.05):
            recorded_serial = run_campaign(config, n_jobs=1)
            recorded_parallel = run_campaign(config, n_jobs=2)
    baseline = run_campaign(config, n_jobs=1)
    assert_datasets_identical(baseline.dataset, recorded_serial.dataset)
    assert_datasets_identical(baseline.dataset, recorded_parallel.dataset)
    events = load_events(tmp_path / "events.jsonl")
    assert any(e["kind"] == "resource_sample" for e in events)


def test_faulty_campaign_identical_with_recorder(tmp_path):
    # fault_loss events fire on this path; they must read accounting
    # without perturbing it.
    config = _small_config(faults=FaultPlan(
        upload_failure_p=0.1, dropout_p=0.1, duplicate_p=0.05
    ))
    with use_recorder(FlightRecorder(tmp_path / "events.jsonl")):
        recorded = run_campaign(config, n_jobs=2)
    unrecorded = run_campaign(config, n_jobs=2)
    assert_datasets_identical(unrecorded.dataset, recorded.dataset)
    assert unrecorded.collection.totals() == recorded.collection.totals()
