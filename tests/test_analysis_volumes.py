"""Unit tests for aggregate traffic, daily volumes, and the Fig 5 heat map."""

import numpy as np
import pytest

from repro.analysis.aggregate import aggregate_traffic, peak_hours
from repro.analysis.daily_volume import (
    daily_volume_distributions,
    volume_growth_table,
)
from repro.analysis.heatmap import wifi_cell_heatmap
from repro.errors import AnalysisError
from repro.traces.records import IfaceKind
from tests.helpers import add_daily_traffic, make_builder, slot


class TestAggregate:
    def test_shares_exact(self):
        builder = make_builder(n_devices=1, n_days=1)
        builder.extend_traffic(
            device=[0, 0, 0], t=[0, 1, 2],
            iface=[int(IfaceKind.CELL_3G), int(IfaceKind.CELL_LTE),
                   int(IfaceKind.WIFI)],
            rx=[1e6, 3e6, 6e6], tx=[0, 0, 0],
        )
        agg = aggregate_traffic(builder.build())
        assert agg.wifi_share == pytest.approx(0.6)
        assert agg.lte_share_of_cellular == pytest.approx(0.75)

    def test_empty_dataset_rejected(self):
        with pytest.raises(AnalysisError):
            aggregate_traffic(make_builder().build())

    def test_folded_week_units(self):
        builder = make_builder(n_devices=1, n_days=7)
        # 450 MB in hour 10 of every day -> 1 Mbps at that hour.
        for day in range(7):
            builder.extend_traffic(
                device=[0], t=[slot(day, 10)], iface=[int(IfaceKind.WIFI)],
                rx=[450e6], tx=[0],
            )
        agg = aggregate_traffic(builder.build())
        folded = agg.folded_week("wifi_rx")
        present = folded[np.isfinite(folded)]
        assert present.max() == pytest.approx(1.0)

    def test_unknown_series_key(self):
        builder = make_builder(n_devices=1, n_days=1)
        add_daily_traffic(builder, 0, 0, wifi_rx_mb=1)
        agg = aggregate_traffic(builder.build())
        with pytest.raises(AnalysisError):
            agg.folded_week("bogus")

    def test_peak_hours(self):
        profile = np.zeros(168)
        profile[20] = 5.0
        profile[100] = 9.0
        profile[50] = np.nan
        assert list(peak_hours(profile, top_n=2)) == [100, 20]

    def test_wifi_exceeds_cellular_2015(self, dataset2015):
        agg = aggregate_traffic(dataset2015)
        assert agg.wifi_share > 0.5  # §3.1: WiFi volume exceeds cellular


class TestDailyVolumes:
    def test_floor_applied(self):
        builder = make_builder(n_devices=3, n_days=1)
        add_daily_traffic(builder, 0, 0, cell_rx_mb=0.05)  # below floor
        add_daily_traffic(builder, 1, 0, cell_rx_mb=5)
        add_daily_traffic(builder, 2, 0, cell_rx_mb=10)
        dist = daily_volume_distributions(builder.build())
        assert dist.total_rx.n == 2

    def test_zero_fractions(self):
        builder = make_builder(n_devices=4, n_days=1)
        add_daily_traffic(builder, 0, 0, cell_rx_mb=10)            # no wifi
        add_daily_traffic(builder, 1, 0, cell_rx_mb=5, wifi_rx_mb=5)
        add_daily_traffic(builder, 2, 0, wifi_rx_mb=10)            # no cell
        add_daily_traffic(builder, 3, 0, cell_rx_mb=2, wifi_rx_mb=8)
        dist = daily_volume_distributions(builder.build())
        assert dist.zero_fraction("wifi", "rx") == pytest.approx(0.25)
        assert dist.zero_fraction("cell", "rx") == pytest.approx(0.25)

    def test_unknown_zero_fraction_key(self):
        builder = make_builder(n_devices=1, n_days=1)
        add_daily_traffic(builder, 0, 0, cell_rx_mb=10)
        dist = daily_volume_distributions(builder.build())
        with pytest.raises(AnalysisError):
            dist.zero_fraction("fiber")

    def test_rx_larger_than_tx_in_study(self, dataset2015):
        dist = daily_volume_distributions(dataset2015)
        assert dist.total_rx.median() > dist.total_tx.median() * 2

    def test_growth_table(self, cache):
        datasets = [cache.clean(y) for y in cache.years]
        growth = volume_growth_table(datasets)
        # Volumes grow monotonically (Table 3 shape).
        for kind in ("all", "cell", "wifi"):
            series = [growth.median[kind][y] for y in cache.years]
            assert series[0] < series[-1]
            assert growth.agr_median[kind] > 0
        # WiFi grows fastest in median (AGR 134% vs 35% cellular).
        assert growth.agr_median["wifi"] > growth.agr_median["cell"]

    def test_growth_table_needs_two(self, dataset2015):
        with pytest.raises(AnalysisError):
            volume_growth_table([dataset2015])


class TestHeatmap:
    def test_user_type_fractions_exact(self):
        builder = make_builder(n_devices=5, n_days=1)
        add_daily_traffic(builder, 0, 0, cell_rx_mb=10)               # cell-int
        add_daily_traffic(builder, 1, 0, wifi_rx_mb=10)               # wifi-int
        add_daily_traffic(builder, 2, 0, cell_rx_mb=5, wifi_rx_mb=10)  # above
        add_daily_traffic(builder, 3, 0, cell_rx_mb=10, wifi_rx_mb=5)  # below
        add_daily_traffic(builder, 4, 0, cell_rx_mb=0.02)             # dropped
        hm = wifi_cell_heatmap(builder.build())
        assert hm.n_points == 4
        assert hm.cellular_intensive_fraction == pytest.approx(0.25)
        assert hm.wifi_intensive_fraction == pytest.approx(0.25)
        assert hm.mixed_fraction == pytest.approx(0.5)
        assert hm.mixed_above_diagonal_fraction == pytest.approx(0.5)

    def test_histogram_covers_mixed_points(self):
        builder = make_builder(n_devices=3, n_days=1)
        for device in range(3):
            add_daily_traffic(builder, device, 0, cell_rx_mb=10, wifi_rx_mb=20)
        hm = wifi_cell_heatmap(builder.build())
        assert hm.histogram.sum() == 3

    def test_empty_rejected(self):
        with pytest.raises(AnalysisError):
            wifi_cell_heatmap(make_builder().build())

    def test_bins_validated(self, dataset2015):
        with pytest.raises(AnalysisError):
            wifi_cell_heatmap(dataset2015, bins=1)

    def test_fractions_sum_to_one(self, dataset2015):
        hm = wifi_cell_heatmap(dataset2015)
        total = (
            hm.cellular_intensive_fraction + hm.wifi_intensive_fraction
            + hm.mixed_fraction
        )
        assert total == pytest.approx(1.0, abs=1e-9)


class TestTemporalPatterns:
    def test_weekend_weekday_directions(self, dataset2015):
        """§3.1: weekend cellular < weekday; weekend WiFi > weekday."""
        from repro.analysis.aggregate import weekend_weekday_ratio
        cell_ratio = weekend_weekday_ratio(dataset2015, "cell")
        wifi_ratio = weekend_weekday_ratio(dataset2015, "wifi")
        assert cell_ratio < 1.05
        assert wifi_ratio > cell_ratio

    def test_weekend_ratio_needs_both_day_kinds(self):
        from repro.analysis.aggregate import weekend_weekday_ratio
        from repro.errors import AnalysisError
        from datetime import date
        builder = make_builder(n_devices=1, n_days=3, start=date(2015, 3, 2))
        add_daily_traffic(builder, 0, 0, cell_rx_mb=10)  # Mon-Wed: no weekend
        with pytest.raises(AnalysisError):
            weekend_weekday_ratio(builder.build(), "cell")

    def test_diurnal_peaks(self, dataset2015):
        """§3.1: WiFi peaks late evening; cellular peaks in commute hours."""
        from repro.analysis.aggregate import diurnal_peaks
        wifi_peaks = set(int(h) for h in diurnal_peaks(dataset2015, "wifi", 4))
        assert wifi_peaks & {20, 21, 22, 23, 0, 1}
        cell_peaks = set(int(h) for h in diurnal_peaks(dataset2015, "cell", 5))
        assert cell_peaks & {7, 8, 9, 12, 18, 19, 20, 21}

    def test_diurnal_peaks_exact(self):
        from repro.analysis.aggregate import diurnal_peaks
        builder = make_builder(n_devices=1, n_days=2)
        for day in range(2):
            builder.extend_traffic(
                device=[0, 0], t=[slot(day, 8), slot(day, 21)],
                iface=[int(IfaceKind.CELL_LTE)] * 2, rx=[5e6, 9e6], tx=[0, 0],
            )
        peaks = diurnal_peaks(builder.build(), "cell", 2)
        assert list(peaks) == [21, 8]
