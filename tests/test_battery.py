"""Tests for the battery stream and the drain-by-WiFi-state analysis."""

import numpy as np
import pytest

from repro.analysis.battery import battery_drain
from repro.errors import AnalysisError, SchemaError
from repro.traces.records import BatterySample, WifiStateCode
from tests.helpers import add_ap, add_association_span, add_state_span, make_builder


class TestBatterySchema:
    def test_level_bounds(self):
        BatterySample(0, 0, 0.0, False)
        BatterySample(0, 0, 100.0, True)
        with pytest.raises(SchemaError):
            BatterySample(0, 0, 101.0, False)
        with pytest.raises(SchemaError):
            BatterySample(0, 0, -1.0, False)

    def test_builder_round_trip(self):
        builder = make_builder(n_devices=1, n_days=1)
        builder.add_battery(BatterySample(0, 5, 80.0, True))
        ds = builder.build()
        assert len(ds.battery) == 1
        assert ds.battery.level[0] == 80.0
        assert ds.battery.charging[0] == 1

    def test_validation_catches_bad_level(self):
        from repro.traces.validate import validate_dataset
        builder = make_builder(n_devices=1, n_days=1)
        builder.extend_battery(device=[0], t=[0], level=[130.0], charging=[0])
        ds = builder.build()
        with pytest.raises(SchemaError, match="battery"):
            validate_dataset(ds)


class TestBatteryDrainAnalysis:
    def _dataset(self):
        builder = make_builder(n_devices=1, n_days=1)
        add_ap(builder, 0, "net")
        # First 2 hours WiFi off: drain 2%/sample (half-hourly -> 4%/h).
        add_state_span(builder, 0, WifiStateCode.OFF, 0, 12)
        # Next 2 hours associated: drain 3%/sample (6%/h).
        add_association_span(builder, 0, 0, 12, 24)
        ts = np.arange(0, 24, 3)
        levels = []
        level = 100.0
        for t in ts:
            levels.append(level)
            level -= 2.0 if t < 12 else 3.0
        builder.extend_battery(device=np.zeros(len(ts)), t=ts,
                               level=np.array(levels),
                               charging=np.zeros(len(ts)))
        return builder.build()

    def test_per_state_rates(self):
        drain = battery_drain(self._dataset())
        assert drain.drain_pct_per_hour["wifi_off"] == pytest.approx(4.0)
        # The off->associated boundary pair (4%/h) averages into the
        # associated bucket: (4 + 6 + 6 + 6) / 4 = 5.5.
        assert drain.drain_pct_per_hour["wifi_associated"] == pytest.approx(5.5)

    def test_extra_cost(self):
        drain = battery_drain(self._dataset())
        assert drain.extra_cost_of_wifi() == pytest.approx(1.5)

    def test_charging_samples_excluded(self):
        builder = make_builder(n_devices=1, n_days=1)
        add_state_span(builder, 0, WifiStateCode.OFF, 0, 12)
        builder.extend_battery(device=[0, 0, 0], t=[0, 3, 6],
                               level=[50.0, 60.0, 58.0],
                               charging=[1, 1, 0])
        with pytest.raises(AnalysisError):
            battery_drain(builder.build())  # no usable discharge pairs

    def test_requires_battery(self):
        with pytest.raises(AnalysisError):
            battery_drain(make_builder().build())

    def test_study_wifi_cost_small(self, raw2015):
        drain = battery_drain(raw2015)
        # §4.2(4): battery life is not a significant WiFi cost.
        assert 0.0 <= drain.extra_cost_of_wifi() < 2.0
        assert drain.drain_pct_per_hour["wifi_off"] > 0.5
        assert 0.05 < drain.charging_fraction < 0.6

    def test_levels_bounded_in_study(self, raw2015):
        assert raw2015.battery.level.min() >= 0.0
        assert raw2015.battery.level.max() <= 100.0


class TestAgentBattery:
    def test_battery_passthrough(self):
        from repro.collection.agent import AgentSnapshot, MeasurementAgent
        from repro.geo.coords import Coordinate
        from repro.net.cellular import CellularTechnology
        from repro.traces.records import DeviceInfo, DeviceOS
        agent = MeasurementAgent(
            DeviceInfo(0, DeviceOS.ANDROID, "docomo", CellularTechnology.LTE)
        )
        sample = BatterySample(0, 0, 77.0, False)
        records = agent.sample(
            AgentSnapshot(t=0, location=Coordinate(35.68, 139.76),
                          wifi_state=WifiStateCode.OFF, battery=sample)
        )
        assert records.battery == [sample]
