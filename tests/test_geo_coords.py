"""Unit tests for coordinate math and 5 km quantization."""

import math

import pytest

from repro.errors import ConfigurationError
from repro.geo.coords import (
    Coordinate,
    cell_center,
    cell_index,
    haversine_km,
    quantize,
)
from repro.geo.places import PLACES


class TestCoordinate:
    def test_valid_construction(self):
        c = Coordinate(35.68, 139.76)
        assert c.lat == 35.68
        assert c.lon == 139.76

    def test_latitude_out_of_range(self):
        with pytest.raises(ConfigurationError):
            Coordinate(91.0, 0.0)
        with pytest.raises(ConfigurationError):
            Coordinate(-90.5, 0.0)

    def test_longitude_out_of_range(self):
        with pytest.raises(ConfigurationError):
            Coordinate(0.0, 180.5)

    def test_is_hashable_and_frozen(self):
        c = Coordinate(35.0, 139.0)
        assert hash(c) == hash(Coordinate(35.0, 139.0))
        with pytest.raises(Exception):
            c.lat = 1.0


class TestHaversine:
    def test_zero_distance(self):
        c = Coordinate(35.68, 139.76)
        assert haversine_km(c, c) == 0.0

    def test_symmetric(self):
        a, b = PLACES["tokyo"], PLACES["yokohama"]
        assert haversine_km(a, b) == pytest.approx(haversine_km(b, a))

    def test_tokyo_yokohama_about_27km(self):
        d = haversine_km(PLACES["tokyo"], PLACES["yokohama"])
        assert 24 < d < 30

    def test_one_degree_latitude_about_111km(self):
        d = haversine_km(Coordinate(35.0, 139.0), Coordinate(36.0, 139.0))
        assert d == pytest.approx(111.2, rel=0.01)

    def test_method_matches_function(self):
        a, b = PLACES["tokyo"], PLACES["chiba"]
        assert a.distance_km(b) == haversine_km(a, b)


class TestCellIndex:
    def test_anchor_in_cell_zero(self):
        anchor = Coordinate(35.681, 139.767)
        assert cell_index(anchor) == (0, 0)

    def test_negative_cells_west_of_anchor(self):
        west = Coordinate(35.681, 139.0)
        col, _ = cell_index(west)
        assert col < 0

    def test_cell_center_round_trips(self):
        for idx in ((0, 0), (3, -2), (-5, 7)):
            center = cell_center(idx)
            assert cell_index(center) == idx

    def test_invalid_cell_size(self):
        with pytest.raises(ConfigurationError):
            cell_index(Coordinate(35.0, 139.0), cell_km=0.0)
        with pytest.raises(ConfigurationError):
            cell_center((0, 0), cell_km=-1.0)

    def test_adjacent_cells_are_5km_apart(self):
        a = cell_center((0, 0))
        b = cell_center((1, 0))
        assert haversine_km(a, b) == pytest.approx(5.0, rel=0.02)


class TestQuantize:
    def test_quantize_is_idempotent(self):
        c = Coordinate(35.701, 139.721)
        once = quantize(c)
        twice = quantize(once)
        assert once == twice

    def test_quantize_moves_less_than_half_diagonal(self):
        c = Coordinate(35.701, 139.721)
        q = quantize(c)
        # Max displacement is half the cell diagonal: 5*sqrt(2)/2 ~ 3.54 km.
        assert haversine_km(c, q) <= 5.0 * math.sqrt(2) / 2 + 0.05

    def test_points_in_same_cell_quantize_identically(self):
        a = Coordinate(35.681, 139.767)
        b = Coordinate(35.690, 139.770)
        if cell_index(a) == cell_index(b):
            assert quantize(a) == quantize(b)
