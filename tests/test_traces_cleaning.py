"""Unit tests for the §2 cleaning rules."""

import numpy as np
import pytest

from repro.traces.cleaning import (
    clean_for_main_analysis,
    drop_tethering,
    drop_update_window,
)
from repro.traces.records import IfaceKind, TrafficSample
from tests.helpers import add_daily_traffic, make_builder, slot


def test_drop_tethering():
    samples = [
        TrafficSample(0, 0, IfaceKind.WIFI, 1.0, 0.0, tethering=True),
        TrafficSample(0, 1, IfaceKind.WIFI, 2.0, 0.0, tethering=False),
    ]
    kept = drop_tethering(samples)
    assert len(kept) == 1 and kept[0].t == 1


def test_drop_update_window_removes_two_days():
    builder = make_builder(n_devices=2, n_days=5)
    for day in range(5):
        add_daily_traffic(builder, 0, day, wifi_rx_mb=10)
        add_daily_traffic(builder, 1, day, wifi_rx_mb=10)
    builder.extend_apps(device=[0, 0], day=[1, 3], category=[0, 0],
                        cellular=[1, 1], ap_id=[-1, -1], col=[0, 0], row=[0, 0],
                        rx=[1e6, 1e6], tx=[0, 0])
    # Device 0 updates on day 1.
    builder.extend_updates(device=[0], t=[slot(1, 20)], bytes=[565e6])
    dataset = builder.build()

    cleaned, report = drop_update_window(dataset)
    assert report.devices_affected == 1
    # Device 0 loses days 1 and 2 (2 rows); device 1 keeps all 5.
    kept = cleaned.daily_matrix("all", "rx") / 1e6
    assert kept[0, 0] == 10 and kept[0, 1] == 0 and kept[0, 2] == 0
    assert kept[0, 3] == 10
    assert (kept[1] == 10).all()
    # App rows: day 1 dropped, day 3 kept.
    assert list(cleaned.apps.day) == [3]
    assert report.traffic_rows_dropped == 2
    assert report.app_rows_dropped == 1


def test_drop_update_window_noop_without_updates():
    builder = make_builder(n_devices=1, n_days=2)
    add_daily_traffic(builder, 0, 0, wifi_rx_mb=1)
    dataset = builder.build()
    cleaned, report = drop_update_window(dataset)
    assert cleaned is dataset
    assert report.devices_affected == 0


def test_clean_for_main_analysis_study(study):
    raw = study.dataset(2015)
    cleaned = clean_for_main_analysis(raw)
    assert len(cleaned.traffic) < len(raw.traffic)
    # Updated devices carry no traffic on their update day.
    from repro.constants import SAMPLES_PER_DAY
    for device, t in zip(raw.updates.device, raw.updates.t):
        day = int(t) // SAMPLES_PER_DAY
        day_mask = (
            (cleaned.traffic.device == device)
            & (cleaned.traffic.t // SAMPLES_PER_DAY == day)
        )
        assert not day_mask.any()


def test_clean_preserves_2013(study):
    raw = study.dataset(2013)
    cleaned = clean_for_main_analysis(raw)
    assert len(cleaned.traffic) == len(raw.traffic)
