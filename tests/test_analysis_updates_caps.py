"""Unit tests for update timing (Fig 18), cap effects (Fig 19), implications."""

import numpy as np
import pytest

from repro.analysis.ap_classification import classify_aps
from repro.analysis.bandwidth_cap import cap_effect, capped_users_without_home_ap
from repro.analysis.evolution import campaign_overview, overview_table, yearly
from repro.analysis.implications import offload_impact
from repro.analysis.software_update import update_timing
from repro.errors import AnalysisError
from repro.traces.records import DeviceOS, IfaceKind
from tests.helpers import (
    add_ap,
    add_association_span,
    add_daily_traffic,
    make_builder,
    nightly_home_association,
    slot,
)


class TestUpdateTiming:
    def _update_dataset(self):
        builder = make_builder(
            n_devices=4, n_days=7,
            os_plan=[DeviceOS.IOS, DeviceOS.IOS, DeviceOS.IOS, DeviceOS.ANDROID],
        )
        add_ap(builder, 0, "home-0")
        add_ap(builder, 1, "0000docomo")
        # Device 0 has a home AP and updates on release day (day 2).
        nightly_home_association(builder, 0, 0, n_days=7)
        builder.extend_updates(device=[0], t=[slot(2, 21)], bytes=[565e6])
        # Device 1 has no home AP; updates late via public WiFi (day 5).
        add_association_span(builder, 1, 1, slot(5, 12), slot(5, 13))
        builder.extend_updates(device=[1], t=[slot(5, 12)], bytes=[565e6])
        # Device 2 never updates. Device 3 is Android.
        return builder.build()

    def test_fractions(self):
        ds = self._update_dataset()
        timing = update_timing(ds)
        assert timing.updated_fraction == pytest.approx(2 / 3)
        assert timing.release_day == 2
        assert timing.first_day_fraction == pytest.approx(1 / 3)

    def test_no_home_delay(self):
        timing = update_timing(self._update_dataset())
        assert timing.median_delay_days_no_home > timing.median_delay_days

    def test_no_home_update_network(self):
        timing = update_timing(self._update_dataset())
        assert timing.no_home_update_network.get("public") == 1

    def test_cdf_curve(self):
        timing = update_timing(self._update_dataset())
        days, frac = timing.cdf_curve()
        assert list(days) == [0, 3]
        assert frac[-1] == pytest.approx(2 / 3)

    def test_requires_updates(self):
        with pytest.raises(AnalysisError):
            update_timing(make_builder().build())

    def test_study_2015(self, study, cache):
        timing = update_timing(study.dataset(2015), cache.classification(2015))
        # §3.7: 58% of iPhones updated within two weeks; 10% on day one.
        assert 0.35 < timing.updated_fraction < 0.85
        assert timing.updated_fraction_no_home < timing.updated_fraction
        assert timing.update_days.max() > 3  # long tail


class TestCapEffect:
    def _cap_dataset(self):
        builder = make_builder(n_devices=6, n_days=8)
        for device in range(6):
            heavy = device == 0
            for day in range(8):
                if heavy:
                    # 0.5 GB/day: 3-day window = 1.5 GB > cap; throttled days
                    # drop to 0.1 GB once capped.
                    mb = 500 if day < 4 else 100
                else:
                    mb = 30
                add_daily_traffic(builder, device, day, cell_rx_mb=mb)
        return builder.build()

    def test_capped_detection(self):
        effect = cap_effect(self._cap_dataset())
        assert effect.potentially_capped_fraction > 0.0
        # Throttled days sit left of unthrottled days.
        assert effect.capped_ratio_cdf.median() < effect.others_ratio_cdf.median()

    def test_too_short_campaign(self):
        builder = make_builder(n_devices=2, n_days=3)
        add_daily_traffic(builder, 0, 0, cell_rx_mb=10)
        with pytest.raises(AnalysisError):
            cap_effect(builder.build())

    def test_study_gap_shrinks_2015(self, cache):
        effect14 = cap_effect(cache.clean(2014))
        effect15 = cap_effect(cache.clean(2015))
        # §3.8: the policy relaxation narrows the capped-vs-others gap.
        assert effect15.median_gap() < effect14.median_gap()

    def test_study_capped_fraction_small(self, cache):
        for year in (2014, 2015):
            effect = cap_effect(cache.clean(year))
            assert effect.potentially_capped_fraction < 0.12

    def test_capped_users_without_home_ap(self, cache):
        ds = cache.clean(2014)
        classification = cache.classification(2014)
        fraction = capped_users_without_home_ap(
            ds, set(classification.home_ap_of_device)
        )
        if fraction is not None:
            # §3.8: most capped users lack home APs (65% in the paper).
            assert fraction > 0.3


class TestImplications:
    def test_exact_arithmetic(self):
        builder = make_builder(n_devices=5, n_days=1)
        for device in range(5):
            add_daily_traffic(builder, device, 0, cell_rx_mb=36, wifi_rx_mb=50.4)
        impact = offload_impact(builder.build())
        assert impact.wifi_to_cell_ratio == pytest.approx(1.4)
        assert impact.offload_share_of_broadband == pytest.approx(
            0.2 * 1.4 * 0.95
        )
        assert impact.smartphone_share_of_home_broadband == pytest.approx(
            50.4 / 436.0
        )

    def test_validation(self, dataset2015):
        with pytest.raises(AnalysisError):
            offload_impact(dataset2015, home_wifi_fraction=0.0)

    def test_study_2015_shapes(self, dataset2015):
        impact = offload_impact(dataset2015)
        # §4.1: WiFi:cellular ~1.4:1, offload ~28% of broadband, ~12% of a
        # home's volume; generous bands for the small panel.
        assert 0.8 < impact.wifi_to_cell_ratio < 3.5
        assert 0.10 < impact.offload_share_of_broadband < 0.70
        assert 0.05 < impact.smartphone_share_of_home_broadband < 0.30


class TestEvolution:
    def test_overview_row(self, study):
        row = campaign_overview(study.dataset(2015))
        assert row.year == 2015
        assert row.n_total == row.n_android + row.n_ios
        assert 0.5 < row.lte_share <= 1.0

    def test_overview_table_sorted(self, study):
        datasets = {y: study.dataset(y) for y in study.years}
        rows = overview_table(datasets)
        assert [r.year for r in rows] == [2013, 2014, 2015]
        lte = [r.lte_share for r in rows]
        assert lte[0] < lte[1] < lte[2]  # Table 1 %LTE growth

    def test_yearly_helper(self, study):
        datasets = {y: study.dataset(y) for y in study.years}
        result = yearly(datasets, lambda ds: ds.n_devices)
        assert set(result) == set(study.years)
