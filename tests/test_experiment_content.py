"""Content checks for every registered experiment's output structure."""

import numpy as np
import pytest

from repro import run_experiment
from repro.reporting.figures import Figure
from repro.reporting.tables import Table


class TestTableContent:
    def test_table1_rows(self, cache):
        table = run_experiment("table1", cache)
        assert len(table.rows) == 3
        years = [row[0] for row in table.rows]
        assert years == [2013, 2014, 2015]
        for row in table.rows:
            assert row[4] == row[2] + row[3]  # total = android + ios

    def test_table2_has_all_occupations(self, cache):
        table = run_experiment("table2", cache)
        occupations = {row[0] for row in table.rows}
        assert "office worker" in occupations
        assert "housewife" in occupations
        assert len(occupations) == 10

    def test_table3_six_rows(self, cache):
        table = run_experiment("table3", cache)
        assert len(table.rows) == 6
        stats = {(row[0], row[1]) for row in table.rows}
        assert ("median", "wifi") in stats and ("mean", "all") in stats

    def test_table4_totals_consistent(self, cache):
        table = run_experiment("table4", cache)
        by_type = {row[0]: row[1:] for row in table.rows}
        for i in range(3):
            assert by_type["total"][i] == (
                by_type["home"][i] + by_type["public"][i] + by_type["other"][i]
            )
            # Office is a subset of other.
            assert by_type["(office)"][i] <= by_type["other"][i]

    def test_table5_percentages_sum(self, cache):
        table = run_experiment("table5", cache)
        for column in range(1, 4):
            total = sum(float(row[column].rstrip("%")) for row in table.rows)
            assert total == pytest.approx(100.0, abs=1.5)

    def test_table6_and_7_ranked(self, cache):
        for experiment_id in ("table6", "table7"):
            table = run_experiment(experiment_id, cache)
            # Per (year, context) the rank column increases 1..5 and the
            # percentage column is non-increasing.
            groups = {}
            for year, context, rank, _cat, pct in table.rows:
                groups.setdefault((year, context), []).append((rank, float(pct)))
            for (year, context), rows in groups.items():
                ranks = [r for r, _ in rows]
                assert ranks == sorted(ranks)
                pcts = [p for _, p in rows]
                assert pcts == sorted(pcts, reverse=True)

    def test_table8_answers_complete(self, cache):
        table = run_experiment("table8", cache)
        assert len(table.rows) == 9  # 3 locations x 3 answers

    def test_table9_reason_rows(self, cache):
        table = run_experiment("table9", cache)
        assert len(table.rows) == 8 * 3  # 8 reasons x 3 locations


class TestFigureContent:
    def test_fig01_two_series_ten_points(self, cache):
        figure = run_experiment("fig01", cache)
        assert len(figure.series) == 2
        for series in figure.series:
            assert len(series.x) == 10

    def test_fig02_four_series_week_folded(self, cache):
        figure = run_experiment("fig02", cache)
        assert {s.label for s in figure.series} == {
            "cellular_tx", "cellular_rx", "wifi_tx", "wifi_rx",
        }
        for series in figure.series:
            assert len(series.y) == 168

    def test_fig03_cdfs_monotone(self, cache):
        figure = run_experiment("fig03", cache)
        assert len(figure.series) == 6  # RX + TX for three years
        for series in figure.series:
            assert (np.diff(series.y) >= 0).all()
            assert series.y[-1] == pytest.approx(1.0)

    def test_fig04_type_cdfs(self, cache):
        figure = run_experiment("fig04", cache)
        labels = {s.label for s in figure.series}
        assert labels == {"wifi_rx", "wifi_tx", "cell_rx", "cell_tx"}

    def test_fig06_ratios_bounded(self, cache):
        figure = run_experiment("fig06", cache)
        for series in figure.series:
            finite = series.y[np.isfinite(series.y)]
            assert (finite >= 0).all() and (finite <= 1).all()

    def test_fig09_series_count(self, cache):
        figure = run_experiment("fig09", cache)
        # 3 Android states + iOS, for two years.
        assert len(figure.series) == 8

    def test_fig13_ccdfs_decreasing(self, cache):
        figure = run_experiment("fig13", cache)
        for series in figure.series:
            assert (np.diff(series.y) <= 1e-12).all()

    def test_fig16_pdfs_normalized(self, cache):
        figure = run_experiment("fig16", cache)
        for series in figure.series:
            assert series.y.sum() == pytest.approx(1.0)
            assert len(series.x) == 13

    def test_fig18_cdf_final_below_one(self, cache):
        figure = run_experiment("fig18", cache)
        all_series = figure.get("CDF (all)")
        assert 0 < all_series.y[-1] <= 1.0
        assert (np.diff(all_series.y) >= 0).all()

    def test_fig19_four_series(self, cache):
        figure = run_experiment("fig19", cache)
        labels = {s.label for s in figure.series}
        assert labels == {
            "potentially capped 2014", "others 2014",
            "potentially capped 2015", "others 2015",
        }


class TestResultTypes:
    @pytest.mark.parametrize("experiment_id,kind", [
        ("table1", Table), ("table5", Table), ("fig05", Table),
        ("fig10", Table), ("fig12", Table), ("fig14", Table),
        ("fig02", Figure), ("fig15", Figure), ("fig17", Figure),
        ("sec35", Table), ("sec41", Table),
    ])
    def test_kinds(self, cache, experiment_id, kind):
        assert isinstance(run_experiment(experiment_id, cache), kind)
