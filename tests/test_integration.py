"""End-to-end integration: simulate -> persist -> reload -> analyze."""

import numpy as np
import pytest

import repro
from repro import (
    AnalysisCache,
    clean_for_main_analysis,
    load_dataset,
    run_experiment,
    save_dataset,
    validate_dataset,
)
from repro.analysis import aggregate_traffic, classify_aps, wifi_ratios


def test_public_api_surface():
    for name in repro.__all__:
        assert hasattr(repro, name), name
    assert repro.__version__


def test_save_load_analyze_round_trip(tmp_path, study):
    original = study.dataset(2014)
    save_dataset(original, tmp_path / "campaign2014")
    reloaded = load_dataset(tmp_path / "campaign2014")
    validate_dataset(reloaded)

    agg_a = aggregate_traffic(clean_for_main_analysis(original))
    agg_b = aggregate_traffic(clean_for_main_analysis(reloaded))
    assert agg_a.wifi_share == pytest.approx(agg_b.wifi_share)
    assert agg_a.lte_share_of_cellular == pytest.approx(agg_b.lte_share_of_cellular)

    cls_a = classify_aps(original)
    cls_b = classify_aps(reloaded)
    assert cls_a.counts() == cls_b.counts()


def test_analysis_does_not_mutate_dataset(study):
    ds = clean_for_main_analysis(study.dataset(2013))
    before = ds.traffic.rx.copy()
    wifi_ratios(ds)
    classify_aps(ds)
    np.testing.assert_array_equal(ds.traffic.rx, before)


def test_full_experiment_sweep_consistency(cache):
    """Rerunning an experiment on the same cache gives identical output."""
    for experiment_id in ("table3", "fig05", "fig14"):
        a = run_experiment(experiment_id, cache)
        b = run_experiment(experiment_id, cache)
        assert a.render() == b.render()


def test_longitudinal_consistency(cache):
    """Cross-experiment invariants hold on the same study."""
    # Table 4 totals equal the number of classified APs per year.
    for year in cache.years:
        classification = cache.classification(year)
        counts = classification.counts()
        assert counts["total"] == len(classification.ap_class)
        assert counts["home"] + counts["public"] + counts["other"] == (
            counts["total"]
        )

    # Table 1 panel sizes match the dataset rosters.
    from repro.analysis import campaign_overview
    for year in cache.years:
        overview = campaign_overview(cache.raw(year))
        assert overview.n_total == cache.raw(year).n_devices


def test_deterministic_study(study):
    from repro import run_study
    again = run_study(scale=study.config.scale, seed=study.config.seed)
    for year in study.years:
        a, b = study.dataset(year), again.dataset(year)
        assert len(a.traffic) == len(b.traffic)
        np.testing.assert_array_equal(a.traffic.rx, b.traffic.rx)
        np.testing.assert_array_equal(a.wifi.state, b.wifi.state)
