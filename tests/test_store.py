"""Out-of-core store tests: round-trip identity, pushdown, cache, janitor.

The acceptance bar for the storage layer: a campaign run through the
disk-backed :class:`CampaignStore` — spilled shard by shard, streaming-
merged, read back memory-mapped — is bit-for-bit identical to the
in-memory build at any worker count, survives chaos kills without
leaking partitions, and invalidates analysis caches exactly when the
store's content fingerprint changes.
"""

import dataclasses
import tempfile
from pathlib import Path

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.context import AnalysisContext
from repro.engine import (
    ChaosKill,
    ChaosPlan,
    CheckpointStore,
    ResilienceConfig,
    RetryPolicy,
)
from repro.errors import ConfigurationError, DatasetError
from repro.simulation.campaign import run_campaign
from repro.simulation.study import default_campaign_config
from repro.traces.dataset import DatasetBuilder
from repro.traces.io import load_dataset
from repro.traces.store import (
    STORE_MANIFEST,
    CampaignStore,
    _have_pyarrow,
    is_store_dir,
    open_store,
    store_fingerprint,
    sweep_orphan_partitions,
)
from tests.test_columnar_ingest_property import (
    YEAR,
    _axis,
    _columns,
    _info,
    device_batch,
)
from tests.test_engine import assert_datasets_identical


def _small_config(year=2013, **kwargs):
    config = default_campaign_config(year, scale=0.004, seed=11, **kwargs)
    return dataclasses.replace(config, n_days=4)


def _store_for(config, root):
    return CampaignStore(Path(root) / f"campaign{config.year}",
                         config.year, config.axis)


# ---------------------------------------------------------------------------
# Round-trip property: builder -> partitions -> finalize -> load, bit-for-bit
# ---------------------------------------------------------------------------

class TestRoundTripProperty:
    @given(st.lists(device_batch(), min_size=1, max_size=3))
    @settings(max_examples=15, deadline=None)
    def test_store_round_trip_is_bit_identical(self, batches):
        """Any panel written through partitions reloads exactly."""
        builder = DatasetBuilder(YEAR, _axis())
        for device_id in range(len(batches)):
            builder.add_device(_info(device_id))
        for device_id, batch in enumerate(batches):
            for name, columns in _columns(device_id, batch).items():
                getattr(builder, f"extend_{name}")(**columns)
        chunks = builder.export_chunks()
        expected = builder.build()

        with tempfile.TemporaryDirectory() as tmp:
            store = CampaignStore(Path(tmp) / "campaign", YEAR, _axis())
            # Split every table's chunk list at its midpoint: partitions
            # concatenated in order must reproduce builder append order.
            first = {t: lst[:(len(lst) + 1) // 2]
                     for t, lst in chunks.items()}
            second = {t: lst[(len(lst) + 1) // 2:]
                      for t, lst in chunks.items()}
            refs = [store.write_partition("shard-0000", first),
                    store.write_partition("shard-0001", second)]
            store.finalize(builder.devices, builder.ap_directory,
                           builder.ground_truth, refs)
            assert_datasets_identical(expected, store.load_dataset())
            # Reopening from the manifest alone sees the same bits.
            reopened = CampaignStore.open(store.root)
            assert_datasets_identical(expected, reopened.load_dataset())
            assert reopened.fingerprint == store.fingerprint


# ---------------------------------------------------------------------------
# Engine integration: spill + streaming merge == in-memory build
# ---------------------------------------------------------------------------

class TestEngineStoreIdentity:
    @pytest.mark.parametrize("n_jobs", [1, 2])
    def test_store_run_matches_memory_run(self, tmp_path, n_jobs):
        config = _small_config(2014)
        baseline = run_campaign(config, n_jobs=n_jobs)
        store = _store_for(config, tmp_path)
        stored = run_campaign(config, n_jobs=n_jobs, store=store)
        assert_datasets_identical(baseline.dataset, stored.dataset)
        truth = stored.dataset.ground_truth
        assert truth.ap_types == baseline.dataset.ground_truth.ap_types
        # Spill partitions are reclaimed by a successful finalize.
        assert not store.parts_dir.exists()

    def test_store_dir_is_a_loadable_campaign(self, tmp_path):
        """``io.load_dataset`` auto-detects a store root."""
        config = _small_config(2013)
        store = _store_for(config, tmp_path)
        result = run_campaign(config, store=store)
        assert is_store_dir(store.root)
        assert_datasets_identical(result.dataset, load_dataset(store.root))
        assert open_store(store.root).fingerprint == \
            store_fingerprint(store.root)

    def test_fingerprint_tracks_content(self, tmp_path):
        config = _small_config(2013)
        run_campaign(config, store=_store_for(config, tmp_path / "a"))
        run_campaign(config, store=_store_for(config, tmp_path / "b"))
        reseeded = dataclasses.replace(config, seed=config.seed + 1)
        run_campaign(reseeded, store=_store_for(reseeded, tmp_path / "c"))
        a = store_fingerprint(tmp_path / "a" / "campaign2013")
        b = store_fingerprint(tmp_path / "b" / "campaign2013")
        c = store_fingerprint(tmp_path / "c" / "campaign2013")
        assert a == b  # determinism: same config, same bytes
        assert a != c  # sensitivity: different data, different print

    def test_partial_run_spills_only_surviving_shards(self, tmp_path):
        """``--partial-results`` composes with the disk store."""
        config = _small_config(2014)
        baseline = run_campaign(config, n_jobs=2)
        res = ResilienceConfig(
            policy=RetryPolicy(max_attempts=2, backoff_base_s=0.0),
            partial=True,
            chaos=ChaosPlan(crash_units=(f"{config.year}:0",),
                            crash_attempts=99, state_dir=tmp_path / "chaos"),
        )
        store = _store_for(config, tmp_path)
        result = run_campaign(config, n_jobs=2, resilience=res, store=store)
        assert result.losses is not None
        assert result.losses.dropped_shards == (0,)
        # The dropped shard's rows are missing, the roster is intact, and
        # the surviving rows came back out of the store's column files.
        assert result.dataset.devices == baseline.dataset.devices
        assert len(result.dataset.traffic) < len(baseline.dataset.traffic)
        assert not store.parts_dir.exists()


# ---------------------------------------------------------------------------
# Read path: projection + predicate pushdown over memory-mapped columns
# ---------------------------------------------------------------------------

@pytest.fixture(scope="module")
def finalized(tmp_path_factory):
    config = _small_config(2015)
    store = _store_for(config, tmp_path_factory.mktemp("store"))
    result = run_campaign(config, store=store)
    return store, result.dataset


class TestReadPushdown:
    def test_columns_are_memory_mapped(self, finalized):
        store, _ = finalized
        assert isinstance(store.column("traffic", "rx"), np.memmap)

    def test_projection_reads_only_requested_columns(self, finalized):
        store, dataset = finalized
        table = store.table("traffic", columns=["device", "rx"])
        assert set(table.columns) == {"device", "rx"}
        np.testing.assert_array_equal(table.device, dataset.traffic.device)
        np.testing.assert_array_equal(table.rx, dataset.traffic.rx)

    def test_equality_predicate(self, finalized):
        store, dataset = finalized
        rows = store.select("traffic", columns=["rx"], where={"device": 0})
        mask = dataset.traffic.device == 0
        np.testing.assert_array_equal(rows["rx"], dataset.traffic.rx[mask])

    def test_range_predicate_composes(self, finalized):
        store, dataset = finalized
        rows = store.select("traffic", columns=["device", "t"],
                            where={"t": (0, 144), "iface": 0})
        mask = ((dataset.traffic.t >= 0) & (dataset.traffic.t < 144)
                & (dataset.traffic.iface == 0))
        np.testing.assert_array_equal(rows["device"],
                                      dataset.traffic.device[mask])
        np.testing.assert_array_equal(rows["t"], dataset.traffic.t[mask])

    def test_unknown_column_is_a_dataset_error(self, finalized):
        store, _ = finalized
        with pytest.raises(DatasetError, match="no column"):
            store.column("traffic", "nope")

    def test_open_rejects_non_store_dir(self, tmp_path):
        with pytest.raises(DatasetError, match="no campaign store"):
            CampaignStore.open(tmp_path)


class TestFormats:
    def test_unknown_format_rejected(self, tmp_path):
        with pytest.raises(ConfigurationError, match="unknown store format"):
            CampaignStore(tmp_path, 2015, _axis(), format="feather")

    @pytest.mark.skipif(_have_pyarrow(), reason="pyarrow is installed")
    def test_parquet_without_pyarrow_rejected(self, tmp_path):
        with pytest.raises(ConfigurationError, match="needs pyarrow"):
            CampaignStore(tmp_path, 2015, _axis(), format="parquet")

    @pytest.mark.skipif(_have_pyarrow(), reason="pyarrow is installed")
    def test_auto_falls_back_to_npy(self, tmp_path):
        store = CampaignStore(tmp_path, 2015, _axis(), format="auto")
        assert store.format == "npy"

    @pytest.mark.skipif(not _have_pyarrow(), reason="needs pyarrow")
    def test_parquet_round_trip_matches_npy(self, tmp_path):
        config = _small_config(2013)
        npy = CampaignStore(tmp_path / "npy", config.year, config.axis)
        parquet = CampaignStore(tmp_path / "parquet", config.year,
                                config.axis, format="parquet")
        a = run_campaign(config, store=npy)
        b = run_campaign(config, store=parquet)
        assert_datasets_identical(a.dataset, b.dataset)
        # The fingerprint hashes column bytes, not files: backends agree.
        assert npy.fingerprint == parquet.fingerprint


# ---------------------------------------------------------------------------
# AnalysisContext.for_store: memo keyed on the content fingerprint
# ---------------------------------------------------------------------------

class TestStoreContextCache:
    def test_memo_hits_until_fingerprint_changes(self, tmp_path):
        config = _small_config(2013)
        store = _store_for(config, tmp_path)
        run_campaign(config, store=store)
        first = AnalysisContext.for_store(store.root)
        assert AnalysisContext.for_store(store.root) is first
        # Rewrite the same directory with different data: the fingerprint
        # moves, so the memoized context must be dropped.
        reseeded = dataclasses.replace(config, seed=config.seed + 1)
        run_campaign(reseeded, store=_store_for(reseeded, tmp_path))
        fresh = AnalysisContext.for_store(store.root)
        assert fresh is not first
        assert AnalysisContext.for_store(store.root) is fresh


# ---------------------------------------------------------------------------
# Janitor: chaos kills must not leak partitions; checkpoints keep theirs
# ---------------------------------------------------------------------------

class TestPartitionJanitor:
    def test_chaos_kill_sweeps_unreferenced_partitions(self, tmp_path):
        """The disk twin of the /dev/shm leak check."""
        config = _small_config(2014)
        store = _store_for(config, tmp_path)
        res = ResilienceConfig(chaos=ChaosPlan(kill_after_shards=1))
        with pytest.raises(ChaosKill):
            run_campaign(config, n_jobs=2, resilience=res, store=store)
        assert not store.parts_dir.exists()
        assert not (store.root / STORE_MANIFEST).exists()

    def test_checkpointed_kill_keeps_partitions_for_resume(self, tmp_path):
        config = _small_config(2014)
        baseline = run_campaign(config, n_jobs=2)
        res = ResilienceConfig(
            store=CheckpointStore(tmp_path / "ckpt"),
            chaos=ChaosPlan(kill_after_shards=1),
        )
        store = _store_for(config, tmp_path / "data")
        with pytest.raises(ChaosKill):
            run_campaign(config, n_jobs=2, resilience=res, store=store)
        assert store.partition_names()  # referenced by checkpoints: kept

        resumed = run_campaign(
            config, n_jobs=2,
            resilience=ResilienceConfig(store=CheckpointStore(tmp_path / "ckpt"),
                                        resume=True),
            store=_store_for(config, tmp_path / "data"),
        )
        assert_datasets_identical(baseline.dataset, resumed.dataset)
        assert resumed.resilience.checkpoint_hits >= 1

    def test_stale_partition_falls_back_to_resimulation(self, tmp_path):
        """A checkpoint whose partition was tampered with re-simulates."""
        config = _small_config(2014)
        baseline = run_campaign(config, n_jobs=2)
        res = ResilienceConfig(
            store=CheckpointStore(tmp_path / "ckpt"),
            chaos=ChaosPlan(kill_after_shards=1),
        )
        store = _store_for(config, tmp_path / "data")
        with pytest.raises(ChaosKill):
            run_campaign(config, n_jobs=2, resilience=res, store=store)
        for name in store.partition_names():
            manifest = store.parts_dir / name / "part_manifest.json"
            manifest.write_bytes(manifest.read_bytes() + b" ")
        resumed = run_campaign(
            config, n_jobs=2,
            resilience=ResilienceConfig(store=CheckpointStore(tmp_path / "ckpt"),
                                        resume=True),
            store=_store_for(config, tmp_path / "data"),
        )
        assert_datasets_identical(baseline.dataset, resumed.dataset)

    def test_partition_ref_detects_tamper(self, tmp_path):
        store = CampaignStore(tmp_path / "campaign", YEAR, _axis())
        ref = store.write_partition("shard-0000", {
            "traffic": [dict(
                device=np.zeros(3, np.int32), t=np.arange(3, dtype=np.int32),
                iface=np.zeros(3, np.int8),
                rx=np.ones(3, np.float64), tx=np.ones(3, np.float64),
                rx_pkts=np.ones(3, np.int64), tx_pkts=np.ones(3, np.int64),
            )],
        })
        assert ref.is_valid()
        manifest = ref.path / "part_manifest.json"
        manifest.write_bytes(manifest.read_bytes() + b" ")
        assert not ref.is_valid()
        with pytest.raises(DatasetError, match="missing or stale"):
            ref.chunk_map()

    def test_sweep_orphan_partitions_helper(self, tmp_path):
        for campaign in ("campaign2013", "campaign2015"):
            part = tmp_path / campaign / "parts" / "shard-0000"
            part.mkdir(parents=True)
            (part / "part_manifest.json").write_text("{}")
        removed = sweep_orphan_partitions(tmp_path)
        assert removed == ["shard-0000", "shard-0000"]
        assert not (tmp_path / "campaign2013" / "parts").exists()
        assert not (tmp_path / "campaign2015" / "parts").exists()
        assert sweep_orphan_partitions(tmp_path) == []


# ---------------------------------------------------------------------------
# CLI surface
# ---------------------------------------------------------------------------

class TestStoreCli:
    def test_store_dir_without_disk_is_a_config_error(self, tmp_path, capsys):
        from repro.cli import main

        code = main(["simulate", "--scale", "0.004", "--out", str(tmp_path),
                     "--store-dir", str(tmp_path / "s")])
        assert code == 2
        assert "--store disk" in capsys.readouterr().err
