"""Shared fixtures: a small end-to-end study plus hand-crafted datasets."""

from __future__ import annotations

import numpy as np
import pytest

from repro import AnalysisContext, clean_for_main_analysis, run_study


@pytest.fixture(scope="session")
def study():
    """A small but complete three-campaign study (shared, read-only)."""
    return run_study(scale=0.045, seed=42)


@pytest.fixture(scope="session")
def cache(study):
    return AnalysisContext(study)


@pytest.fixture(scope="session")
def dataset2013(study):
    return clean_for_main_analysis(study.dataset(2013))


@pytest.fixture(scope="session")
def dataset2015(study):
    return clean_for_main_analysis(study.dataset(2015))


@pytest.fixture(scope="session")
def raw2015(study):
    return study.dataset(2015)


@pytest.fixture()
def rng():
    return np.random.default_rng(12345)
