"""Per-user application demand: appetite, category mix, WiFi uplift.

The demand model answers three questions for the simulator:

1. How much does this user want to transfer per day (appetite)? Daily user
   volume is highly skewed (§3.2: the top heavy hitter downloaded 11 GB in a
   day while the median was tens of MB) — appetite is log-normal.
2. How is a day's volume split across the 26 categories, given the network
   context? On WiFi, high-affinity categories (video, downloading) take a
   larger share and WiFi-only categories (productivity/online storage)
   appear at all (§3.6).
3. How much extra demand does WiFi unlock (uplift)? Users on free networks
   run bandwidth-consuming applications they suppress on cellular.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.apps.categories import CATEGORIES, AppCategory
from repro.errors import ConfigurationError


@dataclass(frozen=True)
class CategoryMix:
    """One user's category taste: a weight per category (sums to 1)."""

    weights: np.ndarray

    def __post_init__(self) -> None:
        if self.weights.shape != (len(CATEGORIES),):
            raise ConfigurationError(
                f"mix must have {len(CATEGORIES)} weights, got {self.weights.shape}"
            )
        if (self.weights < 0).any():
            raise ConfigurationError("mix weights must be non-negative")
        total = float(self.weights.sum())
        if not 0.99 < total < 1.01:
            raise ConfigurationError(f"mix weights must sum to 1, got {total}")

    def context_shares(self, on_wifi: bool) -> np.ndarray:
        """Volume share per category for a network context.

        On cellular, WiFi-only categories get zero share; on WiFi every
        category's weight is scaled by its affinity.
        """
        shares = self.weights.copy()
        for cat in CATEGORIES:
            if on_wifi:
                shares[cat.code] *= cat.wifi_affinity
            elif cat.wifi_only:
                shares[cat.code] = 0.0
        total = shares.sum()
        if total <= 0:
            raise ConfigurationError("degenerate category mix")
        return shares / total


@dataclass(frozen=True)
class SlotDemand:
    """Demand realized in one slot, already split by direction."""

    rx_bytes: float
    tx_bytes: float


_RX_TX = np.array([c.rx_tx_ratio for c in CATEGORIES])
_BASE_WEIGHTS = np.array([c.weight for c in CATEGORIES])


class DemandModel:
    """Year-parameterized application-demand generator.

    Parameters
    ----------
    year_index:
        0 for the 2013 campaign, 1 for 2014, 2 for 2015. Scales appetite and
        per-category growth.
    appetite_median_mb:
        Median daily demand (MB) a user *would* transfer with unconstrained
        connectivity. Grows by year (Table 3).
    appetite_sigma:
        Log-normal sigma of the across-user appetite distribution.
    wifi_uplift:
        Extra demand multiplier when a slot is on WiFi.
    """

    def __init__(
        self,
        year_index: int,
        appetite_median_mb: float,
        appetite_sigma: float = 1.1,
        wifi_uplift: float = 1.8,
    ) -> None:
        if year_index not in (0, 1, 2):
            raise ConfigurationError(f"year_index must be 0..2: {year_index}")
        if appetite_median_mb <= 0:
            raise ConfigurationError("appetite median must be positive")
        if appetite_sigma <= 0:
            raise ConfigurationError("appetite sigma must be positive")
        if wifi_uplift < 1.0:
            raise ConfigurationError("wifi uplift must be >= 1")
        self.year_index = year_index
        self.appetite_median_mb = appetite_median_mb
        self.appetite_sigma = appetite_sigma
        self.wifi_uplift = wifi_uplift
        growth = np.array([c.growth(year_index) for c in CATEGORIES])
        self._year_weights = _BASE_WEIGHTS * growth
        self._year_weights /= self._year_weights.sum()

    def sample_appetite_bytes(self, rng: np.random.Generator) -> float:
        """Daily demand (bytes) for one user: log-normal across users."""
        mb = self.appetite_median_mb * float(
            np.exp(rng.normal(0.0, self.appetite_sigma))
        )
        return mb * 1e6

    def sample_mix(self, rng: np.random.Generator) -> CategoryMix:
        """One user's category taste: Dirichlet around the year weights."""
        concentration = self._year_weights * 30.0 + 1e-3
        weights = rng.dirichlet(concentration)
        return CategoryMix(weights)

    def split_day(
        self,
        mix: CategoryMix,
        rx_bytes: float,
        tx_bytes: float,
        on_wifi: bool,
        rng: np.random.Generator,
    ) -> List[Tuple[int, float, float]]:
        """Split a day's (rx, tx) volume in one context across categories.

        Returns ``[(category_code, rx, tx), ...]`` for categories with
        non-trivial volume. The split is exact: returned rx values sum to
        ``rx_bytes`` and tx values to ``tx_bytes`` (within float rounding).
        """
        if rx_bytes < 0 or tx_bytes < 0:
            raise ConfigurationError("volumes must be non-negative")
        if rx_bytes == 0 and tx_bytes == 0:
            return []
        shares = mix.context_shares(on_wifi)
        # Day-to-day jitter so a user's top category varies across days.
        noisy = shares * rng.gamma(2.0, 0.5, size=shares.shape)
        total = noisy.sum()
        if total <= 0:
            noisy = shares
            total = noisy.sum()
        rx_shares = noisy / total
        # TX share per category follows its rx share scaled by 1/rx_tx_ratio.
        tx_weights = rx_shares / _RX_TX
        tx_total = tx_weights.sum()
        tx_shares = tx_weights / tx_total if tx_total > 0 else rx_shares
        out = []
        for code in np.flatnonzero((rx_shares > 0) | (tx_shares > 0)):
            out.append(
                (
                    int(code),
                    float(rx_bytes * rx_shares[code]),
                    float(tx_bytes * tx_shares[code]),
                )
            )
        return out

    def tx_fraction(self, mix: CategoryMix, on_wifi: bool) -> float:
        """Expected TX bytes per RX byte in a context, from the mix."""
        shares = mix.context_shares(on_wifi)
        return float((shares / _RX_TX).sum())


def default_category(code: int) -> AppCategory:
    """Convenience re-export used by tests."""
    return CATEGORIES[code]
