"""The 26 Google Play application categories (§3.6).

The paper groups popular applications into 26 Google Play categories and
reports the top five by traffic volume per network/location context
(Tables 6, 7). Each :class:`AppCategory` here carries the behavioural
parameters the demand model needs:

- ``weight``: baseline share of a user's traffic volume.
- ``rx_tx_ratio``: download bytes per upload byte (video is download-heavy,
  productivity/online-storage is upload-heavy).
- ``wifi_affinity``: demand multiplier when the device is on WiFi; >1 means
  users do more of this on free/rich networks (video), 0 means strictly
  WiFi-conditional transfers exist elsewhere (handled by ``wifi_only``).
- ``wifi_only``: the app moves bulk data only when WiFi is available
  (online file storage; §3.6 "uploads/downloads large files only if a WiFi
  interface is available").
- ``year_growth``: per-campaign-year demand multiplier (video and
  downloading grow sharply across 2013-2015).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class AppCategory:
    """One Google Play application category and its traffic behaviour."""

    code: int
    name: str
    label: str
    weight: float
    rx_tx_ratio: float = 5.0
    wifi_affinity: float = 1.0
    wifi_only: bool = False
    year_growth: Tuple[float, float, float] = (1.0, 1.0, 1.0)

    def __post_init__(self) -> None:
        if self.weight < 0:
            raise ConfigurationError(f"negative weight for {self.name}")
        if self.rx_tx_ratio <= 0:
            raise ConfigurationError(f"rx_tx_ratio must be > 0 for {self.name}")

    def growth(self, year_index: int) -> float:
        """Demand multiplier for campaign ``year_index`` (0=2013)."""
        if not 0 <= year_index < len(self.year_growth):
            raise ConfigurationError(f"bad year index {year_index}")
        return self.year_growth[year_index]


#: All 26 categories. Weights are baseline volume shares (they need not sum
#: to 1; the demand model normalizes). Short ``label`` strings match the
#: abbreviations used in Tables 6 and 7.
CATEGORIES: Tuple[AppCategory, ...] = (
    AppCategory(0, "browser", "brows.", 0.30, rx_tx_ratio=6.0),
    AppCategory(1, "social", "social", 0.075, rx_tx_ratio=2.0),
    AppCategory(2, "video", "video", 0.085, rx_tx_ratio=14.0,
                wifi_affinity=3.0, year_growth=(1.0, 2.6, 3.6)),
    AppCategory(3, "communication", "comm.", 0.075, rx_tx_ratio=2.2),
    AppCategory(4, "news", "news", 0.045, rx_tx_ratio=8.0),
    AppCategory(5, "game", "game", 0.035, rx_tx_ratio=4.0,
                year_growth=(1.0, 1.4, 1.8)),
    AppCategory(6, "music", "music", 0.02, rx_tx_ratio=10.0),
    AppCategory(7, "travel", "travel", 0.012, rx_tx_ratio=6.0),
    AppCategory(8, "shopping", "shop.", 0.018, rx_tx_ratio=6.0),
    AppCategory(9, "downloading", "dload", 0.02, rx_tx_ratio=20.0,
                wifi_affinity=3.5, year_growth=(1.0, 4.0, 5.0)),
    AppCategory(10, "entertainment", "entm.", 0.015, rx_tx_ratio=5.0),
    AppCategory(11, "tools", "tools", 0.012, rx_tx_ratio=3.0),
    AppCategory(12, "productivity", "prod.", 0.02, rx_tx_ratio=0.8,
                wifi_only=True, year_growth=(1.0, 2.2, 2.4)),
    AppCategory(13, "lifestyle", "life", 0.025, rx_tx_ratio=5.0,
                year_growth=(1.0, 1.5, 1.6)),
    AppCategory(14, "health", "health", 0.01, rx_tx_ratio=4.0,
                year_growth=(1.0, 1.8, 1.6)),
    AppCategory(15, "business", "busi", 0.008, rx_tx_ratio=1.5,
                year_growth=(1.0, 1.3, 1.8)),
    AppCategory(16, "books", "books", 0.008, rx_tx_ratio=12.0),
    AppCategory(17, "education", "edu", 0.006, rx_tx_ratio=6.0),
    AppCategory(18, "finance", "fin", 0.006, rx_tx_ratio=4.0),
    AppCategory(19, "food", "food", 0.006, rx_tx_ratio=6.0),
    AppCategory(20, "maps", "maps", 0.012, rx_tx_ratio=5.0),
    AppCategory(21, "medical", "med", 0.003, rx_tx_ratio=4.0),
    AppCategory(22, "personalization", "pers", 0.005, rx_tx_ratio=8.0),
    AppCategory(23, "photography", "photo", 0.01, rx_tx_ratio=1.2),
    AppCategory(24, "sports", "sports", 0.006, rx_tx_ratio=7.0),
    AppCategory(25, "weather", "weather", 0.005, rx_tx_ratio=9.0),
)

CATEGORY_BY_NAME: Dict[str, AppCategory] = {c.name: c for c in CATEGORIES}

_CODE_TO_CATEGORY: Dict[int, AppCategory] = {c.code: c for c in CATEGORIES}

if len(CATEGORIES) != 26:  # pragma: no cover - structural guard
    raise ConfigurationError("the paper defines 26 categories")


def category_code(name: str) -> int:
    """Category code for ``name``; raises on unknown names."""
    try:
        return CATEGORY_BY_NAME[name].code
    except KeyError:
        raise ConfigurationError(f"unknown app category: {name!r}") from None


def category_name(code: int) -> str:
    """Category name for ``code``; raises on unknown codes."""
    try:
        return _CODE_TO_CATEGORY[code].name
    except KeyError:
        raise ConfigurationError(f"unknown app category code: {code}") from None


def category(code: int) -> AppCategory:
    """Category object for ``code``."""
    try:
        return _CODE_TO_CATEGORY[code]
    except KeyError:
        raise ConfigurationError(f"unknown app category code: {code}") from None
