"""Application model: categories, traffic demand, and OS updates."""

from repro.apps.categories import (
    AppCategory,
    CATEGORIES,
    CATEGORY_BY_NAME,
    category_code,
    category_name,
)
from repro.apps.demand import CategoryMix, DemandModel, SlotDemand
from repro.apps.updates import UpdatePolicy, UpdateModel

__all__ = [
    "AppCategory",
    "CATEGORIES",
    "CATEGORY_BY_NAME",
    "category_code",
    "category_name",
    "CategoryMix",
    "DemandModel",
    "SlotDemand",
    "UpdatePolicy",
    "UpdateModel",
]
