"""OS software-update model (§3.7).

Apple shipped iOS 8.2 during the 2015 campaign. Updates download over WiFi
only (by default iOS refuses cellular for upgrades); timing follows a flash
crowd — a large burst on release day, a weekend bump, and a long tail. Users
without a home AP update late or not at all; a few go out of their way to use
public or office WiFi.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.constants import IOS_UPDATE_BYTES
from repro.errors import ConfigurationError


@dataclass(frozen=True)
class UpdatePolicy:
    """Campaign-level description of an OS update event.

    ``release_day`` is the campaign-day index the update ships on;
    ``adoption_daily`` is the per-day hazard of a WiFi-connected device
    updating, indexed by days since release (flash-crowd shape: high on day
    0, a bump on the first weekend handled by ``weekend_boost``).
    """

    release_day: int
    size_bytes: float = float(IOS_UPDATE_BYTES)
    version: str = "ios-8.2"
    daily_hazard: float = 0.13
    day0_hazard: float = 0.12
    weekend_boost: float = 1.8
    tail_decay: float = 0.88

    def __post_init__(self) -> None:
        if self.release_day < 0:
            raise ConfigurationError(f"release_day must be >= 0: {self.release_day}")
        if self.size_bytes <= 0:
            raise ConfigurationError("update size must be positive")
        if not 0 < self.daily_hazard <= 1 or not 0 < self.day0_hazard <= 1:
            raise ConfigurationError("hazards must be in (0, 1]")

    def hazard(self, days_since_release: int, is_weekend: bool) -> float:
        """Probability a WiFi-connected, un-updated device updates today."""
        if days_since_release < 0:
            return 0.0
        if days_since_release == 0:
            base = self.day0_hazard
        else:
            base = self.daily_hazard * (self.tail_decay ** (days_since_release - 1))
        if is_weekend:
            base *= self.weekend_boost
        return min(base, 1.0)


class UpdateModel:
    """Decides, day by day, whether a device takes the update.

    The decision requires WiFi connectivity *that day*: devices that never
    touch WiFi cannot update (which is what delays users without home APs —
    §3.7: only 14% of users without inferred home APs updated, with a median
    extra delay of 3.5 days).
    """

    def __init__(self, policy: UpdatePolicy) -> None:
        self.policy = policy
        self._updated: set = set()

    def updated(self, device_id: int) -> bool:
        return device_id in self._updated

    def maybe_update(
        self,
        device_id: int,
        day: int,
        is_weekend: bool,
        wifi_hours_today: float,
        rng: np.random.Generator,
    ) -> bool:
        """Roll the update decision for one device-day.

        ``wifi_hours_today`` gates the decision: with no WiFi time there is
        no opportunity; short public-WiFi windows give a reduced chance
        (the out-of-their-way public updaters of §3.7).
        """
        if device_id in self._updated:
            return False
        days_since = day - self.policy.release_day
        if days_since < 0 or wifi_hours_today <= 0.0:
            return False
        opportunity = min(1.0, 0.25 + wifi_hours_today / 3.0)
        p = self.policy.hazard(days_since, is_weekend) * opportunity
        if rng.random() < p:
            self._updated.add(device_id)
            return True
        return False
