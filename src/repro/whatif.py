"""Counterfactual scenarios over the simulated study (§4's policy questions).

The paper's implications section asks what operators and policy makers could
change: deploy more public APs (§1/§4.3), lead WiFi-available users to
existing networks (§3.5/§4.2), relax or tighten the soft cap (§3.8). The
what-if engine re-runs a campaign under a modified configuration and reports
how the headline offloading metrics move against the baseline.

Example::

    from repro.whatif import Scenario, compare, scale_public_deployment

    result = compare(
        year=2015, scale=0.1,
        scenario=Scenario("2x public rollout", scale_public_deployment(2.0)),
    )
    print(result.render())
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Callable, Optional

import repro.analysis as analysis
from repro.errors import AnalysisError, ConfigurationError
from repro.reporting.tables import Table
from repro.simulation.campaign import CampaignConfig, run_campaign
from repro.simulation.cap import SoftCapPolicy
from repro.simulation.study import default_campaign_config
from repro.traces.cleaning import clean_for_main_analysis

ConfigTransform = Callable[[CampaignConfig], CampaignConfig]


@dataclass(frozen=True)
class Scenario:
    """A named configuration transform."""

    name: str
    transform: ConfigTransform


# ----------------------------------------------------------------------
# Ready-made transforms for the §4 policy levers
# ----------------------------------------------------------------------

def scale_public_deployment(factor: float) -> ConfigTransform:
    """Multiply the public AP universe (the pre-Olympics rollout push)."""
    if factor <= 0:
        raise ConfigurationError("factor must be positive")

    def transform(config: CampaignConfig) -> CampaignConfig:
        public = dataclasses.replace(
            config.deployment.public,
            n_aps=max(1, round(config.deployment.public.n_aps * factor)),
        )
        deployment = dataclasses.replace(config.deployment, public=public)
        # The scan model normalizes by deployed-universe size; keep the
        # per-device detection rate proportional to the new universe.
        params = dataclasses.replace(
            config.params, scan_scale=config.params.scan_scale * factor
        )
        return dataclasses.replace(config, deployment=deployment, params=params)

    return transform


def enroll_everyone() -> ConfigTransform:
    """SIM-auth for all: every user holds public-WiFi credentials (§4.2)."""

    def transform(config: CampaignConfig) -> CampaignConfig:
        recruitment = dataclasses.replace(
            config.recruitment, public_enrolled_share=1.0
        )
        return dataclasses.replace(config, recruitment=recruitment)

    return transform


def set_cap(threshold_gb: Optional[float], limit_kbps: float = 128.0) -> ConfigTransform:
    """Replace the soft-cap policy; ``threshold_gb=None`` disables it."""

    def transform(config: CampaignConfig) -> CampaignConfig:
        if threshold_gb is None:
            policy = SoftCapPolicy(threshold_bytes=1e15, limit_bps=1e12,
                                   penalty_days=0)
            response = 1.0
        else:
            policy = SoftCapPolicy(
                threshold_bytes=threshold_gb * 1e9,
                limit_bps=limit_kbps * 1000.0,
            )
            response = config.params.cap_demand_response
        params = dataclasses.replace(
            config.params, cap_policy=policy, cap_demand_response=response
        )
        return dataclasses.replace(config, params=params)

    return transform


def give_everyone_home_wifi() -> ConfigTransform:
    """Free home routers for all customers (§1's provider strategy)."""

    def transform(config: CampaignConfig) -> CampaignConfig:
        recruitment = dataclasses.replace(config.recruitment, home_ap_share=1.0)
        return dataclasses.replace(config, recruitment=recruitment)

    return transform


# ----------------------------------------------------------------------
# Comparison harness
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class ScenarioMetrics:
    """Headline offloading metrics of one simulated campaign."""

    wifi_share: float
    median_wifi_mb: float
    median_cell_mb: float
    cellular_intensive: float
    public_volume_share: float
    offloadable_fraction: float

    @classmethod
    def measure(cls, data: "analysis.DatasetOrContext") -> "ScenarioMetrics":
        import numpy as np

        ctx = analysis.AnalysisContext.of(data)
        agg = analysis.aggregate_traffic(ctx)
        heat = analysis.wifi_cell_heatmap(ctx)
        location = analysis.location_traffic(ctx)
        rx_all = ctx.daily_matrix("all", "rx").ravel()
        valid = rx_all >= 0.1e6
        wifi = ctx.daily_matrix("wifi", "rx").ravel()[valid]
        cell = ctx.daily_matrix("cell", "rx").ravel()[valid]
        try:
            offloadable = analysis.offload_estimate(ctx).offloadable_fraction
        except AnalysisError:
            offloadable = float("nan")
        return cls(
            wifi_share=agg.wifi_share,
            median_wifi_mb=float(np.median(wifi)) / 1e6,
            median_cell_mb=float(np.median(cell)) / 1e6,
            cellular_intensive=heat.cellular_intensive_fraction,
            public_volume_share=location.volume_share["public"],
            offloadable_fraction=offloadable,
        )


@dataclass(frozen=True)
class WhatIfResult:
    """Baseline vs scenario metrics."""

    year: int
    scenario_name: str
    baseline: ScenarioMetrics
    scenario: ScenarioMetrics

    def delta(self, metric: str) -> float:
        return getattr(self.scenario, metric) - getattr(self.baseline, metric)

    def render(self) -> str:
        table = Table(
            f"What-if ({self.year}): {self.scenario_name}",
            ["metric", "baseline", "scenario", "delta"],
        )
        for metric in (
            "wifi_share", "median_wifi_mb", "median_cell_mb",
            "cellular_intensive", "public_volume_share", "offloadable_fraction",
        ):
            base = getattr(self.baseline, metric)
            new = getattr(self.scenario, metric)
            table.add_row(metric, base, new, new - base)
        return table.render()

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.render()


def compare(
    year: int,
    scenario: Scenario,
    scale: float = 0.1,
    seed: int = 7,
    baseline_config: Optional[CampaignConfig] = None,
) -> WhatIfResult:
    """Run baseline and scenario campaigns and compare headline metrics."""
    base_config = baseline_config or default_campaign_config(year, scale, seed)
    scenario_config = scenario.transform(base_config)
    if scenario_config.year != base_config.year:
        raise ConfigurationError("scenario must not change the campaign year")

    baseline_ds = clean_for_main_analysis(run_campaign(base_config).dataset)
    scenario_ds = clean_for_main_analysis(run_campaign(scenario_config).dataset)
    return WhatIfResult(
        year=year,
        scenario_name=scenario.name,
        baseline=ScenarioMetrics.measure(baseline_ds),
        scenario=ScenarioMetrics.measure(scenario_ds),
    )
