"""The fidelity scorer: measured quantities vs the paper-reference registry.

For every :class:`~repro.obs.reference.PaperRef` there is one *extractor*
here — a small function that pulls the comparable quantity out of an
:class:`~repro.analysis.context.AnalysisContext` (sharing its memo with
whatever else the run computed). :func:`score_fidelity` runs any subset of
the registered experiments through their extractors and emits one
:class:`FidelityRecord` per check (measured value, reference, normalized
divergence, ``pass``/``warn``/``fail``/``skip`` verdict), rolled up into a
:class:`FidelityReport` whose JSON is **deterministic**: it contains no
timings or environment data, so ``jobs=1`` and ``jobs=2`` runs of the same
(scale, seed) produce bit-identical reports (pinned by
``tests/test_fidelity.py``).

The committed ``FIDELITY_baseline.json`` is scored at CI scale; the
:func:`fidelity_regressions` gate compares verdicts (not values, which are
noisy across scales) and fails only when a check's verdict *worsens* —
``pass`` -> ``warn``, ``warn`` -> ``fail``, or a previously-scored check
disappearing. ``skip`` never gates in either direction.

Like :mod:`repro.obs.bench`, the analysis layer is imported lazily inside
the extractors so ``repro.obs`` stays importable from every layer.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Union

from repro.errors import ReproError
from repro.obs.reference import (
    REFERENCES,
    VERDICT_FAIL,
    VERDICT_PASS,
    VERDICT_SKIP,
    VERDICT_WARN,
    PaperRef,
    paper_item_of,
    reference_experiment_ids,
    verdict_rank,
)
from repro.obs.span import get_tracer

__all__ = [
    "FidelityRecord",
    "FidelityReport",
    "FIDELITY_SCHEMA_VERSION",
    "score_fidelity",
    "resolve_check_ids",
    "fidelity_regressions",
    "load_fidelity_report",
]

FIDELITY_SCHEMA_VERSION = 1


# ----------------------------------------------------------------------
# Records and report
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class FidelityRecord:
    """One scored check: measured value vs paper reference."""

    check_id: str
    experiment_id: str
    paper_item: str
    quantity: str
    paper: str
    predicate: str
    #: JSON-ready measured value (number / list / list of lists); None
    #: when the quantity could not be extracted (verdict == "skip").
    measured: Optional[object]
    measured_text: str
    divergence: Optional[float]
    verdict: str
    scale_free: bool
    note: str = ""

    def to_dict(self) -> dict:
        return asdict(self)


@dataclass
class FidelityReport:
    """All scored checks of one run, JSON-deterministic."""

    scale: float
    seed: int
    years: List[int]
    records: List[FidelityRecord] = field(default_factory=list)
    schema_version: int = FIDELITY_SCHEMA_VERSION

    def count(self, verdict: str) -> int:
        return sum(1 for r in self.records if r.verdict == verdict)

    @property
    def n_pass(self) -> int:
        return self.count(VERDICT_PASS)

    @property
    def n_warn(self) -> int:
        return self.count(VERDICT_WARN)

    @property
    def n_fail(self) -> int:
        return self.count(VERDICT_FAIL)

    @property
    def n_skip(self) -> int:
        return self.count(VERDICT_SKIP)

    def record(self, check_id: str) -> FidelityRecord:
        for rec in self.records:
            if rec.check_id == check_id:
                return rec
        raise ReproError(f"no fidelity record for check {check_id!r}")

    def to_dict(self) -> dict:
        return {
            "schema_version": self.schema_version,
            "scale": self.scale,
            "seed": self.seed,
            "years": list(self.years),
            "n_checks": len(self.records),
            "n_pass": self.n_pass,
            "n_warn": self.n_warn,
            "n_fail": self.n_fail,
            "n_skip": self.n_skip,
            "records": [r.to_dict() for r in self.records],
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n"

    @classmethod
    def from_dict(cls, data: dict) -> "FidelityReport":
        record_fields = set(FidelityRecord.__dataclass_fields__)
        return cls(
            scale=float(data.get("scale", 0.0)),
            seed=int(data.get("seed", 0)),
            years=[int(y) for y in data.get("years", ())],
            records=[
                FidelityRecord(**{k: v for k, v in rec.items()
                                  if k in record_fields})
                for rec in data.get("records", ())
            ],
            schema_version=int(
                data.get("schema_version", FIDELITY_SCHEMA_VERSION)
            ),
        )

    def write(self, path: Union[str, Path]) -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(self.to_json())
        return path

    def render(self) -> str:
        """Aligned plain-text scoreboard."""
        mark = {VERDICT_PASS: "ok", VERDICT_WARN: "WARN",
                VERDICT_FAIL: "FAIL", VERDICT_SKIP: "skip"}
        header = ("check", "exp", "verdict", "divergence", "measured")
        rows = [
            (r.check_id, r.experiment_id, mark[r.verdict],
             "-" if r.divergence is None else f"{r.divergence:.3f}",
             r.measured_text)
            for r in self.records
        ]
        widths = [max(len(row[i]) for row in [header] + rows)
                  for i in range(len(header))]
        lines = ["fidelity scoreboard", "-" * 19]
        lines.append("  ".join(c.ljust(w) for c, w in zip(header, widths)))
        lines.append("  ".join("-" * w for w in widths))
        for row in rows:
            lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
        lines.append(
            f"{len(self.records)} checks: {self.n_pass} pass, "
            f"{self.n_warn} warn, {self.n_fail} fail, {self.n_skip} skip "
            f"(scale {self.scale}, seed {self.seed})"
        )
        return "\n".join(lines)


def load_fidelity_report(path: Union[str, Path]) -> dict:
    try:
        return json.loads(Path(path).read_text())
    except (OSError, ValueError) as exc:
        raise ReproError(f"cannot read fidelity report {path}: {exc}") from None


# ----------------------------------------------------------------------
# Extractors
# ----------------------------------------------------------------------

#: check_id -> function(AnalysisContext) -> measured quantity.
_EXTRACTORS: Dict[str, Callable] = {}


def _extractor(check_id: str):
    def decorator(fn):
        if check_id not in REFERENCES:
            raise ReproError(f"extractor for unregistered check {check_id!r}")
        _EXTRACTORS[check_id] = fn
        return fn
    return decorator


def _years(ctx):
    years = ctx.years
    return years, min(years), max(years)


def _growth(ctx):
    import repro.analysis as A

    years, _, _ = _years(ctx)
    return A.volume_growth_table([ctx.campaign(y) for y in years])


def _surveys(ctx):
    """Per-year survey tabulations; None when the study has no surveys."""
    from repro.population.survey import tabulate_survey

    study = ctx.study
    if study is None or not getattr(study, "surveys", None):
        return None
    if not all(study.surveys.get(y) for y in ctx.years):
        return None
    return {y: tabulate_survey(study.surveys[y], y) for y in ctx.years}


# -- Tables -------------------------------------------------------------

@_extractor("t1_panel_shrinks")
def _t1_panel(ctx):
    import repro.analysis as A

    years, _, _ = _years(ctx)
    return [A.campaign_overview(ctx.raw(y)).n_total for y in years]


@_extractor("t1_lte_share")
def _t1_lte(ctx):
    import repro.analysis as A

    years, _, _ = _years(ctx)
    return [A.campaign_overview(ctx.raw(y)).lte_share for y in years]


@_extractor("t2_occupation_mix")
def _t2_occupation(ctx):
    from repro.population.demographics import OCCUPATION_SHARES

    tabs = _surveys(ctx)
    if tabs is None:
        raise _SkipCheck("no survey responses on this context")
    worst = 0.0
    for year, tab in tabs.items():
        for occupation, share in OCCUPATION_SHARES[year].items():
            measured = tab.occupation_pct.get(occupation.value, 0.0)
            worst = max(worst, abs(measured - share))
    return worst


@_extractor("t3_median_all")
def _t3_median_all(ctx):
    growth = _growth(ctx)
    years, _, _ = _years(ctx)
    return [growth.median["all"][y] for y in years]


@_extractor("t3_wifi_overtakes_cell")
def _t3_crossover(ctx):
    growth = _growth(ctx)
    _, first, last = _years(ctx)
    return (
        (growth.median["wifi"][first], growth.median["wifi"][last]),
        (growth.median["cell"][first], growth.median["cell"][last]),
    )


@_extractor("t3_mean_wifi_gt_cell")
def _t3_means(ctx):
    growth = _growth(ctx)
    _, _, last = _years(ctx)
    return (growth.mean["wifi"][last], growth.mean["cell"][last])


@_extractor("t3_agr_ordering")
def _t3_agr(ctx):
    growth = _growth(ctx)
    return [growth.agr_median["wifi"], growth.agr_median["all"],
            growth.agr_median["cell"]]


@_extractor("t4_public_ap_growth")
def _t4_public(ctx):
    _, first, last = _years(ctx)
    counts = {y: ctx.classification(y).counts() for y in (first, last)}
    return counts[last]["public"] / max(counts[first]["public"], 1)


@_extractor("t4_home_flat")
def _t4_home(ctx):
    _, first, last = _years(ctx)
    counts = {y: ctx.classification(y).counts() for y in (first, last)}
    return counts[last]["home"] / max(counts[first]["home"], 1)


@_extractor("t4_office_flat")
def _t4_office(ctx):
    _, first, last = _years(ctx)
    counts = {y: ctx.classification(y).counts() for y in (first, last)}
    return counts[last]["office"] / max(counts[first]["office"], 1)


@_extractor("t5_home_only_declines")
def _t5_home_only(ctx):
    import repro.analysis as A

    _, first, last = _years(ctx)
    return [A.hpo_breakdown(ctx.campaign(y)).pct(1, 0, 0)
            for y in (first, last)]


@_extractor("t5_multi_combo_grows")
def _t5_multi(ctx):
    import repro.analysis as A

    _, first, last = _years(ctx)
    return [A.hpo_breakdown(ctx.campaign(y)).pct(1, 0, 1)
            for y in (first, last)]


@_extractor("t6_browser_video_lead")
def _t6_categories(ctx):
    import repro.analysis as A

    _, _, last = _years(ctx)
    top = [name for name, _ in
           A.app_breakdown(ctx.campaign(last)).top("wifi_home", n=3)]
    return 1.0 if {"browser", "video"} <= set(top) else 0.0


@_extractor("t7_productivity_tx")
def _t7_productivity(ctx):
    import repro.analysis as A

    _, _, last = _years(ctx)
    top = [name for name, _ in
           A.app_breakdown(ctx.campaign(last)).top("wifi_home", n=5,
                                                   direction="tx")]
    productivity = {"productivity", "tools", "communication", "mail",
                    "business", "office"}
    return 1.0 if productivity & set(top) else 0.0


@_extractor("t8_home_yes_grows")
def _t8_home_yes(ctx):
    tabs = _surveys(ctx)
    if tabs is None:
        raise _SkipCheck("no survey responses on this context")
    return [tabs[y].connected_pct["home"]["yes"] for y in ctx.years]


@_extractor("t8_public_optimism")
def _t8_public_yes(ctx):
    tabs = _surveys(ctx)
    if tabs is None:
        raise _SkipCheck("no survey responses on this context")
    return [tabs[y].connected_pct["public"]["yes"] for y in ctx.years]


@_extractor("t9_no_aps_leads_office")
def _t9_office(ctx):
    from repro.population.survey import REASONS

    tabs = _surveys(ctx)
    if tabs is None:
        raise _SkipCheck("no survey responses on this context")
    _, _, last = _years(ctx)
    office = tabs[last].reason_pct["office"]
    leader = office["No available APs"]
    others = [office[r] for r in REASONS
              if r != "No available APs" and office[r] == office[r]]
    return (leader, max(others))


@_extractor("t9_security_public_gt_home")
def _t9_security(ctx):
    tabs = _surveys(ctx)
    if tabs is None:
        raise _SkipCheck("no survey responses on this context")
    _, _, last = _years(ctx)
    return (tabs[last].reason_pct["public"]["Security issue"],
            tabs[last].reason_pct["home"]["Security issue"])


# -- Figures ------------------------------------------------------------

@_extractor("f1_cellular_share_2014")
def _f1_share(ctx):
    from repro.reporting.context import cellular_share_of_broadband

    return cellular_share_of_broadband(2014)


@_extractor("f2_wifi_share_grows")
def _f2_wifi_share(ctx):
    import repro.analysis as A

    _, first, last = _years(ctx)
    return [A.aggregate_traffic(ctx.campaign(y)).wifi_share
            for y in (first, last)]


@_extractor("f2_evening_wifi_peak")
def _f2_peaks(ctx):
    import repro.analysis as A

    _, _, last = _years(ctx)
    peaks = set(int(h) for h in A.diurnal_peaks(ctx.campaign(last), "wifi"))
    evening = {20, 21, 22, 23, 0, 1}
    return 1.0 if peaks & evening else 0.0


@_extractor("f3_rx_tx_ratio")
def _f3_ratio(ctx):
    _, _, last = _years(ctx)
    rx = float(ctx.daily_matrix("all", "rx", year=last).sum())
    tx = float(ctx.daily_matrix("all", "tx", year=last).sum())
    if tx <= 0:
        raise _SkipCheck("no TX volume recorded")
    return rx / tx


@_extractor("f3_volumes_grow")
def _f3_grow(ctx):
    growth = _growth(ctx)
    years, _, _ = _years(ctx)
    return [growth.mean["all"][y] for y in years]


@_extractor("f4_zero_wifi")
def _f4_zero_wifi(ctx):
    import repro.analysis as A

    _, _, last = _years(ctx)
    return A.daily_volume_distributions(ctx.campaign(last)).zero_fraction("wifi")


@_extractor("f4_zero_cell_small")
def _f4_zero_cell(ctx):
    import repro.analysis as A

    _, _, last = _years(ctx)
    return A.daily_volume_distributions(ctx.campaign(last)).zero_fraction("cell")


@_extractor("f5_cell_intensive_declines")
def _f5_cell_intensive(ctx):
    import repro.analysis as A

    _, first, last = _years(ctx)
    return [A.wifi_cell_heatmap(ctx.campaign(y)).cellular_intensive_fraction
            for y in (first, last)]


@_extractor("f5_wifi_intensive_small")
def _f5_wifi_intensive(ctx):
    import repro.analysis as A

    _, _, last = _years(ctx)
    return A.wifi_cell_heatmap(ctx.campaign(last)).wifi_intensive_fraction


@_extractor("f6_traffic_ratio")
def _f6_traffic(ctx):
    import repro.analysis as A

    _, first, last = _years(ctx)
    return [A.wifi_ratios(ctx.campaign(y)).traffic("all").mean
            for y in (first, last)]


@_extractor("f6_user_ratio")
def _f6_users(ctx):
    import repro.analysis as A

    _, first, last = _years(ctx)
    return [A.wifi_ratios(ctx.campaign(y)).users("all").mean
            for y in (first, last)]


@_extractor("f7_heavy_gt_light")
def _f7_heavy(ctx):
    import repro.analysis as A

    _, _, last = _years(ctx)
    ratios = A.wifi_ratios(ctx.campaign(last))
    return (ratios.traffic("heavy").mean, ratios.traffic("light").mean)


@_extractor("f8_heavy_user_ratio_grows")
def _f8_heavy_users(ctx):
    import repro.analysis as A

    _, first, last = _years(ctx)
    return [A.wifi_ratios(ctx.campaign(y)).users("heavy").mean
            for y in (first, last)]


@_extractor("f9_wifi_off_declines")
def _f9_wifi_off(ctx):
    import repro.analysis as A

    _, first, last = _years(ctx)
    return [A.interface_state_ratios(ctx.campaign(y)).android_means["wifi_off"]
            for y in (first, last)]


@_extractor("f9_ios_gt_android")
def _f9_ios(ctx):
    import repro.analysis as A

    _, _, last = _years(ctx)
    return A.ios_android_gap(A.interface_state_ratios(ctx.campaign(last)))


@_extractor("f10_coverage_grows")
def _f10_coverage(ctx):
    import repro.analysis as A

    _, first, last = _years(ctx)
    return [
        A.association_density_maps(ctx.campaign(y)).grid("public")
        .n_cells_with_at_least(1)
        for y in (first, last)
    ]


@_extractor("f11_home_volume_share")
def _f11_home_share(ctx):
    import repro.analysis as A

    _, _, last = _years(ctx)
    return A.location_traffic(ctx.campaign(last)).volume_share["home"]


@_extractor("f12_single_ap_declines")
def _f12_single_ap(ctx):
    import repro.analysis as A

    _, first, last = _years(ctx)
    return [A.aps_per_day(ctx.campaign(y)).pct("all", 1)
            for y in (first, last)]


@_extractor("f13_duration_ordering")
def _f13_durations(ctx):
    import repro.analysis as A

    _, _, last = _years(ctx)
    p90 = A.association_durations(ctx.campaign(last)).p90_hours
    missing = [cls for cls in ("home", "office", "public") if cls not in p90]
    if missing:
        raise _SkipCheck(f"no association durations for {missing}")
    return [p90["home"], p90["office"], p90["public"]]


@_extractor("f14_public_5ghz_majority")
def _f14_public_band(ctx):
    import repro.analysis as A

    _, _, last = _years(ctx)
    return A.band_fractions(ctx.campaign(last)).fraction("public")


@_extractor("f14_public_outpaces_home")
def _f14_band_gap(ctx):
    import repro.analysis as A

    _, _, last = _years(ctx)
    bands = A.band_fractions(ctx.campaign(last))
    return (bands.fraction("public"), bands.fraction("home"))


@_extractor("f15_home_rssi_bell")
def _f15_home_rssi(ctx):
    import repro.analysis as A

    _, _, last = _years(ctx)
    return A.rssi_distributions(ctx.campaign(last)).mean["home"]


@_extractor("f15_public_weaker")
def _f15_weak(ctx):
    import repro.analysis as A

    _, _, last = _years(ctx)
    dist = A.rssi_distributions(ctx.campaign(last))
    return (dist.weak_fraction["public"], dist.weak_fraction["home"])


@_extractor("f16_public_trio")
def _f16_trio(ctx):
    import repro.analysis as A

    _, _, last = _years(ctx)
    return A.channel_distributions(ctx.campaign(last)).trio_share("public")


@_extractor("f16_home_ch1_declines")
def _f16_ch1(ctx):
    import repro.analysis as A

    _, first, last = _years(ctx)
    return [A.channel_distributions(ctx.campaign(y)).channel_share("home", 1)
            for y in (first, last)]


@_extractor("f17_sparse_public")
def _f17_sparse(ctx):
    import repro.analysis as A

    _, _, last = _years(ctx)
    availability = A.public_availability(ctx.campaign(last))
    return 1.0 - availability.fraction_seeing("24_all", 10)


@_extractor("f17_strong_lt_all")
def _f17_strong(ctx):
    import repro.analysis as A

    _, _, last = _years(ctx)
    availability = A.public_availability(ctx.campaign(last))
    return (availability.fraction_seeing("24_all", 3),
            availability.fraction_seeing("24_strong", 3))


@_extractor("f18_update_adoption")
def _f18_adoption(ctx):
    import repro.analysis as A

    _, _, last = _years(ctx)
    timing = A.update_timing(ctx.raw(last), ctx.classification(last))
    return timing.updated_fraction


@_extractor("f18_no_home_update_less")
def _f18_no_home(ctx):
    import repro.analysis as A

    _, _, last = _years(ctx)
    timing = A.update_timing(ctx.raw(last), ctx.classification(last))
    return (timing.updated_fraction, timing.updated_fraction_no_home)


@_extractor("f19_gap_narrows")
def _f19_gap(ctx):
    import repro.analysis as A

    _, _, last = _years(ctx)
    if (last - 1) not in ctx.years:
        raise _SkipCheck(f"no campaign for {last - 1}")
    return [A.cap_effect(ctx.campaign(last - 1)).median_gap(),
            A.cap_effect(ctx.campaign(last)).median_gap()]


@_extractor("f19_capped_below_half")
def _f19_below_half(ctx):
    import repro.analysis as A

    _, _, last = _years(ctx)
    effect = A.cap_effect(ctx.campaign(last))
    return (effect.capped_below_half, effect.others_below_half)


# -- Section estimates --------------------------------------------------

@_extractor("s35_opportunity")
def _s35_opportunity(ctx):
    import repro.analysis as A

    _, _, last = _years(ctx)
    return A.offload_estimate(ctx.campaign(last)).devices_with_opportunity


@_extractor("s35_offloadable_share")
def _s35_offloadable(ctx):
    import repro.analysis as A

    _, _, last = _years(ctx)
    return A.offload_estimate(ctx.campaign(last)).offloadable_fraction


@_extractor("s41_wifi_beats_cell")
def _s41_ratio(ctx):
    import repro.analysis as A

    _, _, last = _years(ctx)
    return A.offload_impact(ctx.campaign(last)).wifi_to_cell_ratio


@_extractor("s41_home_share")
def _s41_home(ctx):
    import repro.analysis as A

    _, _, last = _years(ctx)
    return A.offload_impact(ctx.campaign(last)).smartphone_share_of_home_broadband


class _SkipCheck(Exception):
    """Raised by an extractor when the quantity is undefined at this scale."""


# ----------------------------------------------------------------------
# Scoring
# ----------------------------------------------------------------------

def resolve_check_ids(names: Optional[Sequence[str]] = None) -> List[str]:
    """Expand experiment ids / check ids / ``all`` to sorted check ids."""
    if not names or list(names) == ["all"]:
        return sorted(REFERENCES)
    by_experiment: Dict[str, List[str]] = {}
    for check_id, ref in REFERENCES.items():
        by_experiment.setdefault(ref.experiment_id, []).append(check_id)
    resolved: List[str] = []
    unknown: List[str] = []
    for name in names:
        if name in REFERENCES:
            resolved.append(name)
        elif name in by_experiment:
            resolved.extend(by_experiment[name])
        else:
            unknown.append(name)
    if unknown:
        raise ReproError(
            f"unknown fidelity checks: {unknown}; valid ids: "
            f"{', '.join(reference_experiment_ids())} (or 'all', or a "
            f"check id)"
        )
    return sorted(set(resolved))


def _round_measured(value, digits: int = 6):
    """Round a measured structure for stable JSON."""
    if isinstance(value, (list, tuple)):
        return [_round_measured(v, digits) for v in value]
    if isinstance(value, bool):
        return value
    if isinstance(value, float):
        return round(value, digits)
    if isinstance(value, int):
        return value
    return float(value)  # numpy scalars


def _measured_text(value) -> str:
    if value is None:
        return "-"
    if isinstance(value, (list, tuple)):
        if value and isinstance(value[0], (list, tuple)):
            return " vs ".join(_measured_text(v) for v in value)
        return " -> ".join(_measured_text(v) for v in value)
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


def _context_is_partial(ctx) -> bool:
    """Whether the context's study dropped shards (``--partial-results``).

    Scoring a partial run against full-panel references is meaningless:
    any check may fail or blow up on the holes, so extractor errors are
    downgraded to ``skip`` rather than crashing the scoreboard.
    """
    study = getattr(ctx, "study", None)
    if study is None:
        return False
    return any(
        getattr(result, "losses", None) is not None
        for result in getattr(study, "campaigns", {}).values()
    )


def _score_one(ref: PaperRef, ctx) -> FidelityRecord:
    from repro.errors import AnalysisError

    extractor = _EXTRACTORS[ref.check_id]
    skip_on = ((_SkipCheck, AnalysisError, Exception)
               if _context_is_partial(ctx) else (_SkipCheck, AnalysisError))
    try:
        with get_tracer().span("fidelity.check", check=ref.check_id):
            measured = extractor(ctx)
    except skip_on as exc:
        return FidelityRecord(
            check_id=ref.check_id, experiment_id=ref.experiment_id,
            paper_item=paper_item_of(ref.experiment_id),
            quantity=ref.quantity, paper=ref.paper,
            predicate=ref.predicate.describe(), measured=None,
            measured_text="-", divergence=None, verdict=VERDICT_SKIP,
            scale_free=ref.scale_free,
            note=str(exc) or ref.note,
        )
    verdict, divergence = ref.predicate.verdict(measured, ref.paper_value)
    rounded = _round_measured(measured)
    return FidelityRecord(
        check_id=ref.check_id, experiment_id=ref.experiment_id,
        paper_item=paper_item_of(ref.experiment_id),
        quantity=ref.quantity, paper=ref.paper,
        predicate=ref.predicate.describe(), measured=rounded,
        measured_text=_measured_text(rounded),
        divergence=round(float(divergence), 6), verdict=verdict,
        scale_free=ref.scale_free, note=ref.note,
    )


def score_fidelity(
    context,
    checks: Optional[Sequence[str]] = None,
    scale: float = 0.0,
    seed: int = 0,
) -> FidelityReport:
    """Score (a subset of) the registry against one analysis context.

    ``context`` is an :class:`~repro.analysis.context.AnalysisContext`
    (study-backed for the survey checks; dataset-backed contexts skip
    them). ``checks`` accepts experiment ids, check ids or ``all``.
    """
    check_ids = resolve_check_ids(checks)
    report = FidelityReport(scale=scale, seed=seed,
                            years=[int(y) for y in context.years])
    tracer = get_tracer()
    with tracer.span("fidelity.score", n_checks=len(check_ids)):
        for check_id in check_ids:
            report.records.append(_score_one(REFERENCES[check_id], context))
    return report


def registered_checks() -> List[PaperRef]:
    """Every reference with an extractor, in check-id order (sanity API)."""
    return [REFERENCES[k] for k in sorted(REFERENCES) if k in _EXTRACTORS]


def missing_extractors() -> List[str]:
    """Registered checks with no extractor (must stay empty)."""
    return sorted(set(REFERENCES) - set(_EXTRACTORS))


# ----------------------------------------------------------------------
# The regression gate
# ----------------------------------------------------------------------

def fidelity_regressions(
    current: Union[FidelityReport, dict],
    baseline: dict,
    baseline_name: str = "baseline",
) -> List[str]:
    """Verdict regressions of ``current`` vs a committed baseline.

    A regression is a check whose verdict worsened (pass -> warn,
    anything -> fail) or that the baseline scored but the current report
    no longer contains. ``skip`` on either side exempts the check: a
    quantity that is undefined at one scale cannot gate.
    """
    if isinstance(current, FidelityReport):
        current = current.to_dict()
    current_by_id = {r["check_id"]: r for r in current.get("records", ())}
    failures: List[str] = []
    for base in baseline.get("records", ()):
        check_id = base["check_id"]
        base_verdict = base["verdict"]
        if base_verdict == VERDICT_SKIP:
            continue
        now = current_by_id.get(check_id)
        if now is None:
            failures.append(
                f"{baseline_name}: check {check_id} disappeared "
                f"(was {base_verdict})"
            )
            continue
        now_verdict = now["verdict"]
        if now_verdict == VERDICT_SKIP:
            continue
        if verdict_rank(now_verdict) > verdict_rank(base_verdict):
            failures.append(
                f"{baseline_name}: {check_id} regressed "
                f"{base_verdict} -> {now_verdict} "
                f"(divergence {base.get('divergence')} -> "
                f"{now.get('divergence')}, measured {now.get('measured_text')})"
            )
    return failures
