"""Periodic resource telemetry: RSS, CPU, shm, disk, pool counters.

A :class:`ResourceSampler` is a daemon thread that emits one
``resource_sample`` event per interval through the flight recorder
(:mod:`repro.obs.recorder`): parent RSS (``/proc/self/statm``), the summed
RSS of live child processes (pool workers), process CPU seconds
(:func:`os.times`, children included), live ``/dev/shm`` segment bytes
from :func:`repro.engine.transport.segment_bytes`, disk usage of watched
store/checkpoint directories, and the engine's lifetime warm-pool and
steal counters. An optional Prometheus textfile is rewritten atomically
on every sample so a node-exporter textfile collector (or a plain
``cat``) can scrape the latest values.

Everything degrades gracefully off Linux: missing ``/proc`` entries read
as zero, never as an error, and the sampling loop swallows all exceptions
— a telemetry thread must not be able to kill a campaign. Sampling reads
state; it never touches RNG streams, so sampled and unsampled runs are
bit-identical.
"""

from __future__ import annotations

import os
import threading
from pathlib import Path
from typing import Iterable, List, Optional, Union

__all__ = [
    "ResourceSampler",
    "rss_bytes",
    "children_rss_bytes",
    "disk_usage_bytes",
    "render_prometheus",
]

_PAGE_SIZE = os.sysconf("SC_PAGE_SIZE") if hasattr(os, "sysconf") else 4096


def rss_bytes(pid: Optional[int] = None) -> int:
    """Resident set size of one process (0 where /proc is unavailable)."""
    proc = Path(f"/proc/{pid}" if pid is not None else "/proc/self")
    try:
        fields = (proc / "statm").read_text().split()
        return int(fields[1]) * _PAGE_SIZE
    except (OSError, IndexError, ValueError):
        return 0


def _child_pids(parent: int) -> List[int]:
    """Direct children of ``parent``, from /proc/<pid>/stat field 4."""
    children: List[int] = []
    proc = Path("/proc")
    try:
        entries = list(proc.iterdir())
    except OSError:
        return children
    for entry in entries:
        if not entry.name.isdigit():
            continue
        try:
            stat = (entry / "stat").read_text()
        except OSError:
            continue
        # comm (field 2) may contain spaces; it ends at the last ')'.
        after_comm = stat.rpartition(")")[2].split()
        if len(after_comm) >= 2 and after_comm[1] == str(parent):
            children.append(int(entry.name))
    return children


def children_rss_bytes(parent: Optional[int] = None) -> int:
    """Summed RSS of the direct children (the worker pool) of a process."""
    parent = parent if parent is not None else os.getpid()
    return sum(rss_bytes(pid) for pid in _child_pids(parent))


def disk_usage_bytes(paths: Iterable[Union[str, os.PathLike]]) -> int:
    """Total size of all files under the given directories (or files)."""
    total = 0
    for root in paths:
        root = Path(root)
        try:
            if root.is_file():
                total += root.stat().st_size
                continue
            for dirpath, _dirnames, filenames in os.walk(root):
                for name in filenames:
                    try:
                        total += os.stat(os.path.join(dirpath, name)).st_size
                    except OSError:
                        continue
        except OSError:
            continue
    return total


def _sample(shm_token: Optional[str],
            disk_paths: Iterable[Union[str, os.PathLike]]) -> dict:
    """One resource snapshot as flat event fields."""
    from repro.engine.executor import lifetime_stats
    from repro.engine.transport import segment_bytes

    times = os.times()
    sample = {
        "rss_bytes": rss_bytes(),
        "children_rss_bytes": children_rss_bytes(),
        "cpu_s": round(times.user + times.system, 3),
        "children_cpu_s": round(times.children_user
                                + times.children_system, 3),
        "shm_bytes": segment_bytes(shm_token),
        "disk_bytes": disk_usage_bytes(disk_paths),
    }
    sample.update(lifetime_stats())
    return sample


#: Prometheus gauge names and the sample fields they read.
_PROM_GAUGES = (
    ("repro_rss_bytes", "rss_bytes",
     "Parent process resident set size in bytes"),
    ("repro_children_rss_bytes", "children_rss_bytes",
     "Summed worker-process resident set size in bytes"),
    ("repro_cpu_seconds_total", "cpu_s",
     "Parent process CPU seconds (user+system)"),
    ("repro_children_cpu_seconds_total", "children_cpu_s",
     "Reaped children CPU seconds (user+system)"),
    ("repro_shm_bytes", "shm_bytes",
     "Live /dev/shm shard-transport segment bytes"),
    ("repro_store_disk_bytes", "disk_bytes",
     "Disk usage of watched store/checkpoint directories"),
    ("repro_steals_total", "steals",
     "Work units stolen by idle executor slots (process lifetime)"),
    ("repro_retries_total", "retries",
     "Failed shard attempts observed (process lifetime)"),
    ("repro_pool_reused_total", "pool_reused",
     "Warm process pools reused (process lifetime)"),
    ("repro_pool_created_total", "pool_created",
     "Process pools created (process lifetime)"),
)


def render_prometheus(sample: dict) -> str:
    """A resource sample in Prometheus text exposition format."""
    lines: List[str] = []
    for metric, field, help_text in _PROM_GAUGES:
        if field not in sample:
            continue
        kind = "counter" if metric.endswith("_total") else "gauge"
        lines.append(f"# HELP {metric} {help_text}")
        lines.append(f"# TYPE {metric} {kind}")
        lines.append(f"{metric} {sample[field]}")
    return "\n".join(lines) + "\n"


class ResourceSampler:
    """Daemon-thread sampler emitting ``resource_sample`` events.

    One sample is taken immediately on :meth:`start` (so even sub-interval
    runs record at least one) and then every ``interval_s`` until
    :meth:`stop`, which takes a final sample so the log ends with the
    run's peak state. ``prom_path`` additionally mirrors the latest sample
    to a Prometheus textfile (atomic tmp+rename per write).
    """

    def __init__(self, recorder, interval_s: float = 1.0,
                 shm_token: Optional[str] = None,
                 disk_paths: Iterable[Union[str, os.PathLike]] = (),
                 prom_path: Optional[Union[str, os.PathLike]] = None) -> None:
        self.recorder = recorder
        self.interval_s = max(0.05, float(interval_s))
        self.shm_token = shm_token
        self.disk_paths = [Path(p) for p in disk_paths]
        self.prom_path = Path(prom_path) if prom_path is not None else None
        self.n_samples = 0
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None

    def sample_once(self) -> Optional[dict]:
        """Take, emit, and (optionally) export one sample."""
        try:
            sample = _sample(self.shm_token, self.disk_paths)
            self.recorder.emit("resource_sample", **sample)
            if self.prom_path is not None:
                self._write_prom(sample)
            self.n_samples += 1
            return sample
        except Exception:
            # Telemetry must never take down the run it observes.
            return None

    def _write_prom(self, sample: dict) -> None:
        tmp = self.prom_path.with_name(self.prom_path.name + ".tmp")
        tmp.parent.mkdir(parents=True, exist_ok=True)
        tmp.write_text(render_prometheus(sample))
        os.replace(tmp, self.prom_path)

    def _loop(self) -> None:
        while not self._stop.wait(self.interval_s):
            self.sample_once()

    def start(self) -> "ResourceSampler":
        if self._thread is not None:
            return self
        self.sample_once()
        self._thread = threading.Thread(
            target=self._loop, name="repro-resource-sampler", daemon=True,
        )
        self._thread.start()
        return self

    def stop(self, final_sample: bool = True) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
        if final_sample:
            self.sample_once()

    def __enter__(self) -> "ResourceSampler":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()
