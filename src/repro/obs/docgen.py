"""Regenerate the EXPERIMENTS.md paper-vs-measured tables from the registry.

The three comparison tables (Tables / Figures / Section estimates) live
between ``<!-- BEGIN FIDELITY:<key> -->`` / ``<!-- END FIDELITY:<key> -->``
marker pairs and are owned by this module: ``repro fidelity --write-doc``
rewrites them from the :mod:`~repro.obs.reference` registry plus a freshly
scored :class:`~repro.obs.fidelity.FidelityReport`, so the document can
never disagree with the code. Everything outside the markers (reading
guide, known deviations, reproduction notes) stays hand-written.
"""

from __future__ import annotations

import re
from pathlib import Path
from typing import Dict, List, Union

from repro.errors import ReproError
from repro.obs.fidelity import FidelityRecord, FidelityReport
from repro.obs.reference import (
    VERDICT_FAIL,
    VERDICT_PASS,
    VERDICT_SKIP,
    VERDICT_WARN,
)

__all__ = ["fidelity_tables", "rewrite_experiments_doc", "DOC_SECTIONS"]

#: Marker key -> experiment-id prefix owning that table.
DOC_SECTIONS = {"tables": "table", "figures": "fig", "sections": "sec"}

_VERDICT_MARK = {
    VERDICT_PASS: "\u2713",       # check mark
    VERDICT_WARN: "~",
    VERDICT_FAIL: "\u2717",       # ballot x
    VERDICT_SKIP: "\u2013",       # en dash
}


def _cell(text: str) -> str:
    return text.replace("|", "\\|").replace("\n", " ")


def _verdict_cell(rec: FidelityRecord) -> str:
    mark = _VERDICT_MARK[rec.verdict]
    if rec.verdict == VERDICT_SKIP:
        return f"{mark} skip"
    if rec.divergence is None:
        return mark
    return f"{mark} {rec.verdict} (div {rec.divergence:.2f})"


def _measured_cell(rec: FidelityRecord) -> str:
    if rec.verdict == VERDICT_SKIP:
        return f"skipped: {rec.note}" if rec.note else "skipped"
    text = rec.measured_text
    if not rec.scale_free:
        text += " (scale-dependent)"
    return text


def fidelity_tables(report: FidelityReport) -> Dict[str, str]:
    """Marker key -> generated markdown table for one scored report."""
    by_key: Dict[str, List[FidelityRecord]] = {k: [] for k in DOC_SECTIONS}
    for rec in report.records:
        for key, prefix in DOC_SECTIONS.items():
            if rec.experiment_id.startswith(prefix):
                by_key[key].append(rec)
                break
        else:
            raise ReproError(
                f"check {rec.check_id} has unmapped experiment id "
                f"{rec.experiment_id!r}"
            )
    tables: Dict[str, str] = {}
    scale_header = f"Measured (scale {report.scale:g})"
    for key, records in by_key.items():
        lines = [
            f"| Item | Quantity | Paper | {scale_header} | Verdict |",
            "|---|---|---|---|---|",
        ]
        records.sort(key=lambda r: (r.experiment_id, r.check_id))
        for rec in records:
            lines.append(
                f"| {_cell(rec.paper_item)} | {_cell(rec.quantity)} "
                f"| {_cell(rec.paper)} | {_cell(_measured_cell(rec))} "
                f"| {_cell(_verdict_cell(rec))} |"
            )
        tables[key] = "\n".join(lines)
    return tables


def _marker_pattern(key: str) -> re.Pattern:
    # The body group tolerates an empty block (BEGIN immediately followed
    # by END on the next line).
    return re.compile(
        rf"(<!-- BEGIN FIDELITY:{key} -->).*?(<!-- END FIDELITY:{key} -->)",
        re.DOTALL,
    )


def rewrite_experiments_doc(
    path: Union[str, Path], report: FidelityReport
) -> bool:
    """Replace the marker blocks in ``path``; True when the text changed."""
    path = Path(path)
    try:
        original = path.read_text()
    except OSError as exc:
        raise ReproError(f"cannot read {path}: {exc}") from None
    text = original
    for key, table in fidelity_tables(report).items():
        pattern = _marker_pattern(key)
        if not pattern.search(text):
            raise ReproError(
                f"{path} has no '<!-- BEGIN FIDELITY:{key} -->' marker block"
            )
        text = pattern.sub(
            lambda m, t=table: m.group(1) + "\n" + t + "\n" + m.group(2),
            text, count=1,
        )
    if text != original:
        path.write_text(text)
        return True
    return False
