"""The self-contained HTML run report.

:func:`render_run_report` folds one run's artifacts — the
:class:`~repro.obs.manifest.RunManifest`, its counters and per-stage
timings, the span-tree timeline (rendered inline by
:func:`repro.reporting.svg.span_timeline_svg`), bench results from a
``BENCH_all.json`` report, and the fidelity scoreboard — into a single
HTML page with zero external assets: every style and SVG is inline, so
the file can be uploaded as a CI artifact and opened anywhere.

Like :mod:`repro.obs.bench`, this module reaches up into the reporting
layer and is therefore deliberately **not** imported by
``repro.obs.__init__``.
"""

from __future__ import annotations

import html
from pathlib import Path
from typing import Optional, Union

from repro.obs.fidelity import FidelityReport
from repro.obs.manifest import RunManifest

__all__ = ["render_run_report", "write_run_report"]

_STYLE = """
body { font-family: system-ui, sans-serif; margin: 2rem auto;
       max-width: 64rem; color: #1a1a1a; }
h1 { font-size: 1.5rem; } h2 { font-size: 1.15rem; margin-top: 2rem;
     border-bottom: 1px solid #ddd; padding-bottom: .25rem; }
table { border-collapse: collapse; margin: .75rem 0; font-size: .85rem; }
th, td { border: 1px solid #ddd; padding: .3rem .6rem; text-align: left; }
th { background: #f5f5f5; }
td.num { text-align: right; font-variant-numeric: tabular-nums; }
.verdict-pass { color: #0a7a33; font-weight: 600; }
.verdict-warn { color: #b07500; font-weight: 600; }
.verdict-fail { color: #c0232c; font-weight: 600; }
.verdict-skip { color: #777; }
.pill { display: inline-block; padding: .1rem .55rem; border-radius: 1rem;
        background: #eef; margin-right: .4rem; font-size: .8rem; }
.muted { color: #777; font-size: .85rem; }
svg { max-width: 100%; height: auto; }
"""


def _esc(value: object) -> str:
    return html.escape(str(value))


def _kv_table(pairs) -> str:
    rows = "".join(
        f"<tr><th>{_esc(k)}</th><td>{_esc(v)}</td></tr>" for k, v in pairs
    )
    return f"<table>{rows}</table>"


def _manifest_section(manifest: RunManifest) -> str:
    shards = ", ".join(
        f"{s.get('year')}: {s.get('n_shards')}x ({s.get('n_devices')} dev)"
        for s in manifest.shards
    ) or "-"
    env = manifest.environment or {}
    return "<h2>Run manifest</h2>" + _kv_table([
        ("command", manifest.command),
        ("config hash", manifest.config_hash or "-"),
        ("seed", manifest.seed),
        ("scale", manifest.scale),
        ("years", ", ".join(str(y) for y in manifest.years) or "-"),
        ("executor", f"{manifest.executor} (jobs={manifest.n_jobs})"),
        ("shards", shards),
        ("python / numpy",
         f"{env.get('python', '?')} / {env.get('numpy', '?')}"),
    ])


def _metrics_section(manifest: RunManifest) -> str:
    parts = ["<h2>Metrics</h2>"]
    if manifest.counters:
        rows = "".join(
            f"<tr><td>{_esc(name)}</td><td class='num'>{_esc(value)}</td></tr>"
            for name, value in sorted(manifest.counters.items())
        )
        parts.append(
            "<table><tr><th>counter</th><th>value</th></tr>"
            f"{rows}</table>"
        )
    else:
        parts.append("<p class='muted'>No counters recorded.</p>")
    if manifest.stages:
        rows = "".join(
            "<tr><td>{0}</td><td class='num'>{1:.4f}</td>"
            "<td class='num'>{2:.4f}</td><td class='num'>{3}</td></tr>".format(
                _esc(stage),
                float(data.get("wall_s", 0.0)),
                float(data.get("cpu_s", 0.0)),
                int(data.get("count", 0)),
            )
            for stage, data in sorted(manifest.stages.items())
        )
        parts.append(
            "<table><tr><th>stage</th><th>wall s</th><th>cpu s</th>"
            f"<th>count</th></tr>{rows}</table>"
        )
    return "".join(parts)


def _timeline_section(manifest: RunManifest) -> str:
    if not manifest.spans:
        return ("<h2>Timeline</h2><p class='muted'>No span tree recorded "
                "(run with --telemetry).</p>")
    from repro.reporting.svg import span_timeline_svg

    svg = span_timeline_svg(
        manifest.spans, title=f"{manifest.command} timeline"
    )
    return f"<h2>Timeline</h2>{svg}"


def _bench_section(bench: Optional[dict]) -> str:
    if not bench:
        return ""
    results = bench.get("results", [])
    rows = "".join(
        "<tr><td>{0}</td><td>{1}</td><td class='num'>{2:.4f}</td>"
        "<td class='num'>{3:.4f}</td></tr>".format(
            _esc(r.get("name", "?")),
            _esc(r.get("group", "-")),
            float(r.get("mean_s", r.get("wall_s", 0.0))),
            float(r.get("wall_s", 0.0)),
        )
        for r in results
    )
    head = (
        f"<p class='muted'>{len(results)} benchmarks at scale "
        f"{bench.get('scale', '?')}, seed {bench.get('seed', '?')}.</p>"
    )
    return (
        "<h2>Bench</h2>" + head +
        "<table><tr><th>benchmark</th><th>group</th><th>mean s</th>"
        f"<th>wall s</th></tr>{rows}</table>"
    )


def _fidelity_section(fidelity: Optional[Union[FidelityReport, dict]]) -> str:
    if fidelity is None:
        return ""
    data = fidelity.to_dict() if isinstance(fidelity, FidelityReport) else fidelity
    pills = "".join(
        f"<span class='pill verdict-{kind}'>{data.get('n_' + kind, 0)} "
        f"{kind}</span>"
        for kind in ("pass", "warn", "fail", "skip")
    )
    rows = []
    for rec in data.get("records", ()):
        verdict = rec.get("verdict", "skip")
        div = rec.get("divergence")
        rows.append(
            "<tr><td>{0}</td><td>{1}</td><td>{2}</td><td>{3}</td>"
            "<td class='num'>{4}</td>"
            "<td class='verdict-{5}'>{5}</td></tr>".format(
                _esc(rec.get("check_id", "?")),
                _esc(rec.get("paper_item", "?")),
                _esc(rec.get("paper", "")),
                _esc(rec.get("measured_text", "-")),
                "-" if div is None else f"{float(div):.3f}",
                _esc(verdict),
            )
        )
    return (
        "<h2>Fidelity scoreboard</h2>"
        f"<p>{pills}<span class='muted'>scored at scale "
        f"{data.get('scale', '?')}, seed {data.get('seed', '?')}"
        "</span></p>"
        "<table><tr><th>check</th><th>paper item</th><th>paper</th>"
        "<th>measured</th><th>divergence</th><th>verdict</th></tr>"
        + "".join(rows) + "</table>"
    )


def _history_section(history: Optional[dict]) -> str:
    """Sparkline trend tables from BENCH/FIDELITY history records.

    ``history`` maps a label (``"bench"``/``"fidelity"``) to the list of
    records :func:`repro.obs.history.load_history` returns; each metric
    gets an inline SVG sparkline plus first/last values, and the latest
    rolling-window drift warnings are surfaced above the table.
    """
    if not history or not any(history.values()):
        return ""
    from repro.obs.history import (
        drift_warnings,
        record_metrics,
        sparkline_svg,
    )

    parts = ["<h2>Run history</h2>"]
    for label, records in history.items():
        if not records:
            continue
        parts.append(
            f"<h3>{_esc(label)} ({len(records)} runs)</h3>"
        )
        warnings = drift_warnings(records)
        for warning in warnings:
            parts.append(f"<p class='verdict-warn'>{_esc(warning)}</p>")
        metric_names = sorted({
            name
            for record in records
            for name, value in record.get("metrics", {}).items()
            if isinstance(value, (int, float))
        })
        rows = []
        for name in metric_names:
            series = record_metrics(records, name)
            if not series:
                continue
            spark = sparkline_svg(series) or "<span class='muted'>-</span>"
            rows.append(
                "<tr><td>{0}</td><td>{1}</td><td class='num'>{2:g}</td>"
                "<td class='num'>{3:g}</td></tr>".format(
                    _esc(name), spark, series[0], series[-1],
                )
            )
        parts.append(
            "<table><tr><th>metric</th><th>trend</th><th>first</th>"
            f"<th>latest</th></tr>{''.join(rows)}</table>"
        )
    return "".join(parts)


def render_run_report(
    manifest: RunManifest,
    fidelity: Optional[Union[FidelityReport, dict]] = None,
    bench: Optional[dict] = None,
    title: str = "repro run report",
    history: Optional[dict] = None,
) -> str:
    """One self-contained HTML page for a run (no external assets)."""
    body = "".join([
        f"<h1>{_esc(title)}</h1>",
        _manifest_section(manifest),
        _fidelity_section(fidelity),
        _timeline_section(manifest),
        _metrics_section(manifest),
        _bench_section(bench),
        _history_section(history),
    ])
    return (
        "<!DOCTYPE html>\n<html lang=\"en\"><head>"
        "<meta charset=\"utf-8\">"
        f"<title>{_esc(title)}</title>"
        f"<style>{_STYLE}</style></head>"
        f"<body>{body}</body></html>\n"
    )


def write_run_report(
    path: Union[str, Path],
    manifest: RunManifest,
    fidelity: Optional[Union[FidelityReport, dict]] = None,
    bench: Optional[dict] = None,
    title: str = "repro run report",
    history: Optional[dict] = None,
) -> Path:
    out = Path(path)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(render_run_report(manifest, fidelity, bench, title=title,
                                     history=history))
    return out
