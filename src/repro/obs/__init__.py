"""Run-telemetry subsystem: spans, unified metrics, run manifests.

Three stdlib-light modules the rest of the system threads through:

- :mod:`repro.obs.span` — ``Span``/``Tracer`` with monotonic wall/CPU
  timings, counters and nesting; a shared no-op tracer keeps the
  instrumented hot paths zero-overhead unless telemetry is enabled.
- :mod:`repro.obs.metrics` — ``MetricsRegistry`` folding the analysis
  cache stats, collection loss accounting and executor shard timings into
  one counters/stages schema.
- :mod:`repro.obs.manifest` — ``RunManifest``, the machine-readable JSON
  account of one run (config hash, seed, shard layout, per-stage seconds,
  cache hit rates, fault losses).

:mod:`repro.obs.bench` (the ``repro bench`` harness) is deliberately NOT
imported here: it reaches up into the simulation layer, which imports this
package, and eager import would cycle.
"""

from repro.obs.manifest import (
    MANIFEST_SCHEMA_VERSION,
    RunManifest,
    build_manifest,
    config_hash_of,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.span import (
    TELEMETRY_ENV_VAR,
    NoopTracer,
    Span,
    Tracer,
    get_tracer,
    set_tracer,
    telemetry_enabled,
    use_tracer,
)

__all__ = [
    "Span",
    "Tracer",
    "NoopTracer",
    "get_tracer",
    "set_tracer",
    "use_tracer",
    "telemetry_enabled",
    "TELEMETRY_ENV_VAR",
    "MetricsRegistry",
    "RunManifest",
    "build_manifest",
    "config_hash_of",
    "MANIFEST_SCHEMA_VERSION",
]
