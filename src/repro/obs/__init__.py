"""Run-telemetry and fidelity-observability subsystem.

Stdlib-light modules the rest of the system threads through:

- :mod:`repro.obs.span` — ``Span``/``Tracer`` with monotonic wall/CPU
  timings, counters and nesting; a shared no-op tracer keeps the
  instrumented hot paths zero-overhead unless telemetry is enabled.
  Chrome-trace export (:func:`~repro.obs.span.to_chrome_trace`) makes the
  tree loadable in ``chrome://tracing`` / Perfetto.
- :mod:`repro.obs.metrics` — ``MetricsRegistry`` folding the analysis
  cache stats, collection loss accounting and executor shard timings into
  one counters/stages schema.
- :mod:`repro.obs.manifest` — ``RunManifest``, the machine-readable JSON
  account of one run (config hash, seed, shard layout, per-stage seconds,
  cache hit rates, fault losses).
- :mod:`repro.obs.reference` — the paper-reference registry: one
  ``PaperRef`` per checkable claim, each with a tolerance/shape
  ``Predicate`` producing a normalized divergence and verdict.
- :mod:`repro.obs.recorder` — the crash-durable flight recorder
  (append-only ``events.jsonl``; O_APPEND write per event) plus the
  truncation-tolerant parser and :func:`~repro.obs.recorder.reconstruct`
  postmortem. Stdlib-only, so every layer can emit events.
- :mod:`repro.obs.resources` — the daemon-thread resource sampler
  (RSS/CPU//dev/shm/store-disk plus executor lifetime counters) with a
  Prometheus-textfile exporter.
- :mod:`repro.obs.history` — append-only run-history JSONL for
  ``bench``/``fidelity`` gate results, with rolling-window drift
  warnings and sparkline rendering.

:mod:`repro.obs.bench` (the ``repro bench`` harness),
:mod:`repro.obs.fidelity` (the scorer), :mod:`repro.obs.docgen` and
:mod:`repro.obs.report` are deliberately NOT imported here: they reach up
into the simulation/analysis/reporting layers, which import this package,
and eager import would cycle.
"""

from repro.obs.manifest import (
    MANIFEST_SCHEMA_VERSION,
    RunManifest,
    build_manifest,
    config_hash_of,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.recorder import (
    EVENT_KINDS,
    EVENTS_ENV_VAR,
    FlightRecorder,
    NoopRecorder,
    Postmortem,
    get_recorder,
    load_events,
    parse_events,
    reconstruct,
    set_recorder,
    use_recorder,
)
from repro.obs.reference import (
    REFERENCES,
    VERDICT_FAIL,
    VERDICT_PASS,
    VERDICT_SKIP,
    VERDICT_WARN,
    PaperRef,
    Predicate,
    refs_for,
    verdict_rank,
)
from repro.obs.span import (
    TELEMETRY_ENV_VAR,
    NoopTracer,
    Span,
    Tracer,
    get_tracer,
    set_tracer,
    spans_from_chrome_trace,
    telemetry_enabled,
    to_chrome_trace,
    use_tracer,
    write_chrome_trace,
)

__all__ = [
    "Span",
    "Tracer",
    "NoopTracer",
    "get_tracer",
    "set_tracer",
    "use_tracer",
    "telemetry_enabled",
    "TELEMETRY_ENV_VAR",
    "MetricsRegistry",
    "RunManifest",
    "build_manifest",
    "config_hash_of",
    "MANIFEST_SCHEMA_VERSION",
    "to_chrome_trace",
    "spans_from_chrome_trace",
    "write_chrome_trace",
    "REFERENCES",
    "PaperRef",
    "Predicate",
    "refs_for",
    "verdict_rank",
    "VERDICT_PASS",
    "VERDICT_WARN",
    "VERDICT_FAIL",
    "VERDICT_SKIP",
    "EVENT_KINDS",
    "EVENTS_ENV_VAR",
    "FlightRecorder",
    "NoopRecorder",
    "Postmortem",
    "get_recorder",
    "set_recorder",
    "use_recorder",
    "parse_events",
    "load_events",
    "reconstruct",
]
