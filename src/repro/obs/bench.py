"""The unified benchmark harness behind ``repro bench``.

One harness drives every benchmark the repo has: the ~30 registered
figure/table experiments, the execution-engine serial/sharded campaign
timings, the analysis-context cold/warm sweeps, and the faulty collection
pipeline. Each case is timed with the same warmup/repeat protocol
(:func:`best_of`) and the consolidated report lands in one
``BENCH_all.json`` — replacing the copy-pasted timing loops that used to
live in 37 ``benchmarks/bench_*.py`` scripts (those now import
:mod:`benchmarks.harness`, which wraps this module for pytest-benchmark
runs).

The harness also carries the CI regression gate: :func:`check_regression`
compares a fresh ``BENCH_all.json`` against the committed
``BENCH_context.json`` / ``BENCH_engine.json`` baselines using
machine-portable quantities (cache speedup ratio, per-device simulation
cost) and fails on a > ``factor`` (default 2x) regression.

Heavy repro layers are imported lazily inside functions so this module can
be imported from the CLI without paying the simulation import cost, and so
``repro.obs`` stays importable from every layer (``obs/__init__`` must not
import this module — it would cycle through ``simulation.study``).
"""

from __future__ import annotations

import json
import os
import platform
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence

from repro.errors import ConfigurationError, ReproError
from repro.obs.span import get_tracer

__all__ = [
    "BenchCase",
    "BenchEnv",
    "Timing",
    "best_of",
    "discover_cases",
    "measure_store_paths",
    "run_suite",
    "check_regression",
    "load_report",
]

BENCH_SCHEMA_VERSION = 1

#: Engine benchmarks pin this seed so results line up with the committed
#: ``BENCH_engine.json`` trajectory (which uses seed 3, year 2015).
ENGINE_BENCH_YEAR = 2015
ENGINE_BENCH_SEED = 3


# ----------------------------------------------------------------------
# Timing primitive
# ----------------------------------------------------------------------

@dataclass
class Timing:
    """Wall times (and per-rep return values) of one benchmarked callable."""

    times: List[float]
    results: List[object] = field(default_factory=list)

    @property
    def best_s(self) -> float:
        return min(self.times)

    @property
    def mean_s(self) -> float:
        return sum(self.times) / len(self.times)

    @property
    def best_result(self) -> object:
        """The value returned by the fastest repetition."""
        return self.results[self.times.index(self.best_s)]


def best_of(
    fn: Callable[..., object],
    repeat: int = 3,
    warmup: int = 1,
    setup: Optional[Callable[[], object]] = None,
) -> Timing:
    """Run ``fn`` ``warmup + repeat`` times; keep the ``repeat`` timed reps.

    ``setup`` runs untimed before every invocation (warmups included); when
    it returns a value, that value is passed to ``fn``. This is the one
    timing loop every benchmark shares — warmup policy and best-of
    semantics live here, not in each script.
    """
    if repeat < 1:
        raise ConfigurationError(f"repeat must be >= 1: {repeat}")
    if warmup < 0:
        raise ConfigurationError(f"warmup must be >= 0: {warmup}")
    times: List[float] = []
    results: List[object] = []
    for i in range(warmup + repeat):
        arg = setup() if setup is not None else None
        start = time.perf_counter()
        result = fn(arg) if arg is not None else fn()
        elapsed = time.perf_counter() - start
        if i >= warmup:
            times.append(elapsed)
            results.append(result)
    return Timing(times=times, results=results)


# ----------------------------------------------------------------------
# Case registry
# ----------------------------------------------------------------------

class BenchEnv:
    """Shared lazily-built inputs for one suite run (study, context)."""

    def __init__(self, scale: float, seed: int) -> None:
        self.scale = scale
        self.seed = seed
        self._study = None
        self._context = None

    @property
    def study(self):
        if self._study is None:
            from repro.simulation.study import run_study

            with get_tracer().span("bench.setup_study", scale=self.scale):
                self._study = run_study(scale=self.scale, seed=self.seed)
        return self._study

    @property
    def context(self):
        """One shared (warm) analysis context, the way the CLI uses it."""
        if self._context is None:
            from repro.analysis.context import AnalysisContext

            self._context = AnalysisContext(self.study)
        return self._context


@dataclass(frozen=True)
class BenchCase:
    """One discoverable benchmark: a named, grouped timed callable.

    ``runner(env, repeat, warmup)`` returns the result row (without the
    name/group, which :func:`run_suite` adds).
    """

    name: str
    group: str
    title: str
    runner: Callable[[BenchEnv, int, int], Dict[str, object]]


def _experiment_case(experiment_id: str, title: str) -> BenchCase:
    def runner(env: BenchEnv, repeat: int, warmup: int) -> Dict[str, object]:
        from repro.reporting.experiments import run_experiment

        timing = best_of(
            lambda: run_experiment(experiment_id, env.context),
            repeat=repeat, warmup=warmup,
        )
        return {"wall_s": round(timing.best_s, 6),
                "mean_s": round(timing.mean_s, 6)}

    return BenchCase(experiment_id, "experiment", title, runner)


def _campaign_case(name: str, n_jobs: int) -> BenchCase:
    def runner(env: BenchEnv, repeat: int, warmup: int) -> Dict[str, object]:
        from repro.simulation.campaign import clear_world_cache, run_campaign
        from repro.simulation.study import default_campaign_config

        config = default_campaign_config(
            ENGINE_BENCH_YEAR, scale=env.scale, seed=ENGINE_BENCH_SEED
        )

        def timed():
            return run_campaign(config, n_jobs=n_jobs)

        timing = best_of(timed, repeat=repeat, warmup=warmup,
                         setup=clear_world_cache)
        devices = timing.best_result.dataset.n_devices
        row = {
            "wall_s": round(timing.best_s, 6),
            "mean_s": round(timing.mean_s, 6),
            "n_jobs": n_jobs,
            "devices": devices,
            "devices_per_s": round(devices / timing.best_s, 2),
        }
        info = timing.best_result.execution
        if info is not None:
            # Transport accounting: total shared-memory payload bytes and
            # the per-shard average (zero on serial runs, which never pack
            # a segment), plus work-stealing activity — auditable from the
            # committed BENCH_all.json.
            row["n_shards"] = info.n_shards
            row["steals"] = getattr(info, "steals", 0)
            row["transport_bytes"] = getattr(info, "transport_bytes", 0)
            row["payload_bytes_per_shard"] = (
                round(row["transport_bytes"] / info.n_shards)
                if info.n_shards else 0
            )
        return row

    title = ("simulate one campaign, serial executor" if n_jobs == 1 else
             f"simulate one campaign, {n_jobs}-worker process pool")
    return BenchCase(name, "engine", title, runner)


def _sweep_case(name: str, shared: bool) -> BenchCase:
    def runner(env: BenchEnv, repeat: int, warmup: int) -> Dict[str, object]:
        from repro.analysis.context import AnalysisContext
        from repro.reporting.experiments import list_experiments, run_experiment

        study = env.study
        experiments = list_experiments()

        def sweep(context=None):
            for experiment in experiments:
                cache = context if shared else AnalysisContext(study)
                run_experiment(experiment.experiment_id, cache)

        # A shared-sweep rep gets a fresh context built untimed, so every
        # timed rep pays the same cold-memo cost the CLI pays once.
        timing = best_of(
            sweep, repeat=repeat, warmup=warmup,
            setup=(lambda: AnalysisContext(study)) if shared else None,
        )
        return {
            "wall_s": round(timing.best_s, 6),
            "mean_s": round(timing.mean_s, 6),
            "n_experiments": len(experiments),
            "shared_context": shared,
        }

    title = ("full experiment sweep, one shared context" if shared else
             "full experiment sweep, fresh context per experiment")
    return BenchCase(name, "context", title, runner)


def _collection_case() -> BenchCase:
    def runner(env: BenchEnv, repeat: int, warmup: int) -> Dict[str, object]:
        from repro.collection.faults import FaultPlan
        from repro.simulation.campaign import clear_world_cache, run_campaign
        from repro.simulation.study import default_campaign_config

        faults = FaultPlan(upload_failure_p=0.05, dropout_p=0.05,
                           duplicate_p=0.02)
        config = default_campaign_config(
            ENGINE_BENCH_YEAR, scale=env.scale, seed=ENGINE_BENCH_SEED,
            faults=faults,
        )
        timing = best_of(lambda: run_campaign(config), repeat=repeat,
                         warmup=warmup, setup=clear_world_cache)
        report = timing.best_result.collection
        totals = report.totals()
        return {
            "wall_s": round(timing.best_s, 6),
            "mean_s": round(timing.mean_s, 6),
            "devices": timing.best_result.dataset.n_devices,
            "completeness": round(
                totals["delivered"] / totals["ticks"], 4
            ) if totals["ticks"] else 1.0,
        }

    return BenchCase(
        "collection_faulty_campaign", "collection",
        "campaign through the lossy collection pipeline", runner,
    )


def _store_case() -> BenchCase:
    def runner(env: BenchEnv, repeat: int, warmup: int) -> Dict[str, object]:
        import tempfile

        from repro.simulation.campaign import clear_world_cache, run_campaign
        from repro.simulation.study import default_campaign_config
        from repro.traces.store import CampaignStore

        config = default_campaign_config(
            ENGINE_BENCH_YEAR, scale=env.scale, seed=ENGINE_BENCH_SEED
        )

        def timed():
            with tempfile.TemporaryDirectory() as tmp:
                store = CampaignStore(
                    Path(tmp) / f"campaign{ENGINE_BENCH_YEAR}",
                    ENGINE_BENCH_YEAR, config.axis,
                )
                return run_campaign(config, store=store).dataset.n_rows_total

        timing = best_of(timed, repeat=repeat, warmup=warmup,
                         setup=clear_world_cache)
        rows = timing.best_result
        return {
            "wall_s": round(timing.best_s, 6),
            "mean_s": round(timing.mean_s, 6),
            "rows": rows,
            "rows_per_s": round(rows / timing.best_s, 1),
        }

    return BenchCase(
        "store_roundtrip", "store",
        "campaign through the out-of-core store (spill, streaming merge, "
        "mmap load)", runner,
    )


def discover_cases() -> List[BenchCase]:
    """Every registered benchmark, in stable report order.

    Covers the full figure/table experiment registry plus the engine,
    context-memo, collection-pipeline and out-of-core-store suites.
    """
    from repro.reporting.experiments import list_experiments

    cases = [
        _experiment_case(e.experiment_id, f"{e.paper_item}: {e.title}")
        for e in list_experiments()
    ]
    cases.append(_campaign_case("campaign_serial", 1))
    cases.append(_campaign_case("campaign_sharded", 2))
    cases.append(_sweep_case("context_cold_sweep", shared=False))
    cases.append(_sweep_case("context_warm_sweep", shared=True))
    cases.append(_collection_case())
    cases.append(_store_case())
    return cases


# ----------------------------------------------------------------------
# Out-of-core store measurement (subprocess, for honest peak-RSS)
# ----------------------------------------------------------------------

#: Child program for :func:`measure_store_paths`. Runs one campaign
#: simulate+analyze through either path and reports its own peak RSS —
#: a fresh interpreter per measurement, so neither path's allocations
#: pollute the other's high-water mark.
_STORE_CHILD = r"""
import json, resource, sys, time
from pathlib import Path

from repro.analysis.context import AnalysisContext
from repro.simulation.campaign import run_campaign
from repro.simulation.study import default_campaign_config

mode, scale, seed, year, out = (
    sys.argv[1], float(sys.argv[2]), int(sys.argv[3]), int(sys.argv[4]),
    sys.argv[5],
)
config = default_campaign_config(year, scale=scale, seed=seed)
start = time.perf_counter()
if mode == "disk":
    from repro.traces.store import CampaignStore

    store = CampaignStore(Path(out) / f"campaign{year}", year, config.axis)
    result = run_campaign(config, store=store)
else:
    result = run_campaign(config)
dataset = result.dataset
context = AnalysisContext.of(dataset)
context.daily_matrix("all", "rx")
context.daily_matrix("cell", "rx")
context.hourly_series("all", "rx")
wall = time.perf_counter() - start
rss = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss  # kB on Linux
peak_vm = None  # peak *address space* (what ulimit -v constrains)
try:
    for line in Path("/proc/self/status").read_text().splitlines():
        if line.startswith("VmPeak:"):
            peak_vm = int(line.split(":")[1].split()[0])
except OSError:
    pass  # no procfs outside Linux
print(json.dumps({
    "mode": mode,
    "rows": dataset.n_rows_total,
    "devices": dataset.n_devices,
    "wall_s": round(wall, 4),
    "peak_rss_kb": int(rss),
    "peak_vm_kb": peak_vm,
}))
"""


def measure_store_paths(
    scale: float,
    seed: int = ENGINE_BENCH_SEED,
    year: int = ENGINE_BENCH_YEAR,
) -> dict:
    """Peak-RSS and throughput of the in-memory vs disk-store paths.

    Runs one campaign (simulate + representative analysis artifacts)
    twice, each in its own subprocess: once fully in memory, once through
    an out-of-core :class:`~repro.traces.store.CampaignStore`. The
    children report ``ru_maxrss``, so the numbers are true per-path
    high-water marks. Returns ``{"memory": {...}, "disk": {...},
    "rss_ratio": disk/memory}`` — the ratio is the machine-portable
    quantity the ``store`` baseline kind gates on.
    """
    import subprocess
    import sys as _sys
    import tempfile

    import repro

    env = dict(os.environ)
    src = str(Path(repro.__file__).resolve().parents[1])
    env["PYTHONPATH"] = src + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    env.pop("REPRO_JOBS", None)  # both paths serial: RSS, not speedup
    measured: Dict[str, dict] = {}
    with tempfile.TemporaryDirectory() as tmp:
        for mode in ("memory", "disk"):
            proc = subprocess.run(
                [_sys.executable, "-c", _STORE_CHILD, mode, str(scale),
                 str(seed), str(year), tmp],
                capture_output=True, text=True, env=env,
            )
            if proc.returncode != 0:
                raise ReproError(
                    f"store measurement child ({mode}) failed: "
                    f"{proc.stderr.strip()[-500:]}"
                )
            row = json.loads(proc.stdout.strip().splitlines()[-1])
            row["rows_per_s"] = (
                round(row["rows"] / row["wall_s"], 1) if row["wall_s"] else 0.0
            )
            measured[mode] = row
    return {
        "memory": measured["memory"],
        "disk": measured["disk"],
        "rss_ratio": round(
            measured["disk"]["peak_rss_kb"] / measured["memory"]["peak_rss_kb"],
            4,
        ),
    }


# ----------------------------------------------------------------------
# Suite driver
# ----------------------------------------------------------------------

def run_suite(
    scale: float = 0.02,
    seed: int = 7,
    repeat: int = 3,
    warmup: int = 1,
    only: Optional[Sequence[str]] = None,
    progress: Optional[Callable[[str], None]] = None,
) -> dict:
    """Run (a filtered subset of) the suite and return the report dict.

    ``only`` filters by case name or group name. Each case runs under a
    ``bench.<name>`` span, so a ``--telemetry`` run's manifest carries
    per-benchmark span timings next to the engine/analysis stages.
    """
    cases = discover_cases()
    if only:
        wanted = set(only)
        known = {c.name for c in cases} | {c.group for c in cases}
        unknown = sorted(wanted - known)
        if unknown:
            raise ReproError(
                f"unknown benchmarks: {unknown}; valid names: "
                f"{sorted(c.name for c in cases)} "
                f"(or groups {sorted({c.group for c in cases})})"
            )
        cases = [c for c in cases if c.name in wanted or c.group in wanted]
    tracer = get_tracer()
    env = BenchEnv(scale=scale, seed=seed)
    results: List[Dict[str, object]] = []
    suite_start = time.perf_counter()
    for case in cases:
        if progress is not None:
            progress(f"bench {case.name} ({case.group})")
        with tracer.span(f"bench.{case.name}", group=case.group):
            row: Dict[str, object] = {"name": case.name, "group": case.group}
            row.update(case.runner(env, repeat, warmup))
            results.append(row)
    try:
        import numpy
        numpy_version = numpy.__version__
    except Exception:  # pragma: no cover - numpy is a hard dep
        numpy_version = None
    return {
        "benchmark": "all",
        "schema_version": BENCH_SCHEMA_VERSION,
        "scale": scale,
        "seed": seed,
        "repeat": repeat,
        "warmup": warmup,
        "cpu_count": os.cpu_count(),
        "python": platform.python_version(),
        "numpy": numpy_version,
        "n_benchmarks": len(results),
        "total_wall_s": round(time.perf_counter() - suite_start, 4),
        "results": results,
    }


def write_report(report: dict, path: Path) -> Path:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(report, indent=2) + "\n")
    return path


def load_report(path: Path) -> dict:
    try:
        return json.loads(Path(path).read_text())
    except (OSError, ValueError) as exc:
        raise ReproError(f"cannot read benchmark report {path}: {exc}") from None


def render_results(report: dict) -> str:
    """Aligned per-benchmark summary of a suite report."""
    rows = report.get("results", [])
    if not rows:
        return "no benchmarks ran"
    width = max(len(r["name"]) for r in rows)
    lines = [f"{'benchmark'.ljust(width)}  group       wall_s    mean_s"]
    for row in rows:
        lines.append(
            f"{row['name'].ljust(width)}  {row['group']:<10s}"
            f"{row['wall_s']:9.4f} {row['mean_s']:9.4f}"
        )
    lines.append(
        f"{len(rows)} benchmarks in {report.get('total_wall_s', 0.0)}s "
        f"(scale {report.get('scale')}, repeat {report.get('repeat')}, "
        f"warmup {report.get('warmup')})"
    )
    return "\n".join(lines)


# ----------------------------------------------------------------------
# CI regression gate
# ----------------------------------------------------------------------

def _result(report: dict, name: str) -> Optional[dict]:
    for row in report.get("results", ()):
        if row.get("name") == name:
            return row
    return None


def check_regression(
    current: dict, baseline: dict, factor: float = 2.0,
    baseline_name: str = "baseline",
) -> List[str]:
    """Failures where ``current`` regresses > ``factor`` vs ``baseline``.

    Committed baselines are measured on arbitrary developer hardware, so
    comparisons use machine-portable quantities wherever possible:

    - ``context_cold_vs_warm_sweep`` baselines gate the cache *speedup
      ratio* (cold/warm), which is hardware-independent;
    - ``engine_serial_vs_parallel`` baselines gate the serial *per-device
      cost* (wall seconds per simulated device), which is scale-portable;
    - ``store`` baselines (``BENCH_store.json``) gate the disk/memory
      *peak-RSS ratio* — machine-portable, and the committed
      ``rss_ceiling_ratio`` is an absolute ceiling the current host must
      clear outright (the storage twin of ``speedup_floor``) — plus the
      disk path's per-row merge cost;
    - ``all`` baselines (a previous ``BENCH_all.json``) gate per-benchmark
      wall seconds name-by-name, but only when scales match.

    Returns a list of human-readable failure messages (empty = pass).
    Raises :class:`ConfigurationError` for an unrecognised baseline kind —
    a misconfiguration, not a regression.
    """
    if factor <= 1.0:
        raise ConfigurationError(f"regression factor must be > 1: {factor}")
    kind = baseline.get("benchmark")
    failures: List[str] = []
    if kind == "context_cold_vs_warm_sweep":
        cold = _result(current, "context_cold_sweep")
        warm = _result(current, "context_warm_sweep")
        if cold is None or warm is None or not warm.get("wall_s"):
            return [f"{baseline_name}: current report lacks the "
                    f"context_cold_sweep/context_warm_sweep benchmarks"]
        speedup = cold["wall_s"] / warm["wall_s"]
        base_speedup = float(baseline.get("speedup", 0.0))
        if base_speedup and speedup * factor < base_speedup:
            failures.append(
                f"{baseline_name}: context cache speedup regressed "
                f"{base_speedup / speedup:.2f}x "
                f"(baseline {base_speedup:.2f}x, now {speedup:.2f}x)"
            )
    elif kind == "engine_serial_vs_parallel":
        serial = _result(current, "campaign_serial")
        if serial is None or not serial.get("devices"):
            return [f"{baseline_name}: current report lacks the "
                    f"campaign_serial benchmark"]
        cost = serial["wall_s"] / serial["devices"]
        cells = baseline.get("scales", [])
        if not cells:
            return []
        cell = min(
            cells,
            key=lambda c: abs(float(c.get("scale", 0.0))
                              - float(current.get("scale", 0.0))),
        )
        base = cell.get("serial", {})
        if base.get("devices"):
            base_cost = base["wall_s"] / base["devices"]
            if cost > factor * base_cost:
                failures.append(
                    f"{baseline_name}: serial campaign cost regressed "
                    f"{cost / base_cost:.2f}x "
                    f"({1000 * base_cost:.1f}ms -> {1000 * cost:.1f}ms "
                    f"per device)"
                )
        # Parallel-speedup criterion: only meaningful when both the
        # baseline host and the current host actually had cores to spread
        # over — a single-core "speedup" is pool overhead, so the check is
        # skipped (never failed) rather than gating on a bogus ratio.
        sharded = _result(current, "campaign_sharded")
        base_speedup = cell.get("speedup")
        if (
            sharded is not None
            and sharded.get("wall_s")
            and base_speedup
            and (current.get("cpu_count") or 1) >= 2
            and (baseline.get("cpu_count") or 1) >= 2
        ):
            speedup = serial["wall_s"] / sharded["wall_s"]
            if speedup * factor < float(base_speedup):
                failures.append(
                    f"{baseline_name}: parallel speedup regressed "
                    f"{float(base_speedup) / speedup:.2f}x "
                    f"(baseline {float(base_speedup):.2f}x, "
                    f"now {speedup:.2f}x)"
                )
        # Absolute floor (ROADMAP item 2): the baseline cell may commit a
        # ``speedup_floor`` that the current host must clear outright.
        # Unlike the relative criterion it does not care what the baseline
        # host could measure — a single-core baseline records
        # ``speedup: null`` but still carries the floor, so the gate arms
        # the moment the *current* host has cores to spread over.
        floor = cell.get("speedup_floor")
        if (
            sharded is not None
            and sharded.get("wall_s")
            and floor
            and (current.get("cpu_count") or 1) >= 2
        ):
            speedup = serial["wall_s"] / sharded["wall_s"]
            if speedup < float(floor):
                # The floor was committed on whatever host wrote the
                # baseline; surface both cpu_counts (and the sharded
                # run's scheduling/transport counters) so a cross-host
                # failure is diagnosable from the message alone.
                failures.append(
                    f"{baseline_name}: parallel speedup {speedup:.2f}x at "
                    f"jobs={sharded.get('n_jobs')} is below the committed "
                    f"{float(floor):.2f}x floor "
                    f"(cpu_count: baseline={baseline.get('cpu_count')}, "
                    f"current={current.get('cpu_count')}; "
                    f"steals={sharded.get('steals')}, "
                    f"transport_bytes={sharded.get('transport_bytes')})"
                )
    elif kind == "store":
        cur_mem = current.get("memory") or {}
        cur_disk = current.get("disk") or {}
        if not cur_mem.get("peak_rss_kb") or not cur_disk.get("peak_rss_kb"):
            return [f"{baseline_name}: current report lacks memory/disk "
                    f"peak-RSS measurements (run benchmarks/bench_store.py)"]
        ratio = cur_disk["peak_rss_kb"] / cur_mem["peak_rss_kb"]
        base_mem = baseline.get("memory") or {}
        base_disk = baseline.get("disk") or {}
        if base_mem.get("peak_rss_kb") and base_disk.get("peak_rss_kb"):
            base_ratio = base_disk["peak_rss_kb"] / base_mem["peak_rss_kb"]
            if ratio > factor * base_ratio:
                failures.append(
                    f"{baseline_name}: disk/memory peak-RSS ratio regressed "
                    f"{ratio / base_ratio:.2f}x "
                    f"(baseline {base_ratio:.2f}, now {ratio:.2f})"
                )
        # Absolute ceiling (the storage twin of ``speedup_floor``): the
        # out-of-core path must never peak above this fraction of the
        # in-memory path's RSS, regardless of what the baseline host saw.
        ceiling = baseline.get("rss_ceiling_ratio")
        if ceiling and ratio > float(ceiling):
            failures.append(
                f"{baseline_name}: disk-store peak RSS is "
                f"{ratio:.2f}x the in-memory path "
                f"({cur_disk['peak_rss_kb']}kB vs "
                f"{cur_mem['peak_rss_kb']}kB), above the committed "
                f"{float(ceiling):.2f} ceiling"
            )
        if (base_disk.get("rows") and base_disk.get("wall_s")
                and cur_disk.get("rows") and cur_disk.get("wall_s")):
            cost = cur_disk["wall_s"] / cur_disk["rows"]
            base_cost = base_disk["wall_s"] / base_disk["rows"]
            if cost > factor * base_cost:
                failures.append(
                    f"{baseline_name}: disk-store per-row cost regressed "
                    f"{cost / base_cost:.2f}x "
                    f"({1e6 * base_cost:.2f}us -> {1e6 * cost:.2f}us "
                    f"per row)"
                )
    elif kind == "all":
        if baseline.get("scale") != current.get("scale"):
            return []  # wall times are not comparable across scales
        for row in current.get("results", ()):
            base = _result(baseline, row["name"])
            if base is None or not base.get("wall_s"):
                continue
            if row["wall_s"] > factor * base["wall_s"]:
                failures.append(
                    f"{baseline_name}: {row['name']} regressed "
                    f"{row['wall_s'] / base['wall_s']:.2f}x "
                    f"({base['wall_s']:.4f}s -> {row['wall_s']:.4f}s)"
                )
    else:
        # A config error, not a regression: surface as exit code 2 (the
        # unknown-id convention), never as a gate failure.
        raise ConfigurationError(
            f"{baseline_name}: unrecognised baseline benchmark kind "
            f"{kind!r}; valid kinds: context_cold_vs_warm_sweep, "
            f"engine_serial_vs_parallel, store, all"
        )
    return failures
