"""Span-based run telemetry: monotonic timings, counters, nesting.

A :class:`Tracer` records a tree of :class:`Span`\\ s — one per stage of the
run path (``plan_campaign`` → ``simulate_shard`` → ``merge_campaign`` →
analysis artifacts) — each with monotonic wall seconds
(:func:`time.perf_counter`), process CPU seconds (:func:`time.process_time`)
and free-form integer counters. Spans nest lexically through the
``with tracer.span(...)`` context manager; worker processes run their own
local tracer and the parent grafts the exported subtree back with
:meth:`Tracer.attach`, so per-shard timings survive the process boundary.

Telemetry is **zero-overhead by default**: the process-global tracer is a
shared :class:`NoopTracer` whose ``span()`` returns one reusable no-op
context manager — a hot path instrumented with ``get_tracer().span(...)``
pays an attribute lookup and two trivial calls unless a real tracer was
installed via :func:`set_tracer` / :func:`use_tracer` (the CLI does this for
``--telemetry`` or ``$REPRO_TELEMETRY``). Nothing here touches RNG state:
telemetry-on and telemetry-off runs are bit-identical (pinned by
``tests/test_telemetry_identity.py``).

This module is stdlib-only so every layer (engine, collection, analysis,
CLI) can import it without cycles.
"""

from __future__ import annotations

import os
import time
from typing import Dict, Iterator, List, Optional, Union

__all__ = [
    "Span",
    "Tracer",
    "NoopTracer",
    "TELEMETRY_ENV_VAR",
    "get_tracer",
    "set_tracer",
    "use_tracer",
    "telemetry_enabled",
    "to_chrome_trace",
    "spans_from_chrome_trace",
    "write_chrome_trace",
]

#: Setting this to a truthy value (``1``, ``true``, ``on``, ``yes``) enables
#: telemetry process-wide, including in pool workers that inherit the
#: environment.
TELEMETRY_ENV_VAR = "REPRO_TELEMETRY"

_TRUTHY = frozenset({"1", "true", "on", "yes"})


def telemetry_enabled() -> bool:
    """True when ``$REPRO_TELEMETRY`` requests telemetry."""
    return os.environ.get(TELEMETRY_ENV_VAR, "").strip().lower() in _TRUTHY


class Span:
    """One timed stage: name, attributes, counters, children.

    ``wall_s`` is monotonic wall time, ``cpu_s`` process CPU time; both
    cover the span's whole subtree (children are not subtracted).
    """

    __slots__ = ("name", "attrs", "counters", "children", "wall_s", "cpu_s")

    def __init__(self, name: str, attrs: Optional[Dict[str, object]] = None):
        self.name = name
        self.attrs: Dict[str, object] = dict(attrs) if attrs else {}
        self.counters: Dict[str, Union[int, float]] = {}
        self.children: List[Span] = []
        self.wall_s: float = 0.0
        self.cpu_s: float = 0.0

    def count(self, name: str, n: Union[int, float] = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + n

    def walk(self) -> Iterator["Span"]:
        """This span and every descendant, depth-first."""
        yield self
        for child in self.children:
            yield from child.walk()

    def as_dict(self) -> dict:
        """JSON-ready form (inverse of :meth:`from_dict`)."""
        out: dict = {"name": self.name, "wall_s": self.wall_s,
                     "cpu_s": self.cpu_s}
        if self.attrs:
            out["attrs"] = dict(self.attrs)
        if self.counters:
            out["counters"] = dict(self.counters)
        if self.children:
            out["children"] = [c.as_dict() for c in self.children]
        return out

    @classmethod
    def from_dict(cls, data: dict) -> "Span":
        span = cls(str(data["name"]), data.get("attrs"))
        span.wall_s = float(data.get("wall_s", 0.0))
        span.cpu_s = float(data.get("cpu_s", 0.0))
        span.counters = dict(data.get("counters", {}))
        span.children = [cls.from_dict(c) for c in data.get("children", ())]
        return span

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Span({self.name!r}, wall_s={self.wall_s:.6f}, "
                f"children={len(self.children)})")


class _ActiveSpan:
    """Context manager that times one span on a tracer's stack."""

    __slots__ = ("_tracer", "_span", "_t0", "_c0")

    def __init__(self, tracer: "Tracer", span: Span):
        self._tracer = tracer
        self._span = span

    def __enter__(self) -> Span:
        self._tracer._stack.append(self._span)
        self._c0 = time.process_time()
        self._t0 = time.perf_counter()
        return self._span

    def __exit__(self, *exc_info) -> None:
        self._span.wall_s += time.perf_counter() - self._t0
        self._span.cpu_s += time.process_time() - self._c0
        popped = self._tracer._stack.pop()
        if popped is not self._span:  # pragma: no cover - defensive
            raise RuntimeError(
                f"span stack corrupted: closed {self._span.name!r}, "
                f"top was {popped.name!r}"
            )


class Tracer:
    """Records a span tree for one run.

    The root span is open for the tracer's lifetime; :meth:`export`
    stamps its duration so far and returns the tree as nested dicts.
    """

    enabled = True

    def __init__(self, name: str = "run",
                 attrs: Optional[Dict[str, object]] = None) -> None:
        self.root = Span(name, attrs)
        self._stack: List[Span] = [self.root]
        self._c0 = time.process_time()
        self._t0 = time.perf_counter()

    @property
    def current(self) -> Span:
        return self._stack[-1]

    def span(self, name: str, **attrs: object) -> _ActiveSpan:
        """Open a child span of the current span (use as ``with``)."""
        span = Span(name, attrs or None)
        self.current.children.append(span)
        return _ActiveSpan(self, span)

    def count(self, name: str, n: Union[int, float] = 1) -> None:
        """Increment a counter on the current span."""
        self.current.count(name, n)

    def attach(self, exported: Optional[dict]) -> None:
        """Graft a worker's exported span tree under the current span."""
        if exported:
            self.current.children.append(Span.from_dict(exported))

    def export(self) -> dict:
        """The span tree so far, with the root duration stamped."""
        self.root.wall_s = time.perf_counter() - self._t0
        self.root.cpu_s = time.process_time() - self._c0
        return self.root.as_dict()

    def to_chrome_trace(self) -> dict:
        """The span tree so far as a Chrome-trace JSON object."""
        return to_chrome_trace(self.export())


class _NoopHandle:
    """Reusable do-nothing span context manager."""

    __slots__ = ()

    def __enter__(self) -> "_NoopHandle":
        return self

    def __exit__(self, *exc_info) -> None:
        return None

    def count(self, name: str, n: Union[int, float] = 1) -> None:
        return None


_NOOP_HANDLE = _NoopHandle()


class NoopTracer:
    """The default tracer: every operation is a near-free no-op."""

    enabled = False

    def span(self, name: str, **attrs: object) -> _NoopHandle:
        return _NOOP_HANDLE

    def count(self, name: str, n: Union[int, float] = 1) -> None:
        return None

    def attach(self, exported: Optional[dict]) -> None:
        return None

    def export(self) -> dict:
        return {}


#: The shared no-op tracer; also the reset target for :func:`set_tracer`.
NOOP_TRACER = NoopTracer()

_TRACER: Union[Tracer, NoopTracer] = NOOP_TRACER


def get_tracer() -> Union[Tracer, NoopTracer]:
    """The process-global tracer (a shared no-op unless one was set)."""
    return _TRACER


def set_tracer(
    tracer: Optional[Union[Tracer, NoopTracer]]
) -> Union[Tracer, NoopTracer]:
    """Install ``tracer`` globally (``None`` resets); returns the previous."""
    global _TRACER
    previous = _TRACER
    _TRACER = tracer if tracer is not None else NOOP_TRACER
    return previous


# ----------------------------------------------------------------------
# Chrome-trace export (chrome://tracing / Perfetto)
# ----------------------------------------------------------------------

#: Trace events use integer microseconds; sub-microsecond spans round to 1
#: so they stay visible (and survive the round trip as a >0 duration).
_US = 1_000_000


def to_chrome_trace(exported: dict, process_name: str = "repro") -> dict:
    """A span tree (from :meth:`Tracer.export`) as Chrome-trace JSON.

    Spans record *durations*, not start offsets, so starts are laid out
    synthetically: each child begins where its previous sibling's wall
    time ended. That is exact for the serial stages and a faithful
    at-least-this-dense packing for spans grafted from parallel workers.
    Events are complete ("X") events in preorder; ``args`` carries the
    attrs, counters, CPU seconds and stack depth so
    :func:`spans_from_chrome_trace` can rebuild the exact tree.
    """
    events: List[dict] = [{
        "name": "process_name", "ph": "M", "pid": 1, "tid": 1,
        "args": {"name": process_name},
    }]

    def emit(node: dict, start_us: int, depth: int) -> None:
        dur_us = max(int(round(float(node.get("wall_s", 0.0)) * _US)), 1)
        args: dict = {"depth": depth,
                      "wall_s": float(node.get("wall_s", 0.0)),
                      "cpu_s": float(node.get("cpu_s", 0.0))}
        if node.get("attrs"):
            args["attrs"] = dict(node["attrs"])
        if node.get("counters"):
            args["counters"] = dict(node["counters"])
        events.append({
            "name": str(node["name"]), "ph": "X", "cat": "span",
            "pid": 1, "tid": 1, "ts": start_us, "dur": dur_us,
            "args": args,
        })
        child_start = start_us
        for child in node.get("children", ()):
            emit(child, child_start, depth + 1)
            child_start += max(
                int(round(float(child.get("wall_s", 0.0)) * _US)), 1
            )

    if exported:
        emit(exported, 0, 0)
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def spans_from_chrome_trace(trace: dict) -> Optional[Span]:
    """Rebuild the span tree from :func:`to_chrome_trace` output.

    Durations come from ``args`` (exact floats), not from the rounded
    microsecond timeline, so ``span.as_dict()`` of the result equals the
    originally exported tree.
    """
    events = [e for e in trace.get("traceEvents", ()) if e.get("ph") == "X"]
    if not events:
        return None
    root: Optional[Span] = None
    stack: List[Span] = []  # stack[d] = most recent span at depth d
    for event in events:
        args = event.get("args", {})
        depth = int(args.get("depth", len(stack)))
        span = Span(str(event["name"]), args.get("attrs"))
        span.counters = dict(args.get("counters", {}))
        span.wall_s = float(event.get("dur", 0)) / _US
        if "wall_s" in args:  # exact value wins over the rounded dur
            span.wall_s = float(args["wall_s"])
        span.cpu_s = float(args.get("cpu_s", 0.0))
        del stack[depth:]
        if depth == 0:
            if root is not None:
                raise ValueError("trace has more than one root span")
            root = span
        else:
            if len(stack) != depth:
                raise ValueError(
                    f"event {span.name!r} at depth {depth} has no parent"
                )
            stack[-1].children.append(span)
        stack.append(span)
    return root


def write_chrome_trace(exported: dict, path: "os.PathLike | str") -> None:
    """Write a span tree as a ``chrome://tracing``-loadable JSON file."""
    import json
    from pathlib import Path

    out = Path(path)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(to_chrome_trace(exported), indent=2) + "\n")


class use_tracer:
    """Temporarily install a tracer (shard workers use this)."""

    def __init__(self, tracer: Union[Tracer, NoopTracer]) -> None:
        self._tracer = tracer
        self._previous: Optional[Union[Tracer, NoopTracer]] = None

    def __enter__(self) -> Union[Tracer, NoopTracer]:
        self._previous = set_tracer(self._tracer)
        return self._tracer

    def __exit__(self, *exc_info) -> None:
        set_tracer(self._previous)
