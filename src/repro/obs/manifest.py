"""The machine-readable run manifest.

A :class:`RunManifest` is the single artifact that accounts for one run the
way the paper accounts for a campaign: what was configured (config hash,
seed, scale, years), how it executed (executor, shard layout, per-stage
wall/CPU seconds), what the caches did (per-artifact hit rates), and what
the collection pipeline lost (fault-loss accounting). CI uploads it next to
``BENCH_all.json`` so a PR's performance and completeness story is one
download away.

Manifests round-trip losslessly through JSON: ``read(write(m)) == m`` is
pinned by ``tests/test_obs.py``. All keys are strings and all values are
JSON scalars/containers, so equality after a round trip is plain dataclass
equality.
"""

from __future__ import annotations

import hashlib
import json
import os
import platform
import sys
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Union

from repro.obs.metrics import MetricsRegistry
from repro.obs.span import Tracer

__all__ = ["RunManifest", "build_manifest", "config_hash_of",
           "MANIFEST_SCHEMA_VERSION"]

MANIFEST_SCHEMA_VERSION = 1


def config_hash_of(*configs: object) -> str:
    """Stable short hash of configuration objects (via canonical repr)."""
    digest = hashlib.sha256()
    for config in configs:
        digest.update(repr(config).encode())
        digest.update(b"\x00")
    return digest.hexdigest()[:16]


def _environment() -> Dict[str, object]:
    try:
        import numpy
        numpy_version = numpy.__version__
    except Exception:  # pragma: no cover - numpy is a hard dep
        numpy_version = None
    return {
        "python": platform.python_version(),
        "numpy": numpy_version,
        "platform": sys.platform,
        "cpu_count": os.cpu_count(),
    }


@dataclass
class RunManifest:
    """Everything needed to account for (and reproduce) one run."""

    #: CLI command (or API entry point) that produced the run.
    command: str
    #: Short sha256 over the canonical reprs of every campaign config.
    config_hash: str
    seed: int
    scale: float
    years: List[int] = field(default_factory=list)
    #: Which simulation kernel ran the devices ("batch" is the only one
    #: left; empty for runs that did not simulate, e.g. --data reloads).
    kernel: str = ""
    executor: str = "serial"
    n_jobs: int = 1
    #: Per-year shard layout: ``[{"year", "n_shards", "n_devices"}, ...]``.
    shards: List[Dict[str, int]] = field(default_factory=list)
    #: Per-stage timing rollup keyed by span name.
    stages: Dict[str, Dict[str, Union[int, float]]] = field(default_factory=dict)
    #: Namespaced counters (cache hit rates, fault-loss accounting, ...).
    counters: Dict[str, Union[int, float]] = field(default_factory=dict)
    #: Full exported span tree (empty when telemetry was off).
    spans: dict = field(default_factory=dict)
    #: Per-shard attempt/outcome history from the resilience layer
    #: (``[{"year", "shard", "attempts", "outcome", "failures"}, ...]``;
    #: empty when no resilience was configured and nothing failed).
    shard_attempts: List[dict] = field(default_factory=list)
    #: Per-year partial-results loss accounting (empty = complete run).
    losses: List[dict] = field(default_factory=list)
    #: ``"ok"`` on clean exit; ``"failed"`` when the CLI wrote the
    #: manifest from a failure path (partial timings, see ``error``).
    status: str = "ok"
    #: Single-line description of the exception that ended a failed run.
    error: str = ""
    environment: Dict[str, object] = field(default_factory=_environment)
    schema_version: int = MANIFEST_SCHEMA_VERSION

    def to_dict(self) -> dict:
        return asdict(self)

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n"

    @classmethod
    def from_dict(cls, data: dict) -> "RunManifest":
        known = {f for f in cls.__dataclass_fields__}
        return cls(**{k: v for k, v in data.items() if k in known})

    @classmethod
    def from_json(cls, text: str) -> "RunManifest":
        return cls.from_dict(json.loads(text))

    def write(self, path: Union[str, Path]) -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(self.to_json())
        return path

    @classmethod
    def read(cls, path: Union[str, Path]) -> "RunManifest":
        return cls.from_json(Path(path).read_text())

    def stage_wall_s(self, stage: str) -> float:
        """Total wall seconds recorded for one stage (0.0 if absent)."""
        return float(self.stages.get(stage, {}).get("wall_s", 0.0))


def build_manifest(
    command: str,
    tracer: Optional[Tracer] = None,
    *,
    config_hash: str = "",
    seed: int = 0,
    scale: float = 0.0,
    years: Optional[List[int]] = None,
    kernel: str = "",
    execution=None,
    shards: Optional[List[Dict[str, int]]] = None,
    cache_stats=None,
    collection_reports: Optional[Dict[int, object]] = None,
    resilience=None,
    losses: Optional[List[object]] = None,
    extra_counters: Optional[Dict[str, Union[int, float]]] = None,
    status: str = "ok",
    error: str = "",
) -> RunManifest:
    """Assemble a manifest from a run's telemetry and accounting objects.

    Every argument is optional so each CLI entry point contributes what it
    actually has: ``simulate`` has collection reports but no cache stats,
    ``analyze`` the reverse, ``bench`` both. ``resilience`` takes a
    ``ResilienceReport``; ``losses`` a list of per-year
    ``ExecutionLosses``.
    """
    registry = MetricsRegistry()
    spans: dict = {}
    if tracer is not None and tracer.enabled:
        spans = tracer.export()
        registry.ingest_span_tree(spans)
    if cache_stats is not None:
        registry.ingest_cache_stats(cache_stats)
    for year, report in (collection_reports or {}).items():
        if report is not None:
            registry.ingest_collection_report(report, year=year)
    if execution is not None:
        registry.ingest_execution(execution)
    if resilience is not None:
        registry.ingest_resilience(resilience)
    for loss in losses or []:
        if loss is not None:
            registry.ingest_losses(loss)
    for name, value in (extra_counters or {}).items():
        registry.set(name, value)
    metrics = registry.as_dict()
    return RunManifest(
        command=command,
        config_hash=config_hash,
        seed=seed,
        scale=scale,
        years=list(years or []),
        kernel=kernel,
        executor=getattr(execution, "executor", "serial"),
        n_jobs=getattr(execution, "n_jobs", 1),
        shards=list(shards or []),
        stages=metrics["stages"],
        counters=metrics["counters"],
        spans=spans,
        shard_attempts=list(resilience.shard_attempts)
        if resilience is not None else [],
        losses=[loss.to_dict() for loss in losses or [] if loss is not None],
        status=status,
        error=error,
    )
