"""One schema over every run counter the system produces.

Before this module, run accounting was scattered: the analysis memo kept
:class:`~repro.analysis.context.CacheStats`, the collection pipeline kept
:class:`~repro.collection.faults.CollectionReport` loss/outage counters, and
the execution engine kept shard timings inside span exports. A
:class:`MetricsRegistry` ingests all three into two flat, JSON-ready maps:

- ``counters`` — namespaced monotonic counts
  (``cache.clean.hits``, ``collection.2015.delivered``, ``engine.shards``);
- ``stages`` — per-stage timing rollups aggregated by span name
  (``{"wall_s", "cpu_s", "count"}`` per stage).

Ingestors are duck-typed (they read attributes, not types) so this module
imports nothing from the engine, collection, or analysis layers and can sit
below all of them.
"""

from __future__ import annotations

from typing import Dict, Iterable, Mapping, Optional, Union

Number = Union[int, float]

__all__ = ["MetricsRegistry"]


class MetricsRegistry:
    """Accumulates counters and per-stage timings for one run."""

    def __init__(self) -> None:
        self._counters: Dict[str, Number] = {}
        self._stages: Dict[str, Dict[str, Number]] = {}

    # -- primitives --------------------------------------------------------

    def count(self, name: str, n: Number = 1) -> None:
        self._counters[name] = self._counters.get(name, 0) + n

    def set(self, name: str, value: Number) -> None:
        self._counters[name] = value

    def observe(self, stage: str, wall_s: float, cpu_s: float = 0.0) -> None:
        entry = self._stages.setdefault(
            stage, {"wall_s": 0.0, "cpu_s": 0.0, "count": 0}
        )
        entry["wall_s"] += wall_s
        entry["cpu_s"] += cpu_s
        entry["count"] += 1

    @property
    def counters(self) -> Dict[str, Number]:
        return dict(self._counters)

    @property
    def stages(self) -> Dict[str, Dict[str, Number]]:
        return {k: dict(v) for k, v in self._stages.items()}

    # -- ingestors ---------------------------------------------------------

    def ingest_cache_stats(self, stats, prefix: str = "cache") -> None:
        """Fold a ``CacheStats``-shaped object into ``counters``.

        Expects ``per_artifact()`` yielding objects with ``artifact``,
        ``hits``, ``misses``, ``compute_seconds`` and ``cached_bytes``.
        """
        for entry in stats.per_artifact():
            base = f"{prefix}.{entry.artifact}"
            self.count(f"{base}.hits", entry.hits)
            self.count(f"{base}.misses", entry.misses)
            self.count(f"{base}.cached_bytes", entry.cached_bytes)
            self.observe(f"artifact.{entry.artifact}",
                         entry.compute_seconds, entry.compute_seconds)
        self.set(f"{prefix}.hit_rate", round(_hit_rate(stats), 6))

    def ingest_collection_report(
        self, report, year: Optional[int] = None, prefix: str = "collection"
    ) -> None:
        """Fold a ``CollectionReport``-shaped object into ``counters``.

        Records the fault-loss accounting: batches generated vs delivered,
        churn/drop/duplicate losses, and the recruited-vs-valid panel gap.
        """
        base = f"{prefix}.{year}" if year is not None else prefix
        for key, value in report.totals().items():
            self.count(f"{base}.{key}", value)
        self.count(f"{base}.batches_received", report.batches_received)
        self.count(f"{base}.duplicates_dropped", report.duplicates_dropped)
        self.count(f"{base}.recruited", report.recruited)
        self.count(f"{base}.valid", report.n_valid())
        totals = report.totals()
        ticks = totals.get("ticks", 0)
        self.set(
            f"{base}.completeness",
            round(totals.get("delivered", 0) / ticks, 6) if ticks else 1.0,
        )

    def ingest_execution(self, info, prefix: str = "engine") -> None:
        """Fold an ``ExecutionInfo``-shaped object into ``counters``."""
        self.set(f"{prefix}.n_jobs", info.n_jobs)
        self.count(f"{prefix}.shards", info.n_shards)
        self.set(f"{prefix}.executor_parallel",
                 int(getattr(info, "executor", "serial") != "serial"))
        self.count(f"{prefix}.steals", getattr(info, "steals", 0))
        self.count(f"{prefix}.transport_bytes",
                   getattr(info, "transport_bytes", 0))

    def ingest_resilience(self, report, prefix: str = "engine") -> None:
        """Fold a ``ResilienceReport``-shaped object into ``counters``.

        Records the self-healing accounting: in-pool retries, serial
        fallbacks, shards dropped under partial mode, classified failure
        counts, and checkpoint traffic.
        """
        self.count(f"{prefix}.retries", report.retries)
        self.count(f"{prefix}.fallbacks", report.fallbacks)
        self.count(f"{prefix}.dropped_shards", report.dropped_shards)
        for kind, n in sorted(report.failures_by_kind.items()):
            self.count(f"{prefix}.failures.{kind}", n)
        self.count("checkpoint.saved", report.checkpoint_saved)
        self.count("checkpoint.hits", report.checkpoint_hits)
        self.count("checkpoint.corrupt", report.checkpoint_corrupt)

    def ingest_losses(self, losses, prefix: str = "engine") -> None:
        """Fold an ``ExecutionLosses``-shaped object into ``counters``."""
        base = f"{prefix}.{losses.year}"
        self.count(f"{base}.shards_dropped", len(losses.dropped_shards))
        self.count(f"{base}.devices_dropped", losses.dropped_devices)
        self.set(f"{base}.device_completeness",
                 round(losses.device_completeness, 6))

    def ingest_span_tree(self, exported: Optional[Mapping]) -> None:
        """Aggregate an exported span tree into per-stage timings.

        Stages sharing a span name accumulate (``simulate_shard`` over 8
        shards becomes one stage with ``count == 8``); span counters are
        summed into ``counters`` under ``span.<name>.<counter>``.
        """
        if not exported:
            return
        self.observe(str(exported["name"]),
                     float(exported.get("wall_s", 0.0)),
                     float(exported.get("cpu_s", 0.0)))
        for key, value in exported.get("counters", {}).items():
            self.count(f"span.{exported['name']}.{key}", value)
        for child in exported.get("children", ()):
            self.ingest_span_tree(child)

    # -- output ------------------------------------------------------------

    def as_dict(self) -> dict:
        """JSON-ready ``{"counters": ..., "stages": ...}`` (sorted keys)."""
        return {
            "counters": {k: self._counters[k] for k in sorted(self._counters)},
            "stages": {
                k: {f: round(v, 6) if isinstance(v, float) else v
                    for f, v in self._stages[k].items()}
                for k in sorted(self._stages)
            },
        }

    def render(self) -> str:
        """Aligned plain-text report: stages first, then counters."""
        lines = ["run metrics", "-" * 11]
        if self._stages:
            width = max(len(k) for k in self._stages)
            lines.append(f"{'stage'.ljust(width)}  count  wall_s    cpu_s")
            for name in sorted(self._stages):
                entry = self._stages[name]
                lines.append(
                    f"{name.ljust(width)}  {entry['count']:5d}  "
                    f"{entry['wall_s']:8.3f}  {entry['cpu_s']:7.3f}"
                )
        if self._counters:
            width = max(len(k) for k in self._counters)
            for name in sorted(self._counters):
                lines.append(f"{name.ljust(width)}  {self._counters[name]}")
        return "\n".join(lines)


def _hit_rate(stats) -> float:
    hits = sum(e.hits for e in stats.per_artifact())
    misses = sum(e.misses for e in stats.per_artifact())
    return hits / (hits + misses) if hits + misses else 0.0
