"""The machine-readable paper-reference registry.

``EXPERIMENTS.md`` states, in prose, what "shape agreement" means for every
reproduced table and figure: a relative-error bound here, an ordering or a
crossover there, a growth direction elsewhere. This module encodes those
same criteria as data — one :class:`PaperRef` per checkable claim, each
carrying the paper's reported value, a display string, and a
:class:`Predicate` that turns a measured quantity into a normalized
divergence and a ``pass``/``warn``/``fail`` verdict.

The registry is *pure data plus arithmetic*: it is stdlib-only and imports
nothing from the analysis layer. Measured quantities are produced by the
per-check extractors in :mod:`repro.obs.fidelity`, which is the only module
that reaches up into ``repro.analysis``; keeping the two apart means the
reference values (and the doc generator that rewrites ``EXPERIMENTS.md``
from them) can be inspected without paying any numpy/simulation import.

Divergence is normalized uniformly across predicate kinds so verdicts have
one semantics everywhere:

- ``divergence <= 1.0`` — **pass**: the claim holds within tolerance;
- ``1.0 < divergence <= warn_factor`` — **warn**: outside tolerance but
  within the warn band (default 2x);
- ``divergence > warn_factor`` — **fail**: the reproduction has drifted.

A fourth verdict, ``skip``, is produced by the scorer (not by predicates)
when a quantity cannot be extracted at the current scale — e.g. too few
potentially-capped device-days for Figure 19 on a tiny panel.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

__all__ = [
    "VERDICT_PASS",
    "VERDICT_WARN",
    "VERDICT_FAIL",
    "VERDICT_SKIP",
    "verdict_rank",
    "Predicate",
    "RelTol",
    "Range",
    "Ordering",
    "Crossover",
    "Greater",
    "Holds",
    "PaperRef",
    "REFERENCES",
    "refs_for",
    "reference_experiment_ids",
    "paper_item_of",
]

VERDICT_PASS = "pass"
VERDICT_WARN = "warn"
VERDICT_FAIL = "fail"
VERDICT_SKIP = "skip"

#: Severity order for the regression gate ("skip" never gates).
_VERDICT_RANK = {VERDICT_PASS: 0, VERDICT_WARN: 1, VERDICT_FAIL: 2}


def verdict_rank(verdict: str) -> int:
    """Severity of a verdict (pass < warn < fail); skip is not ranked."""
    try:
        return _VERDICT_RANK[verdict]
    except KeyError:
        raise ValueError(f"unrankable verdict {verdict!r}") from None


Number = Union[int, float]
#: A measured quantity: a scalar, a sequence, or a pair of sequences.
Measured = Union[Number, Sequence[Number], Tuple[Sequence[Number], ...]]

#: Divergence assigned when a claim fails with no meaningful magnitude
#: (e.g. a qualitative Holds check): far beyond any warn band.
_HARD_FAIL = 100.0


def _rel_err(measured: float, reference: float) -> float:
    """|measured - reference| relative to the reference magnitude."""
    if reference == 0.0:
        return 0.0 if measured == 0.0 else _HARD_FAIL
    return abs(measured - reference) / abs(reference)


@dataclass(frozen=True)
class Predicate:
    """Base predicate: evaluates a measured quantity to a divergence.

    Subclasses implement :meth:`divergence`; verdict banding is shared.
    """

    #: Keyword-only so subclass fields keep positional slots (``Ordering
    #: ("decreasing")`` binds to ``direction``, not the warn band).
    warn_factor: float = field(default=2.0, kw_only=True)

    def divergence(self, measured: Measured,
                   paper_value: Optional[Measured]) -> float:
        raise NotImplementedError

    def verdict(self, measured: Measured,
                paper_value: Optional[Measured] = None) -> Tuple[str, float]:
        """(verdict, divergence) for one measured quantity."""
        div = float(self.divergence(measured, paper_value))
        if math.isnan(div):
            return VERDICT_FAIL, _HARD_FAIL
        if div <= 1.0:
            return VERDICT_PASS, div
        if div <= self.warn_factor:
            return VERDICT_WARN, div
        return VERDICT_FAIL, div

    def describe(self) -> str:
        raise NotImplementedError


@dataclass(frozen=True)
class RelTol(Predicate):
    """Relative error of a scalar (or element-wise of a sequence) vs the
    paper value, normalized by ``tol``: divergence = max rel. error / tol."""

    tol: float = 0.25

    def divergence(self, measured, paper_value):
        if paper_value is None:
            raise ValueError("RelTol needs a paper_value")
        m = measured if isinstance(measured, (list, tuple)) else (measured,)
        p = (paper_value if isinstance(paper_value, (list, tuple))
             else (paper_value,))
        if len(m) != len(p):
            raise ValueError(
                f"measured has {len(m)} elements, paper value {len(p)}"
            )
        return max(_rel_err(float(a), float(b)) for a, b in zip(m, p)) / self.tol

    def describe(self) -> str:
        return f"relative error <= {self.tol:g}"


@dataclass(frozen=True)
class Range(Predicate):
    """A scalar must land inside ``[lo, hi]``; divergence is the distance
    outside the interval, relative to the interval width."""

    lo: float = 0.0
    hi: float = 1.0

    def divergence(self, measured, paper_value):
        value = float(measured)
        span = self.hi - self.lo
        if span <= 0:
            raise ValueError(f"empty range [{self.lo}, {self.hi}]")
        if value < self.lo:
            return 1.0 + (self.lo - value) / span
        if value > self.hi:
            return 1.0 + (value - self.hi) / span
        return 0.0

    def describe(self) -> str:
        return f"within [{self.lo:g}, {self.hi:g}]"


@dataclass(frozen=True)
class Ordering(Predicate):
    """A sequence must be monotone in ``direction``; divergence is the
    largest relative violation over ``slack_rel`` (default 5%)."""

    direction: str = "increasing"
    slack_rel: float = 0.05

    def divergence(self, measured, paper_value):
        values = [float(v) for v in measured]
        if len(values) < 2:
            raise ValueError("ordering needs at least two values")
        if self.direction not in ("increasing", "decreasing"):
            raise ValueError(f"bad direction {self.direction!r}")
        worst = 0.0
        for earlier, later in zip(values, values[1:]):
            gap = later - earlier
            if self.direction == "decreasing":
                gap = -gap
            if gap < 0:  # violated by |gap|
                denom = max(abs(earlier), abs(later), 1e-12)
                worst = max(worst, -gap / denom)
        return worst / self.slack_rel

    def describe(self) -> str:
        return f"{self.direction} (slack {self.slack_rel:g})"


@dataclass(frozen=True)
class Crossover(Predicate):
    """Series *a* must start below series *b* and end above it.

    Measured is ``((a_first, a_last), (b_first, b_last))``. Divergence is
    the worse of the two endpoint margins, relative over ``slack_rel``.
    """

    slack_rel: float = 0.05

    def divergence(self, measured, paper_value):
        (a_first, a_last), (b_first, b_last) = (
            [float(v) for v in pair] for pair in measured
        )
        start_denom = max(abs(a_first), abs(b_first), 1e-12)
        end_denom = max(abs(a_last), abs(b_last), 1e-12)
        start_violation = max(0.0, (a_first - b_first) / start_denom)
        end_violation = max(0.0, (b_last - a_last) / end_denom)
        return max(start_violation, end_violation) / self.slack_rel

    def describe(self) -> str:
        return "first series overtakes the second"


@dataclass(frozen=True)
class Greater(Predicate):
    """Measured pair ``(a, b)``: require ``a > min_ratio * b``; divergence
    is the relative shortfall over ``slack_rel``."""

    min_ratio: float = 1.0
    slack_rel: float = 0.05

    def divergence(self, measured, paper_value):
        a, b = (float(v) for v in measured)
        target = self.min_ratio * b
        shortfall = target - a
        if shortfall <= 0:
            return 0.0
        denom = max(abs(a), abs(target), 1e-12)
        return (shortfall / denom) / self.slack_rel

    def describe(self) -> str:
        if self.min_ratio == 1.0:
            return "first exceeds second"
        return f"first exceeds {self.min_ratio:g}x second"


@dataclass(frozen=True)
class Holds(Predicate):
    """A qualitative claim: measured is 1.0 (holds) or 0.0 (does not)."""

    def divergence(self, measured, paper_value):
        return 0.0 if float(measured) >= 0.5 else _HARD_FAIL

    def describe(self) -> str:
        return "qualitative claim holds"


# ----------------------------------------------------------------------
# The registry
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class PaperRef:
    """One checkable paper claim: reference value plus shape predicate."""

    check_id: str
    experiment_id: str
    #: Human name of the compared quantity ("Median daily RX, all (MB)").
    quantity: str
    #: The paper's reported value as printed ("57.9 / 90.3 / 126.5").
    paper: str
    predicate: Predicate
    #: Machine-comparable paper value when the predicate needs one.
    paper_value: Optional[Measured] = None
    #: False when the quantity depends on panel scale (AP counts, panel
    #: sizes) and only the shape — not the level — is comparable.
    scale_free: bool = True
    note: str = ""


REFERENCES: Dict[str, PaperRef] = {}


def _ref(check_id: str, experiment_id: str, quantity: str, paper: str,
         predicate: Predicate, paper_value: Optional[Measured] = None,
         scale_free: bool = True, note: str = "") -> None:
    if check_id in REFERENCES:
        raise ValueError(f"duplicate check id {check_id!r}")
    REFERENCES[check_id] = PaperRef(
        check_id=check_id, experiment_id=experiment_id, quantity=quantity,
        paper=paper, predicate=predicate, paper_value=paper_value,
        scale_free=scale_free, note=note,
    )


def refs_for(experiment_id: str) -> List[PaperRef]:
    """All registered checks for one experiment, in check-id order."""
    return [REFERENCES[k] for k in sorted(REFERENCES)
            if REFERENCES[k].experiment_id == experiment_id]


def reference_experiment_ids() -> List[str]:
    """Every experiment id with at least one registered check, sorted."""
    return sorted({ref.experiment_id for ref in REFERENCES.values()})


def paper_item_of(experiment_id: str) -> str:
    """Display name of the paper artifact ("table3" -> "Table 3")."""
    if experiment_id.startswith("table"):
        return f"Table {int(experiment_id[5:])}"
    if experiment_id.startswith("fig"):
        return f"Figure {int(experiment_id[3:])}"
    if experiment_id.startswith("sec"):
        digits = experiment_id[3:]
        return f"Section {digits[0]}.{digits[1:]}"
    return experiment_id


# -- Tables -------------------------------------------------------------

_ref("t1_panel_shrinks", "table1",
     "Panel size declines across campaigns",
     "948/807 -> 887/789 -> 835/781",
     Ordering("decreasing"), scale_free=False)
_ref("t1_lte_share", "table1",
     "%LTE of cellular traffic",
     "25% -> 70% -> 80%",
     RelTol(tol=0.35), paper_value=(0.25, 0.70, 0.80))
_ref("t2_occupation_mix", "table2",
     "Survey occupation mix vs Table 2 (max |diff|, pct points)",
     "sampled from Table 2; within ~3 points",
     Range(lo=0.0, hi=6.0), paper_value=3.0,
     note="survey-backed: skipped on reloaded datasets")
_ref("t3_median_all", "table3",
     "Median daily RX, all interfaces (MB)",
     "57.9 / 90.3 / 126.5",
     RelTol(tol=0.55), paper_value=(57.9, 90.3, 126.5))
_ref("t3_wifi_overtakes_cell", "table3",
     "Median WiFi crosses median cellular",
     "9.2 < 19.5 (2013) -> 50.7 > 35.6 (2015)",
     Crossover())
_ref("t3_mean_wifi_gt_cell", "table3",
     "Mean WiFi exceeds mean cellular (2015)",
     "WiFi mean > cellular mean every year",
     Greater())
_ref("t3_agr_ordering", "table3",
     "AGR ordering (median): WiFi >> all > cell",
     "134% >> 48% > 35%",
     Ordering("decreasing"))
_ref("t4_public_ap_growth", "table4",
     "Public APs grow strongly (last/first)",
     "5041 -> 10481 (~2.1x)",
     Range(lo=1.5, hi=8.0), paper_value=2.1, scale_free=False,
     note="growth steeper than the paper; see Known deviations")
_ref("t4_home_flat", "table4",
     "Home APs roughly flat (last/first)",
     "1139 -> 1289 (~1.1x)",
     Range(lo=0.7, hi=1.6), paper_value=1.13, scale_free=False)
_ref("t4_office_flat", "table4",
     "Office APs stable (last/first)",
     "166 -> 166 (~1.0x)",
     Range(lo=0.6, hi=2.0), paper_value=1.0, scale_free=False)
_ref("t5_home_only_declines", "table5",
     "Home-only (100) share of device-days declines",
     "54.7% -> 46.4%",
     Ordering("decreasing"))
_ref("t5_multi_combo_grows", "table5",
     "Home+other (101) combo grows",
     "10.7% -> 16.5%",
     Ordering("increasing"))
_ref("t6_browser_video_lead", "table6",
     "Browser and video lead WiFi-home RX categories",
     "browser/video lead; video & dload grow on WiFi",
     Holds())
_ref("t7_productivity_tx", "table7",
     "Productivity categories prominent in WiFi TX top-5",
     "productivity prominent on WiFi",
     Holds())
_ref("t8_home_yes_grows", "table8",
     "Survey: home 'yes' share (%)",
     "70 -> 73 -> 78%",
     RelTol(tol=0.15), paper_value=(70.0, 73.0, 78.0),
     note="survey-backed: skipped on reloaded datasets")
_ref("t8_public_optimism", "table8",
     "Survey: public 'yes' share grows (optimism bias)",
     "45 -> 48 -> 54%",
     Ordering("increasing"),
     note="survey-backed: skipped on reloaded datasets")
_ref("t9_no_aps_leads_office", "table9",
     "'No available APs' is the top office reason",
     "46-52%, largest office reason",
     Greater(),
     note="survey-backed: skipped on reloaded datasets")
_ref("t9_security_public_gt_home", "table9",
     "Security concern strongest in public (2014+)",
     "NA -> 15 -> 35%, public >> home",
     Greater(),
     note="survey-backed: skipped on reloaded datasets")

# -- Figures ------------------------------------------------------------

_ref("f1_cellular_share_2014", "fig01",
     "Cellular share of broadband by end 2014",
     "~20%",
     RelTol(tol=0.15), paper_value=0.20)
_ref("f2_wifi_share_grows", "fig02",
     "WiFi share of total volume",
     "59% -> 67%",
     RelTol(tol=0.25), paper_value=(0.59, 0.67))
_ref("f2_evening_wifi_peak", "fig02",
     "WiFi peaks in the evening (21:00-01:00)",
     "evening WiFi peak, commute cellular peaks",
     Holds())
_ref("f3_rx_tx_ratio", "fig03",
     "Total RX / TX ratio (2015)",
     "RX ~ 5x TX",
     Range(lo=3.0, hi=9.0), paper_value=5.0)
_ref("f3_volumes_grow", "fig03",
     "Mean daily volume grows yearly (MB)",
     "CDFs shift right every year",
     Ordering("increasing"))
_ref("f4_zero_wifi", "fig04",
     "Zero-traffic WiFi interface-days (2015)",
     "~20%",
     Range(lo=0.08, hi=0.35), paper_value=0.20)
_ref("f4_zero_cell_small", "fig04",
     "Zero-traffic cellular interface-days small (2015)",
     "~8%",
     Range(lo=0.0, hi=0.15), paper_value=0.08)
_ref("f5_cell_intensive_declines", "fig05",
     "Cellular-intensive device-day share declines",
     "35% -> 22%",
     Ordering("decreasing"))
_ref("f5_wifi_intensive_small", "fig05",
     "WiFi-intensive share stays a small minority (2015)",
     "~8%",
     Range(lo=0.0, hi=0.20), paper_value=0.08)
_ref("f6_traffic_ratio", "fig06",
     "Mean WiFi-traffic ratio",
     "0.58 -> 0.71",
     RelTol(tol=0.20), paper_value=(0.58, 0.71))
_ref("f6_user_ratio", "fig06",
     "Mean WiFi-user ratio",
     "0.32 -> 0.48",
     RelTol(tol=0.30), paper_value=(0.32, 0.48))
_ref("f7_heavy_gt_light", "fig07",
     "Heavy users offload more than light users (2015)",
     "0.89 vs 0.52",
     Greater())
_ref("f8_heavy_user_ratio_grows", "fig08",
     "Heavy-user WiFi-user ratio grows",
     "0.51 -> 0.68",
     Ordering("increasing"))
_ref("f9_wifi_off_declines", "fig09",
     "Android WiFi-off share declines",
     "~50% -> ~40% daytime",
     Ordering("decreasing"))
_ref("f9_ios_gt_android", "fig09",
     "iOS connects more than Android (gap, 2015)",
     "+30%",
     Range(lo=0.0, hi=1.0), paper_value=0.30)
_ref("f10_coverage_grows", "fig10",
     "5km cells with >= 1 public AP grow",
     "229 -> 265",
     Ordering("increasing"), scale_free=False)
_ref("f11_home_volume_share", "fig11",
     "Home share of WiFi volume (2015)",
     "~95%",
     Range(lo=0.80, hi=1.0), paper_value=0.95)
_ref("f12_single_ap_declines", "fig12",
     "Single-AP device-day share declines",
     "70% -> 60%",
     Ordering("decreasing"))
_ref("f13_duration_ordering", "fig13",
     "p90 association duration: home > office > public (h)",
     "12h / 8h / 1h",
     Ordering("decreasing"))
_ref("f14_public_5ghz_majority", "fig14",
     "Public 5GHz fraction by 2015",
     "> 50%",
     Range(lo=0.35, hi=1.0), paper_value=0.50)
_ref("f14_public_outpaces_home", "fig14",
     "Public 5GHz rollout outpaces home (2015)",
     "> 50% vs < 20%",
     Greater())
_ref("f15_home_rssi_bell", "fig15",
     "Home max-RSSI mean (dBm, 2015)",
     "~-54 dBm",
     Range(lo=-60.0, hi=-47.0), paper_value=-54.0)
_ref("f15_public_weaker", "fig15",
     "Public weak-signal fraction exceeds home (2015)",
     "12% vs 3% below -70 dBm",
     Greater())
_ref("f16_public_trio", "fig16",
     "Public 2.4GHz channels on the 1/6/11 trio (2015)",
     "all on 1/6/11",
     Range(lo=0.90, hi=1.0), paper_value=1.0)
_ref("f16_home_ch1_declines", "fig16",
     "Home channel-1 concentration declines",
     "Ch1 pile-up shrinks",
     Ordering("decreasing"))
_ref("f17_sparse_public", "fig17",
     "Available samples seeing < 10 public 2.4GHz APs (2015)",
     "~90%",
     Range(lo=0.70, hi=1.0), paper_value=0.90)
_ref("f17_strong_lt_all", "fig17",
     "Strong networks rarer than all detected (2015)",
     "strong << all",
     Greater())
_ref("f18_update_adoption", "fig18",
     "iOS devices updating in the window (2015)",
     "58%",
     Range(lo=0.30, hi=0.80), paper_value=0.58)
_ref("f18_no_home_update_less", "fig18",
     "No-home users update less",
     "14% vs 58%",
     Greater())
_ref("f19_gap_narrows", "fig19",
     "Capped-vs-others median gap narrows in 2015",
     "0.29 -> 0.15",
     Ordering("decreasing"),
     note="needs capped device-days; skipped at tiny scales")
_ref("f19_capped_below_half", "fig19",
     "Capped users more often below half their 3-day mean (2015)",
     "45% vs 30% (2014)",
     Greater(),
     note="needs capped device-days; skipped at tiny scales")

# -- Section estimates --------------------------------------------------

_ref("s35_opportunity", "sec35",
     "Available users with stable public-WiFi opportunity (2015)",
     "~60%",
     Range(lo=0.40, hi=1.0), paper_value=0.60)
_ref("s35_offloadable_share", "sec35",
     "Offloadable share of their cellular download (2015)",
     "15-20%",
     Range(lo=0.05, hi=0.35), paper_value=0.18)
_ref("s41_wifi_beats_cell", "sec41",
     "WiFi:cellular median ratio (2015)",
     "1.4 (WiFi wins)",
     Range(lo=1.0, hi=5.0), paper_value=1.4,
     note="overshoots with the WiFi median; see Known deviations")
_ref("s41_home_share", "sec41",
     "One phone's share of home broadband (2015)",
     "~12%",
     Range(lo=0.03, hi=0.35), paper_value=0.12)
