"""Run-history store: BENCH/FIDELITY trend records and drift warnings.

The bench and fidelity gates (PRs 4–5) compare a run against a single
committed baseline — a point, not a trend. This module keeps an
append-only JSONL history beside the results files: every
``bench --check`` appends one keyed record to ``BENCH_history.jsonl``
and every ``fidelity --check`` to ``FIDELITY_history.jsonl``. On top of
the history sit a **rolling-window drift warning** (latest value vs the
median of the preceding window — advisory, printed next to the absolute
gates, never failing a run by itself) and **sparkline trend views**
(unicode for the terminal, inline SVG for the PR 5 HTML report).

The files use the same single-write append discipline as the flight
recorder, so concurrent CI shards can share one history file and a
killed run never corrupts it; :func:`load_history` tolerates a truncated
final line.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path
from typing import Dict, List, Optional, Union

__all__ = [
    "append_history",
    "load_history",
    "bench_record",
    "fidelity_record",
    "record_metrics",
    "drift_warnings",
    "sparkline",
    "sparkline_svg",
]

#: Relative drift (latest vs rolling median) that triggers a warning.
DRIFT_TOLERANCE = 0.25

#: How many preceding records form the rolling window.
DRIFT_WINDOW = 5

_SPARK_BARS = "▁▂▃▄▅▆▇█"


def append_history(path: Union[str, os.PathLike], record: dict) -> dict:
    """Append one record (stamped with ``ts``) as a single JSONL write."""
    record = dict(record)
    record.setdefault("ts", round(time.time(), 3))
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    line = json.dumps(record, separators=(",", ":"), default=str) + "\n"
    fd = os.open(str(path), os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644)
    try:
        os.write(fd, line.encode("utf-8"))
    finally:
        os.close(fd)
    return record


def load_history(path: Union[str, os.PathLike]) -> List[dict]:
    """All records in a history file; truncated/corrupt lines skipped."""
    path = Path(path)
    if not path.exists():
        return []
    records: List[dict] = []
    for raw in path.read_bytes().split(b"\n"):
        if not raw.strip():
            continue
        try:
            record = json.loads(raw)
        except ValueError:
            continue
        if isinstance(record, dict):
            records.append(record)
    return records


# ----------------------------------------------------------------------
# Record extraction
# ----------------------------------------------------------------------

def bench_record(report: dict, gate: str = "",
                 baselines: Optional[List[str]] = None) -> dict:
    """The trend-worthy core of a BENCH_all.json report.

    ``metrics`` maps benchmark name to best wall seconds; derived ratios
    (cache speedup, parallel speedup, per-device serial cost) are added
    under ``derived_*`` keys when their inputs ran.
    """
    rows = {row.get("name"): row for row in report.get("results", ())
            if row.get("name")}
    metrics: Dict[str, float] = {
        name: float(row["wall_s"]) for name, row in rows.items()
        if isinstance(row.get("wall_s"), (int, float))
    }
    serial = rows.get("campaign_serial")
    if serial and serial.get("devices") and serial.get("wall_s"):
        metrics["derived_serial_ms_per_device"] = round(
            1000.0 * serial["wall_s"] / serial["devices"], 4
        )
    sharded = rows.get("campaign_sharded")
    if (serial and sharded and serial.get("wall_s")
            and sharded.get("wall_s")):
        metrics["derived_parallel_speedup"] = round(
            serial["wall_s"] / sharded["wall_s"], 4
        )
    cold = rows.get("context_cold_sweep")
    warm = rows.get("context_warm_sweep")
    if cold and warm and cold.get("wall_s") and warm.get("wall_s"):
        metrics["derived_cache_speedup"] = round(
            cold["wall_s"] / warm["wall_s"], 4
        )
    return {
        "kind": "bench",
        "scale": report.get("scale"),
        "seed": report.get("seed"),
        "cpu_count": report.get("cpu_count"),
        "n_benchmarks": report.get("n_benchmarks"),
        "gate": gate,
        "baselines": list(baselines or ()),
        "metrics": metrics,
    }


def fidelity_record(report: dict, gate: str = "") -> dict:
    """The trend-worthy core of a FidelityReport (``to_dict`` form)."""
    verdicts = {
        rec.get("check_id"): rec.get("verdict")
        for rec in report.get("records", ())
        if rec.get("check_id")
    }
    counts: Dict[str, int] = {}
    for verdict in verdicts.values():
        counts[verdict] = counts.get(verdict, 0) + 1
    return {
        "kind": "fidelity",
        "scale": report.get("scale"),
        "seed": report.get("seed"),
        "gate": gate,
        "metrics": {
            "n_pass": counts.get("pass", 0),
            "n_warn": counts.get("warn", 0),
            "n_fail": counts.get("fail", 0),
            "n_skip": counts.get("skip", 0),
        },
        "verdicts": verdicts,
    }


def record_metrics(records: List[dict], metric: str) -> List[float]:
    """One metric's series across history records (missing → skipped)."""
    series: List[float] = []
    for record in records:
        value = record.get("metrics", {}).get(metric)
        if isinstance(value, (int, float)):
            series.append(float(value))
    return series


# ----------------------------------------------------------------------
# Rolling-window drift
# ----------------------------------------------------------------------

def _median(values: List[float]) -> float:
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) / 2.0


def drift_warnings(records: List[dict], window: int = DRIFT_WINDOW,
                   tolerance: float = DRIFT_TOLERANCE) -> List[str]:
    """Latest record vs the rolling median of the preceding window.

    Advisory by design: timing noise across CI hosts makes a hard gate
    on trends flaky, so these print next to the absolute ``--check``
    gates without affecting the exit code. Verdict metrics (fidelity
    counts) warn on any worsening; timing metrics warn beyond
    ``tolerance`` relative drift in the bad direction (slower, or a
    smaller speedup).
    """
    if len(records) < 2:
        return []
    latest = records[-1]
    previous = records[-(window + 1):-1]
    warnings: List[str] = []
    for metric, value in sorted(latest.get("metrics", {}).items()):
        if not isinstance(value, (int, float)):
            continue
        series = record_metrics(previous, metric)
        if not series:
            continue
        base = _median(series)
        if metric in ("n_fail", "n_warn"):
            if value > max(record_metrics(previous, metric)):
                warnings.append(
                    f"drift: {metric} rose to {value:g} "
                    f"(window max {max(series):g} over {len(series)} runs)"
                )
            continue
        if metric in ("n_pass",):
            if value < min(series):
                warnings.append(
                    f"drift: {metric} fell to {value:g} "
                    f"(window min {min(series):g} over {len(series)} runs)"
                )
            continue
        if base <= 0:
            continue
        # Bigger-is-better metrics invert the bad direction.
        bigger_is_better = "speedup" in metric
        ratio = value / base
        if bigger_is_better:
            if ratio < 1.0 - tolerance:
                warnings.append(
                    f"drift: {metric} fell {100 * (1 - ratio):.0f}% below "
                    f"its {len(series)}-run median "
                    f"({base:g} -> {value:g})"
                )
        elif ratio > 1.0 + tolerance:
            warnings.append(
                f"drift: {metric} rose {100 * (ratio - 1):.0f}% above "
                f"its {len(series)}-run median ({base:g} -> {value:g})"
            )
    return warnings


# ----------------------------------------------------------------------
# Sparklines
# ----------------------------------------------------------------------

def sparkline(values: List[float], width: int = 24) -> str:
    """A unicode bar sparkline of the series (last ``width`` points)."""
    if not values:
        return ""
    tail = values[-width:]
    lo, hi = min(tail), max(tail)
    if hi <= lo:
        return _SPARK_BARS[0] * len(tail)
    span = hi - lo
    return "".join(
        _SPARK_BARS[min(len(_SPARK_BARS) - 1,
                        int((value - lo) / span * len(_SPARK_BARS)))]
        for value in tail
    )


def sparkline_svg(values: List[float], width: int = 120,
                  height: int = 24) -> str:
    """An inline SVG polyline sparkline (self-contained, no scripts)."""
    if len(values) < 2:
        return ""
    lo, hi = min(values), max(values)
    span = (hi - lo) or 1.0
    pad = 2.0
    step = (width - 2 * pad) / (len(values) - 1)
    points = " ".join(
        f"{pad + i * step:.1f},"
        f"{height - pad - (value - lo) / span * (height - 2 * pad):.1f}"
        for i, value in enumerate(values)
    )
    return (
        f'<svg class="spark" width="{width}" height="{height}" '
        f'viewBox="0 0 {width} {height}" '
        f'xmlns="http://www.w3.org/2000/svg">'
        f'<polyline fill="none" stroke="#2a7ae2" stroke-width="1.5" '
        f'points="{points}"/></svg>'
    )
