"""Flight recorder: a crash-durable, append-only ``events.jsonl`` stream.

While spans and manifests (PR 4) only materialize on clean exit, the
:class:`FlightRecorder` narrates a run *while it happens*: one JSON object
per line, written through an ``O_APPEND`` file descriptor with a single
``os.write`` per event. POSIX appends of one small write are atomic, so
pool workers and the parent can share the file without interleaving, and a
``kill -9`` at any instant leaves every fully-written event parseable —
at worst the final line is truncated, and :func:`parse_events` tolerates
exactly that.

Like the tracer in :mod:`repro.obs.span`, recording is **zero-overhead by
default**: the process-global recorder is a shared :class:`NoopRecorder`
whose ``emit()`` is a constant ``return None``; a real recorder is
installed by the CLI for ``--events``/``--progress`` (or inherited by pool
workers through ``$REPRO_EVENTS``). Nothing here touches RNG state —
recorded and unrecorded runs are bit-identical
(``tests/test_telemetry_identity.py``).

:func:`reconstruct` rebuilds a :class:`Postmortem` (phase, completed vs
in-flight shards, losses, last resource sample) from a possibly-truncated
event log; the ``repro events`` subcommand fronts it.

Stdlib-only so every layer (engine, collection, traces, CLI) can import it
without cycles.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Union

__all__ = [
    "EVENT_KINDS",
    "EVENTS_ENV_VAR",
    "FlightRecorder",
    "NoopRecorder",
    "NOOP_RECORDER",
    "Postmortem",
    "format_event",
    "get_recorder",
    "set_recorder",
    "use_recorder",
    "parse_events",
    "load_events",
    "reconstruct",
    "summarize_events",
]

#: Setting this to a path enables flight recording process-wide; pool
#: workers inherit the environment and append to the same file (safe:
#: every event is one O_APPEND write).
EVENTS_ENV_VAR = "REPRO_EVENTS"

#: Every event kind the recorder may emit, with a one-line meaning. The
#: schema lint test cross-checks each ``emit("<kind>", ...)`` call in the
#: source tree against this table, and each kind against the event-schema
#: table in ARCHITECTURE.md — an undocumented kind fails CI.
EVENT_KINDS: Dict[str, str] = {
    "run_start": "command began: argv, config hash, seed, scale, pid",
    "run_end": "command finished: status (ok/failed/interrupted), exit code",
    "phase_start": "a named pipeline phase opened (plan/execute/merge/...)",
    "phase_end": "a named pipeline phase closed, with wall seconds",
    "shard_queued": "a shard was scheduled for execution (year, shard, unit)",
    "shard_completed": "a shard's output was accepted by the parent",
    "shard_retry": "a shard attempt failed and will be retried or settled",
    "shard_stolen": "an idle worker slot stole a queued shard",
    "shard_dropped": "a shard exhausted retries and was dropped (partial)",
    "checkpoint_saved": "a completed shard was spilled to the checkpoint dir",
    "checkpoint_loaded": "a shard checkpoint was read on resume "
                         "(corrupt=True when it failed validation)",
    "spill": "a shard's columns were spilled to a store partition",
    "store_finalized": "a campaign store finalized its manifest on disk",
    "fault_loss": "the collection pipeline lost data for a device",
    "chaos": "the chaos harness injected a fault (crash/hang/kill)",
    "progress": "campaign progress: shards and devices done, rate, ETA",
    "resource_sample": "periodic RSS/CPU/shm/disk sample from the sampler",
    "verdict": "a gate verdict (bench --check / fidelity --check)",
}


class FlightRecorder:
    """Append-only JSONL event stream with flush-per-event durability.

    ``path=None`` runs listener-only (``--progress`` without ``--events``).
    ``listener`` — if given — sees every event dict after it is written;
    listener errors are swallowed so display code can never kill a run.
    """

    enabled = True

    def __init__(self, path: Optional[Union[str, os.PathLike]] = None,
                 listener: Optional[Callable[[dict], None]] = None) -> None:
        self.path: Optional[Path] = Path(path) if path is not None else None
        self.listener = listener
        self._fd: Optional[int] = None
        if self.path is not None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._fd = os.open(
                str(self.path),
                os.O_WRONLY | os.O_CREAT | os.O_APPEND,
                0o644,
            )

    def emit(self, kind: str, **fields: object) -> None:
        """Record one event; a single O_APPEND write makes it durable."""
        if kind not in EVENT_KINDS:
            raise ValueError(f"unknown event kind {kind!r}; add it to "
                             f"repro.obs.recorder.EVENT_KINDS")
        event = {"ts": round(time.time(), 3), "pid": os.getpid(),
                 "kind": kind}
        event.update(fields)
        if self._fd is not None:
            line = json.dumps(event, separators=(",", ":"),
                              default=str) + "\n"
            os.write(self._fd, line.encode("utf-8"))
        if self.listener is not None:
            try:
                self.listener(event)
            except Exception:
                pass

    def phase(self, name: str, **fields: object) -> "_PhaseHandle":
        """``with`` context emitting phase_start/phase_end around a block."""
        return _PhaseHandle(self, name, fields)

    def close(self) -> None:
        if self._fd is not None:
            os.close(self._fd)
            self._fd = None

    def __del__(self) -> None:  # pragma: no cover - GC safety net
        try:
            self.close()
        except OSError:
            pass


class _PhaseHandle:
    """Times one phase; emits paired phase_start/phase_end events."""

    __slots__ = ("_recorder", "_name", "_fields", "_t0")

    def __init__(self, recorder: FlightRecorder, name: str,
                 fields: dict) -> None:
        self._recorder = recorder
        self._name = name
        self._fields = fields

    def __enter__(self) -> "_PhaseHandle":
        self._t0 = time.perf_counter()
        self._recorder.emit("phase_start", phase=self._name, **self._fields)
        return self

    def __exit__(self, exc_type, *exc_info) -> None:
        wall_s = round(time.perf_counter() - self._t0, 6)
        self._recorder.emit(
            "phase_end", phase=self._name, wall_s=wall_s,
            ok=exc_type is None, **self._fields,
        )


class _NoopPhase:
    """Reusable do-nothing phase context manager."""

    __slots__ = ()

    def __enter__(self) -> "_NoopPhase":
        return self

    def __exit__(self, *exc_info) -> None:
        return None


_NOOP_PHASE = _NoopPhase()


class NoopRecorder:
    """The default recorder: every operation is a near-free no-op."""

    enabled = False
    path = None

    def emit(self, kind: str, **fields: object) -> None:
        return None

    def phase(self, name: str, **fields: object) -> _NoopPhase:
        return _NOOP_PHASE

    def close(self) -> None:
        return None


#: The shared no-op recorder; also the reset target for :func:`set_recorder`.
NOOP_RECORDER = NoopRecorder()

#: ``None`` means "not yet resolved": the first :func:`get_recorder` call
#: checks ``$REPRO_EVENTS`` so spawned pool workers (fresh interpreters)
#: pick up the parent's event file without any plumbing.
_RECORDER: Optional[Union[FlightRecorder, NoopRecorder]] = None


def get_recorder() -> Union[FlightRecorder, NoopRecorder]:
    """The process-global recorder (a shared no-op unless one was set)."""
    global _RECORDER
    if _RECORDER is None:
        path = os.environ.get(EVENTS_ENV_VAR, "").strip()
        _RECORDER = FlightRecorder(path) if path else NOOP_RECORDER
    return _RECORDER


def set_recorder(
    recorder: Optional[Union[FlightRecorder, NoopRecorder]]
) -> Optional[Union[FlightRecorder, NoopRecorder]]:
    """Install ``recorder`` globally; ``None`` resets to unresolved.

    Resetting to unresolved (rather than straight to the no-op) means the
    next :func:`get_recorder` re-checks ``$REPRO_EVENTS`` — the behaviour
    a freshly spawned worker sees.
    """
    global _RECORDER
    previous = _RECORDER
    _RECORDER = recorder
    return previous


class use_recorder:
    """Temporarily install a recorder (tests and workers use this)."""

    def __init__(self,
                 recorder: Union[FlightRecorder, NoopRecorder]) -> None:
        self._recorder = recorder
        self._previous: Optional[Union[FlightRecorder, NoopRecorder]] = None

    def __enter__(self) -> Union[FlightRecorder, NoopRecorder]:
        self._previous = set_recorder(self._recorder)
        return self._recorder

    def __exit__(self, *exc_info) -> None:
        set_recorder(self._previous)


# ----------------------------------------------------------------------
# Parsing — tolerant of the truncation kill -9 can leave behind
# ----------------------------------------------------------------------

def parse_events(data: bytes) -> List[dict]:
    """Decode an event-log byte string; any byte prefix of a valid log
    yields the events whose lines were fully written.

    The final line is allowed to be truncated (no trailing newline, or
    cut mid-JSON) — that is exactly the state a ``kill -9`` leaves. A
    malformed *interior* line (torn write from a dying process) is
    skipped rather than fatal: a postmortem must never refuse to read
    the black box.
    """
    events: List[dict] = []
    lines = data.split(b"\n")
    complete, last = lines[:-1], lines[-1]
    for raw in complete:
        if not raw.strip():
            continue
        try:
            event = json.loads(raw)
        except ValueError:
            continue
        if isinstance(event, dict) and "kind" in event:
            events.append(event)
    if last.strip():
        # No trailing newline: the final line is complete only if it
        # happens to parse (the write made it out before the kill).
        try:
            event = json.loads(last)
        except ValueError:
            event = None
        if isinstance(event, dict) and "kind" in event:
            events.append(event)
    return events


def load_events(path: Union[str, os.PathLike]) -> List[dict]:
    """Read and parse an ``events.jsonl`` file (truncation-tolerant)."""
    return parse_events(Path(path).read_bytes())


def format_event(event: dict) -> str:
    """One human line per event, for ``repro events --tail``."""
    ts = event.get("ts")
    stamp = (time.strftime("%H:%M:%S", time.localtime(ts))
             if isinstance(ts, (int, float)) else "--:--:--")
    kind = event.get("kind", "?")
    rest = " ".join(
        f"{key}={value}" for key, value in event.items()
        if key not in ("ts", "pid", "kind")
    )
    return f"{stamp} [{event.get('pid', '?')}] {kind:16s} {rest}".rstrip()


# ----------------------------------------------------------------------
# Postmortem reconstruction
# ----------------------------------------------------------------------

@dataclass
class Postmortem:
    """What a (possibly truncated) event log says happened to a run."""

    run: Optional[dict] = None          # the run_start event, if recorded
    status: str = "interrupted"         # ok | failed | interrupted
    exit_code: Optional[int] = None
    n_events: int = 0
    duration_s: float = 0.0
    open_phases: List[str] = field(default_factory=list)
    last_phase: Optional[str] = None    # innermost phase still open
    phases_seen: List[str] = field(default_factory=list)
    queued: List[List[int]] = field(default_factory=list)    # [year, shard]
    completed: List[List[int]] = field(default_factory=list)
    outstanding: List[List[int]] = field(default_factory=list)
    retries: int = 0
    failures_by_kind: Dict[str, int] = field(default_factory=dict)
    steals: int = 0
    dropped: List[List[int]] = field(default_factory=list)
    checkpoints_saved: int = 0
    checkpoints_loaded: int = 0
    checkpoints_corrupt: int = 0
    spills: int = 0
    losses: Dict[str, int] = field(default_factory=dict)
    chaos: List[dict] = field(default_factory=list)
    last_progress: Optional[dict] = None
    last_sample: Optional[dict] = None
    verdicts: List[dict] = field(default_factory=list)

    def to_dict(self) -> dict:
        from dataclasses import asdict

        return asdict(self)

    def render(self) -> str:
        lines = [f"postmortem: {self.status} "
                 f"({self.n_events} events, {self.duration_s:.1f}s)"]
        if self.run is not None:
            command = self.run.get("command", "?")
            lines.append(
                f"  run: {command} seed={self.run.get('seed')} "
                f"scale={self.run.get('scale')} pid={self.run.get('pid')}"
            )
        if self.exit_code is not None:
            lines.append(f"  exit code: {self.exit_code}")
        if self.last_phase is not None:
            lines.append(f"  died in phase: {self.last_phase} "
                         f"(open: {' > '.join(self.open_phases)})")
        elif self.phases_seen:
            lines.append(f"  phases: {' -> '.join(self.phases_seen)}")
        lines.append(
            f"  shards: {len(self.completed)}/{len(self.queued)} completed"
            + (f", {len(self.outstanding)} in flight" if self.outstanding
               else "")
        )
        if self.outstanding:
            shown = ", ".join(
                f"{year}:{shard}" for year, shard in self.outstanding[:8]
            )
            more = ("..." if len(self.outstanding) > 8 else "")
            lines.append(f"  in flight: {shown}{more}")
        if self.retries:
            kinds = ", ".join(f"{kind}={count}" for kind, count
                              in sorted(self.failures_by_kind.items()))
            lines.append(f"  retries: {self.retries} ({kinds})")
        if self.steals:
            lines.append(f"  steals: {self.steals}")
        if self.dropped:
            lines.append(f"  dropped shards: {self.dropped}")
        if (self.checkpoints_saved or self.checkpoints_loaded
                or self.checkpoints_corrupt):
            line = (f"  checkpoints: {self.checkpoints_saved} saved, "
                    f"{self.checkpoints_loaded} loaded")
            if self.checkpoints_corrupt:
                line += f", {self.checkpoints_corrupt} corrupt"
            lines.append(line)
        if self.spills:
            lines.append(f"  store spills: {self.spills}")
        if self.losses:
            total = sum(self.losses.values())
            lines.append(f"  collection losses: {total} device(s) affected")
        for event in self.chaos:
            lines.append(f"  chaos: {event.get('fault', '?')} "
                         f"(shard={event.get('shard', '?')})")
        if self.last_progress is not None:
            progress = self.last_progress
            lines.append(
                f"  last progress: {progress.get('done')}/"
                f"{progress.get('total')} shards, "
                f"{progress.get('devices_done')}/"
                f"{progress.get('devices_total')} devices, "
                f"{progress.get('rate', 0.0):.1f} dev/s"
            )
        if self.last_sample is not None:
            sample = self.last_sample
            rss_mib = float(sample.get("rss_bytes", 0)) / 2**20
            child_mib = float(sample.get("children_rss_bytes", 0)) / 2**20
            shm_mib = float(sample.get("shm_bytes", 0)) / 2**20
            lines.append(
                f"  last sample: rss={rss_mib:.1f}MiB "
                f"children={child_mib:.1f}MiB shm={shm_mib:.1f}MiB "
                f"cpu={sample.get('cpu_s', 0.0):.1f}s"
            )
        for verdict in self.verdicts:
            lines.append(f"  verdict: {verdict.get('source', '?')} "
                         f"{verdict.get('gate', '?')}")
        return "\n".join(lines)


def reconstruct(events: List[dict]) -> Postmortem:
    """Rebuild run state from a (possibly truncated) event sequence."""
    post = Postmortem(n_events=len(events))
    stamps = [e["ts"] for e in events
              if isinstance(e.get("ts"), (int, float))]
    if stamps:
        post.duration_s = max(stamps) - min(stamps)
    queued: List[tuple] = []
    completed: List[tuple] = []
    phase_stack: List[str] = []
    for event in events:
        kind = event.get("kind")
        if kind == "run_start":
            post.run = event
        elif kind == "run_end":
            post.status = str(event.get("status", "ok"))
            code = event.get("exit_code")
            post.exit_code = int(code) if code is not None else None
        elif kind == "phase_start":
            name = str(event.get("phase", "?"))
            phase_stack.append(name)
            if name not in post.phases_seen:
                post.phases_seen.append(name)
        elif kind == "phase_end":
            name = str(event.get("phase", "?"))
            if name in phase_stack:
                del phase_stack[phase_stack.index(name):]
        elif kind == "shard_queued":
            queued.append((event.get("year"), event.get("shard")))
        elif kind == "shard_completed":
            completed.append((event.get("year"), event.get("shard")))
        elif kind == "shard_retry":
            post.retries += 1
            fail_kind = str(event.get("failure", "?"))
            post.failures_by_kind[fail_kind] = (
                post.failures_by_kind.get(fail_kind, 0) + 1
            )
        elif kind == "shard_stolen":
            post.steals += 1
        elif kind == "shard_dropped":
            post.dropped.append(
                [event.get("year"), event.get("shard")]
            )
        elif kind == "checkpoint_saved":
            post.checkpoints_saved += 1
        elif kind == "checkpoint_loaded":
            if event.get("corrupt"):
                post.checkpoints_corrupt += 1
            else:
                post.checkpoints_loaded += 1
        elif kind == "spill":
            post.spills += 1
        elif kind == "fault_loss":
            device = str(event.get("device", "?"))
            post.losses[device] = post.losses.get(device, 0) + 1
        elif kind == "chaos":
            post.chaos.append(event)
        elif kind == "progress":
            post.last_progress = event
        elif kind == "resource_sample":
            post.last_sample = event
        elif kind == "verdict":
            post.verdicts.append(event)
    post.open_phases = phase_stack
    post.last_phase = phase_stack[-1] if phase_stack else None
    post.queued = [list(pair) for pair in queued]
    post.completed = [list(pair) for pair in completed]
    done = set(completed)
    post.outstanding = [list(pair) for pair in queued if pair not in done]
    return post


def summarize_events(events: List[dict]) -> str:
    """Counts per kind plus run identity — ``repro events --summary``."""
    counts: Dict[str, int] = {}
    for event in events:
        kind = str(event.get("kind", "?"))
        counts[kind] = counts.get(kind, 0) + 1
    post = reconstruct(events)
    lines = [f"{len(events)} events over {post.duration_s:.1f}s "
             f"({post.status})"]
    if post.run is not None:
        lines.append(f"  command: {post.run.get('command', '?')} "
                     f"seed={post.run.get('seed')} "
                     f"scale={post.run.get('scale')}")
    for kind in EVENT_KINDS:
        if kind in counts:
            lines.append(f"  {kind:18s} {counts[kind]}")
    for kind, count in sorted(counts.items()):
        if kind not in EVENT_KINDS:  # forward-compat: foreign kinds
            lines.append(f"  {kind:18s} {count} (undocumented)")
    return "\n".join(lines)
