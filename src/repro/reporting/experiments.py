"""Experiment registry: one entry per paper table/figure.

Each experiment takes an :class:`~repro.analysis.context.AnalysisContext`
(a study plus memoized derived artifacts) and returns a renderable
:class:`~repro.reporting.tables.Table` or
:class:`~repro.reporting.figures.Figure`. The benchmark harness calls these
through :func:`run_experiment`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List

import numpy as np

import repro.analysis as A
from repro.analysis.app_breakdown import CONTEXTS
from repro.analysis.context import AnalysisContext
from repro.errors import AnalysisError
from repro.population.survey import LOCATIONS, REASONS, tabulate_survey
from repro.reporting.context import national_traffic_growth
from repro.reporting.figures import Figure
from repro.reporting.tables import Table

#: Deprecated alias, kept for one release. The memoized per-study cache that
#: used to live here is now the first-class
#: :class:`repro.analysis.context.AnalysisContext`.
AnalysisCache = AnalysisContext


@dataclass(frozen=True)
class Experiment:
    """One reproducible paper artifact."""

    experiment_id: str
    paper_item: str
    title: str
    fn: Callable[[AnalysisContext], object]

    def run(self, cache: AnalysisContext) -> object:
        return self.fn(cache)


EXPERIMENTS: Dict[str, Experiment] = {}


def _register(experiment_id: str, paper_item: str, title: str):
    def decorator(fn):
        EXPERIMENTS[experiment_id] = Experiment(experiment_id, paper_item, title, fn)
        return fn
    return decorator


def list_experiments() -> List[Experiment]:
    return [EXPERIMENTS[k] for k in sorted(EXPERIMENTS)]


def run_experiment(experiment_id: str, cache: AnalysisContext) -> object:
    try:
        experiment = EXPERIMENTS[experiment_id]
    except KeyError:
        raise AnalysisError(
            f"unknown experiment {experiment_id!r}; "
            f"known: {sorted(EXPERIMENTS)}"
        ) from None
    return experiment.run(cache)


# ----------------------------------------------------------------------
# Tables
# ----------------------------------------------------------------------

@_register("table1", "Table 1", "Overview of datasets")
def table1(cache: AnalysisContext) -> Table:
    table = Table("Table 1: Overview of datasets",
                  ["year", "duration", "#And", "#iOS", "#total", "%LTE"])
    for year in cache.years:
        row = A.campaign_overview(cache.raw(year))
        table.add_row(
            row.year, f"{row.start}..{row.end}", row.n_android, row.n_ios,
            row.n_total, f"{100 * row.lte_share:.0f}%",
        )
    return table


@_register("table2", "Table 2", "User survey: user demographics")
def table2(cache: AnalysisContext) -> Table:
    tabs = {
        year: tabulate_survey(cache.study.surveys[year], year)
        for year in cache.years
    }
    occupations = sorted({occ for t in tabs.values() for occ in t.occupation_pct})
    table = Table("Table 2: User demographics (%)",
                  ["occupation"] + [str(y) for y in cache.years])
    for occ in occupations:
        table.add_row(occ, *[tabs[y].occupation_pct.get(occ, 0.0) for y in cache.years])
    return table


@_register("table3", "Table 3", "Daily download volume per user and AGR")
def table3(cache: AnalysisContext) -> Table:
    datasets = [cache.campaign(y) for y in cache.years]
    growth = A.volume_growth_table(datasets)
    table = Table(
        "Table 3: Daily download traffic volume per user (MB/day) and AGR",
        ["stat", "kind"] + [str(y) for y in cache.years] + ["AGR"],
    )
    for stat, values, agr in (
        ("median", growth.median, growth.agr_median),
        ("mean", growth.mean, growth.agr_mean),
    ):
        for kind in ("all", "cell", "wifi"):
            table.add_row(
                stat, kind, *[values[kind][y] for y in cache.years],
                f"{100 * agr[kind]:.0f}%",
            )
    return table


@_register("table4", "Table 4", "Number of estimated APs")
def table4(cache: AnalysisContext) -> Table:
    table = Table("Table 4: Number of estimated APs",
                  ["type"] + [str(y) for y in cache.years])
    counts = {y: cache.classification(y).counts() for y in cache.years}
    for kind in ("home", "public", "other", "office", "total"):
        label = f"({kind})" if kind == "office" else kind
        table.add_row(label, *[counts[y][kind] for y in cache.years])
    return table


@_register("table5", "Table 5", "Breakdown of associated APs (HPO)")
def table5(cache: AnalysisContext) -> Table:
    table = Table(
        "Table 5: Breakdown of number of associated APs (home/public/other)",
        ["HPO"] + [str(y) for y in cache.years],
    )
    breakdowns = {
        y: A.hpo_breakdown(cache.campaign(y)) for y in cache.years
    }
    combos = sorted(
        {c for b in breakdowns.values() for c in b.combos},
        key=lambda c: (sum(c), c),
    )
    for combo in combos:
        if sum(combo) == 0:
            continue
        label = "".join(str(n) for n in combo)
        table.add_row(label, *[f"{breakdowns[y].pct(*combo):.1f}%" for y in cache.years])
    table.add_row("4+", *[f"{breakdowns[y].four_plus_pct:.1f}%" for y in cache.years])
    return table


def _app_table(cache: AnalysisContext, direction: str, title: str) -> Table:
    table = Table(title, ["year", "context", "rank", "category", "%"])
    for year in cache.years:
        breakdown = A.app_breakdown(cache.campaign(year))
        for context in CONTEXTS:
            for rank, (name, pct) in enumerate(
                breakdown.top(context, n=5, direction=direction), start=1
            ):
                table.add_row(
                    year, breakdown.context_label(context), rank, name,
                    f"{pct:.1f}",
                )
    return table


@_register("table6", "Table 6", "Top app categories by RX volume")
def table6(cache: AnalysisContext) -> Table:
    return _app_table(cache, "rx", "Table 6: Top application categories (RX)")


@_register("table7", "Table 7", "Top app categories by TX volume")
def table7(cache: AnalysisContext) -> Table:
    return _app_table(cache, "tx", "Table 7: Top application categories (TX)")


@_register("table8", "Table 8", "Survey: associated WiFi APs by location")
def table8(cache: AnalysisContext) -> Table:
    table = Table(
        "Table 8: Survey - associated WiFi APs during measurements (%)",
        ["location", "answer"] + [str(y) for y in cache.years],
    )
    tabs = {
        year: tabulate_survey(cache.study.surveys[year], year)
        for year in cache.years
    }
    for loc in LOCATIONS:
        for answer in ("yes", "no", "NA"):
            table.add_row(
                loc, answer,
                *[tabs[y].connected_pct[loc][answer] for y in cache.years],
            )
    return table


@_register("table9", "Table 9", "Survey: reasons for unavailability of WiFi")
def table9(cache: AnalysisContext) -> Table:
    table = Table(
        "Table 9: Survey - reasons for unavailability of WiFi APs (%)",
        ["reason", "location"] + [str(y) for y in cache.years],
    )
    tabs = {
        year: tabulate_survey(cache.study.surveys[year], year)
        for year in cache.years
    }
    for reason in REASONS:
        for loc in LOCATIONS:
            table.add_row(
                reason, loc,
                *[tabs[y].reason_pct[loc][reason] for y in cache.years],
            )
    return table


# ----------------------------------------------------------------------
# Figures
# ----------------------------------------------------------------------

@_register("fig01", "Figure 1", "National RBB vs cellular traffic growth")
def fig01(cache: AnalysisContext) -> Figure:
    figure = Figure("Figure 1", "Growth in residential broadband and cellular traffic")
    national = national_traffic_growth()
    years = sorted(national)
    figure.add("RBB user download", years, [national[y].rbb_download_gbps for y in years])
    figure.add(
        "Cellular user download (3G+LTE)", years,
        [national[y].cellular_download_gbps for y in years],
    )
    return figure


@_register("fig02", "Figure 2", "Aggregated traffic volume")
def fig02(cache: AnalysisContext) -> Figure:
    year = max(cache.years)
    agg = A.aggregate_traffic(cache.campaign(year))
    figure = Figure("Figure 2", f"Aggregated traffic volume, {year} (Mbps, Sat->Sat)")
    hours = np.arange(168)
    for key in ("cellular_tx", "cellular_rx", "wifi_tx", "wifi_rx"):
        figure.add(key, hours, agg.folded_week(key))
    return figure


@_register("fig03", "Figure 3", "CDFs of daily total traffic volume per user")
def fig03(cache: AnalysisContext) -> Figure:
    figure = Figure("Figure 3", "CDFs of daily total traffic per user (MB)")
    for year in cache.years:
        dist = A.daily_volume_distributions(cache.campaign(year))
        figure.add(f"RX {year}", dist.total_rx.values, dist.total_rx.probs)
        figure.add(f"TX {year}", dist.total_tx.values, dist.total_tx.probs)
    return figure


@_register("fig04", "Figure 4", "CDFs of daily traffic volume per type")
def fig04(cache: AnalysisContext) -> Figure:
    year = max(cache.years)
    dist = A.daily_volume_distributions(cache.campaign(year))
    figure = Figure("Figure 4", f"CDFs of daily traffic per type, {year} (MB)")
    for key in ("wifi_rx", "wifi_tx", "cell_rx", "cell_tx"):
        cdf = dist.cdf_by_type[key]
        figure.add(key, cdf.values, cdf.probs)
    return figure


@_register("fig05", "Figure 5", "Daily traffic volume per user (heat map)")
def fig05(cache: AnalysisContext) -> Table:
    table = Table(
        "Figure 5: cellular vs WiFi user types (fractions of device-days)",
        ["year", "cellular-intensive", "wifi-intensive", "mixed", "mixed above diag"],
    )
    for year in cache.years:
        hm = A.wifi_cell_heatmap(cache.campaign(year))
        table.add_row(
            year, hm.cellular_intensive_fraction, hm.wifi_intensive_fraction,
            hm.mixed_fraction, hm.mixed_above_diagonal_fraction,
        )
    return table


@_register("fig06", "Figure 6", "WiFi-traffic ratio and WiFi-user ratio")
def fig06(cache: AnalysisContext) -> Figure:
    figure = Figure("Figure 6", "WiFi-traffic ratio (a) and WiFi-user ratio (b)")
    hours = np.arange(168)
    for year in (min(cache.years), max(cache.years)):
        ratios = A.wifi_ratios(cache.campaign(year))
        figure.add(f"traffic-ratio {year}", hours, ratios.traffic("all").folded_week())
        figure.add(f"user-ratio {year}", hours, ratios.users("all").folded_week())
    return figure


def _subset_ratio_figure(cache: AnalysisContext, which: str, caption: str) -> Figure:
    figure = Figure(caption.split(":")[0], caption)
    hours = np.arange(168)
    for year in (min(cache.years), max(cache.years)):
        ratios = A.wifi_ratios(cache.campaign(year))
        for subset in ("heavy", "light"):
            series = (
                ratios.traffic(subset) if which == "traffic" else ratios.users(subset)
            )
            figure.add(f"{subset} {year}", hours, series.folded_week())
    return figure


@_register("fig07", "Figure 7", "WiFi-traffic ratio of heavy/light users")
def fig07(cache: AnalysisContext) -> Figure:
    return _subset_ratio_figure(
        cache, "traffic", "Figure 7: WiFi-traffic ratio, heavy vs light"
    )


@_register("fig08", "Figure 8", "WiFi-user ratio of heavy/light users")
def fig08(cache: AnalysisContext) -> Figure:
    return _subset_ratio_figure(
        cache, "users", "Figure 8: WiFi-user ratio, heavy vs light"
    )


@_register("fig09", "Figure 9", "Android WiFi interface states and iOS")
def fig09(cache: AnalysisContext) -> Figure:
    figure = Figure(
        "Figure 9", "Ratio of users: Android states (a)(b) and iOS (c)"
    )
    hours = np.arange(168)
    for year in (min(cache.years), max(cache.years)):
        ratios = A.interface_state_ratios(cache.campaign(year))
        for key in ("wifi_user", "wifi_off", "wifi_available"):
            figure.add(f"android {key} {year}", hours, ratios.folded(key))
        figure.add(f"ios wifi_user {year}", hours, ratios.folded("ios"))
    return figure


@_register("fig10", "Figure 10", "Associated AP density per 5km cell")
def fig10(cache: AnalysisContext) -> Table:
    table = Table(
        "Figure 10: associated unique APs per 5km cell",
        ["year", "class", "cells>=1", "cells>=10", "cells with >=100", "max cell"],
    )
    for year in (min(cache.years), max(cache.years)):
        maps = A.association_density_maps(cache.campaign(year))
        for cls in ("home", "public"):
            grid = maps.grid(cls)
            table.add_row(
                year, cls, grid.n_cells_with_at_least(1),
                grid.n_cells_with_at_least(10), grid.n_cells_with_at_least(100),
                grid.max_count(),
            )
    return table


@_register("fig11", "Figure 11", "WiFi traffic volume by location")
def fig11(cache: AnalysisContext) -> Figure:
    figure = Figure("Figure 11", "WiFi traffic by location class (Mbps, Sat->Sat)")
    hours = np.arange(168)
    for year in (min(cache.years), max(cache.years)):
        lt = A.location_traffic(cache.campaign(year))
        for cls in ("home", "public", "office"):
            figure.add(f"{cls} rx {year}", hours, lt.folded_week(f"{cls}_rx"))
    return figure


@_register("fig12", "Figure 12", "Number of associated APs per day")
def fig12(cache: AnalysisContext) -> Table:
    table = Table(
        "Figure 12: associated APs per device-day (%)",
        ["year", "subset", "1", "2", "3", "4+"],
    )
    for year in cache.years:
        result = A.aps_per_day(cache.campaign(year))
        for subset in ("all", "heavy", "light"):
            table.add_row(
                year, subset,
                *[result.pct(subset, n) for n in (1, 2, 3, 4)],
            )
    return table


@_register("fig13", "Figure 13", "CCDFs of WiFi association duration")
def fig13(cache: AnalysisContext) -> Figure:
    figure = Figure("Figure 13", "CCDF of consecutive association time (hours)")
    for year in (min(cache.years), max(cache.years)):
        durations = A.association_durations(cache.campaign(year))
        for cls in ("home", "office", "public"):
            if cls not in durations.ccdf_by_class:
                continue
            dist = durations.ccdf_by_class[cls]
            figure.add(f"{cls} {year}", dist.values, dist.probs)
    return figure


@_register("fig14", "Figure 14", "Fraction of associated unique 5GHz APs")
def fig14(cache: AnalysisContext) -> Table:
    table = Table(
        "Figure 14: fraction of associated unique 5GHz APs",
        ["class"] + [str(y) for y in cache.years],
    )
    fractions = {
        y: A.band_fractions(cache.campaign(y)) for y in cache.years
    }
    for cls in ("home", "office", "public"):
        table.add_row(cls, *[fractions[y].fraction(cls) for y in cache.years])
    return table


@_register("fig15", "Figure 15", "PDFs of WiFi RSSI for associated APs")
def fig15(cache: AnalysisContext) -> Figure:
    year = max(cache.years)
    dist = A.rssi_distributions(cache.campaign(year))
    figure = Figure("Figure 15", f"PDFs of max RSSI per associated AP, {year}")
    for cls in ("home", "public"):
        centers, density = dist.pdf(cls)
        figure.add(cls, centers, density)
    return figure


@_register("fig16", "Figure 16", "Associated 2.4GHz channels")
def fig16(cache: AnalysisContext) -> Figure:
    figure = Figure("Figure 16", "PDF of associated 2.4GHz channels")
    channels = np.arange(1, 14)
    for year in (min(cache.years), max(cache.years)):
        dist = A.channel_distributions(cache.campaign(year))
        for cls in ("home", "public"):
            if cls in dist.pdf:
                figure.add(f"{cls} {year}", channels, dist.pdf[cls])
    return figure


@_register("fig17", "Figure 17", "CCDFs of detected public WiFi networks")
def fig17(cache: AnalysisContext) -> Figure:
    year = max(cache.years)
    availability = A.public_availability(cache.campaign(year))
    figure = Figure(
        "Figure 17",
        f"CCDF of detected public networks per available device/10min, {year}",
    )
    for key in ("24_all", "24_strong", "5_all", "5_strong"):
        dist = availability.ccdf(key)
        figure.add(key, dist.values, dist.probs)
    return figure


@_register("fig18", "Figure 18", "Software update timing")
def fig18(cache: AnalysisContext) -> Figure:
    year = max(cache.years)
    timing = A.update_timing(cache.raw(year), cache.classification(year))
    figure = Figure("Figure 18", f"iOS update timing, {year}")
    days, frac = timing.cdf_curve()
    figure.add("CDF (all)", days, frac)
    if timing.update_days_no_home.size:
        no_home = np.sort(timing.update_days_no_home)
        figure.add(
            "CDF (no home)", no_home,
            np.arange(1, len(no_home) + 1) / max(len(no_home), 1),
        )
    return figure


@_register("fig19", "Figure 19", "Effect of soft bandwidth cap")
def fig19(cache: AnalysisContext) -> Figure:
    figure = Figure(
        "Figure 19", "CDF of daily cellular RX / previous-3-day mean"
    )
    for year in cache.years:
        if year == min(cache.years):
            continue  # the paper shows 2014 and 2015
        effect = A.cap_effect(cache.campaign(year))
        figure.add(
            f"potentially capped {year}",
            effect.capped_ratio_cdf.values, effect.capped_ratio_cdf.probs,
        )
        figure.add(
            f"others {year}",
            effect.others_ratio_cdf.values, effect.others_ratio_cdf.probs,
        )
    return figure


# ----------------------------------------------------------------------
# Section estimates
# ----------------------------------------------------------------------

@_register("sec35", "Section 3.5", "Offloadable cellular traffic")
def sec35(cache: AnalysisContext) -> Table:
    table = Table(
        "Section 3.5: public-WiFi offload potential for WiFi-available users",
        ["year", "devices w/ opportunity", "offloadable fraction"],
    )
    for year in cache.years:
        estimate = A.offload_estimate(cache.campaign(year))
        table.add_row(
            year, estimate.devices_with_opportunity, estimate.offloadable_fraction
        )
    return table


@_register("sec41", "Section 4.1", "Impact of home WiFi offload")
def sec41(cache: AnalysisContext) -> Table:
    table = Table(
        "Section 4.1: offload impact estimates",
        ["year", "median cell MB", "median wifi MB", "wifi:cell",
         "offload share of broadband", "share of home broadband"],
    )
    for year in cache.years:
        impact = A.offload_impact(cache.campaign(year))
        table.add_row(
            year, impact.median_cell_mb, impact.median_wifi_mb,
            impact.wifi_to_cell_ratio, impact.offload_share_of_broadband,
            impact.smartphone_share_of_home_broadband,
        )
    return table
