"""Dependency-free SVG line charts for reproduced figures.

The benchmark harness renders each :class:`~repro.reporting.figures.Figure`
to a standalone SVG so the reproduced plots can be eyeballed against the
paper without a plotting stack. Supports linear and log axes, multiple
series with an automatic palette, axis ticks, and a legend.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from repro.errors import ReproError
from repro.reporting.figures import Figure

#: Color-blind-safe categorical palette (Okabe-Ito).
PALETTE = (
    "#0072B2", "#D55E00", "#009E73", "#CC79A7",
    "#E69F00", "#56B4E9", "#F0E442", "#000000",
)


@dataclass(frozen=True)
class Axis:
    """One axis' scale configuration."""

    label: str = ""
    log: bool = False

    def transform(self, values: np.ndarray) -> np.ndarray:
        if not self.log:
            return values
        safe = np.where(values > 0, values, np.nan)
        return np.log10(safe)


@dataclass
class SvgChart:
    """A simple multi-series line chart."""

    title: str
    x_axis: Axis = Axis()
    y_axis: Axis = Axis()
    width: int = 720
    height: int = 420
    margin: int = 56

    def __post_init__(self) -> None:
        if self.width <= 2 * self.margin or self.height <= 2 * self.margin:
            raise ReproError("chart too small for its margins")
        self._series: List[Tuple[str, np.ndarray, np.ndarray]] = []

    def add_series(self, label: str, x: Sequence[float], y: Sequence[float]) -> None:
        xa = np.asarray(x, dtype=float)
        ya = np.asarray(y, dtype=float)
        if xa.shape != ya.shape:
            raise ReproError(f"series {label!r}: x/y shape mismatch")
        self._series.append((label, xa, ya))

    # ------------------------------------------------------------------

    def render(self) -> str:
        """The chart as an SVG document string."""
        if not self._series:
            raise ReproError("chart has no series")
        tx, ty, (x_lo, x_hi), (y_lo, y_hi) = self._projected()
        parts = [self._header(), self._title_elem(), self._frame()]
        parts.extend(self._ticks(x_lo, x_hi, y_lo, y_hi))
        for i, (label, _, _) in enumerate(self._series):
            parts.append(self._polyline(tx[i], ty[i], PALETTE[i % len(PALETTE)]))
        parts.extend(self._legend())
        parts.append("</svg>")
        return "\n".join(parts)

    def save(self, path) -> None:
        from pathlib import Path

        Path(path).write_text(self.render())

    # ------------------------------------------------------------------

    def _projected(self):
        xs, ys = [], []
        for _, x, y in self._series:
            xs.append(self.x_axis.transform(x))
            ys.append(self.y_axis.transform(y))
        all_x = np.concatenate(xs)
        all_y = np.concatenate(ys)
        finite_x = all_x[np.isfinite(all_x)]
        finite_y = all_y[np.isfinite(all_y)]
        if finite_x.size == 0 or finite_y.size == 0:
            raise ReproError("no finite data to plot")
        x_lo, x_hi = float(finite_x.min()), float(finite_x.max())
        y_lo, y_hi = float(finite_y.min()), float(finite_y.max())
        if x_hi == x_lo:
            x_hi = x_lo + 1.0
        if y_hi == y_lo:
            y_hi = y_lo + 1.0
        pad_y = 0.05 * (y_hi - y_lo)
        y_lo, y_hi = y_lo - pad_y, y_hi + pad_y

        inner_w = self.width - 2 * self.margin
        inner_h = self.height - 2 * self.margin

        def px(v):
            return self.margin + (v - x_lo) / (x_hi - x_lo) * inner_w

        def py(v):
            return self.height - self.margin - (v - y_lo) / (y_hi - y_lo) * inner_h

        tx = [px(x) for x in xs]
        ty = [py(y) for y in ys]
        return tx, ty, (x_lo, x_hi), (y_lo, y_hi)

    def _header(self) -> str:
        return (
            f'<svg xmlns="http://www.w3.org/2000/svg" width="{self.width}" '
            f'height="{self.height}" viewBox="0 0 {self.width} {self.height}" '
            f'font-family="sans-serif" font-size="12">'
            f'<rect width="{self.width}" height="{self.height}" fill="white"/>'
        )

    def _title_elem(self) -> str:
        return (
            f'<text x="{self.width / 2:.0f}" y="20" text-anchor="middle" '
            f'font-size="14" font-weight="bold">{_escape(self.title)}</text>'
        )

    def _frame(self) -> str:
        m = self.margin
        return (
            f'<rect x="{m}" y="{m}" width="{self.width - 2 * m}" '
            f'height="{self.height - 2 * m}" fill="none" stroke="#444"/>'
        )

    def _ticks(self, x_lo, x_hi, y_lo, y_hi) -> List[str]:
        parts = []
        m = self.margin
        inner_w = self.width - 2 * m
        inner_h = self.height - 2 * m
        for i in range(5):
            frac = i / 4
            x_val = x_lo + frac * (x_hi - x_lo)
            px = m + frac * inner_w
            parts.append(
                f'<text x="{px:.0f}" y="{self.height - m + 16}" '
                f'text-anchor="middle" fill="#333">'
                f'{_tick_label(x_val, self.x_axis.log)}</text>'
            )
            y_val = y_lo + frac * (y_hi - y_lo)
            py = self.height - m - frac * inner_h
            parts.append(
                f'<text x="{m - 6}" y="{py + 4:.0f}" text-anchor="end" '
                f'fill="#333">{_tick_label(y_val, self.y_axis.log)}</text>'
            )
        if self.x_axis.label:
            parts.append(
                f'<text x="{self.width / 2:.0f}" y="{self.height - 10}" '
                f'text-anchor="middle" fill="#111">'
                f'{_escape(self.x_axis.label)}</text>'
            )
        if self.y_axis.label:
            parts.append(
                f'<text x="16" y="{self.height / 2:.0f}" text-anchor="middle" '
                f'transform="rotate(-90 16 {self.height / 2:.0f})" fill="#111">'
                f'{_escape(self.y_axis.label)}</text>'
            )
        return parts

    def _polyline(self, px: np.ndarray, py: np.ndarray, color: str) -> str:
        finite = np.isfinite(px) & np.isfinite(py)
        points = " ".join(
            f"{x:.1f},{y:.1f}" for x, y in zip(px[finite], py[finite])
        )
        return (
            f'<polyline points="{points}" fill="none" stroke="{color}" '
            f'stroke-width="1.6"/>'
        )

    def _legend(self) -> List[str]:
        parts = []
        x0 = self.margin + 10
        y0 = self.margin + 14
        for i, (label, _, _) in enumerate(self._series):
            color = PALETTE[i % len(PALETTE)]
            y = y0 + 16 * i
            parts.append(
                f'<line x1="{x0}" y1="{y - 4}" x2="{x0 + 18}" y2="{y - 4}" '
                f'stroke="{color}" stroke-width="2"/>'
            )
            parts.append(
                f'<text x="{x0 + 24}" y="{y}" fill="#111">{_escape(label)}</text>'
            )
        return parts


def _tick_label(value: float, is_log: bool) -> str:
    if is_log:
        return f"1e{value:.1f}" if value != int(value) else f"1e{int(value)}"
    if abs(value) >= 1000:
        return f"{value:.0f}"
    if abs(value) >= 10:
        return f"{value:.1f}"
    return f"{value:.2f}"


def _escape(text: str) -> str:
    return (
        text.replace("&", "&amp;").replace("<", "&lt;").replace(">", "&gt;")
    )


def span_timeline_svg(
    exported: dict,
    title: str = "run timeline",
    width: int = 920,
    row_height: int = 22,
    min_label_px: int = 46,
) -> str:
    """Render an exported span tree as a flame-graph-style timeline.

    ``exported`` is :meth:`~repro.obs.span.Tracer.export` output (nested
    name/wall_s/children dicts). Spans record durations rather than start
    offsets, so children are packed left-to-right within their parent —
    the same synthetic layout the Chrome-trace export uses. Bar width is
    proportional to wall seconds; depth maps to the row. Each bar carries
    a ``<title>`` tooltip with exact wall/CPU seconds.
    """
    if not exported:
        raise ReproError("no span tree to render (telemetry was off?)")
    total = float(exported.get("wall_s", 0.0))
    if total <= 0.0:
        raise ReproError("span tree has no recorded wall time")

    # (depth, start_s, wall_s, node) rows via the packed preorder walk.
    rows: List[Tuple[int, float, float, dict]] = []

    def walk(node: dict, start: float, depth: int) -> None:
        wall = float(node.get("wall_s", 0.0))
        rows.append((depth, start, wall, node))
        child_start = start
        for child in node.get("children", ()):
            walk(child, child_start, depth + 1)
            child_start += float(child.get("wall_s", 0.0))

    walk(exported, 0.0, 0)
    n_levels = max(depth for depth, *_ in rows) + 1

    margin_x, top, bottom = 12, 34, 26
    height = top + n_levels * (row_height + 4) + bottom
    inner_w = width - 2 * margin_x
    parts = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
        f'height="{height}" viewBox="0 0 {width} {height}" '
        f'font-family="sans-serif" font-size="11">',
        f'<rect width="{width}" height="{height}" fill="white"/>',
        f'<text x="{margin_x}" y="18" font-size="13" font-weight="bold">'
        f'{_escape(title)} — {total:.2f}s wall</text>',
    ]
    color_of: dict = {}
    for depth, start, wall, node in rows:
        x = margin_x + start / total * inner_w
        w = max(wall / total * inner_w, 1.0)
        y = top + depth * (row_height + 4)
        name = str(node.get("name", "?"))
        if name not in color_of:
            color_of[name] = PALETTE[len(color_of) % len(PALETTE)]
        tooltip = (
            f"{name}: {wall:.4f}s wall, "
            f"{float(node.get('cpu_s', 0.0)):.4f}s cpu"
        )
        counters = node.get("counters")
        if counters:
            tooltip += "; " + ", ".join(
                f"{k}={v}" for k, v in sorted(counters.items())
            )
        parts.append(
            f'<g><rect x="{x:.1f}" y="{y}" width="{w:.1f}" '
            f'height="{row_height}" rx="2" fill="{color_of[name]}" '
            f'fill-opacity="0.82" stroke="white" stroke-width="0.5">'
            f'<title>{_escape(tooltip)}</title></rect>'
        )
        if w >= min_label_px:
            parts.append(
                f'<text x="{x + 4:.1f}" y="{y + row_height - 7}" '
                f'fill="white">{_escape(name)}</text>'
            )
        parts.append("</g>")
    axis_y = top + n_levels * (row_height + 4) + 14
    for frac in (0.0, 0.25, 0.5, 0.75, 1.0):
        px = margin_x + frac * inner_w
        parts.append(
            f'<text x="{px:.0f}" y="{axis_y}" text-anchor="middle" '
            f'fill="#333">{frac * total:.2f}s</text>'
        )
    parts.append("</svg>")
    return "\n".join(parts)


def figure_to_svg(
    figure: Figure,
    log_x: bool = False,
    log_y: bool = False,
    x_label: str = "",
    y_label: str = "",
    width: int = 720,
    height: int = 420,
) -> str:
    """Render a :class:`Figure`'s series as one SVG chart."""
    chart = SvgChart(
        title=f"{figure.figure_id}: {figure.caption}",
        x_axis=Axis(x_label, log=log_x),
        y_axis=Axis(y_label, log=log_y),
        width=width,
        height=height,
    )
    for series in figure.series:
        chart.add_series(series.label, series.x, series.y)
    return chart.render()
