"""One-shot study summary: every headline number, paper vs measured.

``study_summary`` runs the headline analyses across all three campaigns and
returns a list of :class:`Finding` rows (claim, paper value, measured value,
direction check). ``render_markdown`` turns them into a report — this is
what ``python -m repro report`` emits.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import repro.analysis as A
from repro.errors import AnalysisError
from repro.analysis.context import AnalysisContext


@dataclass(frozen=True)
class Finding:
    """One headline claim with its paper and measured values."""

    section: str
    claim: str
    paper: str
    measured: str
    holds: Optional[bool]

    @property
    def status(self) -> str:
        if self.holds is None:
            return "info"
        return "ok" if self.holds else "CHECK"


def study_summary(cache: AnalysisContext) -> List[Finding]:
    """Compute every headline finding for a finished study."""
    if len(cache.years) < 2:
        raise AnalysisError("summary needs at least two campaign years")
    first, last = min(cache.years), max(cache.years)
    findings: List[Finding] = []

    def add(section, claim, paper, measured, holds=None):
        findings.append(Finding(section, claim, paper, measured, holds))

    agg = {y: A.aggregate_traffic(cache.campaign(y)) for y in cache.years}
    add(
        "§3.1", "WiFi share of total volume grows", "59% -> 67%",
        f"{agg[first].wifi_share:.0%} -> {agg[last].wifi_share:.0%}",
        agg[last].wifi_share > agg[first].wifi_share,
    )
    add(
        "§3.1", "LTE share of cellular grows", "32% -> 80%",
        f"{agg[first].lte_share_of_cellular:.0%} -> "
        f"{agg[last].lte_share_of_cellular:.0%}",
        agg[last].lte_share_of_cellular > agg[first].lte_share_of_cellular,
    )
    wk_cell = A.weekend_weekday_ratio(cache.campaign(last), "cell")
    wk_wifi = A.weekend_weekday_ratio(cache.campaign(last), "wifi")
    add(
        "§3.1", "Weekends: cellular down, WiFi up",
        "opposite weekend directions",
        f"cell x{wk_cell:.2f}, wifi x{wk_wifi:.2f}",
        wk_wifi > wk_cell,
    )

    growth = A.volume_growth_table([cache.campaign(y) for y in cache.years])
    add(
        "§3.2", "Median WiFi overtakes median cellular",
        "9.2<19.5 (2013) -> 50.7>35.6 (2015)",
        f"{growth.median['wifi'][first]:.1f}"
        f"{'<' if growth.median['wifi'][first] < growth.median['cell'][first] else '>'}"
        f"{growth.median['cell'][first]:.1f} -> "
        f"{growth.median['wifi'][last]:.1f}"
        f"{'>' if growth.median['wifi'][last] > growth.median['cell'][last] else '<'}"
        f"{growth.median['cell'][last]:.1f} MB",
        growth.median["wifi"][first] < growth.median["cell"][first]
        and growth.median["wifi"][last] > growth.median["cell"][last],
    )
    add(
        "§3.2", "WiFi has the highest AGR",
        "134%/yr median WiFi vs 35% cellular",
        f"{growth.agr_median['wifi']:.0%} vs {growth.agr_median['cell']:.0%}",
        growth.agr_median["wifi"] > growth.agr_median["cell"],
    )

    heat = {y: A.wifi_cell_heatmap(cache.campaign(y)) for y in (first, last)}
    add(
        "§3.3.1", "Cellular-intensive user-days shrink", "35% -> 22%",
        f"{heat[first].cellular_intensive_fraction:.0%} -> "
        f"{heat[last].cellular_intensive_fraction:.0%}",
        heat[last].cellular_intensive_fraction
        < heat[first].cellular_intensive_fraction,
    )
    add(
        "§3.3.1", "WiFi-intensive users stay a small minority", "~8%",
        f"{heat[first].wifi_intensive_fraction:.0%} / "
        f"{heat[last].wifi_intensive_fraction:.0%}",
        heat[last].wifi_intensive_fraction < 0.2,
    )

    ratios = {y: A.wifi_ratios(cache.campaign(y)) for y in (first, last)}
    add(
        "§3.3.2", "Mean WiFi-traffic ratio grows", "0.58 -> 0.71",
        f"{ratios[first].traffic('all').mean:.2f} -> "
        f"{ratios[last].traffic('all').mean:.2f}",
        ratios[last].traffic("all").mean > ratios[first].traffic("all").mean,
    )
    add(
        "§3.3.3", "Heavy hitters offload more than light users",
        "0.89 vs 0.52 (2015)",
        f"{ratios[last].traffic('heavy').mean:.2f} vs "
        f"{ratios[last].traffic('light').mean:.2f}",
        ratios[last].traffic("heavy").mean > ratios[last].traffic("light").mean,
    )

    states = {y: A.interface_state_ratios(cache.campaign(y)) for y in (first, last)}
    add(
        "§3.3.4", "Android WiFi-off share declines", "50% -> 40% (daytime)",
        f"{states[first].android_means['wifi_off']:.0%} -> "
        f"{states[last].android_means['wifi_off']:.0%} (mean)",
        states[last].android_means["wifi_off"]
        < states[first].android_means["wifi_off"],
    )
    add(
        "§3.3.4", "iOS connects more than Android", "+30%",
        f"+{A.ios_android_gap(states[last]):.0%}",
        A.ios_android_gap(states[last]) > 0,
    )

    counts = {y: cache.classification(y).counts() for y in (first, last)}
    add(
        "§3.4.1", "Detected public APs roughly double", "5041 -> 10481",
        f"{counts[first]['public']} -> {counts[last]['public']}",
        counts[last]["public"] > 1.5 * counts[first]["public"],
    )
    home_frac = {
        y: cache.classification(y).fraction_devices_with_home_ap(
            cache.clean(y).n_devices
        )
        for y in (first, last)
    }
    add(
        "§3.4.1", "Users with inferred home AP grow", "66% -> 79%",
        f"{home_frac[first]:.0%} -> {home_frac[last]:.0%}",
        home_frac[last] > home_frac[first],
    )
    location = A.location_traffic(cache.campaign(last))
    add(
        "§3.4.1", "Home carries almost all WiFi volume", "95%",
        f"{location.volume_share['home']:.0%}",
        location.volume_share["home"] > 0.8,
    )

    bands = A.band_fractions(cache.campaign(last))
    add(
        "§3.4.3", "Public 5GHz rollout outpaces home", ">50% vs <20% (2015)",
        f"{bands.fraction('public'):.0%} vs {bands.fraction('home'):.0%}",
        bands.fraction("public") > bands.fraction("home"),
    )
    rssi = A.rssi_distributions(cache.campaign(last))
    add(
        "§3.4.4", "Public RSSI weaker, ~12% below -70 dBm",
        "-60 dBm mean, 12% weak",
        f"{rssi.mean['public']:.0f} dBm, {rssi.weak_fraction['public']:.0%} weak",
        rssi.mean["public"] < rssi.mean["home"],
    )

    estimate = A.offload_estimate(cache.campaign(last))
    add(
        "§3.5", "Offloadable cellular share for available users", "15-20%",
        f"{estimate.offloadable_fraction:.0%}",
        0.05 < estimate.offloadable_fraction < 0.35,
    )

    try:
        timing = A.update_timing(cache.raw(last), cache.classification(last))
        add(
            "§3.7", "iOS update adoption in the window", "58%",
            f"{timing.updated_fraction:.0%}",
            0.3 < timing.updated_fraction < 0.9,
        )
        add(
            "§3.7", "No-home users update less", "14% vs 58%",
            f"{timing.updated_fraction_no_home:.0%} vs "
            f"{timing.updated_fraction:.0%}",
            timing.updated_fraction_no_home < timing.updated_fraction,
        )
    except AnalysisError:
        add("§3.7", "iOS update event", "565MB flash crowd", "not in study", None)

    if first != last and (last - 1) in cache.years:
        try:
            gap_prev = A.cap_effect(cache.campaign(last - 1)).median_gap()
            gap_last = A.cap_effect(cache.campaign(last)).median_gap()
            add(
                "§3.8", "Cap gap narrows after the 2015 relaxation",
                "0.29 -> 0.15",
                f"{gap_prev:.2f} -> {gap_last:.2f}",
                gap_last < gap_prev,
            )
        except AnalysisError:
            add("§3.8", "Soft-cap effect", "gap 0.29 -> 0.15",
                "too few capped device-days at this scale", None)

    impact = A.offload_impact(cache.campaign(last))
    add(
        "§4.1", "One smartphone's share of home broadband", "12%",
        f"{impact.smartphone_share_of_home_broadband:.0%}",
        0.03 < impact.smartphone_share_of_home_broadband < 0.35,
    )
    return findings


def render_markdown(findings: List[Finding], title: str = "Study summary") -> str:
    """Render findings as a markdown table."""
    lines = [
        f"# {title}", "",
        "| Section | Claim | Paper | Measured | Shape |",
        "|---|---|---|---|---|",
    ]
    for f in findings:
        mark = {"ok": "✓", "CHECK": "✗", "info": "–"}[f.status]
        lines.append(
            f"| {f.section} | {f.claim} | {f.paper} | {f.measured} | {mark} |"
        )
    holds = sum(1 for f in findings if f.holds)
    total = sum(1 for f in findings if f.holds is not None)
    lines.extend(["", f"Shape checks passing: {holds}/{total}."])
    return "\n".join(lines)
