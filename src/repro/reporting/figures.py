"""Figure-series containers and a small ASCII renderer.

Benchmarks regenerate every paper figure as one or more named
:class:`FigureSeries`; ``render_ascii_series`` draws a quick terminal
sparkline so the shape is visible without a plotting stack.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence

import numpy as np

from repro.errors import ReproError

_BLOCKS = " ▁▂▃▄▅▆▇█"


@dataclass(frozen=True)
class FigureSeries:
    """One named (x, y) series of a figure."""

    label: str
    x: np.ndarray
    y: np.ndarray

    def __post_init__(self) -> None:
        if len(self.x) != len(self.y):
            raise ReproError(f"series {self.label!r}: x and y lengths differ")


@dataclass
class Figure:
    """A reproduced figure: id, caption, and its series."""

    figure_id: str
    caption: str
    series: List[FigureSeries] = field(default_factory=list)

    def add(self, label: str, x: Sequence[float], y: Sequence[float]) -> None:
        self.series.append(
            FigureSeries(label, np.asarray(x, float), np.asarray(y, float))
        )

    def get(self, label: str) -> FigureSeries:
        for s in self.series:
            if s.label == label:
                return s
        raise ReproError(
            f"figure {self.figure_id} has no series {label!r}; "
            f"have {[s.label for s in self.series]}"
        )

    def render(self, width: int = 72) -> str:
        lines = [f"{self.figure_id}: {self.caption}"]
        for s in self.series:
            lines.append(f"  {s.label}")
            lines.append("  " + render_ascii_series(s.y, width=width))
        return "\n".join(lines)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.render()


def render_ascii_series(values: Sequence[float], width: int = 72) -> str:
    """Downsample ``values`` to ``width`` columns of unicode blocks."""
    arr = np.asarray(values, dtype=float)
    arr = arr[np.isfinite(arr)]
    if arr.size == 0:
        return "(no data)"
    if arr.size > width:
        edges = np.linspace(0, arr.size, width + 1).astype(int)
        arr = np.array([arr[a:b].mean() for a, b in zip(edges[:-1], edges[1:]) if b > a])
    lo, hi = float(arr.min()), float(arr.max())
    if hi <= lo:
        return _BLOCKS[1] * len(arr)
    scaled = (arr - lo) / (hi - lo) * (len(_BLOCKS) - 2) + 1
    return "".join(_BLOCKS[int(round(v))] for v in scaled)
