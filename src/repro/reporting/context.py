"""External context data (Figure 1).

Figure 1 plots nationwide residential-broadband vs cellular download volume
in Japan, 2006-2015, from the Ministry of Internal Affairs and
Communications statistics the paper cites [34]. These are public aggregate
data points printed in the paper's own figure, carried here so the figure
can be regenerated; they are not outputs of the panel measurement.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.errors import AnalysisError


@dataclass(frozen=True)
class NationalTraffic:
    """One year's nationwide download volumes (Gbps)."""

    year: int
    rbb_download_gbps: float
    cellular_download_gbps: float

    @property
    def cellular_share(self) -> float:
        if self.rbb_download_gbps <= 0:
            raise AnalysisError("broadband volume must be positive")
        return self.cellular_download_gbps / self.rbb_download_gbps


#: Approximate values read off Figure 1 (MIC statistics [34]): residential
#: broadband grows from ~600 Gbps (2006) to ~3.6 Tbps (2015); cellular
#: reaches ~20% of broadband by the end of 2014.
_NATIONAL: Dict[int, NationalTraffic] = {
    year: NationalTraffic(year, rbb, cell)
    for year, rbb, cell in (
        (2006, 640.0, 5.0),
        (2007, 750.0, 9.0),
        (2008, 880.0, 15.0),
        (2009, 990.0, 25.0),
        (2010, 1130.0, 45.0),
        (2011, 1330.0, 90.0),
        (2012, 1700.0, 180.0),
        (2013, 2160.0, 330.0),
        (2014, 2800.0, 560.0),
        (2015, 3600.0, 780.0),
    )
}


def national_traffic_growth() -> Dict[int, NationalTraffic]:
    """Figure 1's series: year -> national volumes."""
    return dict(_NATIONAL)


def cellular_share_of_broadband(year: int = 2014) -> float:
    """The ~20% cellular/broadband ratio §4.1 builds on."""
    try:
        return _NATIONAL[year].cellular_share
    except KeyError:
        raise AnalysisError(f"no national data for {year}") from None
