"""Reporting: text tables, figure series, external context, experiments."""

from repro.reporting.tables import Table
from repro.reporting.figures import FigureSeries, Figure, render_ascii_series
from repro.reporting.svg import SvgChart, Axis, figure_to_svg
from repro.reporting.context import national_traffic_growth, NationalTraffic
from repro.reporting.collection import (
    collection_summary_table,
    completeness_cdf_table,
    render_collection_report,
)
from repro.reporting.summary import Finding, study_summary, render_markdown
from repro.reporting.experiments import (
    Experiment,
    EXPERIMENTS,
    AnalysisCache,
    AnalysisContext,
    run_experiment,
    list_experiments,
)

__all__ = [
    "Table",
    "FigureSeries",
    "Figure",
    "render_ascii_series",
    "SvgChart",
    "Axis",
    "figure_to_svg",
    "national_traffic_growth",
    "NationalTraffic",
    "collection_summary_table",
    "completeness_cdf_table",
    "render_collection_report",
    "Experiment",
    "EXPERIMENTS",
    "AnalysisCache",
    "AnalysisContext",
    "run_experiment",
    "list_experiments",
    "Finding",
    "study_summary",
    "render_markdown",
]
