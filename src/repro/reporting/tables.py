"""Plain-text table rendering for experiment output."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence

from repro.errors import ReproError


@dataclass
class Table:
    """A titled table of rows; renders aligned monospace text."""

    title: str
    columns: Sequence[str]
    rows: List[Sequence[object]] = field(default_factory=list)

    def add_row(self, *values: object) -> None:
        if len(values) != len(self.columns):
            raise ReproError(
                f"row has {len(values)} cells, table has {len(self.columns)} columns"
            )
        self.rows.append(values)

    def render(self) -> str:
        cells = [[_fmt(c) for c in self.columns]]
        for row in self.rows:
            cells.append([_fmt(v) for v in row])
        widths = [max(len(r[i]) for r in cells) for i in range(len(self.columns))]
        lines = [self.title, "-" * len(self.title)]
        header = "  ".join(c.ljust(w) for c, w in zip(cells[0], widths))
        lines.append(header)
        lines.append("  ".join("-" * w for w in widths))
        for row in cells[1:]:
            lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
        return "\n".join(lines)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.render()


def _fmt(value: object) -> str:
    if isinstance(value, float):
        if value != value:  # NaN
            return "NA"
        if abs(value) >= 100:
            return f"{value:.0f}"
        if abs(value) >= 1:
            return f"{value:.1f}"
        return f"{value:.3f}"
    return str(value)
