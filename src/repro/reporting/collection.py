"""Rendering for collection-pipeline reports (completeness accounting).

Turns a :class:`~repro.collection.faults.CollectionReport` into the same
plain-text tables the rest of the reporting layer emits: a campaign-level
summary (recruited vs valid devices, batch fates) and the per-device
completeness CDF at fixed quantiles — the simulated counterpart of Table 1's
recruited/valid gap.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.collection.faults import CollectionReport
from repro.reporting.tables import Table

#: Completeness threshold below which a device is not a "valid" user.
VALID_COMPLETENESS = 0.5

_CDF_QUANTILES = (0.05, 0.10, 0.25, 0.50, 0.75, 0.90, 0.95)


def collection_summary_table(
    report: CollectionReport,
    title: str = "Collection pipeline summary",
    min_completeness: float = VALID_COMPLETENESS,
) -> Table:
    """Campaign-level collection accounting as a two-column table."""
    totals = report.totals()
    table = Table(title, ("metric", "value"))
    table.add_row("devices recruited", report.recruited)
    table.add_row(
        f"devices valid (completeness >= {min_completeness:.0%})",
        report.n_valid(min_completeness),
    )
    table.add_row("batches generated", totals["ticks"])
    table.add_row("batches delivered", totals["delivered"])
    table.add_row("batches lost to churn", totals["churned"])
    table.add_row("batches lost to cache eviction", totals["dropped"])
    table.add_row("batches stranded in device caches", totals["cached"])
    table.add_row("duplicate deliveries dropped", report.duplicates_dropped)
    completeness = report.completeness()
    if len(completeness):
        table.add_row("mean completeness", float(completeness.mean()))
        table.add_row("median completeness", float(np.median(completeness)))
    return table


def completeness_cdf_table(
    report: CollectionReport,
    quantiles: Sequence[float] = _CDF_QUANTILES,
    title: str = "Per-device completeness CDF",
) -> Table:
    """The campaign completeness distribution at fixed quantiles."""
    table = Table(title, ("device quantile", "completeness"))
    completeness = report.completeness()
    for q in quantiles:
        value = float(np.quantile(completeness, q)) if len(completeness) else float("nan")
        table.add_row(f"p{int(round(q * 100)):02d}", value)
    return table


def render_collection_report(
    report: CollectionReport,
    min_completeness: float = VALID_COMPLETENESS,
) -> str:
    """Both collection tables as one text block."""
    return (
        collection_summary_table(report, min_completeness=min_completeness).render()
        + "\n\n"
        + completeness_cdf_table(report).render()
    )


def execution_losses_table(
    losses: Sequence,
    title: str = "Execution completeness (--partial-results)",
) -> Table:
    """Per-year shard/device loss accounting as a table.

    ``losses`` is a sequence of
    :class:`~repro.engine.resilience.ExecutionLosses`-shaped objects (one
    per campaign year that dropped shards) — the execution-layer analogue
    of the collection completeness summary above.
    """
    table = Table(
        title,
        ("year", "shards dropped", "devices dropped", "device completeness"),
    )
    for loss in losses:
        table.add_row(
            loss.year,
            f"{len(loss.dropped_shards)}/{loss.n_shards}",
            f"{loss.dropped_devices}/{loss.n_devices}",
            f"{loss.device_completeness:.1%}",
        )
    return table
