"""Uploader with failure caching (§2).

"The software collects statistics every 10 minutes and uploads this data to
a central server. If the upload fails the software caches the data and sends
it later." The uploader batches records, attempts delivery through a
transport, and keeps failed batches in an on-device cache for retry.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Protocol, Sequence

import numpy as np

from repro.collection.agent import ColumnarRecords, Records
from repro.errors import ConfigurationError, UploadError


@dataclass(frozen=True)
class UploadBatch:
    """One upload unit: a device's records for one tick (or retried ticks)."""

    device_id: int
    sequence: int
    records: "Records | ColumnarRecords"


class Transport(Protocol):
    """Anything that can deliver a batch to the server."""

    def deliver(self, batch: UploadBatch) -> None:
        """Deliver or raise :class:`UploadError`."""


class FlakyTransport:
    """A transport with a configurable failure rate (cell coverage holes).

    ``failure_rate == 1.0`` is a valid permanent outage — batches stay in
    the device cache and :func:`drain_all` reports the stall instead of
    spinning forever.
    """

    def __init__(
        self,
        deliver_fn: Callable[[UploadBatch], None],
        failure_rate: float = 0.0,
        rng: "np.random.Generator | None" = None,
    ) -> None:
        if not 0.0 <= failure_rate <= 1.0:
            raise ConfigurationError(
                f"failure rate must be in [0, 1]: {failure_rate}"
            )
        self._deliver = deliver_fn
        self.failure_rate = failure_rate
        self.rng = rng or np.random.default_rng(0)
        self.attempts = 0
        self.failures = 0

    def deliver(self, batch: UploadBatch) -> None:
        self.attempts += 1
        if self.failure_rate and (
            self.failure_rate >= 1.0 or self.rng.random() < self.failure_rate
        ):
            self.failures += 1
            raise UploadError(
                f"transport failure for device {batch.device_id} seq {batch.sequence}"
            )
        self._deliver(batch)


@dataclass
class Uploader:
    """Batches records and retries failed uploads from a local cache."""

    device_id: int
    transport: Transport
    max_cache_batches: int = 4096
    _sequence: int = 0
    _cache: List[UploadBatch] = field(default_factory=list)
    delivered: int = 0
    #: Batches lost to cache-overflow eviction (bounded on-device storage).
    dropped_batches: int = 0

    def upload(self, records: "Records | ColumnarRecords") -> bool:
        """Try to upload ``records`` (after draining the cache).

        Returns True when everything (cache included) went out; False when
        something is still cached for later. A full cache evicts its oldest
        batches — data loss is recorded in :attr:`dropped_batches`, not
        fatal, matching real devices with bounded storage.
        """
        batch = UploadBatch(self.device_id, self._sequence, records)
        self._sequence += 1
        self._cache.append(batch)
        while len(self._cache) > self.max_cache_batches:
            self._cache.pop(0)
            self.dropped_batches += 1
        return self.flush()

    def flush(self) -> bool:
        """Attempt to deliver every cached batch, oldest first."""
        remaining: List[UploadBatch] = []
        for i, batch in enumerate(self._cache):
            if remaining:
                # Preserve ordering: once one batch fails, keep the rest.
                remaining.append(batch)
                continue
            try:
                self.transport.deliver(batch)
                self.delivered += 1
            except UploadError:
                remaining.append(batch)
        self._cache = remaining
        return not self._cache

    @property
    def cached_batches(self) -> int:
        return len(self._cache)


def drain_all(uploaders: Sequence[Uploader], max_rounds: int = 100) -> None:
    """Keep flushing until every uploader's cache is empty (end of campaign)."""
    for _ in range(max_rounds):
        if all(uploader.flush() for uploader in uploaders):
            return
    raise UploadError("caches did not drain; transport permanently down?")
