"""Fault model for the collection pipeline.

Real crowd-sourced campaigns lose data: uploads fail in cellular coverage
holes, the backend has outages, participants stop reporting mid-campaign
(the recruited-vs-valid gap of Table 1), retransmissions deliver the same
batch twice, and on-device caches are bounded. A :class:`FaultPlan`
describes all of that declaratively; :class:`FaultedTransport` applies the
time- and technology-dependent parts on the device's upload path; and the
per-device accounting rolls up into a :class:`CollectionReport`.

A plan with every knob at zero (:meth:`FaultPlan.zero`) is guaranteed to be
lossless: routing a campaign through the collection pipeline with it yields
a dataset identical to the direct builder path.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.errors import ConfigurationError, UploadError
from repro.net.cellular import CellularTechnology


@dataclass(frozen=True)
class OutageWindow:
    """A sustained server/backhaul outage over ``[start_slot, end_slot)``."""

    start_slot: int
    end_slot: int

    def __post_init__(self) -> None:
        if self.start_slot < 0 or self.end_slot <= self.start_slot:
            raise ConfigurationError(
                f"outage window must satisfy 0 <= start < end: "
                f"[{self.start_slot}, {self.end_slot})"
            )

    def covers(self, t: int) -> bool:
        return self.start_slot <= t < self.end_slot


@dataclass(frozen=True)
class FaultPlan:
    """Configurable faults injected into the collection pipeline.

    All probabilities are per-event (per upload attempt, per device, per
    delivered batch). Invalid values raise :class:`ConfigurationError` — a
    configuration mistake is not an upload failure.
    """

    #: Per-attempt upload failure probability (cellular coverage holes).
    upload_failure_p: float = 0.0

    #: Extra failure probability for 3G devices — older radios see worse
    #: coverage, making loss technology-dependent.
    upload_failure_p_3g_extra: float = 0.0

    #: Sustained outage windows during which every upload attempt fails.
    outages: Tuple[OutageWindow, ...] = ()

    #: Per-device probability of dropping out mid-campaign (churn): the user
    #: uninstalls or the device dies, and reporting stops for good.
    dropout_p: float = 0.0

    #: Dropouts happen no earlier than this fraction of the campaign.
    dropout_min_frac: float = 0.1

    #: Probability a successfully delivered batch is delivered a second time
    #: (retransmission race) — exercises server-side deduplication.
    duplicate_p: float = 0.0

    #: On-device cache bound, in batches; overflow evicts oldest-first.
    max_cache_batches: int = 4096

    #: Flush rounds attempted at campaign end to empty device caches.
    final_drain_rounds: int = 8

    #: Decorrelates fault randomness from the behavioural simulation.
    seed: int = 0

    def __post_init__(self) -> None:
        for name in ("upload_failure_p", "upload_failure_p_3g_extra",
                     "dropout_p", "dropout_min_frac", "duplicate_p"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ConfigurationError(f"{name} must be in [0, 1]: {value}")
        if self.max_cache_batches < 1:
            raise ConfigurationError(
                f"max_cache_batches must be >= 1: {self.max_cache_batches}"
            )
        if self.final_drain_rounds < 0:
            raise ConfigurationError(
                f"final_drain_rounds must be >= 0: {self.final_drain_rounds}"
            )
        object.__setattr__(self, "outages", tuple(self.outages))
        for window in self.outages:
            if not isinstance(window, OutageWindow):
                raise ConfigurationError(
                    f"outages must contain OutageWindow objects: {window!r}"
                )

    @classmethod
    def zero(cls) -> "FaultPlan":
        """The lossless plan: the pipeline runs but nothing can be lost."""
        return cls()

    @property
    def is_zero(self) -> bool:
        """True when no fault of any kind can occur under this plan."""
        return (
            self.upload_failure_p == 0.0
            and self.upload_failure_p_3g_extra == 0.0
            and not self.outages
            and self.dropout_p == 0.0
            and self.duplicate_p == 0.0
        )

    def failure_p(self, technology: CellularTechnology) -> float:
        """Effective per-attempt failure probability for a device."""
        p = self.upload_failure_p
        if technology is not CellularTechnology.LTE:
            p += self.upload_failure_p_3g_extra
        return min(1.0, p)

    def sample_dropout_slot(
        self, rng: np.random.Generator, n_slots: int
    ) -> Optional[int]:
        """Draw the slot a device churns at, or None if it stays."""
        if self.dropout_p <= 0.0 or rng.random() >= self.dropout_p:
            return None
        lo = min(int(n_slots * self.dropout_min_frac), max(n_slots - 1, 0))
        return int(rng.integers(lo, n_slots))


class FaultedTransport:
    """Transport whose failures follow a :class:`FaultPlan`.

    Time-aware (set :attr:`now` to the current slot before delivering) so
    outage windows apply, and technology-aware so 3G devices fail more.
    Duplicate deliveries happen *after* a success, modelling an ack lost on
    the way back: the device retransmits a batch the server already has.
    """

    def __init__(
        self,
        deliver_fn: Callable[[object], None],
        plan: FaultPlan,
        technology: CellularTechnology,
        rng: np.random.Generator,
    ) -> None:
        self._deliver = deliver_fn
        self.plan = plan
        self.rng = rng
        self._failure_p = plan.failure_p(technology)
        self._outages = plan.outages
        self._duplicate_p = plan.duplicate_p
        self._lossless = self._failure_p == 0.0 and not self._outages
        #: Current campaign slot; the pump advances it each tick.
        self.now = 0
        self.attempts = 0
        self.failures = 0
        self.duplicates_sent = 0

    def deliver(self, batch) -> None:
        self.attempts += 1
        if not self._lossless:
            for window in self._outages:
                if window.covers(self.now):
                    self.failures += 1
                    raise UploadError(
                        f"outage at slot {self.now} for device {batch.device_id}"
                    )
            if self._failure_p and (
                self._failure_p >= 1.0 or self.rng.random() < self._failure_p
            ):
                self.failures += 1
                raise UploadError(
                    f"coverage hole for device {batch.device_id} "
                    f"seq {batch.sequence}"
                )
        self._deliver(batch)
        if self._duplicate_p and self.rng.random() < self._duplicate_p:
            self.duplicates_sent += 1
            self._deliver(batch)


@dataclass
class DeviceCollectionStats:
    """Per-device accounting of one campaign's collection.

    Conservation invariant: ``ticks == churned + uploaded`` and
    ``uploaded == delivered + dropped + cached``.
    """

    device_id: int
    #: Upload batches the agent generated (one per reporting tick).
    ticks: int
    #: Slot the device stopped reporting at, or None.
    churn_slot: Optional[int]
    #: Batches never uploaded because the device had churned.
    churned: int
    #: Batches handed to the uploader.
    uploaded: int
    #: Batches the server received exactly once.
    delivered: int
    #: Duplicate deliveries the server had to drop.
    duplicates: int
    #: Batches evicted from the bounded on-device cache (lost).
    dropped: int
    #: Batches still cached when the campaign ended (never delivered).
    cached: int

    @property
    def completeness(self) -> float:
        """Fraction of generated batches that reached the server."""
        if self.ticks == 0:
            return 1.0
        return self.delivered / self.ticks


@dataclass
class CollectionReport:
    """Campaign-level view of what the collection pipeline delivered."""

    n_slots: int
    devices: List[DeviceCollectionStats] = field(default_factory=list)
    batches_received: int = 0
    duplicates_dropped: int = 0

    @property
    def recruited(self) -> int:
        """Devices that entered the campaign (Table 1 'recruited')."""
        return len(self.devices)

    def stats(self, device_id: int) -> DeviceCollectionStats:
        for stats in self.devices:
            if stats.device_id == device_id:
                return stats
        raise KeyError(f"no collection stats for device {device_id}")

    def completeness(self) -> np.ndarray:
        """Per-device completeness fractions."""
        return np.array([s.completeness for s in self.devices])

    def completeness_cdf(self) -> Tuple[np.ndarray, np.ndarray]:
        """(sorted completeness values, cumulative device fraction)."""
        values = np.sort(self.completeness())
        if len(values) == 0:
            return values, values
        return values, np.arange(1, len(values) + 1) / len(values)

    def valid_devices(self, min_completeness: float = 0.5) -> List[int]:
        """Devices whose completeness clears the validity threshold."""
        return [
            s.device_id for s in self.devices
            if s.completeness >= min_completeness
        ]

    def n_valid(self, min_completeness: float = 0.5) -> int:
        """Table 1 'valid': devices that delivered enough to analyse."""
        return len(self.valid_devices(min_completeness))

    def totals(self) -> Dict[str, int]:
        """Campaign-level batch counters summed over devices."""
        keys = ("ticks", "churned", "uploaded", "delivered", "duplicates",
                "dropped", "cached")
        return {
            key: sum(getattr(s, key) for s in self.devices) for key in keys
        }
