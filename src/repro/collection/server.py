"""Central collection server (§2).

Receives upload batches, deduplicates retried deliveries by (device,
sequence), and assembles everything into a
:class:`~repro.traces.dataset.DatasetBuilder`. Tethering-flagged traffic is
dropped at ingest (§2 cleaning).
"""

from __future__ import annotations

from typing import Set, Tuple

from repro.collection.uploader import UploadBatch
from repro.errors import CollectionError
from repro.timeutil import TimeAxis
from repro.traces.dataset import DatasetBuilder
from repro.traces.records import ApDirectoryEntry, DeviceInfo


class CollectionServer:
    """Assembles uploaded batches into a campaign dataset."""

    def __init__(self, year: int, axis: TimeAxis) -> None:
        self.builder = DatasetBuilder(year, axis)
        self._seen: Set[Tuple[int, int]] = set()
        self.batches_received = 0
        self.duplicates_dropped = 0

    def register_device(self, info: DeviceInfo) -> None:
        """Enroll a device before it uploads."""
        self.builder.add_device(info)

    def register_ap(self, entry: ApDirectoryEntry) -> None:
        """Record an AP's observable attributes in the directory."""
        if entry.ap_id not in self.builder.ap_directory:
            self.builder.add_ap(entry)

    def receive(self, batch: UploadBatch) -> None:
        """Ingest one batch (idempotent on retries)."""
        if batch.device_id >= len(self.builder.devices):
            raise CollectionError(
                f"upload from unregistered device {batch.device_id}"
            )
        key = (batch.device_id, batch.sequence)
        if key in self._seen:
            self.duplicates_dropped += 1
            return
        self._seen.add(key)
        self.batches_received += 1
        records = batch.records
        for sample in records.traffic:
            self.builder.add_traffic(sample)  # drops tethering rows
        for obs in records.wifi:
            self.builder.add_wifi(obs)
        for geo in records.geo:
            self.builder.add_geo(geo)
        for scan in records.scans:
            self.builder.add_scan(scan)
        for app in records.apps:
            self.builder.add_app_traffic(app)
        for update in records.updates:
            self.builder.add_update(update)
        for sample in records.battery:
            self.builder.add_battery(sample)

    def build_dataset(self):
        """Freeze everything received so far into a dataset."""
        return self.builder.build()
