"""Central collection server (§2).

Receives upload batches, deduplicates retried deliveries by (device,
sequence), and assembles everything into a
:class:`~repro.traces.dataset.DatasetBuilder`. Tethering-flagged traffic is
dropped at ingest (§2 cleaning).

Two payload kinds are accepted: unit :class:`~repro.collection.agent.Records`
(row-wise, used by small tests and the original substrate) and
:class:`~repro.collection.agent.ColumnarRecords` (range views into a
device's column arrays, used by the campaign pipeline). Columnar payloads
are buffered and contiguous ranges merged, so a lossless campaign ingests
with the same bulk appends as the direct builder path.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Set, Tuple

import numpy as np

from repro.collection.agent import ColumnarRecords, Records
from repro.collection.uploader import UploadBatch
from repro.constants import SAMPLES_PER_DAY
from repro.errors import CollectionError
from repro.timeutil import TimeAxis
from repro.traces.dataset import DatasetBuilder
from repro.traces.records import ApDirectoryEntry, DeviceInfo

_TABLES = (
    "traffic", "wifi", "geo", "scans", "sightings", "apps", "updates",
    "battery",
)


class CollectionServer:
    """Assembles uploaded batches into a campaign dataset."""

    def __init__(self, year: int, axis: TimeAxis) -> None:
        self.builder = DatasetBuilder(year, axis)
        self._registered: Set[int] = set()
        self._seen: Set[Tuple[int, int]] = set()
        # Buffered columnar ranges: table -> [ [columns, lo, hi], ... ].
        self._buffers: Dict[str, List[list]] = {name: [] for name in _TABLES}
        self.batches_received = 0
        self.duplicates_dropped = 0
        self.received_by_device: Dict[int, int] = {}

    def register_device(self, info: DeviceInfo) -> None:
        """Enroll a device before it uploads."""
        self.builder.add_device(info)
        self._registered.add(info.device_id)

    def register_ap(self, entry: ApDirectoryEntry) -> None:
        """Record an AP's observable attributes in the directory."""
        if entry.ap_id not in self.builder.ap_directory:
            self.builder.add_ap(entry)

    def receive(self, batch: UploadBatch) -> None:
        """Ingest one batch (idempotent on retries)."""
        if batch.device_id not in self._registered:
            raise CollectionError(
                f"upload from unregistered device {batch.device_id}"
            )
        key = (batch.device_id, batch.sequence)
        if key in self._seen:
            self.duplicates_dropped += 1
            return
        self._seen.add(key)
        self.batches_received += 1
        self.received_by_device[batch.device_id] = (
            self.received_by_device.get(batch.device_id, 0) + 1
        )
        records = batch.records
        if isinstance(records, ColumnarRecords):
            self._buffer_columns(records)
            return
        for sample in records.traffic:
            self.builder.add_traffic(sample)  # drops tethering rows
        for obs in records.wifi:
            self.builder.add_wifi(obs)
        for geo in records.geo:
            self.builder.add_geo(geo)
        for scan in records.scans:
            self.builder.add_scan(scan)
        for sighting in records.sightings:
            self.builder.add_sighting(sighting)
        for app in records.apps:
            self.builder.add_app_traffic(app)
        for update in records.updates:
            self.builder.add_update(update)
        for sample in records.battery:
            self.builder.add_battery(sample)

    def receive_bulk(
        self,
        device_id: int,
        tables: Mapping[str, Mapping[str, np.ndarray]],
        n_slots: int,
    ) -> int:
        """Ingest one device's whole campaign output in a single call.

        Equivalent to replaying every per-slot upload through
        :meth:`receive` over a fault-free transport: same registration and
        window checks, same counters (one batch per slot holding data), and
        a bit-identical built dataset — ``build`` sorts stably by
        (device, t), so per-slot and whole-device appends interleave rows
        within one (device, slot) in the same original order.  Returns the
        number of upload batches accounted.
        """
        if device_id not in self._registered:
            raise CollectionError(
                f"upload from unregistered device {device_id}"
            )
        occupied = np.zeros(n_slots, dtype=bool)
        any_rows = False
        for name, cols in tables.items():
            n = len(next(iter(cols.values())))
            if n == 0:
                continue
            device = np.asarray(cols["device"])
            if int(device[0]) != device_id or int(device[-1]) != device_id:
                raise CollectionError(
                    f"table {name!r} holds rows for a foreign device"
                )
            if "t" in cols:
                key = np.asarray(cols["t"], dtype=np.int64)
            else:
                # Daily tables upload at the end of their day.
                key = (np.asarray(cols["day"], np.int64) + 1) * SAMPLES_PER_DAY - 1
            if key.min() < 0 or key.max() >= n_slots:
                raise CollectionError(
                    f"table {name!r} has records outside the campaign window"
                )
            any_rows = True
            occupied[key] = True
            self._buffers[name].append([cols, 0, n])
        if not any_rows:
            return 0
        ticks = int(np.count_nonzero(occupied))
        self.batches_received += ticks
        self.received_by_device[device_id] = (
            self.received_by_device.get(device_id, 0) + ticks
        )
        return ticks

    def _buffer_columns(self, records: ColumnarRecords) -> None:
        for table, (cols, lo, hi) in records.ranges.items():
            buf = self._buffers[table]
            if buf and buf[-1][0] is cols and buf[-1][2] == lo:
                # Contiguous with the previous range over the same arrays.
                buf[-1][2] = hi
            else:
                buf.append([cols, lo, hi])

    def flush_buffers(self) -> None:
        """Move buffered columnar payloads into the builder (idempotent)."""
        for table, buf in self._buffers.items():
            if not buf:
                continue
            extend = getattr(self.builder, f"extend_{table}")
            names = list(buf[0][0])
            if len(buf) == 1:
                cols, lo, hi = buf[0]
                extend(**{name: cols[name][lo:hi] for name in names})
            else:
                extend(**{
                    name: np.concatenate(
                        [cols[name][lo:hi] for cols, lo, hi in buf]
                    )
                    for name in names
                })
            buf.clear()

    def build_dataset(self):
        """Freeze everything received so far into a dataset."""
        self.flush_buffers()
        return self.builder.build()
