"""Campaign-scale collection pump: agent → uploader → transport → server.

``run_campaign`` hands each simulated device's columnar output to a
:class:`CollectionPump`, which replays it through the full collection
substrate tick by tick: the :class:`MeasurementAgent` packages per-slot
uploads, the :class:`Uploader` caches failures on-device, the
:class:`FaultedTransport` injects the configured loss, and the
:class:`CollectionServer` deduplicates and assembles the dataset. The pump
records per-device accounting and never lets an upload failure escape —
data loss is an outcome, not an exception.
"""

from __future__ import annotations

from typing import List, Mapping

import numpy as np

from repro.collection.agent import MeasurementAgent
from repro.collection.faults import (
    CollectionReport,
    DeviceCollectionStats,
    FaultedTransport,
    FaultPlan,
)
from repro.collection.server import CollectionServer
from repro.collection.uploader import Uploader
from repro.obs.recorder import get_recorder
from repro.obs.span import get_tracer
from repro.traces.records import DeviceInfo

#: Distinct stream key so fault randomness never aliases simulation draws.
_FAULT_STREAM = 104729


class CollectionPump:
    """Routes per-device records through the collection substrate."""

    def __init__(
        self,
        server: CollectionServer,
        plan: FaultPlan,
        n_slots: int,
        seed: int = 0,
        year: int = 0,
    ) -> None:
        self.server = server
        self.plan = plan
        self.n_slots = n_slots
        self._seed = (seed, year)
        self._stats: List[DeviceCollectionStats] = []

    def transmit(
        self,
        info: DeviceInfo,
        tables: Mapping[str, Mapping[str, np.ndarray]],
    ) -> DeviceCollectionStats:
        """Upload one device's campaign output through the faulty path."""
        plan = self.plan
        rng = np.random.default_rng(
            (*self._seed, info.device_id, plan.seed, _FAULT_STREAM)
        )
        agent = MeasurementAgent(info)
        transport = FaultedTransport(
            self.server.receive, plan, info.technology, rng
        )
        uploader = Uploader(
            device_id=info.device_id,
            transport=transport,
            max_cache_batches=plan.max_cache_batches,
        )
        churn_slot = plan.sample_dropout_slot(rng, self.n_slots)
        ticks = 0
        churned = 0
        for t, payload in agent.package_uploads(tables, self.n_slots):
            ticks += 1
            if churn_slot is not None and t >= churn_slot:
                # The participant stopped reporting; records die on-device.
                churned += 1
                continue
            transport.now = t
            uploader.upload(payload)
        # End of campaign: the device is back in coverage (unless an outage
        # window still covers the end) and sends what it cached — bounded
        # rounds, so a permanently dark transport stalls without raising.
        transport.now = self.n_slots
        for _ in range(plan.final_drain_rounds):
            if uploader.flush():
                break
        stats = DeviceCollectionStats(
            device_id=info.device_id,
            ticks=ticks,
            churn_slot=churn_slot,
            churned=churned,
            uploaded=ticks - churned,
            delivered=uploader.delivered,
            duplicates=transport.duplicates_sent,
            dropped=uploader.dropped_batches,
            cached=uploader.cached_batches,
        )
        self._stats.append(stats)
        tracer = get_tracer()
        if tracer.enabled:
            # One bundle of counters per device on the current span; with
            # the default no-op tracer this branch costs a single check.
            tracer.count("pump.batches_uploaded", stats.uploaded)
            tracer.count("pump.batches_delivered", stats.delivered)
            tracer.count("pump.batches_dropped", stats.dropped)
            tracer.count("pump.batches_churned", stats.churned)
            tracer.count("pump.duplicates_sent", stats.duplicates)
            tracer.count("pump.upload_failures", transport.failures)
        if stats.dropped or stats.churned:
            # Flight-record only actual losses (never the happy path — a
            # per-device event on clean runs would swamp the log).
            get_recorder().emit(
                "fault_loss", device=info.device_id,
                dropped=stats.dropped, churned=stats.churned,
                churn_slot=stats.churn_slot,
            )
        return stats

    def transmit_bulk(
        self,
        info: DeviceInfo,
        tables: Mapping[str, Mapping[str, np.ndarray]],
    ) -> DeviceCollectionStats:
        """Upload one device's campaign output, skipping per-tick replay
        when the fault plan is lossless.

        With a zero plan the per-tick pipeline is pure bookkeeping — no
        fault can fire, every batch delivers — so the batch kernel's
        columnar output goes to the server in one bulk hand-off with
        closed-form accounting. Any non-zero plan falls back to
        :meth:`transmit`, whose tick-by-tick replay the fault machinery
        needs.
        """
        if not self.plan.is_zero:
            return self.transmit(info, tables)
        ticks = self.server.receive_bulk(info.device_id, tables, self.n_slots)
        stats = DeviceCollectionStats(
            device_id=info.device_id,
            ticks=ticks,
            churn_slot=None,
            churned=0,
            uploaded=ticks,
            delivered=ticks,
            duplicates=0,
            dropped=0,
            cached=0,
        )
        self._stats.append(stats)
        tracer = get_tracer()
        if tracer.enabled:
            tracer.count("pump.batches_uploaded", stats.uploaded)
            tracer.count("pump.batches_delivered", stats.delivered)
            tracer.count("pump.batches_dropped", 0)
            tracer.count("pump.batches_churned", 0)
            tracer.count("pump.duplicates_sent", 0)
            tracer.count("pump.upload_failures", 0)
        return stats

    def report(self) -> CollectionReport:
        """Roll device accounting up into a campaign report."""
        return CollectionReport(
            n_slots=self.n_slots,
            devices=list(self._stats),
            batches_received=self.server.batches_received,
            duplicates_dropped=self.server.duplicates_dropped,
        )
