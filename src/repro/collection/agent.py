"""On-device measurement agent (§2).

The measurement software runs in the background and records, every 10
minutes, the device state as unit records: interface byte counters, the WiFi
observation, coarse geolocation, scan summaries, per-app counters, and any
OS-update event. The agent does not interpret anything — it snapshots and
hands records to the uploader.

OS differences are enforced here, mirroring the real software:

- iOS reports only the associated AP (no off/available distinction), no
  scan results, and no per-application counters.
- Geolocation is quantized to 5 km before it leaves the device (privacy).
- Tethering traffic is flagged so the pipeline can exclude it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.constants import SAMPLES_PER_DAY
from repro.errors import CollectionError
from repro.geo.coords import Coordinate, cell_index
from repro.traces.records import (
    AppTrafficRecord,
    BatterySample,
    DeviceInfo,
    DeviceOS,
    GeoSample,
    IfaceKind,
    ScanSighting,
    ScanSummary,
    TrafficSample,
    UpdateEvent,
    WifiObservation,
    WifiStateCode,
)


@dataclass(frozen=True)
class AgentSnapshot:
    """Raw device state handed to the agent each sampling tick."""

    t: int
    location: Coordinate
    wifi_state: WifiStateCode
    ap_id: int = -1
    rssi_dbm: float = 0.0
    rx_wifi: float = 0.0
    tx_wifi: float = 0.0
    rx_cell: float = 0.0
    tx_cell: float = 0.0
    tethering: bool = False
    scan: Optional[ScanSummary] = None
    update: Optional[UpdateEvent] = None
    battery: Optional[BatterySample] = None


@dataclass
class Records:
    """Unit records produced by one tick."""

    traffic: List[TrafficSample] = field(default_factory=list)
    wifi: List[WifiObservation] = field(default_factory=list)
    geo: List[GeoSample] = field(default_factory=list)
    scans: List[ScanSummary] = field(default_factory=list)
    sightings: List[ScanSighting] = field(default_factory=list)
    apps: List[AppTrafficRecord] = field(default_factory=list)
    updates: List[UpdateEvent] = field(default_factory=list)
    battery: List[BatterySample] = field(default_factory=list)

    def __len__(self) -> int:
        return (
            len(self.traffic) + len(self.wifi) + len(self.geo)
            + len(self.scans) + len(self.sightings) + len(self.apps)
            + len(self.updates) + len(self.battery)
        )


class ColumnarRecords:
    """One upload's records as row ranges into per-device column arrays.

    The simulator produces a whole device's records as column arrays; the
    agent partitions them into per-tick uploads without copying by handing
    the server ``(columns, lo, hi)`` ranges per table. Consecutive ranges
    over the same arrays merge on the server, so the zero-fault path stays
    as cheap as a direct bulk append.
    """

    __slots__ = ("ranges",)

    def __init__(
        self,
        ranges: Dict[str, Tuple[Mapping[str, np.ndarray], int, int]],
    ) -> None:
        self.ranges = ranges

    def __len__(self) -> int:
        return sum(hi - lo for _, lo, hi in self.ranges.values())


class MeasurementAgent:
    """Turns device snapshots into schema records, per the device OS."""

    def __init__(self, info: DeviceInfo) -> None:
        self.info = info
        self._last_t: Optional[int] = None

    def sample(self, snapshot: AgentSnapshot) -> Records:
        """Process one 10-minute tick."""
        if self._last_t is not None and snapshot.t <= self._last_t:
            raise CollectionError(
                f"non-monotonic sampling: {snapshot.t} after {self._last_t}"
            )
        self._last_t = snapshot.t
        records = Records()
        device_id = self.info.device_id

        if snapshot.rx_wifi or snapshot.tx_wifi:
            records.traffic.append(
                TrafficSample(
                    device_id, snapshot.t, IfaceKind.WIFI,
                    snapshot.rx_wifi, snapshot.tx_wifi,
                    tethering=snapshot.tethering,
                )
            )
        if snapshot.rx_cell or snapshot.tx_cell:
            records.traffic.append(
                TrafficSample(
                    device_id, snapshot.t,
                    IfaceKind.from_technology(self.info.technology),
                    snapshot.rx_cell, snapshot.tx_cell,
                    tethering=snapshot.tethering,
                )
            )

        records.wifi.extend(self._wifi_observation(snapshot))

        col, row = cell_index(snapshot.location)
        records.geo.append(GeoSample(device_id, snapshot.t, col, row))

        if snapshot.scan is not None and self.info.os is DeviceOS.ANDROID:
            records.scans.append(snapshot.scan)

        if snapshot.update is not None:
            records.updates.append(snapshot.update)
        if snapshot.battery is not None:
            records.battery.append(snapshot.battery)
        return records

    def _wifi_observation(self, snapshot: AgentSnapshot) -> Sequence[WifiObservation]:
        device_id = self.info.device_id
        if self.info.os is DeviceOS.IOS:
            # iOS can only report the associated AP (§2).
            if snapshot.wifi_state is WifiStateCode.ASSOCIATED:
                return [
                    WifiObservation(
                        device_id, snapshot.t, WifiStateCode.ASSOCIATED,
                        snapshot.ap_id, snapshot.rssi_dbm,
                    )
                ]
            return []
        return [
            WifiObservation(
                device_id, snapshot.t, snapshot.wifi_state,
                snapshot.ap_id, snapshot.rssi_dbm,
            )
        ]

    def package_uploads(
        self,
        tables: Mapping[str, Mapping[str, np.ndarray]],
        n_slots: int,
    ) -> Iterator[Tuple[int, ColumnarRecords]]:
        """Batch a device's columnar records into per-tick uploads.

        Mirrors the real software: everything recorded during one 10-minute
        slot goes out as one upload, and the daily per-app counters ride the
        last slot of their day. Yields ``(t, payload)`` in slot order, which
        also keeps the agent's monotonic-time invariant.
        """
        device_id = self.info.device_id
        prepared = []
        for name, cols in tables.items():
            n = len(next(iter(cols.values())))
            if n == 0:
                continue
            device = np.asarray(cols["device"])
            if int(device[0]) != device_id or int(device[-1]) != device_id:
                raise CollectionError(
                    f"table {name!r} holds rows for a foreign device"
                )
            if "t" in cols:
                key = np.asarray(cols["t"], dtype=np.int64)
            else:
                # Daily tables upload at the end of their day.
                key = (np.asarray(cols["day"], np.int64) + 1) * SAMPLES_PER_DAY - 1
            order = np.argsort(key, kind="stable")
            key = key[order]
            if key[0] < 0 or key[-1] >= n_slots:
                raise CollectionError(
                    f"table {name!r} has records outside the campaign window"
                )
            sorted_cols = {c: np.asarray(a)[order] for c, a in cols.items()}
            bounds = np.searchsorted(key, np.arange(n_slots + 1)).tolist()
            prepared.append((name, sorted_cols, bounds))
        for t in range(n_slots):
            ranges = {}
            for name, cols, bounds in prepared:
                lo = bounds[t]
                hi = bounds[t + 1]
                if hi > lo:
                    ranges[name] = (cols, lo, hi)
            if ranges:
                self._last_t = t
                yield t, ColumnarRecords(ranges)

    def daily_app_records(
        self, records: Sequence[AppTrafficRecord]
    ) -> List[AppTrafficRecord]:
        """Pass through daily per-app counters (Android only)."""
        if self.info.os is DeviceOS.IOS:
            # iOS has no interface for per-application traffic (§2).
            return []
        return list(records)
