"""Measurement-collection substrate: agent, uploader, central server (§2),
plus the fault-injected campaign pipeline that routes simulated devices
through all three."""

from repro.collection.agent import (
    MeasurementAgent,
    AgentSnapshot,
    ColumnarRecords,
    Records,
)
from repro.collection.uploader import (
    Uploader,
    UploadBatch,
    FlakyTransport,
    Transport,
    drain_all,
)
from repro.collection.server import CollectionServer
from repro.collection.faults import (
    FaultPlan,
    OutageWindow,
    FaultedTransport,
    DeviceCollectionStats,
    CollectionReport,
)
from repro.collection.pipeline import CollectionPump

__all__ = [
    "MeasurementAgent",
    "AgentSnapshot",
    "ColumnarRecords",
    "Records",
    "Uploader",
    "UploadBatch",
    "FlakyTransport",
    "Transport",
    "drain_all",
    "CollectionServer",
    "FaultPlan",
    "OutageWindow",
    "FaultedTransport",
    "DeviceCollectionStats",
    "CollectionReport",
    "CollectionPump",
]
