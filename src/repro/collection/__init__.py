"""Measurement-collection substrate: agent, uploader, central server (§2)."""

from repro.collection.agent import MeasurementAgent, AgentSnapshot
from repro.collection.uploader import Uploader, UploadBatch, FlakyTransport, Transport
from repro.collection.server import CollectionServer

__all__ = [
    "MeasurementAgent",
    "AgentSnapshot",
    "Uploader",
    "UploadBatch",
    "FlakyTransport",
    "Transport",
    "CollectionServer",
]
