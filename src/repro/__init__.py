"""repro — reproduction of "Tracking the Evolution and Diversity in Network
Usage of Smartphones" (Fukuda, Asai, Nagami; ACM IMC 2015).

The public API has three layers:

1. **Simulation** — :func:`run_study` / :class:`Study` generate the three
   synthetic measurement campaigns (the proprietary panel substitute).
2. **Analysis** — :mod:`repro.analysis` implements every §3/§4 analysis over
   a :class:`CampaignDataset`.
3. **Reporting** — :data:`EXPERIMENTS` regenerates each paper table/figure.

Quickstart::

    from repro import run_study, AnalysisContext, run_experiment
    study = run_study(scale=0.1)
    context = AnalysisContext(study)
    print(run_experiment("table3", context))
"""

from repro.errors import (
    ReproError,
    ConfigurationError,
    SchemaError,
    DatasetError,
    AnalysisError,
    CollectionError,
    EngineError,
    UploadError,
)
from repro.engine import (
    ExecutionInfo,
    ParallelExecutor,
    SerialExecutor,
    ShardPlanner,
    make_executor,
    resolve_jobs,
)
from repro.simulation.study import (
    Study,
    StudyConfig,
    run_study,
    default_campaign_config,
)
from repro.simulation.campaign import CampaignConfig, CampaignResult, run_campaign
from repro.collection.faults import (
    CollectionReport,
    DeviceCollectionStats,
    FaultPlan,
    OutageWindow,
)
from repro.traces.dataset import CampaignDataset, DatasetBuilder
from repro.traces.io import save_dataset, load_dataset
from repro.traces.cleaning import clean_for_main_analysis
from repro.traces.validate import validate_dataset
from repro.whatif import Scenario, WhatIfResult, compare as whatif_compare
from repro.analysis.context import AnalysisContext, CacheStats
from repro.obs import (
    MetricsRegistry,
    NoopTracer,
    RunManifest,
    Span,
    Tracer,
    get_tracer,
    set_tracer,
    telemetry_enabled,
    use_tracer,
)
from repro.reporting.experiments import (
    AnalysisCache,
    EXPERIMENTS,
    Experiment,
    list_experiments,
    run_experiment,
)

__version__ = "1.0.0"

__all__ = [
    "ReproError",
    "ConfigurationError",
    "SchemaError",
    "DatasetError",
    "AnalysisError",
    "CollectionError",
    "EngineError",
    "UploadError",
    "ExecutionInfo",
    "ParallelExecutor",
    "SerialExecutor",
    "ShardPlanner",
    "make_executor",
    "resolve_jobs",
    "Study",
    "StudyConfig",
    "run_study",
    "default_campaign_config",
    "CampaignConfig",
    "CampaignResult",
    "run_campaign",
    "CollectionReport",
    "DeviceCollectionStats",
    "FaultPlan",
    "OutageWindow",
    "CampaignDataset",
    "DatasetBuilder",
    "save_dataset",
    "load_dataset",
    "clean_for_main_analysis",
    "validate_dataset",
    "AnalysisContext",
    "CacheStats",
    "MetricsRegistry",
    "NoopTracer",
    "RunManifest",
    "Span",
    "Tracer",
    "get_tracer",
    "set_tracer",
    "telemetry_enabled",
    "use_tracer",
    "AnalysisCache",
    "EXPERIMENTS",
    "Experiment",
    "list_experiments",
    "run_experiment",
    "Scenario",
    "WhatIfResult",
    "whatif_compare",
    "__version__",
]
