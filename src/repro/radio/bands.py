"""WiFi frequency bands (§3.4.3).

Recent APs operate in two bands: 2.4 GHz (wider deployment, more noise) and
5 GHz (more robust, rolled out aggressively in public networks).
"""

from __future__ import annotations

import enum


class Band(enum.Enum):
    """A WiFi frequency band."""

    GHZ_2_4 = "2.4GHz"
    GHZ_5 = "5GHz"

    @property
    def center_frequency_mhz(self) -> int:
        """Nominal band center frequency in MHz (used by path-loss models)."""
        if self is Band.GHZ_2_4:
            return 2442
        return 5400

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value
