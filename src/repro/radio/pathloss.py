"""Log-distance path-loss and RSSI models.

The paper reports received signal strength (RSSI) distributions for
associated home and public APs (Figure 15): home networks form a bell shape
around -54 dBm, public networks shift to about -60 dBm with a 12% tail below
-70 dBm. We model RSSI as transmit power minus log-distance path loss plus
log-normal shadowing, which produces exactly this family of bell-shaped dBm
distributions.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.radio.bands import Band

#: Free-space path loss at 1 m for 2.4 GHz (dB), from FSPL formula.
_FSPL_1M_24 = 40.05
_FSPL_1M_5 = 46.4


@dataclass(frozen=True)
class PathLossModel:
    """Log-distance path loss: ``PL(d) = PL(d0) + 10 n log10(d/d0)``.

    Parameters
    ----------
    exponent:
        Path-loss exponent ``n``; ~2 free space, 3-4 indoors through walls.
    reference_db:
        Loss at the 1 m reference distance. Defaults per band.
    """

    exponent: float = 3.0
    reference_db: float = _FSPL_1M_24

    def __post_init__(self) -> None:
        if self.exponent <= 0:
            raise ConfigurationError(f"path-loss exponent must be > 0: {self.exponent}")

    @classmethod
    def for_band(cls, band: Band, exponent: float = 3.0) -> "PathLossModel":
        """Model with the band-appropriate 1 m reference loss."""
        ref = _FSPL_1M_24 if band is Band.GHZ_2_4 else _FSPL_1M_5
        return cls(exponent=exponent, reference_db=ref)

    def loss_db(self, distance_m: float) -> float:
        """Path loss in dB at ``distance_m`` (clamped to the 1 m reference)."""
        d = max(distance_m, 1.0)
        return self.reference_db + 10.0 * self.exponent * math.log10(d)


@dataclass(frozen=True)
class RssiModel:
    """RSSI = tx power - path loss + log-normal shadowing.

    ``sample`` draws one RSSI observation; ``mean_rssi`` is the deterministic
    component. RSSI is clamped to a plausible receiver range.
    """

    tx_power_dbm: float = 15.0
    path_loss: PathLossModel = PathLossModel()
    shadowing_sigma_db: float = 4.0
    floor_dbm: float = -95.0
    ceiling_dbm: float = -20.0

    def __post_init__(self) -> None:
        if self.shadowing_sigma_db < 0:
            raise ConfigurationError(
                f"shadowing sigma must be >= 0: {self.shadowing_sigma_db}"
            )
        if self.floor_dbm >= self.ceiling_dbm:
            raise ConfigurationError("RSSI floor must be below ceiling")

    def mean_rssi(self, distance_m: float) -> float:
        """Deterministic RSSI (no shadowing) at ``distance_m``."""
        rssi = self.tx_power_dbm - self.path_loss.loss_db(distance_m)
        return float(np.clip(rssi, self.floor_dbm, self.ceiling_dbm))

    def sample(self, distance_m: float, rng: np.random.Generator) -> float:
        """One shadowed RSSI observation at ``distance_m``."""
        rssi = (
            self.tx_power_dbm
            - self.path_loss.loss_db(distance_m)
            + rng.normal(0.0, self.shadowing_sigma_db)
        )
        return float(np.clip(rssi, self.floor_dbm, self.ceiling_dbm))

    def sample_many(
        self, distances_m: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        """Vectorized :meth:`sample` over an array of distances."""
        d = np.maximum(np.asarray(distances_m, dtype=float), 1.0)
        loss = self.path_loss.reference_db + 10.0 * self.path_loss.exponent * np.log10(d)
        rssi = self.tx_power_dbm - loss + rng.normal(0.0, self.shadowing_sigma_db, d.shape)
        return np.clip(rssi, self.floor_dbm, self.ceiling_dbm)
