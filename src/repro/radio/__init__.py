"""Radio substrate: frequency bands, path loss / RSSI, and channel planning."""

from repro.radio.bands import Band
from repro.radio.pathloss import PathLossModel, RssiModel
from repro.radio.channels import (
    CHANNELS_24GHZ,
    NON_OVERLAPPING_24GHZ,
    CHANNELS_5GHZ,
    channels_interfere,
    interference_pairs,
    interference_fraction,
    cross_channel_interference_fraction,
    ChannelPlanner,
)

__all__ = [
    "Band",
    "PathLossModel",
    "RssiModel",
    "CHANNELS_24GHZ",
    "NON_OVERLAPPING_24GHZ",
    "CHANNELS_5GHZ",
    "channels_interfere",
    "interference_pairs",
    "interference_fraction",
    "cross_channel_interference_fraction",
    "ChannelPlanner",
]
