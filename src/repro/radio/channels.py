"""2.4/5 GHz channel plans and cross-channel interference (§3.4.5).

In an IEEE 802.11b/g/n network 13 channels are available in the 2.4 GHz band
(Japan), and two BSSIDs on channels closer than five apart interfere due to
overlapping bandwidth. Public providers plan around channels 1/6/11; home APs
historically default to channel 1 and only later gained auto-selection.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, List, Sequence, Tuple

import numpy as np

from repro.constants import CHANNEL_SEPARATION, NUM_24GHZ_CHANNELS
from repro.errors import ConfigurationError

#: 2.4 GHz channels usable in Japan for 802.11b/g/n.
CHANNELS_24GHZ: Tuple[int, ...] = tuple(range(1, NUM_24GHZ_CHANNELS + 1))

#: The classic non-overlapping trio providers plan around.
NON_OVERLAPPING_24GHZ: Tuple[int, ...] = (1, 6, 11)

#: Common Japanese W52/W53 5 GHz channels (a representative subset).
CHANNELS_5GHZ: Tuple[int, ...] = (36, 40, 44, 48, 52, 56, 60, 64)


def channels_interfere(ch_a: int, ch_b: int) -> bool:
    """Whether two 2.4 GHz channels overlap enough to interfere.

    At least a five-channel interval is necessary to avoid cross-channel
    interference (§3.4.5).
    """
    _validate_24(ch_a)
    _validate_24(ch_b)
    return abs(ch_a - ch_b) < CHANNEL_SEPARATION


def interference_pairs(channels: Iterable[int]) -> Iterator[Tuple[int, int]]:
    """Yield every interfering (index, index) pair from a channel sequence.

    Input is a sequence of channel assignments (one per AP in a neighbourhood);
    the output pairs index into that sequence.
    """
    chans = list(channels)
    for i in range(len(chans)):
        for j in range(i + 1, len(chans)):
            if channels_interfere(chans[i], chans[j]):
                yield (i, j)


def _validate_24(channel: int) -> None:
    if channel not in CHANNELS_24GHZ:
        raise ConfigurationError(
            f"not a 2.4GHz channel: {channel} (valid: 1..{NUM_24GHZ_CHANNELS})"
        )


@dataclass(frozen=True)
class ChannelPlanner:
    """Assigns 2.4 GHz channels to APs under a given selection behaviour.

    Three behaviours observed in the paper (Figure 16):

    - ``"default"``: the AP ships on channel 1 and the owner never changes it
      (the 2013 home-AP pattern).
    - ``"planned"``: the operator deploys on the non-overlapping 1/6/11 trio
      (public providers).
    - ``"auto"``: the AP picks a channel to avoid local interference (recent
      home APs); approximated as a uniform draw over all 13 channels with a
      preference for the non-overlapping trio.

    ``default_share`` tunes the mix: probability an AP uses the default
    behaviour instead of the planner's nominal behaviour, which is how the
    2013 -> 2015 home-channel dispersal is expressed.
    """

    mode: str = "planned"
    default_share: float = 0.0

    def __post_init__(self) -> None:
        if self.mode not in ("default", "planned", "auto"):
            raise ConfigurationError(f"unknown channel mode: {self.mode!r}")
        if not 0.0 <= self.default_share <= 1.0:
            raise ConfigurationError(
                f"default_share must be in [0, 1]: {self.default_share}"
            )

    def assign(self, rng: np.random.Generator) -> int:
        """Pick one channel."""
        if self.mode != "default" and rng.random() < self.default_share:
            return 1
        if self.mode == "default":
            return 1
        if self.mode == "planned":
            return int(rng.choice(NON_OVERLAPPING_24GHZ))
        # auto: mostly the trio, sometimes any channel (neighbour avoidance).
        if rng.random() < 0.6:
            return int(rng.choice(NON_OVERLAPPING_24GHZ))
        return int(rng.integers(1, NUM_24GHZ_CHANNELS + 1))

    def assign_many(self, n: int, rng: np.random.Generator) -> List[int]:
        """Assign channels for ``n`` APs."""
        if n < 0:
            raise ConfigurationError(f"n must be >= 0: {n}")
        return [self.assign(rng) for _ in range(n)]


def interference_fraction(channels: Sequence[int]) -> float:
    """Fraction of AP pairs that interfere, for a neighbourhood channel list."""
    chans = list(channels)
    n = len(chans)
    if n < 2:
        return 0.0
    total = n * (n - 1) // 2
    bad = sum(1 for _ in interference_pairs(chans))
    return bad / total


def cross_channel_interference_fraction(channels: Sequence[int]) -> float:
    """Fraction of AP pairs in *cross-channel* interference.

    Same-channel pairs are excluded: co-channel APs share the medium via
    CSMA, which planned deployments accept; the harmful case the paper calls
    out is partial spectral overlap (0 < separation < 5 channels).
    """
    chans = list(channels)
    n = len(chans)
    if n < 2:
        return 0.0
    total = n * (n - 1) // 2
    bad = 0
    for i in range(n):
        for j in range(i + 1, n):
            separation = abs(chans[i] - chans[j])
            if 0 < separation < CHANNEL_SEPARATION:
                bad += 1
    return bad / total
