"""Command-line interface.

Four subcommands::

    python -m repro simulate --scale 0.1 --out data/        # run + save
    python -m repro analyze  --scale 0.1 table3 fig05       # run experiments
    python -m repro analyze  --data data/ table4            # on saved data
    python -m repro list                                    # experiments
    python -m repro validate data/campaign2015              # check a dataset

``analyze`` accepts experiment ids (``table1``..``table9``, ``fig01``..
``fig19``, ``sec35``, ``sec41``) or ``all``.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from repro.collection.faults import FaultPlan, OutageWindow
from repro.engine.executor import resolve_jobs
from repro.errors import ConfigurationError, ReproError
from repro.reporting.collection import render_collection_report
from repro.analysis.context import AnalysisContext
from repro.reporting.experiments import (
    EXPERIMENTS,
    list_experiments,
    run_experiment,
)
from repro.simulation.study import Study, StudyConfig, run_study
from repro.traces.io import load_dataset, save_dataset
from repro.traces.validate import validate_dataset


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce 'Tracking the Evolution and Diversity in "
                    "Network Usage of Smartphones' (IMC 2015)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    simulate = sub.add_parser("simulate", help="run the study and save datasets")
    simulate.add_argument("--scale", type=float, default=0.1,
                          help="panel scale relative to the paper (default 0.1)")
    simulate.add_argument("--seed", type=int, default=7)
    simulate.add_argument("--out", type=Path, required=True,
                          help="output directory for campaign datasets")
    simulate.add_argument("--jobs", type=int, default=None, metavar="N",
                          help="worker processes for campaign simulation "
                               "(default: $REPRO_JOBS, else one per CPU; "
                               "1 disables the pool; results are identical "
                               "for any value)")
    faults = simulate.add_argument_group(
        "fault injection", "route campaigns through a lossy collection "
        "pipeline and report completeness")
    faults.add_argument("--fault-rate", type=float, default=None,
                        help="per-attempt upload failure probability")
    faults.add_argument("--fault-rate-3g", type=float, default=None,
                        help="extra failure probability for 3G devices")
    faults.add_argument("--dropout-p", type=float, default=None,
                        help="per-device mid-campaign dropout probability")
    faults.add_argument("--duplicate-p", type=float, default=None,
                        help="probability a delivered batch arrives twice")
    faults.add_argument("--outage", action="append", default=None,
                        metavar="START:END",
                        help="outage window in slots (repeatable)")
    faults.add_argument("--cache-batches", type=int, default=None,
                        help="on-device cache bound in batches")

    analyze = sub.add_parser("analyze", help="run experiments")
    analyze.add_argument("experiments", nargs="+",
                         help="experiment ids, or 'all'")
    analyze.add_argument("--scale", type=float, default=0.1)
    analyze.add_argument("--seed", type=int, default=7)
    analyze.add_argument("--data", type=Path, default=None,
                         help="directory with saved campaign datasets "
                              "(from `repro simulate`); simulates if absent")
    analyze.add_argument("--out", type=Path, default=None,
                         help="also write rendered artifacts here")
    analyze.add_argument("--cache-stats", action="store_true",
                         help="print per-artifact analysis-cache statistics "
                              "(hits, misses, compute time, cached bytes) "
                              "after the experiments")

    sub.add_parser("list", help="list available experiments")

    report = sub.add_parser(
        "report", help="paper-vs-measured markdown summary of a fresh study"
    )
    report.add_argument("--scale", type=float, default=0.1)
    report.add_argument("--seed", type=int, default=7)
    report.add_argument("--out", type=Path, default=None,
                        help="write the markdown report here")

    validate = sub.add_parser("validate", help="validate a saved dataset")
    validate.add_argument("path", type=Path)

    return parser


def _load_study_from(data_dir: Path) -> Study:
    """Rebuild a Study-like container from saved campaign directories."""
    study = Study(StudyConfig(scale=1.0))
    found = sorted(data_dir.glob("campaign*"))
    if not found:
        raise ReproError(f"no campaign datasets under {data_dir}")
    from repro.simulation.campaign import CampaignResult

    for path in found:
        dataset = load_dataset(path)
        study.campaigns[dataset.year] = CampaignResult(
            config=None, dataset=dataset, profiles=[], deployment=None,
        )
        study.surveys[dataset.year] = []
    return study


def _resolve_experiments(names: List[str]) -> List[str]:
    if names == ["all"]:
        return sorted(EXPERIMENTS)
    unknown = [n for n in names if n not in EXPERIMENTS]
    if unknown:
        raise ReproError(
            f"unknown experiments: {unknown}; try `repro list`"
        )
    return names


#: Experiments that need the survey (unavailable on reloaded datasets).
_SURVEY_EXPERIMENTS = frozenset({"table2", "table8", "table9"})


def _fault_plan_from_args(args: argparse.Namespace) -> Optional[FaultPlan]:
    """Build a FaultPlan from CLI flags; None when no fault flag was given."""
    flags = (args.fault_rate, args.fault_rate_3g, args.dropout_p,
             args.duplicate_p, args.outage, args.cache_batches)
    if all(value is None for value in flags):
        return None
    outages = []
    for spec in args.outage or ():
        try:
            start, _, end = spec.partition(":")
            outages.append(OutageWindow(int(start), int(end)))
        except ValueError:
            raise ConfigurationError(
                f"--outage expects START:END in slots, got {spec!r}"
            ) from None
    return FaultPlan(
        upload_failure_p=args.fault_rate or 0.0,
        upload_failure_p_3g_extra=args.fault_rate_3g or 0.0,
        dropout_p=args.dropout_p or 0.0,
        duplicate_p=args.duplicate_p or 0.0,
        outages=tuple(outages),
        max_cache_batches=args.cache_batches or 4096,
    )


def cmd_simulate(args: argparse.Namespace) -> int:
    faults = _fault_plan_from_args(args)
    n_jobs = resolve_jobs(args.jobs, default=0)  # default: auto (CPU count)
    study = run_study(scale=args.scale, seed=args.seed, faults=faults,
                      n_jobs=n_jobs)
    args.out.mkdir(parents=True, exist_ok=True)
    if study.execution is not None:
        print(f"executor: {study.execution.describe()}")
    for year in study.years:
        path = args.out / f"campaign{year}"
        save_dataset(study.dataset(year), path)
        info = study.campaigns[year].execution
        shards = f", {info.n_shards} shards" if info is not None else ""
        print(f"saved {path} ({study.dataset(year).n_devices} devices{shards})")
        report = study.campaigns[year].collection
        if report is not None and faults is not None:
            print(f"\ncampaign {year} collection:")
            print(render_collection_report(report))
            print()
    return 0


def cmd_analyze(args: argparse.Namespace) -> int:
    names = _resolve_experiments(args.experiments)
    if args.data is not None:
        study = _load_study_from(args.data)
        skipped = [n for n in names if n in _SURVEY_EXPERIMENTS]
        if skipped:
            print(f"note: skipping survey experiments on saved data: {skipped}")
            names = [n for n in names if n not in _SURVEY_EXPERIMENTS]
    else:
        study = run_study(scale=args.scale, seed=args.seed)
    cache = AnalysisContext(study)
    if args.out is not None:
        args.out.mkdir(parents=True, exist_ok=True)
    for name in names:
        result = run_experiment(name, cache)
        text = result.render() if hasattr(result, "render") else str(result)
        print(text)
        print()
        if args.out is not None:
            (args.out / f"{name}.txt").write_text(text + "\n")
    if args.cache_stats:
        print(cache.stats.render())
    return 0


def cmd_report(args: argparse.Namespace) -> int:
    from repro.reporting.summary import render_markdown, study_summary

    study = run_study(scale=args.scale, seed=args.seed)
    findings = study_summary(AnalysisContext(study))
    text = render_markdown(
        findings,
        title=f"Study summary (scale {args.scale}, seed {args.seed})",
    )
    print(text)
    if args.out is not None:
        args.out.write_text(text + "\n")
    return 0


def cmd_list(_args: argparse.Namespace) -> int:
    for experiment in list_experiments():
        print(f"{experiment.experiment_id:8s} {experiment.paper_item:12s} "
              f"{experiment.title}")
    return 0


def cmd_validate(args: argparse.Namespace) -> int:
    dataset = load_dataset(args.path)
    summary = validate_dataset(dataset)
    print(summary)
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    handlers = {
        "simulate": cmd_simulate,
        "analyze": cmd_analyze,
        "list": cmd_list,
        "report": cmd_report,
        "validate": cmd_validate,
    }
    try:
        return handlers[args.command](args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
