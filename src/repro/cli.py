"""Command-line interface.

Subcommands::

    python -m repro simulate --scale 0.1 --out data/        # run + save
    python -m repro analyze  --scale 0.1 table3 fig05       # run experiments
    python -m repro analyze  --data data/ table4            # on saved data
    python -m repro bench    --scale 0.02                   # benchmark suite
    python -m repro fidelity --check FIDELITY_baseline.json # paper drift gate
    python -m repro fidelity --report run_report.html       # HTML run report
    python -m repro events run/events.jsonl --postmortem    # read black box
    python -m repro clean data/ --dry-run                   # reclaim leftovers
    python -m repro list                                    # experiments
    python -m repro validate data/campaign2015              # check a dataset

``analyze`` accepts experiment ids (``table1``..``table9``, ``fig01``..
``fig19``, ``sec35``, ``sec41``) or ``all``.

``simulate`` self-heals on demand: ``--checkpoint-dir``/``--resume`` spill
and reuse completed shards (interrupted runs resume bit-identically),
``--max-attempts``/``--shard-timeout``/``--retry-backoff-s`` bound
retries, ``--partial-results`` degrades gracefully with explicit loss
accounting, and the ``--chaos-*`` flags drive the deterministic fault
harness (a chaos kill exits with code 3; stale checkpoint directories are
refused with code 2).

``simulate``, ``analyze``, ``bench`` and ``fidelity`` accept
``--telemetry`` (or ``$REPRO_TELEMETRY=1``): the run executes under a real
tracer and emits a machine-readable
:class:`~repro.obs.manifest.RunManifest` JSON — config hash, seed, shard
layout, per-stage wall/CPU seconds, cache hit rates and fault-loss
accounting — and ``--trace-out`` additionally exports the span tree as
Chrome-trace JSON. Telemetry never changes results: outputs are
bit-identical with it on or off.

The same four commands also take the live-observability flags:
``--events PATH`` flight-records the run (append-only, crash-durable
``events.jsonl``; ``repro events PATH`` tails/summarizes/postmortems it),
``--progress`` prints live shard/device progress with an ETA to stderr,
and ``--prom PATH`` mirrors periodic resource samples (RSS, CPU, /dev/shm
and store disk usage, steal/retry counters) to a Prometheus textfile.
``repro clean`` reclaims what killed runs leave behind: /dev/shm
transport segments, orphan store partitions, and stale telemetry files.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path
from typing import List, Optional

from repro import __version__
from repro.collection.faults import FaultPlan, OutageWindow
from repro.engine.chaos import ChaosKill
from repro.engine.executor import resolve_jobs
from repro.errors import ConfigurationError, ReproError
from repro.obs.manifest import build_manifest, config_hash_of
from repro.obs.recorder import (
    EVENTS_ENV_VAR,
    FlightRecorder,
    get_recorder,
    set_recorder,
)
from repro.obs.resources import ResourceSampler
from repro.obs.span import Tracer, get_tracer, set_tracer, telemetry_enabled
from repro.reporting.collection import (
    execution_losses_table,
    render_collection_report,
)
from repro.analysis.context import AnalysisContext
from repro.reporting.experiments import (
    EXPERIMENTS,
    list_experiments,
    run_experiment,
)
from repro.simulation.study import Study, StudyConfig, run_study
from repro.traces.io import load_dataset, save_dataset
from repro.traces.validate import validate_dataset


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce 'Tracking the Evolution and Diversity in "
                    "Network Usage of Smartphones' (IMC 2015)",
    )
    parser.add_argument("--version", action="version",
                        version=f"%(prog)s {__version__}")
    sub = parser.add_subparsers(dest="command", required=True)

    def add_telemetry_flags(command_parser: argparse.ArgumentParser) -> None:
        command_parser.add_argument(
            "--telemetry", action="store_true",
            help="trace the run (spans, counters) and write a JSON run "
                 "manifest; $REPRO_TELEMETRY=1 does the same. Outputs are "
                 "bit-identical with telemetry on or off")
        command_parser.add_argument(
            "--manifest", type=Path, default=None, metavar="PATH",
            help="run-manifest output path (default: run_manifest.json "
                 "next to the command's other outputs)")
        command_parser.add_argument(
            "--trace-out", type=Path, default=None, metavar="PATH",
            help="also export the span tree as Chrome-trace JSON "
                 "(open in chrome://tracing or Perfetto); implies "
                 "--telemetry")
        command_parser.add_argument(
            "--events", type=Path, default=None, metavar="PATH",
            help="flight-record the run: append one JSON event per line "
                 "(crash-durable; a kill -9 leaves a parseable log that "
                 "`repro events PATH --postmortem` reconstructs). Pool "
                 "workers append to the same file")
        command_parser.add_argument(
            "--progress", action="store_true",
            help="print live shard/device progress with rate and ETA to "
                 "stderr (works with or without --events)")
        command_parser.add_argument(
            "--prom", type=Path, default=None, metavar="PATH",
            help="mirror the latest resource sample (RSS, CPU, /dev/shm, "
                 "store disk, steal/retry counters) to a Prometheus "
                 "textfile at PATH (atomic rewrite per sample)")
        command_parser.add_argument(
            "--sample-interval", type=float, default=1.0, metavar="SECONDS",
            help="resource-sampler period for --events/--prom "
                 "(default 1.0)")

    simulate = sub.add_parser("simulate", help="run the study and save datasets")
    simulate.add_argument("--scale", type=float, default=0.1,
                          help="panel scale relative to the paper (default 0.1)")
    simulate.add_argument("--seed", type=int, default=7)
    simulate.add_argument("--out", type=Path, required=True,
                          help="output directory for campaign datasets")
    simulate.add_argument("--jobs", type=int, default=None, metavar="N",
                          help="worker processes for campaign simulation "
                               "(default: $REPRO_JOBS, else one per CPU; "
                               "1 disables the pool; results are identical "
                               "for any value)")
    simulate.add_argument("--kernel", choices=["batch", "legacy"],
                          default="batch",
                          help="simulation kernel (batch). The removed "
                               "scalar 'legacy' value is rejected with a "
                               "migration message")
    simulate.add_argument("--store", choices=["memory", "disk"],
                          default="memory",
                          help="campaign storage: 'memory' merges in RAM "
                               "and saves npz datasets (default); 'disk' "
                               "spills shards to out-of-core columnar "
                               "stores and streams the merge, so a "
                               "campaign never has to fit in RAM. Results "
                               "are bit-identical either way")
    simulate.add_argument("--store-dir", type=Path, default=None,
                          metavar="DIR",
                          help="root directory for --store disk campaign "
                               "stores (default: --out)")
    simulate.add_argument("--store-format", choices=["npy", "parquet", "auto"],
                          default="npy",
                          help="column-file backend for --store disk: "
                               "'npy' is dependency-free (default), "
                               "'parquet' needs the optional pyarrow "
                               "extra, 'auto' picks parquet when pyarrow "
                               "is importable")
    faults = simulate.add_argument_group(
        "fault injection", "route campaigns through a lossy collection "
        "pipeline and report completeness")
    faults.add_argument("--fault-rate", type=float, default=None,
                        help="per-attempt upload failure probability")
    faults.add_argument("--fault-rate-3g", type=float, default=None,
                        help="extra failure probability for 3G devices")
    faults.add_argument("--dropout-p", type=float, default=None,
                        help="per-device mid-campaign dropout probability")
    faults.add_argument("--duplicate-p", type=float, default=None,
                        help="probability a delivered batch arrives twice")
    faults.add_argument("--outage", action="append", default=None,
                        metavar="START:END",
                        help="outage window in slots (repeatable)")
    faults.add_argument("--cache-batches", type=int, default=None,
                        help="on-device cache bound in batches")
    resilience = simulate.add_argument_group(
        "resilience", "self-healing execution: shard checkpoint/resume, "
        "bounded retries with deterministic backoff, graceful degradation. "
        "Recovered or resumed runs are bit-identical to uninterrupted ones")
    resilience.add_argument("--checkpoint-dir", type=Path, default=None,
                            metavar="DIR",
                            help="spill each completed shard here; an "
                                 "interrupted run can pick up with --resume")
    resilience.add_argument("--resume", action="store_true",
                            help="reuse completed shards from "
                                 "--checkpoint-dir (refused, exit 2, when "
                                 "the directory was written by a different "
                                 "config, seed, or shard layout)")
    resilience.add_argument("--partial-results", action="store_true",
                            help="drop shards that exhaust every retry "
                                 "instead of aborting; losses are reported "
                                 "explicitly and recorded in the manifest")
    resilience.add_argument("--max-attempts", type=int, default=None,
                            metavar="N",
                            help="pool attempts per shard before the serial "
                                 "last resort (default 1 = no retry)")
    resilience.add_argument("--shard-timeout", type=float, default=None,
                            metavar="SECONDS",
                            help="per-shard deadline measured from the "
                                 "shard's observed start (parallel runs "
                                 "only); an expired shard is retried on a "
                                 "fresh pool")
    resilience.add_argument("--retry-backoff-s", type=float, default=None,
                            metavar="SECONDS",
                            help="base backoff before a retry, doubled per "
                                 "attempt with deterministic seeded jitter "
                                 "(default 0.05)")
    chaos = simulate.add_argument_group(
        "chaos harness", "deterministic fault injection exercising the "
        "resilience paths (testing/CI only; never changes surviving "
        "shards' results)")
    chaos.add_argument("--chaos-crash-rate", type=float, default=None,
                       metavar="P",
                       help="fraction of shards whose first attempts crash")
    chaos.add_argument("--chaos-crash-attempts", type=int, default=None,
                       metavar="K",
                       help="how many attempts of a selected shard crash "
                            "before it behaves (default 1)")
    chaos.add_argument("--chaos-hang-rate", type=float, default=None,
                       metavar="P",
                       help="fraction of shards whose first attempt hangs "
                            "for --chaos-hang-s before completing")
    chaos.add_argument("--chaos-hang-s", type=float, default=None,
                       metavar="SECONDS",
                       help="injected hang duration (default 1.0)")
    chaos.add_argument("--chaos-kill-after", type=int, default=None,
                       metavar="N",
                       help="kill the campaign (exit 3) after N completed "
                            "shards — pair with --checkpoint-dir and a "
                            "--resume rerun")
    chaos.add_argument("--chaos-kill-hard", action="store_true",
                       help="upgrade --chaos-kill-after from a clean "
                            "in-process kill (exit 3) to SIGKILL — the "
                            "process dies instantly, exercising the "
                            "flight recorder's crash durability")
    chaos.add_argument("--chaos-seed", type=int, default=None,
                       help="seed for chaos shard selection (default 0)")
    chaos.add_argument("--chaos-state-dir", type=Path, default=None,
                       metavar="DIR",
                       help="cross-process attempt-marker directory "
                            "(required for crash/hang injection)")
    add_telemetry_flags(simulate)

    analyze = sub.add_parser("analyze", help="run experiments")
    analyze.add_argument("experiments", nargs="+",
                         help="experiment ids, or 'all'")
    analyze.add_argument("--scale", type=float, default=0.1)
    analyze.add_argument("--seed", type=int, default=7)
    analyze.add_argument("--data", type=Path, default=None,
                         help="directory with saved campaign datasets "
                              "(from `repro simulate`); simulates if absent")
    analyze.add_argument("--out", type=Path, default=None,
                         help="also write rendered artifacts here")
    analyze.add_argument("--cache-stats", action="store_true",
                         help="print per-artifact analysis-cache statistics "
                              "(hits, misses, compute time, cached bytes) "
                              "after the experiments")
    add_telemetry_flags(analyze)

    bench = sub.add_parser(
        "bench",
        help="run the unified benchmark suite and write BENCH_all.json",
        description="Discover and run every registered benchmark (all "
                    "paper figure/table experiments plus the engine, "
                    "analysis-context and collection suites) through one "
                    "warmup/repeat harness.",
    )
    bench.add_argument("benchmarks", nargs="*", metavar="NAME",
                       help="benchmark or group names to run "
                            "(default: the full suite; see --list)")
    bench.add_argument("--scale", type=float, default=0.02,
                       help="panel scale for benchmark inputs (default 0.02)")
    bench.add_argument("--seed", type=int, default=7)
    bench.add_argument("--repeat", type=int, default=3,
                       help="timed repetitions per benchmark, best-of "
                            "(default 3)")
    bench.add_argument("--warmup", type=int, default=1,
                       help="untimed warmup runs per benchmark (default 1)")
    bench.add_argument("--out", type=Path, default=Path("BENCH_all.json"),
                       help="consolidated report path "
                            "(default BENCH_all.json)")
    bench.add_argument("--list", action="store_true", dest="list_benchmarks",
                       help="list discoverable benchmarks and exit")
    bench.add_argument("--check", action="append", type=Path, default=None,
                       metavar="BASELINE",
                       help="committed baseline JSON to gate against "
                            "(repeatable; BENCH_context.json, "
                            "BENCH_engine.json or a previous BENCH_all.json)")
    bench.add_argument("--check-only", type=Path, default=None,
                       metavar="RESULTS",
                       help="skip running; check an existing BENCH_all.json "
                            "against the --check baselines")
    bench.add_argument("--factor", type=float, default=2.0,
                       help="regression threshold factor for --check "
                            "(default 2.0 = fail on >2x regressions)")
    bench.add_argument("--history", type=Path, default=None, metavar="PATH",
                       help="run-history JSONL that --check appends a "
                            "keyed record to, enabling trend sparklines "
                            "and rolling-window drift warnings (default: "
                            "BENCH_history.jsonl next to --out)")
    add_telemetry_flags(bench)

    fidelity = sub.add_parser(
        "fidelity",
        help="score paper fidelity and render the run report",
        description="Run the registered experiments through the analysis "
                    "context, compare each extracted quantity against the "
                    "paper-reference registry (tolerance and shape "
                    "predicates) and emit a FidelityReport JSON, an "
                    "optional regression verdict against a committed "
                    "baseline, a self-contained HTML run report, and the "
                    "regenerated EXPERIMENTS.md tables.",
    )
    fidelity.add_argument("checks", nargs="*", metavar="CHECK",
                          help="experiment ids or check ids to score "
                               "(default: the full registry)")
    fidelity.add_argument("--scale", type=float, default=0.02,
                          help="panel scale for the scored study "
                               "(default 0.02)")
    fidelity.add_argument("--seed", type=int, default=7)
    fidelity.add_argument("--data", type=Path, default=None,
                          help="directory with saved campaign datasets; "
                               "survey-backed checks are skipped there")
    fidelity.add_argument("--jobs", type=int, default=None, metavar="N",
                          help="worker processes for the study (reports "
                               "are bit-identical for any value)")
    fidelity.add_argument("--kernel", choices=["batch", "legacy"],
                          default="batch",
                          help="simulation kernel (batch). The removed "
                               "scalar 'legacy' value is rejected with a "
                               "migration message")
    fidelity.add_argument("--out", type=Path,
                          default=Path("fidelity_report.json"),
                          help="FidelityReport JSON output path "
                               "(default fidelity_report.json)")
    fidelity.add_argument("--check", type=Path, default=None,
                          metavar="BASELINE",
                          help="committed FIDELITY_baseline.json to gate "
                               "against: exit 1 when any check's verdict "
                               "regressed (pass->warn, anything->fail)")
    fidelity.add_argument("--report", type=Path, default=None,
                          metavar="HTML",
                          help="write the self-contained HTML run report "
                               "here (manifest + metrics + span timeline + "
                               "fidelity scoreboard); implies --telemetry")
    fidelity.add_argument("--bench", type=Path, default=None,
                          metavar="BENCH_JSON",
                          help="BENCH_all.json to fold into the HTML "
                               "report's bench section")
    fidelity.add_argument("--write-doc", type=Path, nargs="?",
                          const=Path("EXPERIMENTS.md"), default=None,
                          metavar="DOC",
                          help="regenerate the paper-vs-measured tables "
                               "between the FIDELITY markers of DOC "
                               "(default EXPERIMENTS.md)")
    fidelity.add_argument("--history", type=Path, default=None,
                          metavar="PATH",
                          help="run-history JSONL that --check appends a "
                               "keyed record to; --report folds its trend "
                               "sparklines into the HTML (default: "
                               "FIDELITY_history.jsonl next to --out)")
    add_telemetry_flags(fidelity)

    events = sub.add_parser(
        "events",
        help="inspect a flight-recorder events.jsonl",
        description="Read an events.jsonl written by --events (tolerant of "
                    "the truncation a kill -9 leaves) and tail it, "
                    "summarize per-kind counts, or reconstruct a "
                    "postmortem: which phase the run died in, completed vs "
                    "in-flight shards, retries/steals/drops, checkpoint "
                    "and spill activity, and the last resource sample.",
    )
    events.add_argument("path", type=Path,
                        help="events.jsonl written by --events")
    events_mode = events.add_mutually_exclusive_group()
    events_mode.add_argument("--tail", type=int, default=None, metavar="N",
                             help="print the last N events, one line each")
    events_mode.add_argument("--summary", action="store_true",
                             help="per-kind event counts (the default)")
    events_mode.add_argument("--postmortem", action="store_true",
                             help="reconstruct what happened to the run "
                                  "from the (possibly truncated) log")
    events.add_argument("--json", action="store_true",
                        help="machine-readable JSON output")

    clean = sub.add_parser(
        "clean",
        help="reclaim leftovers from killed runs",
        description="Sweep what a killed or crashed run leaves behind: "
                    "/dev/shm shard-transport segments, orphan store "
                    "spill partitions under the given directories, and "
                    "stale telemetry files (events*.jsonl, *.prom) older "
                    "than --max-age-h. Run-history JSONL files are never "
                    "touched.",
    )
    clean.add_argument("paths", nargs="*", type=Path,
                       help="store/checkpoint directories to sweep "
                            "(default: the current directory)")
    clean.add_argument("--dry-run", action="store_true",
                       help="report what would be removed without removing")
    clean.add_argument("--max-age-h", type=float, default=24.0,
                       metavar="HOURS",
                       help="age threshold for stale telemetry files "
                            "(default 24)")

    sub.add_parser("list", help="list available experiments")

    report = sub.add_parser(
        "report", help="paper-vs-measured markdown summary of a fresh study"
    )
    report.add_argument("--scale", type=float, default=0.1)
    report.add_argument("--seed", type=int, default=7)
    report.add_argument("--out", type=Path, default=None,
                        help="write the markdown report here")

    validate = sub.add_parser("validate", help="validate a saved dataset")
    validate.add_argument("path", type=Path)

    return parser


def _load_study_from(data_dir: Path) -> Study:
    """Rebuild a Study-like container from saved campaign directories."""
    study = Study(StudyConfig(scale=1.0))
    found = sorted(data_dir.glob("campaign*"))
    if not found:
        raise ReproError(f"no campaign datasets under {data_dir}")
    from repro.simulation.campaign import CampaignResult

    for path in found:
        dataset = load_dataset(path)
        study.campaigns[dataset.year] = CampaignResult(
            config=None, dataset=dataset, profiles=[], deployment=None,
        )
        study.surveys[dataset.year] = []
    return study


def _resolve_experiments(names: List[str]) -> List[str]:
    if names == ["all"]:
        return sorted(EXPERIMENTS)
    unknown = [n for n in names if n not in EXPERIMENTS]
    if unknown:
        raise ReproError(
            f"unknown experiments: {unknown}; "
            f"valid ids: {', '.join(sorted(EXPERIMENTS))} (or 'all')"
        )
    return names


def _start_telemetry(args: argparse.Namespace) -> Optional[Tracer]:
    """Install a real tracer when ``--telemetry``/``$REPRO_TELEMETRY`` asks.

    Returns the tracer (or None); the caller must reset via
    :func:`repro.obs.span.set_tracer` (``_finish_telemetry`` does both the
    reset and the manifest write).
    """
    wants = (getattr(args, "telemetry", False) or telemetry_enabled()
             or getattr(args, "trace_out", None) is not None
             or getattr(args, "report", None) is not None)
    if wants:
        tracer = Tracer(f"repro.{args.command}")
        set_tracer(tracer)
        return tracer
    return None


def _write_trace(tracer: Optional[Tracer], args: argparse.Namespace) -> None:
    """Export the span tree as Chrome-trace JSON when ``--trace-out`` asks."""
    trace_out = getattr(args, "trace_out", None)
    if trace_out is None or tracer is None:
        return
    from repro.obs.span import write_chrome_trace

    write_chrome_trace(tracer.export(), trace_out)
    print(f"wrote Chrome trace {trace_out}")


def _write_manifest(manifest, args: argparse.Namespace,
                    default_dir: Path) -> None:
    path = args.manifest or (default_dir / "run_manifest.json")
    manifest.write(path)
    print(f"wrote run manifest {path}")


def _write_failure_manifest(command: str, tracer: Optional[Tracer],
                            args: argparse.Namespace, default_dir: Path,
                            exc: BaseException) -> None:
    """Account for a failed run: manifest with status/partial timings.

    A run that dies with telemetry on still leaves a ``run_manifest.json``
    — ``status: "failed"``, the exception on one line, and whatever stage
    timings the tracer collected before the failure. Best-effort: the
    original exception is never masked by manifest trouble.
    """
    if tracer is None:
        return
    try:
        manifest = build_manifest(
            command, tracer,
            seed=getattr(args, "seed", 0),
            scale=getattr(args, "scale", 0.0),
            status="failed",
            error=f"{type(exc).__name__}: {exc}",
        )
        _write_manifest(manifest, args, default_dir)
    except Exception:
        pass


def _progress_listener(event: dict) -> None:
    """Render ``progress`` events to stderr for ``--progress``."""
    if event.get("kind") != "progress":
        return
    eta = event.get("eta_s")
    eta_text = f", eta {float(eta):.0f}s" if eta is not None else ""
    print(
        f"progress: {event.get('done')}/{event.get('total')} shards, "
        f"{event.get('devices_done')}/{event.get('devices_total')} devices "
        f"({event.get('rate', 0.0)} dev/s{eta_text})",
        file=sys.stderr, flush=True,
    )


class _Recording:
    """One command's live-observability plumbing (recorder + sampler)."""

    def __init__(self, recorder: FlightRecorder,
                 sampler: Optional[ResourceSampler],
                 env_was_set: bool, env_before: Optional[str]) -> None:
        self.recorder = recorder
        self.sampler = sampler
        self._env_was_set = env_was_set
        self._env_before = env_before

    def finish(self, status: str, exit_code: int) -> None:
        """Final sample, ``run_end``, close, and global/env reset."""
        if self.sampler is not None:
            self.sampler.stop()
        self.recorder.emit("run_end", status=status, exit_code=exit_code)
        self.recorder.close()
        set_recorder(None)
        if self._env_was_set:
            if self._env_before is None:
                os.environ.pop(EVENTS_ENV_VAR, None)
            else:
                os.environ[EVENTS_ENV_VAR] = self._env_before


def _start_recording(args: argparse.Namespace) -> Optional[_Recording]:
    """Install the flight recorder when ``--events``/``--progress``/
    ``--prom`` ask; returns None (and costs nothing) otherwise.

    Exporting ``$REPRO_EVENTS`` lets spawned pool workers resolve the same
    event file through :func:`repro.obs.recorder.get_recorder` — every
    event is one O_APPEND write, so sharing the file is safe.
    """
    events = getattr(args, "events", None)
    progress = getattr(args, "progress", False)
    prom = getattr(args, "prom", None)
    if events is None and not progress and prom is None:
        return None
    recorder = FlightRecorder(
        events, listener=_progress_listener if progress else None,
    )
    set_recorder(recorder)
    env_before = os.environ.get(EVENTS_ENV_VAR)
    env_was_set = events is not None
    if env_was_set:
        os.environ[EVENTS_ENV_VAR] = str(events)
    recorder.emit(
        "run_start", command=args.command, argv=list(sys.argv[1:]),
        config_hash=config_hash_of(
            (args.command, getattr(args, "scale", None),
             getattr(args, "seed", None), getattr(args, "jobs", None))
        ),
        seed=getattr(args, "seed", None),
        scale=getattr(args, "scale", None),
    )
    sampler = None
    if events is not None or prom is not None:
        disk_paths = [
            p for p in (getattr(args, "out", None),
                        getattr(args, "store_dir", None),
                        getattr(args, "checkpoint_dir", None))
            if isinstance(p, Path)
        ]
        sampler = ResourceSampler(
            recorder, interval_s=getattr(args, "sample_interval", 1.0),
            disk_paths=disk_paths, prom_path=prom,
        )
        sampler.start()
    return _Recording(recorder, sampler, env_was_set, env_before)


def _study_shards(study: Study) -> List[dict]:
    """Per-year shard layout for the manifest."""
    shards = []
    for year in study.years:
        info = study.campaigns[year].execution
        shards.append({
            "year": year,
            "n_shards": info.n_shards if info is not None else 1,
            "n_devices": study.dataset(year).n_devices,
        })
    return shards


#: Experiments that need the survey (unavailable on reloaded datasets).
_SURVEY_EXPERIMENTS = frozenset({"table2", "table8", "table9"})


def _fault_plan_from_args(args: argparse.Namespace) -> Optional[FaultPlan]:
    """Build a FaultPlan from CLI flags; None when no fault flag was given."""
    flags = (args.fault_rate, args.fault_rate_3g, args.dropout_p,
             args.duplicate_p, args.outage, args.cache_batches)
    if all(value is None for value in flags):
        return None
    outages = []
    for spec in args.outage or ():
        try:
            start, _, end = spec.partition(":")
            outages.append(OutageWindow(int(start), int(end)))
        except ValueError:
            raise ConfigurationError(
                f"--outage expects START:END in slots, got {spec!r}"
            ) from None
    return FaultPlan(
        upload_failure_p=args.fault_rate or 0.0,
        upload_failure_p_3g_extra=args.fault_rate_3g or 0.0,
        dropout_p=args.dropout_p or 0.0,
        duplicate_p=args.duplicate_p or 0.0,
        outages=tuple(outages),
        max_cache_batches=args.cache_batches or 4096,
    )


def _resilience_from_args(
    args: argparse.Namespace,
) -> Optional["ResilienceConfig"]:
    """Build a ResilienceConfig from CLI flags; None when none were given."""
    from repro.engine.chaos import ChaosPlan
    from repro.engine.resilience import (
        CheckpointStore,
        ResilienceConfig,
        RetryPolicy,
    )

    chaos_flags = (args.chaos_crash_rate, args.chaos_crash_attempts,
                   args.chaos_hang_rate, args.chaos_hang_s,
                   args.chaos_kill_after, args.chaos_seed,
                   args.chaos_state_dir)
    chaos = None
    if (any(value is not None for value in chaos_flags)
            or args.chaos_kill_hard):
        chaos = ChaosPlan(
            crash_rate=args.chaos_crash_rate or 0.0,
            crash_attempts=args.chaos_crash_attempts or 1,
            hang_rate=args.chaos_hang_rate or 0.0,
            hang_s=args.chaos_hang_s if args.chaos_hang_s is not None else 1.0,
            kill_after_shards=args.chaos_kill_after,
            kill_hard=args.chaos_kill_hard,
            seed=args.chaos_seed or 0,
            state_dir=args.chaos_state_dir,
        )
    policy = None
    if (args.max_attempts is not None or args.shard_timeout is not None
            or args.retry_backoff_s is not None):
        policy = RetryPolicy(
            max_attempts=args.max_attempts or 1,
            backoff_base_s=(args.retry_backoff_s
                            if args.retry_backoff_s is not None else 0.05),
            seed=args.seed,
            shard_timeout_s=args.shard_timeout,
        )
    store = (CheckpointStore(args.checkpoint_dir)
             if args.checkpoint_dir is not None else None)
    if (store is None and policy is None and chaos is None
            and not args.partial_results):
        if args.resume:
            raise ConfigurationError(
                "--resume needs a checkpoint store (--checkpoint-dir)"
            )
        return None
    return ResilienceConfig(
        store=store, resume=args.resume, policy=policy,
        partial=args.partial_results, chaos=chaos,
    )


def _check_kernel(args: argparse.Namespace) -> None:
    """Reject the removed scalar kernel with a migration message.

    The flag value is still parsed (so old scripts fail with a clear
    explanation and exit code 2 instead of an argparse usage error) but
    no code path behind it survives.
    """
    if getattr(args, "kernel", "batch") == "legacy":
        raise ConfigurationError(
            "--kernel legacy was removed: the scalar per-device loop and "
            "DeviceSimulator.collect() are gone. The columnar batch kernel "
            "is bit-for-bit identical for every configuration (this was "
            "gated in CI for a full release); drop the flag or pass "
            "--kernel batch."
        )


def cmd_simulate(args: argparse.Namespace) -> int:
    _check_kernel(args)
    faults = _fault_plan_from_args(args)
    resilience = _resilience_from_args(args)
    n_jobs = resolve_jobs(args.jobs, default=0)  # default: auto (CPU count)
    store_dir = None
    if args.store == "disk":
        store_dir = args.store_dir if args.store_dir is not None else args.out
    elif args.store_dir is not None:
        raise ConfigurationError("--store-dir requires --store disk")
    tracer = _start_telemetry(args)
    try:
        study = run_study(scale=args.scale, seed=args.seed, faults=faults,
                          n_jobs=n_jobs, resilience=resilience,
                          kernel=args.kernel, store_dir=store_dir,
                          store_format=args.store_format)
        args.out.mkdir(parents=True, exist_ok=True)
        if study.execution is not None:
            print(f"executor: {study.execution.describe()}")
        for year in study.years:
            if store_dir is not None:
                # The finalized store directory IS the saved campaign —
                # load_dataset() reads it memory-mapped; nothing to copy.
                path = Path(store_dir) / f"campaign{year}"
            else:
                path = args.out / f"campaign{year}"
                with get_tracer().span("save_dataset", year=year):
                    save_dataset(study.dataset(year), path)
            info = study.campaigns[year].execution
            shards = f", {info.n_shards} shards" if info is not None else ""
            print(f"saved {path} "
                  f"({study.dataset(year).n_devices} devices{shards})")
            report = study.campaigns[year].collection
            if report is not None and faults is not None:
                print(f"\ncampaign {year} collection:")
                print(render_collection_report(report))
                print()
        losses = [study.campaigns[y].losses for y in study.years
                  if study.campaigns[y].losses is not None]
        if losses:
            print()
            print(execution_losses_table(losses).render())
        if study.resilience is not None:
            print(study.resilience.describe())
        if tracer is not None:
            manifest = build_manifest(
                "simulate", tracer,
                config_hash=config_hash_of(
                    *(study.campaigns[y].config for y in study.years)
                ),
                seed=args.seed, scale=args.scale, years=list(study.years),
                kernel=args.kernel,
                execution=study.execution, shards=_study_shards(study),
                collection_reports={
                    y: study.campaigns[y].collection for y in study.years
                },
                resilience=study.resilience,
                losses=losses,
            )
            _write_manifest(manifest, args, args.out)
        _write_trace(tracer, args)
        return 0
    except Exception as exc:
        _write_failure_manifest("simulate", tracer, args, args.out, exc)
        raise
    finally:
        if tracer is not None:
            set_tracer(None)


def cmd_analyze(args: argparse.Namespace) -> int:
    names = _resolve_experiments(args.experiments)
    tracer = _start_telemetry(args)
    try:
        if args.data is not None:
            study = _load_study_from(args.data)
            skipped = [n for n in names if n in _SURVEY_EXPERIMENTS]
            if skipped:
                print(f"note: skipping survey experiments on saved data: "
                      f"{skipped}")
                names = [n for n in names if n not in _SURVEY_EXPERIMENTS]
        else:
            study = run_study(scale=args.scale, seed=args.seed)
        cache = AnalysisContext(study)
        if args.out is not None:
            args.out.mkdir(parents=True, exist_ok=True)
        for name in names:
            with get_tracer().span("experiment", experiment=name):
                result = run_experiment(name, cache)
            text = result.render() if hasattr(result, "render") else str(result)
            print(text)
            print()
            if args.out is not None:
                (args.out / f"{name}.txt").write_text(text + "\n")
        if args.cache_stats:
            print(cache.stats.render())
        if tracer is not None:
            manifest = build_manifest(
                "analyze", tracer,
                config_hash=(config_hash_of(str(args.data))
                             if args.data is not None
                             else config_hash_of(study.config)),
                seed=args.seed, scale=args.scale, years=list(study.years),
                execution=study.execution,
                shards=_study_shards(study) if study.execution else None,
                cache_stats=cache.stats,
                extra_counters={"experiments_run": len(names)},
            )
            _write_manifest(manifest, args,
                            args.out if args.out is not None else Path("."))
        _write_trace(tracer, args)
        return 0
    except Exception as exc:
        _write_failure_manifest(
            "analyze", tracer, args,
            args.out if args.out is not None else Path("."), exc,
        )
        raise
    finally:
        if tracer is not None:
            set_tracer(None)


def cmd_report(args: argparse.Namespace) -> int:
    from repro.reporting.summary import render_markdown, study_summary

    study = run_study(scale=args.scale, seed=args.seed)
    findings = study_summary(AnalysisContext(study))
    text = render_markdown(
        findings,
        title=f"Study summary (scale {args.scale}, seed {args.seed})",
    )
    print(text)
    if args.out is not None:
        args.out.write_text(text + "\n")
    return 0


def cmd_bench(args: argparse.Namespace) -> int:
    # Imported lazily: the bench harness pulls in the simulation layer,
    # which `repro list`/`repro validate` should not pay for.
    from repro.obs import bench as bench_harness

    if args.list_benchmarks:
        for case in bench_harness.discover_cases():
            print(f"{case.name:28s} {case.group:12s} {case.title}")
        return 0

    if args.check_only is not None:
        report = bench_harness.load_report(args.check_only)
    else:
        tracer = _start_telemetry(args)
        try:
            report = bench_harness.run_suite(
                scale=args.scale, seed=args.seed, repeat=args.repeat,
                warmup=args.warmup, only=args.benchmarks or None,
                progress=lambda message: print(f"  {message}", flush=True),
            )
            bench_harness.write_report(report, args.out)
            print(bench_harness.render_results(report))
            print(f"wrote {args.out}")
            if tracer is not None:
                manifest = build_manifest(
                    "bench", tracer,
                    config_hash=config_hash_of(
                        ("bench", args.scale, args.seed, args.repeat,
                         args.warmup)
                    ),
                    seed=args.seed, scale=args.scale,
                    extra_counters={"benchmarks_run": report["n_benchmarks"]},
                )
                _write_manifest(manifest, args, args.out.parent)
            _write_trace(tracer, args)
        except Exception as exc:
            _write_failure_manifest("bench", tracer, args,
                                    args.out.parent, exc)
            raise
        finally:
            if tracer is not None:
                set_tracer(None)

    failures = []
    for baseline_path in args.check or ():
        baseline = bench_harness.load_report(baseline_path)
        failures.extend(
            bench_harness.check_regression(
                report, baseline, factor=args.factor,
                baseline_name=baseline_path.name,
            )
        )
    if args.check:
        gate = "fail" if failures else "pass"
        baseline_names = [p.name for p in args.check]
        get_recorder().emit("verdict", source="bench", gate=gate,
                            n_failures=len(failures),
                            baselines=baseline_names)
        # History records one row per fresh benchmark run; re-gating a
        # saved report with --check-only must not append (or silently
        # drop a BENCH_history.jsonl into the cwd via the --out default).
        if args.check_only is None:
            from repro.obs.history import (
                append_history,
                bench_record,
                drift_warnings,
                load_history,
            )

            history_path = (args.history
                            or args.out.parent / "BENCH_history.jsonl")
            append_history(history_path,
                           bench_record(report, gate=gate,
                                        baselines=baseline_names))
            # Drift against the rolling history is advisory (stderr
            # only); the absolute --check gate alone decides the exit
            # code.
            for warning in drift_warnings(load_history(history_path)):
                print(f"warning: {warning}", file=sys.stderr)
    if failures:
        for failure in failures:
            print(f"REGRESSION: {failure}", file=sys.stderr)
        return 1
    if args.check:
        print(f"threshold check passed against {len(args.check)} "
              f"baseline(s) at factor {args.factor}x")
    return 0


def cmd_fidelity(args: argparse.Namespace) -> int:
    # Lazy: the scorer reaches up into the analysis layer.
    from repro.obs import fidelity as fidelity_mod

    _check_kernel(args)
    tracer = _start_telemetry(args)
    try:
        if args.data is not None:
            study = _load_study_from(args.data)
        else:
            n_jobs = resolve_jobs(args.jobs, default=1)
            study = run_study(scale=args.scale, seed=args.seed,
                              n_jobs=n_jobs, kernel=args.kernel)
        cache = AnalysisContext(study)
        report = fidelity_mod.score_fidelity(
            cache, checks=args.checks or None,
            scale=args.scale, seed=args.seed,
        )
        print(report.render())
        report.write(args.out)
        print(f"wrote {args.out}")

        if args.write_doc is not None:
            from repro.obs.docgen import rewrite_experiments_doc

            changed = rewrite_experiments_doc(args.write_doc, report)
            print(f"{'rewrote' if changed else 'unchanged:'} "
                  f"{args.write_doc}")

        manifest = None
        if tracer is not None:
            manifest = build_manifest(
                "fidelity", tracer,
                config_hash=(config_hash_of(str(args.data))
                             if args.data is not None
                             else config_hash_of(study.config)),
                seed=args.seed, scale=args.scale, years=list(study.years),
                kernel="" if args.data is not None else args.kernel,
                execution=study.execution,
                shards=_study_shards(study) if study.execution else None,
                cache_stats=cache.stats,
                extra_counters={
                    "fidelity_checks": len(report.records),
                    "fidelity_pass": report.n_pass,
                    "fidelity_warn": report.n_warn,
                    "fidelity_fail": report.n_fail,
                    "fidelity_skip": report.n_skip,
                },
            )
            _write_manifest(manifest, args, args.out.parent)

        history_path = (args.history
                        or args.out.parent / "FIDELITY_history.jsonl")
        failures = []
        if args.check is not None:
            from repro.obs.history import (
                append_history,
                drift_warnings,
                fidelity_record,
                load_history,
            )

            baseline = fidelity_mod.load_fidelity_report(args.check)
            failures = fidelity_mod.fidelity_regressions(
                report, baseline, baseline_name=args.check.name,
            )
            gate = "fail" if failures else "pass"
            get_recorder().emit("verdict", source="fidelity", gate=gate,
                                n_failures=len(failures),
                                baselines=[args.check.name])
            append_history(history_path,
                           fidelity_record(report.to_dict(), gate=gate))
            # Advisory only — the absolute baseline gate decides the code.
            for warning in drift_warnings(load_history(history_path)):
                print(f"warning: {warning}", file=sys.stderr)

        if args.report is not None:
            from repro.obs.bench import load_report as load_bench_report
            from repro.obs.history import load_history as load_history_file
            from repro.obs.report import write_run_report

            bench = (load_bench_report(args.bench)
                     if args.bench is not None else None)
            history = {"fidelity": load_history_file(history_path)}
            if args.bench is not None:
                history["bench"] = load_history_file(
                    args.bench.parent / "BENCH_history.jsonl"
                )
            write_run_report(
                args.report, manifest, fidelity=report, bench=bench,
                title=f"repro fidelity (scale {args.scale:g}, "
                      f"seed {args.seed})",
                history=history,
            )
            print(f"wrote run report {args.report}")
        _write_trace(tracer, args)

        if failures:
            for failure in failures:
                print(f"REGRESSION: {failure}", file=sys.stderr)
            return 1
        if args.check is not None:
            print(f"fidelity check passed against {args.check.name} "
                  f"({report.n_pass} pass, {report.n_warn} warn, "
                  f"{report.n_fail} fail, {report.n_skip} skip)")
        return 0
    except Exception as exc:
        _write_failure_manifest("fidelity", tracer, args,
                                args.out.parent, exc)
        raise
    finally:
        if tracer is not None:
            set_tracer(None)


def cmd_events(args: argparse.Namespace) -> int:
    from repro.obs.recorder import (
        format_event,
        load_events,
        reconstruct,
        summarize_events,
    )

    if not args.path.exists():
        raise ReproError(f"no event log at {args.path}")
    events = load_events(args.path)
    if args.tail is not None:
        selected = events[-args.tail:] if args.tail > 0 else []
        for event in selected:
            if args.json:
                print(json.dumps(event, separators=(",", ":"),
                                 default=str))
            else:
                print(format_event(event))
        return 0
    if args.postmortem:
        post = reconstruct(events)
        if args.json:
            print(json.dumps(post.to_dict(), indent=2, sort_keys=True,
                             default=str))
        else:
            print(post.render())
        return 0
    if args.json:
        counts: dict = {}
        for event in events:
            kind = str(event.get("kind", "?"))
            counts[kind] = counts.get(kind, 0) + 1
        post = reconstruct(events)
        print(json.dumps(
            {"n_events": len(events), "status": post.status,
             "duration_s": round(post.duration_s, 3), "counts": counts},
            indent=2, sort_keys=True,
        ))
        return 0
    print(summarize_events(events))
    return 0


def cmd_clean(args: argparse.Namespace) -> int:
    from repro.engine import transport
    from repro.traces.store import (
        list_orphan_partitions,
        sweep_orphan_partitions,
    )

    verb = "would remove" if args.dry_run else "removed"
    reclaimed = 0
    segments = transport.segment_names()
    if segments and not args.dry_run:
        transport.sweep_orphans()
    for name in segments:
        print(f"{verb} shm segment {name}")
    reclaimed += len(segments)
    cutoff = time.time() - args.max_age_h * 3600.0
    for root in (args.paths or [Path(".")]):
        if not root.exists():
            continue
        partitions = (list_orphan_partitions(root) if args.dry_run
                      else sweep_orphan_partitions(root))
        for name in partitions:
            print(f"{verb} orphan partition {name} under {root}")
        reclaimed += len(partitions)
        # Only canonical telemetry spellings: history JSONL never matches.
        stale = [
            found
            for pattern in ("events*.jsonl", "*.prom")
            for found in root.rglob(pattern)
            if found.is_file()
        ]
        for found in sorted(stale):
            try:
                if found.stat().st_mtime >= cutoff:
                    continue
                if not args.dry_run:
                    found.unlink()
            except OSError:
                continue
            print(f"{verb} stale telemetry file {found}")
            reclaimed += 1
    done_verb = "would reclaim" if args.dry_run else "reclaimed"
    print(f"{done_verb} {reclaimed} item(s)")
    return 0


def cmd_list(_args: argparse.Namespace) -> int:
    for experiment in list_experiments():
        print(f"{experiment.experiment_id:8s} {experiment.paper_item:12s} "
              f"{experiment.title}")
    return 0


def cmd_validate(args: argparse.Namespace) -> int:
    dataset = load_dataset(args.path)
    summary = validate_dataset(dataset)
    print(summary)
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    try:
        args = parser.parse_args(argv)
    except SystemExit as exc:
        # argparse exits for --version/--help (code 0) and usage errors
        # (code 2); surface those as return codes so embedding callers —
        # and the test suite — get a plain int instead of an exception.
        code = exc.code
        return code if isinstance(code, int) else (0 if code is None else 2)
    handlers = {
        "simulate": cmd_simulate,
        "analyze": cmd_analyze,
        "bench": cmd_bench,
        "fidelity": cmd_fidelity,
        "events": cmd_events,
        "clean": cmd_clean,
        "list": cmd_list,
        "report": cmd_report,
        "validate": cmd_validate,
    }
    recording = _start_recording(args)
    status, code = "failed", 1
    try:
        code = handlers[args.command](args)
        status = "ok" if code == 0 else "failed"
        return code
    except ChaosKill as exc:
        # The chaos harness killed the run mid-campaign on purpose;
        # a distinct exit code lets the CI smoke job (and the resume
        # tests) tell "interrupted as planned" from a real error.
        status, code = "interrupted", 3
        print(f"interrupted: {exc}", file=sys.stderr)
        return 3
    except ReproError as exc:
        status, code = "failed", 2
        print(f"error: {exc}", file=sys.stderr)
        return 2
    finally:
        # A SIGKILL (--chaos-kill-hard) never reaches here — by design:
        # the postmortem then reads "interrupted" from the missing
        # run_end, exactly what the black box is for.
        if recording is not None:
            recording.finish(status, code)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
