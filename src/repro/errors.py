"""Exception hierarchy for the :mod:`repro` package.

All library-specific errors derive from :class:`ReproError` so callers can
catch one base class at the API boundary.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigurationError(ReproError):
    """A configuration object is inconsistent or out of range."""


class SchemaError(ReproError):
    """A trace record or dataset violates the measurement schema."""


class DatasetError(ReproError):
    """A dataset operation failed (missing table, bad index, empty data)."""


class AnalysisError(ReproError):
    """An analysis was invoked on data that cannot support it."""


class CollectionError(ReproError):
    """The measurement-collection substrate hit an unrecoverable error."""


class EngineError(ReproError):
    """The sharded execution engine produced an invalid or incomplete run.

    Raised when shard outputs cannot be merged (missing/duplicate shards,
    device coverage mismatch) — an engine invariant violation, never a
    recoverable worker failure (those fall back to serial execution).
    """


class UploadError(CollectionError):
    """A batch upload to the collection server failed.

    This is the *retryable* transport-level failure: the uploader catches it
    and caches the batch for a later attempt. Misconfigured collection
    components (for example an out-of-range failure rate) raise
    :class:`ConfigurationError` instead — a config mistake is not an upload
    failure and must not be swallowed by retry logic.
    """
