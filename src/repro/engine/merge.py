"""Deterministic merge of shard-local results.

Workers return :class:`ShardOutput`s — picklable bundles of
:class:`~repro.traces.dataset.DatasetBuilder` column chunks plus
:class:`~repro.collection.pipeline.CollectionPump` accounting. The merge
layer reassembles them **in canonical shard order** (shard 0's devices
first, then shard 1's, …), which together with the builder's stable
(device, t) sort makes the frozen dataset bit-for-bit independent of how
many workers produced the pieces, or in what order they finished.

Merging validates engine invariants hard: every shard present exactly once,
device coverage matching the plan. A violated invariant raises
:class:`~repro.errors.EngineError` — a merge that silently dropped or
reordered a shard would corrupt results while looking healthy.

``allow_missing`` relaxes exactly one invariant — shards may be *absent* —
for ``--partial-results`` runs, where the resilience layer has already
recorded which shards were dropped (see
:class:`~repro.engine.resilience.ExecutionLosses`). Present shards are
still validated hard: no duplicates, no coverage mismatches.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.collection.faults import CollectionReport, DeviceCollectionStats
from repro.engine.planner import ShardPlan
from repro.engine.transport import ShardPayload
from repro.errors import EngineError
from repro.traces.dataset import DatasetBuilder

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.traces.store import CampaignStore, PartitionRef

#: table -> list of column chunks, as exported by DatasetBuilder.
ChunkMap = Dict[str, List[Dict[str, np.ndarray]]]


@dataclass
class ShardOutput:
    """Everything one shard's worker sends back to the merge layer.

    The columnar tables travel one of three ways: ``chunks`` carries them
    inline (serial execution, checkpoint reloads), ``payload`` references
    a shared-memory segment packed by a pool worker (see
    :mod:`repro.engine.transport`), and ``partition`` points at a store
    spill partition on disk (``--store disk``; see
    :meth:`spill` and :mod:`repro.traces.store`). :meth:`chunk_map` hides
    the difference from the merge layer; exactly one of the three is set.
    """

    shard_index: int
    device_ids: Tuple[int, ...]
    chunks: Optional[ChunkMap] = None
    #: Per-device collection accounting in canonical device order
    #: (empty when the campaign bypassed the collection pipeline).
    stats: List[DeviceCollectionStats] = field(default_factory=list)
    batches_received: int = 0
    duplicates_dropped: int = 0
    #: Exported telemetry span tree from the worker's local tracer
    #: (None when the run was untraced); the merge layer grafts it back
    #: into the parent's trace. Carries no simulation state.
    spans: Optional[dict] = None
    #: Shared-memory transport handle (parallel execution only).
    payload: Optional[ShardPayload] = None
    #: On-disk store partition holding this shard's columns
    #: (``--store disk`` only; set by :meth:`spill`).
    partition: Optional["PartitionRef"] = None
    #: Shared-memory bytes this shard moved before it was spilled to disk
    #: (keeps :attr:`transport_bytes` accounting once ``payload`` is gone).
    spilled_transport_bytes: int = 0

    def chunk_map(self) -> ChunkMap:
        """This shard's column chunks, wherever they live."""
        if self.payload is not None:
            return self.payload.chunk_map()
        if self.partition is not None:
            return self.partition.chunk_map()
        if self.chunks is None:
            raise EngineError(
                f"shard {self.shard_index} carries neither inline chunks, "
                f"a transport payload, nor a store partition"
            )
        return self.chunks

    @property
    def transport_bytes(self) -> int:
        """Bytes this shard moved through shared memory (0 if inline)."""
        if self.payload is not None:
            return self.payload.n_bytes
        return self.spilled_transport_bytes

    def spill(self, store: "CampaignStore", name: str) -> "ShardOutput":
        """Land this shard's columns in a store partition, release RAM.

        Returns a slim partition-backed copy: the chunk data now lives in
        ``store/parts/<name>/`` and the shared-memory segment (if any) is
        unmapped, so accepting a shard costs O(manifest) parent memory
        instead of O(rows). Collection stats and spans stay inline —
        they are small and the merge layer consumes them directly.
        """
        ref = store.write_partition(name, self.chunk_map())
        moved = self.transport_bytes
        if self.payload is not None:
            self.payload.release()
        return replace(self, chunks=None, payload=None, partition=ref,
                       spilled_transport_bytes=moved)

    def for_checkpoint(self) -> "ShardOutput":
        """A self-contained copy that pickles safely to a spill file.

        Shared-memory views must be materialised into ordinary arrays —
        the segment is unlinked the moment the shard is accepted, and a
        pickled view would drag the whole mapped buffer along. Span
        trees are grafted into the parent tracer at accept time and
        never replayed from a checkpoint, so they are dropped too.
        Partition-backed outputs checkpoint as just the
        :class:`~repro.traces.store.PartitionRef` — the checkpoint
        references the store partition instead of re-pickling the rows,
        and resume validates the partition's digest before trusting it.
        """
        if self.payload is None:
            return replace(self, spans=None) if self.spans else self
        return replace(self, chunks=self.payload.materialize(),
                       payload=None, spans=None)


def ordered_outputs(
    outputs: Sequence[Optional[ShardOutput]],
    plan: ShardPlan,
    allow_missing: bool = False,
) -> List[ShardOutput]:
    """Outputs sorted into canonical shard order, validated against ``plan``.

    ``None`` entries (dropped shards) are tolerated only with
    ``allow_missing``; present outputs are always validated for unique,
    in-range shard indexes and exact device coverage.
    """
    present = [out for out in outputs if out is not None]
    if not allow_missing and len(present) != plan.n_shards:
        raise EngineError(
            f"expected {plan.n_shards} shard outputs, got {len(present)}"
        )
    by_index = sorted(present, key=lambda out: out.shard_index)
    seen = set()
    for out in by_index:
        if not 0 <= out.shard_index < plan.n_shards:
            raise EngineError(
                f"shard index {out.shard_index} outside plan "
                f"(n_shards={plan.n_shards})"
            )
        if out.shard_index in seen:
            raise EngineError(
                f"missing or duplicate shard: index {out.shard_index} "
                f"appears more than once"
            )
        seen.add(out.shard_index)
        shard = plan.shards[out.shard_index]
        if tuple(out.device_ids) != shard.device_ids:
            raise EngineError(
                f"shard {shard.index} covered devices {out.device_ids}, "
                f"plan expected {shard.device_ids}"
            )
    if not allow_missing and len(by_index) != plan.n_shards:
        raise EngineError(
            f"missing or duplicate shard: expected {plan.n_shards} unique "
            f"shards, got {len(by_index)}"
        )
    return by_index


def missing_shards(
    outputs: Sequence[Optional[ShardOutput]], plan: ShardPlan
) -> Tuple[int, ...]:
    """Plan shard indexes with no output (the dropped shards)."""
    covered = {out.shard_index for out in outputs if out is not None}
    return tuple(
        shard.index for shard in plan.shards if shard.index not in covered
    )


def merge_chunks(
    builder: DatasetBuilder,
    outputs: Sequence[Optional[ShardOutput]],
    plan: ShardPlan,
    allow_missing: bool = False,
) -> None:
    """Append every shard's column chunks to ``builder`` canonically.

    Shared-memory shards contribute zero-copy views straight off their
    segment buffers; the builder holds those views until ``build()``
    concatenates them, so no intermediate row objects or array copies
    exist between worker and frozen dataset.
    """
    for out in ordered_outputs(outputs, plan, allow_missing=allow_missing):
        builder.merge_chunks(out.chunk_map())


def merge_reports(
    outputs: Sequence[Optional[ShardOutput]],
    plan: ShardPlan,
    n_slots: int,
    allow_missing: bool = False,
) -> CollectionReport:
    """Roll shard-local collection accounting into one campaign report.

    Device stats are concatenated in canonical shard order — identical to
    the order a serial run records them in — and the server-side counters
    are summed. Dropped shards (``allow_missing``) simply contribute
    nothing: their devices are absent from the report, exactly like users
    whose data never reached the server.
    """
    devices: List[DeviceCollectionStats] = []
    batches_received = 0
    duplicates_dropped = 0
    for out in ordered_outputs(outputs, plan, allow_missing=allow_missing):
        if len(out.stats) != len(out.device_ids):
            raise EngineError(
                f"shard {out.shard_index} returned {len(out.stats)} device "
                f"stats for {len(out.device_ids)} devices"
            )
        devices.extend(out.stats)
        batches_received += out.batches_received
        duplicates_dropped += out.duplicates_dropped
    return CollectionReport(
        n_slots=n_slots,
        devices=devices,
        batches_received=batches_received,
        duplicates_dropped=duplicates_dropped,
    )
