"""Self-healing campaign execution: checkpoints, retries, loss accounting.

This module is the engine-level analogue of the collection layer's
``FaultPlan`` philosophy: instead of one blanket "anything failed → run it
all serially" fallback, every failure mode gets an explicit state and an
explicit recovery path:

- :class:`ShardFailure` / :class:`ShardAttemptLog` — structured,
  classified records of every failed attempt (``crash`` vs ``timeout`` vs
  ``broken-pool`` vs ``submit``), surfaced through
  :class:`~repro.obs.metrics.MetricsRegistry` and the run manifest instead
  of a silently incremented fallback counter.
- :class:`RetryPolicy` — bounded in-pool retries with exponential backoff
  and *deterministic seeded jitter*, plus a deadline-based per-shard
  timeout measured from the moment a shard actually starts (never from its
  position in the submission queue).
- :class:`CheckpointStore` — a spill directory of completed
  :class:`~repro.engine.merge.ShardOutput`\\ s keyed by
  ``(config hash, seed, shard index)``, checksummed and written atomically,
  so an interrupted campaign resumes exactly where it left off —
  bit-identical to an uninterrupted run. Stale directories (config hash or
  seed mismatch) are refused on resume rather than merged.
- :class:`ExecutionLosses` — explicit accounting when ``--partial-results``
  drops shards that exhausted every retry, mirroring the collection
  layer's completeness reporting.

Determinism note: nothing here touches RNG streams. Retries re-run the
same pure ``simulate_shard`` work unit, checkpoints byte-preserve its
output, and jitter draws come from a dedicated hash, so the engine's
``n_jobs=1 == n_jobs=k`` bit-identity guarantee survives every recovery
path (pinned by ``tests/test_resilience.py``).
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from repro.errors import ConfigurationError
from repro.obs.recorder import get_recorder

__all__ = [
    "FAILURE_CRASH",
    "FAILURE_TIMEOUT",
    "FAILURE_BROKEN_POOL",
    "FAILURE_SUBMIT",
    "ShardFailure",
    "ShardAttemptLog",
    "RetryPolicy",
    "CheckpointStore",
    "ExecutionLosses",
    "ResilienceConfig",
    "ResilienceReport",
    "classify_exception",
    "config_key",
]

#: Failure kinds an attempt can be classified as.
FAILURE_CRASH = "crash"          # the work function raised in a worker
FAILURE_TIMEOUT = "timeout"      # the shard blew its start-based deadline
FAILURE_BROKEN_POOL = "broken-pool"  # the process pool itself died
FAILURE_SUBMIT = "submit"        # the pool could not be built or fed


def classify_exception(exc: BaseException) -> str:
    """Map an executor-observed exception to a failure kind."""
    from concurrent.futures import BrokenExecutor, CancelledError, TimeoutError

    if isinstance(exc, BrokenExecutor):
        return FAILURE_BROKEN_POOL
    if isinstance(exc, CancelledError):
        # Futures are only cancelled when their pool is being torn down.
        return FAILURE_BROKEN_POOL
    if isinstance(exc, TimeoutError):
        return FAILURE_TIMEOUT
    return FAILURE_CRASH


def describe_exception(exc: BaseException) -> str:
    """``"TypeName: message"`` for failure records (picklable, bounded)."""
    text = str(exc)
    if len(text) > 200:
        text = text[:197] + "..."
    return f"{type(exc).__name__}: {text}" if text else type(exc).__name__


@dataclass(frozen=True)
class ShardFailure:
    """One classified failed attempt of one work unit."""

    unit_index: int
    #: 1-based attempt number this failure ended.
    attempt: int
    kind: str
    error: str
    elapsed_s: float = 0.0

    def to_dict(self) -> dict:
        return {
            "unit": self.unit_index, "attempt": self.attempt,
            "kind": self.kind, "error": self.error,
            "elapsed_s": round(self.elapsed_s, 3),
        }


#: Outcomes a unit's attempt log can end in.
OUTCOME_OK = "ok"             # first pool (or inline) attempt succeeded
OUTCOME_RETRIED = "retried"   # an in-pool retry succeeded
OUTCOME_FALLBACK = "fallback"  # serial re-run in the parent succeeded
OUTCOME_DROPPED = "dropped"   # exhausted every recovery; partial mode
OUTCOME_FAILED = "failed"     # exhausted every recovery; strict mode


@dataclass
class ShardAttemptLog:
    """Per-unit attempt/outcome history for one executor run."""

    unit_index: int
    #: Pool/inline attempts charged against the retry budget.
    attempts: int = 0
    outcome: str = "pending"
    failures: List[ShardFailure] = field(default_factory=list)

    def to_dict(self) -> dict:
        return {
            "unit": self.unit_index, "attempts": self.attempts,
            "outcome": self.outcome,
            "failures": [f.to_dict() for f in self.failures],
        }


def _unit_draw(seed: int, *key: object) -> float:
    """Deterministic uniform draw in ``[0, 1)`` from a hash of ``key``."""
    digest = hashlib.sha256(repr((seed,) + key).encode()).digest()
    return int.from_bytes(digest[:8], "big") / float(1 << 64)


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded in-pool retries with deterministic backoff.

    ``max_attempts`` counts pool executions of a unit (1 disables retry;
    the legacy serial fallback in the parent is *not* an attempt — it is
    the last resort after the budget is spent). Backoff for attempt ``k``
    is ``base * factor**(k-1)`` capped at ``backoff_max_s``, then jittered
    by up to ``±jitter_frac`` using a seeded hash of the unit — the same
    run always sleeps the same amounts, so chaos tests are reproducible.

    ``shard_timeout_s`` is a *deadline measured from the moment the shard
    is observed running*: a shard queued behind slow siblings is never
    charged for its time in the queue, and a run's total stall from hung
    workers is bounded by the deadline itself rather than by
    ``n_shards × timeout`` sequential waits.
    """

    max_attempts: int = 3
    backoff_base_s: float = 0.05
    backoff_factor: float = 2.0
    backoff_max_s: float = 5.0
    jitter_frac: float = 0.25
    seed: int = 0
    shard_timeout_s: Optional[float] = None

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ConfigurationError(
                f"max_attempts must be >= 1: {self.max_attempts}"
            )
        if self.backoff_base_s < 0 or self.backoff_max_s < 0:
            raise ConfigurationError("backoff seconds must be >= 0")
        if self.backoff_factor < 1.0:
            raise ConfigurationError(
                f"backoff_factor must be >= 1: {self.backoff_factor}"
            )
        if not 0.0 <= self.jitter_frac < 1.0:
            raise ConfigurationError(
                f"jitter_frac must be in [0, 1): {self.jitter_frac}"
            )
        if self.shard_timeout_s is not None and self.shard_timeout_s <= 0:
            raise ConfigurationError(
                f"shard_timeout_s must be positive: {self.shard_timeout_s}"
            )

    def backoff_s(self, unit_key: object, attempt: int) -> float:
        """Deterministic sleep before retrying ``unit_key``'s ``attempt``."""
        raw = min(
            self.backoff_max_s,
            self.backoff_base_s * self.backoff_factor ** max(0, attempt - 1),
        )
        if raw <= 0.0 or self.jitter_frac == 0.0:
            return raw
        draw = _unit_draw(self.seed, "backoff", unit_key, attempt)
        return raw * (1.0 + self.jitter_frac * (2.0 * draw - 1.0))


def config_key(config: object) -> str:
    """Stable short hash of one campaign config (canonical repr)."""
    return hashlib.sha256(repr(config).encode()).hexdigest()[:16]


# ---------------------------------------------------------------------------
# Checkpoint store
# ---------------------------------------------------------------------------

_META_NAME = "checkpoint_meta.json"
_MAGIC = b"RCKPT1\n"
_FILE_GLOB = "ckpt-*.bin"


class CheckpointStore:
    """Spill directory of completed shard outputs, keyed and checksummed.

    Each completed :class:`~repro.engine.merge.ShardOutput` is pickled,
    prefixed with a JSON header carrying ``(config key, seed, shard
    index)`` plus a SHA-256 of the payload, and written atomically
    (temp file + ``os.replace``) so a kill mid-write never leaves a
    half-checkpoint that parses. ``checkpoint_meta.json`` records the run
    identity; :meth:`initialize` refuses to resume over a directory that
    was written by a different configuration or seed, and silently purges
    one when starting fresh.

    A corrupted file (bad magic, header mismatch, checksum mismatch,
    truncation) is never an error on load: the shard is counted in
    :attr:`corrupt`, the file is deleted, and the shard is re-simulated —
    graceful degradation, identical results.
    """

    def __init__(self, root: Union[str, Path]) -> None:
        self.root = Path(root)
        self.saved = 0
        self.hits = 0
        self.misses = 0
        self.corrupt = 0

    # -- identity ----------------------------------------------------------

    def initialize(self, identity: dict, resume: bool) -> None:
        """Bind the directory to one run identity (or validate it).

        ``identity`` must be a JSON-serialisable dict of everything that
        determines checkpoint compatibility (config hashes, seed, shard
        layout). On ``resume`` a mismatch raises
        :class:`~repro.errors.ConfigurationError`; on a fresh run a stale
        directory is purged and rebound.
        """
        self.root.mkdir(parents=True, exist_ok=True)
        meta_path = self.root / _META_NAME
        stored: Optional[dict] = None
        if meta_path.exists():
            try:
                stored = json.loads(meta_path.read_text())
            except ValueError:
                stored = None
        if stored == identity and stored is not None:
            return
        if resume:
            if stored is None and not any(self.root.glob(_FILE_GLOB)):
                # Cold resume over an empty directory is just a fresh run.
                pass
            elif stored is None:
                raise ConfigurationError(
                    f"--resume: {self.root} contains checkpoints but no "
                    f"readable {_META_NAME}; refusing to merge shards of "
                    f"unknown provenance"
                )
            else:
                diffs = sorted(
                    k for k in set(stored) | set(identity)
                    if stored.get(k) != identity.get(k)
                )
                raise ConfigurationError(
                    f"--resume: checkpoint directory {self.root} was "
                    f"written by a different run (mismatched: "
                    f"{', '.join(diffs) or 'identity'}); refusing to merge "
                    f"stale shards — point --checkpoint-dir elsewhere or "
                    f"drop --resume to start fresh"
                )
        self.purge()
        meta_path.write_text(
            json.dumps(identity, indent=2, sort_keys=True) + "\n"
        )

    def purge(self) -> int:
        """Delete every checkpoint file (not the directory); returns count."""
        n = 0
        for path in self.root.glob(_FILE_GLOB):
            path.unlink()
            n += 1
        return n

    # -- shard files -------------------------------------------------------

    def path_for(self, key: str, seed: int, shard_index: int) -> Path:
        return self.root / f"ckpt-{key}-s{seed}-shard{shard_index:04d}.bin"

    def save(self, key: str, seed: int, shard_index: int,
             output: object) -> Path:
        """Atomically persist one completed shard output."""
        payload = pickle.dumps(output, protocol=pickle.HIGHEST_PROTOCOL)
        header = json.dumps(
            {"key": key, "seed": seed, "shard": shard_index,
             "sha256": hashlib.sha256(payload).hexdigest(),
             "n_bytes": len(payload)},
            sort_keys=True,
        ).encode()
        path = self.path_for(key, seed, shard_index)
        tmp = path.with_suffix(".tmp")
        tmp.write_bytes(_MAGIC + header + b"\n" + payload)
        os.replace(tmp, path)
        self.saved += 1
        return path

    def load(self, key: str, seed: int, shard_index: int) -> Optional[object]:
        """The checkpointed output, or None when absent or corrupted.

        Corruption (chaos-injected or real) deletes the file and counts in
        :attr:`corrupt` so the caller re-simulates the shard.
        """
        path = self.path_for(key, seed, shard_index)
        if not path.exists():
            self.misses += 1
            return None
        try:
            data = path.read_bytes()
            if not data.startswith(_MAGIC):
                raise ValueError("bad magic")
            header_line, sep, payload = data[len(_MAGIC):].partition(b"\n")
            if not sep:
                raise ValueError("truncated header")
            header = json.loads(header_line)
            if (header["key"], header["seed"], header["shard"]) != \
                    (key, seed, shard_index):
                raise ValueError("header/key mismatch")
            if header["n_bytes"] != len(payload):
                raise ValueError("truncated payload")
            if hashlib.sha256(payload).hexdigest() != header["sha256"]:
                raise ValueError("checksum mismatch")
            output = pickle.loads(payload)
        except Exception:
            self.corrupt += 1
            get_recorder().emit("checkpoint_loaded", corrupt=True,
                                shard=shard_index, seed=seed)
            try:
                path.unlink()
            except OSError:  # pragma: no cover - racing cleanup only
                pass
            return None
        self.hits += 1
        return output


# ---------------------------------------------------------------------------
# Loss accounting and run-level configuration
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class ExecutionLosses:
    """Explicit accounting of shards dropped under ``--partial-results``."""

    year: int
    n_shards: int
    dropped_shards: Tuple[int, ...]
    n_devices: int
    dropped_devices: int

    @property
    def shard_completeness(self) -> float:
        if self.n_shards == 0:
            return 1.0
        return 1.0 - len(self.dropped_shards) / self.n_shards

    @property
    def device_completeness(self) -> float:
        if self.n_devices == 0:
            return 1.0
        return 1.0 - self.dropped_devices / self.n_devices

    def describe(self) -> str:
        return (
            f"campaign {self.year}: dropped "
            f"{len(self.dropped_shards)}/{self.n_shards} shards "
            f"({self.dropped_devices}/{self.n_devices} devices; "
            f"device completeness {self.device_completeness:.1%})"
        )

    def to_dict(self) -> dict:
        return {
            "year": self.year, "n_shards": self.n_shards,
            "dropped_shards": list(self.dropped_shards),
            "n_devices": self.n_devices,
            "dropped_devices": self.dropped_devices,
            "device_completeness": round(self.device_completeness, 6),
        }


@dataclass
class ResilienceConfig:
    """How a campaign (or study) should self-heal.

    ``chaos`` optionally carries a
    :class:`~repro.engine.chaos.ChaosPlan`; it is typed loosely so this
    module stays importable below the chaos harness.
    """

    store: Optional[CheckpointStore] = None
    resume: bool = False
    policy: Optional[RetryPolicy] = None
    partial: bool = False
    chaos: Optional[object] = None

    def __post_init__(self) -> None:
        if self.resume and self.store is None:
            raise ConfigurationError(
                "--resume needs a checkpoint store (--checkpoint-dir)"
            )


@dataclass
class ResilienceReport:
    """Aggregated self-healing accounting for one run.

    Rides on :class:`~repro.simulation.campaign.CampaignResult` /
    :class:`~repro.simulation.study.Study` and lands in the run manifest
    (``shard_attempts``) and :class:`~repro.obs.metrics.MetricsRegistry`
    counters.
    """

    #: Per-shard attempt history: ``{"year", "shard", "attempts",
    #: "outcome", "failures": [...]}`` in canonical unit order.
    shard_attempts: List[dict] = field(default_factory=list)
    retries: int = 0
    fallbacks: int = 0
    dropped_shards: int = 0
    failures_by_kind: Dict[str, int] = field(default_factory=dict)
    checkpoint_saved: int = 0
    checkpoint_hits: int = 0
    checkpoint_corrupt: int = 0

    @property
    def n_failures(self) -> int:
        return sum(self.failures_by_kind.values())

    def describe(self) -> str:
        parts = [f"{self.retries} retried", f"{self.fallbacks} fell back"]
        if self.dropped_shards:
            parts.append(f"{self.dropped_shards} dropped")
        if self.checkpoint_hits or self.checkpoint_saved:
            parts.append(
                f"checkpoints: {self.checkpoint_hits} reused, "
                f"{self.checkpoint_saved} saved"
                + (f", {self.checkpoint_corrupt} corrupt"
                   if self.checkpoint_corrupt else "")
            )
        kinds = ", ".join(
            f"{kind}={n}" for kind, n in sorted(self.failures_by_kind.items())
        )
        if kinds:
            parts.append(f"failures: {kinds}")
        return "resilience: " + "; ".join(parts)
