"""Deterministic fault injection for the execution engine.

The engine-level analogue of the collection layer's ``FaultPlan``: a
:class:`ChaosPlan` selects shards (by seeded hash or explicitly) and makes
their first ``k`` attempts crash, hang, or — parent-side — kills the whole
campaign after ``n`` completed shards. ``tests/test_resilience.py`` uses it
to prove the ``n_jobs=1 == n_jobs=k`` bit-identity guarantee survives every
injected failure mode; the CI chaos-smoke job drives the same plans
through the CLI.

Attempt counting must agree across *processes* (a retry may land on a
fresh pool worker that has never seen the shard), so attempts are counted
with ``O_EXCL`` marker files under :attr:`ChaosPlan.state_dir` — the
injection schedule is a pure function of ``(seed, unit key, attempt)``
regardless of scheduling, worker count, or which process runs the retry.

:func:`corrupt_checkpoints` deterministically damages checkpoint files
(truncation or a flipped payload byte) to exercise the store's
checksum-and-recompute path.
"""

from __future__ import annotations

import hashlib
import os
import signal
import time
from dataclasses import dataclass
from itertools import count
from pathlib import Path
from typing import List, Optional, Tuple, Union

from repro.errors import ConfigurationError, ReproError
from repro.obs.recorder import get_recorder

__all__ = [
    "ChaosCrash",
    "ChaosKill",
    "ChaosPlan",
    "ChaosInjector",
    "ChaosMonkey",
    "corrupt_checkpoints",
    "unit_key_of",
]


class ChaosCrash(RuntimeError):
    """The injected worker-side failure (picklable across the pool)."""


class ChaosKill(ReproError):
    """Parent-side campaign interruption after ``kill_after_shards``."""


def unit_key_of(work: object) -> str:
    """Stable identity of one work unit across processes and runs.

    Shard work units key as ``"<year>:<shard_index>"``; anything else
    (plain test payloads) keys as its ``repr``.
    """
    shard = getattr(work, "shard_index", None)
    config = getattr(work, "config", None)
    if shard is not None and config is not None:
        return f"{getattr(config, 'year', '?')}:{shard}"
    return repr(work)


def _draw(seed: int, salt: str, key: str) -> float:
    """Deterministic uniform draw in ``[0, 1)``."""
    digest = hashlib.sha256(f"{seed}|{salt}|{key}".encode()).digest()
    return int.from_bytes(digest[:8], "big") / float(1 << 64)


@dataclass(frozen=True)
class ChaosPlan:
    """What to break, how often, and for how many attempts.

    Rate-based selection (``crash_rate``/``hang_rate``) draws once per
    unit key from a seeded hash; ``crash_units``/``hang_units`` name unit
    keys explicitly (see :func:`unit_key_of`). A selected unit misbehaves
    on its first ``*_attempts`` attempts and then behaves, so retry
    budgets can be tested exactly; set ``*_attempts`` beyond the retry
    budget to model a permanently poisoned shard.

    ``hard`` upgrades crashes from a raised :class:`ChaosCrash` to
    ``os._exit`` — a real worker death that breaks the whole process pool.
    Never combine ``hard`` with serial execution or strict-mode serial
    fallback: the parent process would die.
    """

    crash_rate: float = 0.0
    crash_attempts: int = 1
    crash_units: Tuple[str, ...] = ()
    hang_rate: float = 0.0
    hang_attempts: int = 1
    hang_units: Tuple[str, ...] = ()
    hang_s: float = 1.0
    hard: bool = False
    #: Parent-side: raise :class:`ChaosKill` once this many shards have
    #: completed (checkpoints included) — models a mid-campaign kill.
    kill_after_shards: Optional[int] = None
    #: Upgrade the parent-side kill from a raised :class:`ChaosKill`
    #: (orderly, exit 3) to ``SIGKILL`` on the parent process itself —
    #: the real ``kill -9`` the flight recorder must survive. No cleanup
    #: runs; only the recorder's already-flushed events remain.
    kill_hard: bool = False
    seed: int = 0
    #: Cross-process attempt-marker directory; required whenever worker
    #: faults (crash/hang) are injected.
    state_dir: Optional[Union[str, Path]] = None

    def __post_init__(self) -> None:
        for name in ("crash_rate", "hang_rate"):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ConfigurationError(f"{name} must be in [0, 1]: {rate}")
        if self.crash_attempts < 1 or self.hang_attempts < 1:
            raise ConfigurationError("chaos *_attempts must be >= 1")
        if self.hang_s < 0:
            raise ConfigurationError(f"hang_s must be >= 0: {self.hang_s}")
        if self.kill_after_shards is not None and self.kill_after_shards < 1:
            raise ConfigurationError(
                f"kill_after_shards must be >= 1: {self.kill_after_shards}"
            )
        if self.kill_hard and self.kill_after_shards is None:
            raise ConfigurationError(
                "kill_hard needs kill_after_shards to know when to strike"
            )
        if self.injects_worker_faults and self.state_dir is None:
            raise ConfigurationError(
                "chaos worker faults (crash/hang) need a state_dir for "
                "cross-process attempt counting"
            )

    @property
    def injects_worker_faults(self) -> bool:
        return bool(self.crash_rate or self.hang_rate
                    or self.crash_units or self.hang_units)

    def selects(self, kind: str, key: str) -> bool:
        """Whether this plan injects ``kind`` (crash|hang) for ``key``."""
        explicit = self.crash_units if kind == "crash" else self.hang_units
        if key in explicit:
            return True
        rate = self.crash_rate if kind == "crash" else self.hang_rate
        return rate > 0.0 and _draw(self.seed, kind, key) < rate


class ChaosInjector:
    """Picklable wrapper running a work function under a chaos plan.

    Wraps the engine's work function (``simulate_shard``) transparently:
    the executor retries, times out, and falls back exactly as it would
    for real failures, and a surviving attempt returns the *same* output
    an unchaosed run would — chaos schedules failures, never results.
    """

    def __init__(self, fn, plan: ChaosPlan) -> None:
        if plan.injects_worker_faults and plan.state_dir is None:
            raise ConfigurationError("ChaosInjector needs plan.state_dir")
        self.fn = fn
        self.plan = plan

    def __call__(self, work):
        plan = self.plan
        key = unit_key_of(work)
        attempt = self._next_attempt(key)
        if plan.selects("crash", key) and attempt <= plan.crash_attempts:
            get_recorder().emit("chaos", fault="crash", shard=key,
                                attempt=attempt, hard=plan.hard)
            if plan.hard:
                os._exit(3)
            raise ChaosCrash(
                f"injected crash: unit {key}, attempt {attempt}"
            )
        if plan.selects("hang", key) and attempt <= plan.hang_attempts:
            # Sleep, then finish normally: the parent's deadline fires and
            # retries while this straggler's late result is ignored.
            get_recorder().emit("chaos", fault="hang", shard=key,
                                attempt=attempt, hang_s=plan.hang_s)
            time.sleep(plan.hang_s)
        return self.fn(work)

    def _next_attempt(self, key: str) -> int:
        """Cross-process 1-based attempt index for ``key`` (O_EXCL markers)."""
        state = Path(self.plan.state_dir)
        state.mkdir(parents=True, exist_ok=True)
        safe = hashlib.sha256(key.encode()).hexdigest()[:24]
        for attempt in count(1):
            marker = state / f"{safe}.attempt{attempt}"
            try:
                fd = os.open(marker, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
            except FileExistsError:
                continue
            os.close(fd)
            return attempt
        raise AssertionError("unreachable")  # pragma: no cover


class ChaosMonkey:
    """Parent-side kill switch counting completed shards."""

    def __init__(self, plan: ChaosPlan) -> None:
        self.plan = plan
        self.completed = 0

    def on_shard_complete(self) -> None:
        self.completed += 1
        kill_after = self.plan.kill_after_shards
        if kill_after is not None and self.completed >= kill_after:
            # Emit before striking: the recorder's O_APPEND write is
            # already durable when the signal lands, so even the hard
            # kill leaves the chaos event in the black box.
            get_recorder().emit(
                "chaos", fault="kill", shard=self.completed,
                hard=self.plan.kill_hard,
            )
            if self.plan.kill_hard:
                # The genuine article: SIGKILL to the parent, no Python
                # cleanup, no atexit sweeps — exactly what the flight
                # recorder's crash-durability contract is tested against.
                os.kill(os.getpid(), signal.SIGKILL)
            raise ChaosKill(
                f"chaos kill: campaign interrupted after "
                f"{self.completed} completed shards "
                f"(checkpoints, if any, were retained)"
            )


def corrupt_checkpoints(
    checkpoint_dir: Union[str, Path],
    rate: float = 1.0,
    seed: int = 0,
    mode: str = "truncate",
) -> List[Path]:
    """Deterministically damage checkpoint files; returns those corrupted.

    ``mode`` is ``"truncate"`` (drop the second half of the file) or
    ``"flip"`` (invert one payload byte) — both defeat the store's
    checksum so the shard is re-simulated on resume.
    """
    if mode not in ("truncate", "flip"):
        raise ConfigurationError(f"unknown corruption mode: {mode!r}")
    if not 0.0 <= rate <= 1.0:
        raise ConfigurationError(f"rate must be in [0, 1]: {rate}")
    corrupted: List[Path] = []
    for path in sorted(Path(checkpoint_dir).glob("ckpt-*.bin")):
        if _draw(seed, "corrupt", path.name) >= rate:
            continue
        data = path.read_bytes()
        if mode == "truncate":
            path.write_bytes(data[: len(data) // 2])
        else:
            middle = len(data) // 2
            path.write_bytes(
                data[:middle] + bytes([data[middle] ^ 0xFF])
                + data[middle + 1:]
            )
        corrupted.append(path)
    return corrupted
