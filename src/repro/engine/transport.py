"""Zero-copy shard transport over POSIX shared memory.

A worker that finishes a shard no longer pickles its columnar
``ChunkMap`` (a few hundred KB to tens of MB of numpy arrays) through the
process-pool result queue. Instead it *packs* every chunk column into one
:mod:`multiprocessing.shared_memory` segment and returns a tiny picklable
:class:`ShardPayload` handle — segment name plus a per-column manifest of
``(table, chunk, column, dtype, shape, offset)``. The parent *attaches*
to the segment and gets numpy views straight over the shared buffer; the
merge layer concatenates from those views without ever materialising
row objects or intermediate copies.

Lifecycle discipline (the part that makes chaos kills safe):

- **Names are run-scoped.** Every segment is named
  ``repro-shm-<token>-<pid>-<seq>`` where ``token`` is the parent run's
  random token (minted by :func:`run_token`, *never* from the simulation
  RNG) handed to workers inside the work unit, ``pid`` is the packing
  worker and ``seq`` a per-process counter. A run can therefore find all
  of its segments by prefix without guessing.
- **Unlink early.** The parent unlinks a segment the moment it attaches:
  POSIX keeps the memory alive while mapped, so the ``/dev/shm`` entry
  only exists for the in-flight window between worker pack and parent
  accept. A clean run leaves nothing behind by construction.
- **Janitor for the rest.** Segments whose result was never accepted —
  a chaos-killed parent loop, a timed-out shard on a discarded pool, a
  straggler worker finishing after shutdown — are reclaimed by
  :func:`sweep_orphans`, which the campaign/study runners call in their
  ``finally`` blocks (scoped to the run token) and which tests and the
  CLI can call unscoped to reap leftovers of killed processes.

Resource-tracker etiquette: :meth:`SharedMemory.unlink` unregisters the
segment itself, so only :meth:`ShardPayload.pack` (the create side, on
success) unregisters manually — the packing worker hands ownership to the
parent and must not let its tracker unlink the segment at exit. Attach
registrations (Python pre-3.13 registers on attach too) are balanced by
the ``unlink()`` every accepted payload receives.

Determinism: this module moves bytes; it never reorders, re-keys, or
draws anything. ``chunk_map()`` reconstructs the exact per-table chunk
lists the worker exported, so merged datasets are bit-identical to the
pickled-``chunks`` transport it replaces (pinned by
``tests/test_transport.py``).
"""

from __future__ import annotations

import os
from multiprocessing import resource_tracker, shared_memory
from pathlib import Path
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.errors import EngineError

__all__ = [
    "SEGMENT_PREFIX",
    "ShardPayload",
    "run_token",
    "segment_names",
    "segment_bytes",
    "sweep_orphans",
]

#: Every repro segment name starts with this; the janitor sweeps by it.
SEGMENT_PREFIX = "repro-shm-"

#: Where POSIX shared memory is visible as files (Linux). On platforms
#: without it the sweep degrades to a no-op — segments still unlink on
#: the accept path, only the orphan janitor loses its by-name scan.
SHM_DIR = Path("/dev/shm")

#: Pack columns at 16-byte boundaries so every view is safely aligned
#: for any dtype numpy emits (the widest here is complex128/16 bytes).
_ALIGN = 16

_token: Optional[str] = None
_seq = 0


def run_token() -> str:
    """This process's transport token (minted once, os-random).

    The token namespaces segment names per run so sweeps cannot touch a
    concurrent process's segments. It comes from :func:`os.urandom`, not
    from any simulation RNG stream — transport must never advance
    simulation draws.
    """
    global _token
    if _token is None:
        _token = os.urandom(6).hex()
    return _token


def _next_name(token: str) -> str:
    global _seq
    _seq += 1
    return f"{SEGMENT_PREFIX}{token}-{os.getpid()}-{_seq}"


def _untrack(shm: shared_memory.SharedMemory) -> None:
    """Opt this segment out of the resource tracker's exit-time unlink.

    Called exactly once per segment, by the packing worker after a
    successful pack: ownership moves to the parent, so the worker's
    tracker must forget the name (it would otherwise unlink the live
    segment when the worker exits). Every other lifecycle path goes
    through :meth:`SharedMemory.unlink`, which does its own unregister —
    adding a manual one there would double-unregister and make the
    tracker log KeyErrors. Best-effort: the private name attribute and
    the tracker API are stable across supported versions, but a refusal
    only costs a spurious warning, never correctness.
    """
    try:
        resource_tracker.unregister(shm._name, "shared_memory")
    except Exception:  # pragma: no cover - tracker internals shifted
        pass


# Manifest rows are plain tuples so a payload pickles small and fast:
# (table, chunk index, column, dtype str, shape, byte offset).
_ManifestRow = Tuple[str, int, str, str, Tuple[int, ...], int]

#: The interchange structure this module transports (see
#: :meth:`repro.traces.dataset.DatasetBuilder.export_chunks`).
ChunkMap = Dict[str, List[Dict[str, np.ndarray]]]


class ShardPayload:
    """Picklable handle to one shard's ``ChunkMap`` in shared memory.

    Workers build one with :meth:`pack`; the parent calls :meth:`attach`
    (implicitly via :meth:`chunk_map`) to get zero-copy numpy views, and
    :meth:`unlink` as soon as the result is accepted. :meth:`materialize`
    deep-copies the views into ordinary arrays for checkpoint spills —
    pickling a view would drag the whole segment buffer along and break
    once the segment is gone.
    """

    def __init__(self, name: str, tables: Tuple[str, ...],
                 manifest: Tuple[_ManifestRow, ...], n_bytes: int) -> None:
        self.name = name
        self.tables = tables
        self.manifest = manifest
        #: Total packed payload size — the bytes that cross the process
        #: boundary via shared memory instead of the pickle queue.
        self.n_bytes = n_bytes
        self._shm: Optional[shared_memory.SharedMemory] = None
        self._chunks: Optional[ChunkMap] = None

    # -- create side (worker) ---------------------------------------------

    @classmethod
    def pack(cls, chunks: ChunkMap, token: str) -> "ShardPayload":
        """Copy every chunk column into one fresh segment.

        Layout: columns in sorted (table, chunk, column) manifest order,
        each aligned to 16 bytes; the manifest carries dtype/shape/offset
        so the attach side rebuilds views without touching the data.
        """
        manifest: List[_ManifestRow] = []
        arrays: List[np.ndarray] = []
        offset = 0
        for table in sorted(chunks):
            for chunk_index, chunk in enumerate(chunks[table]):
                for column in sorted(chunk):
                    arr = np.ascontiguousarray(chunk[column])
                    offset = -(-offset // _ALIGN) * _ALIGN
                    manifest.append((
                        table, chunk_index, column,
                        arr.dtype.str, arr.shape, offset,
                    ))
                    arrays.append(arr)
                    offset += arr.nbytes
        shm = _create_segment(token, max(1, offset))
        try:
            for row, arr in zip(manifest, arrays):
                view = np.ndarray(row[4], dtype=row[3], buffer=shm.buf,
                                  offset=row[5])
                view[...] = arr
                del view
        except BaseException:
            shm.unlink()
            raise
        finally:
            shm.close()
        # Success: the parent owns the segment from here on; stop this
        # process's tracker from unlinking it at worker exit.
        _untrack(shm)
        return cls(shm.name, tuple(sorted(chunks)), tuple(manifest),
                   max(1, offset))

    # -- attach side (parent) ---------------------------------------------

    def attach(self) -> "ShardPayload":
        """Map the segment and build zero-copy views (idempotent)."""
        if self._chunks is not None:
            return self
        try:
            shm = shared_memory.SharedMemory(name=self.name)
        except FileNotFoundError:
            raise EngineError(
                f"shard payload segment {self.name!r} is gone — it was "
                f"unlinked (double accept?) or swept before attach"
            ) from None
        chunks: ChunkMap = {table: [] for table in self.tables}
        for table, chunk_index, column, dtype, shape, offset in self.manifest:
            per_table = chunks[table]
            while len(per_table) <= chunk_index:
                per_table.append({})
            per_table[chunk_index][column] = np.ndarray(
                shape, dtype=dtype, buffer=shm.buf, offset=offset,
            )
        self._shm = shm
        self._chunks = chunks
        return self

    def chunk_map(self) -> ChunkMap:
        """The shard's chunks as views over the shared buffer."""
        return self.attach()._chunks

    def materialize(self) -> ChunkMap:
        """A deep copy with ordinary heap arrays (checkpoint-safe)."""
        return {
            table: [
                {column: np.array(arr, copy=True)
                 for column, arr in chunk.items()}
                for chunk in per_table
            ]
            for table, per_table in self.chunk_map().items()
        }

    # -- lifecycle ---------------------------------------------------------

    def unlink(self) -> bool:
        """Drop the ``/dev/shm`` entry; mapped memory stays valid.

        Call as soon as the payload is accepted: from then on the data
        lives exactly as long as this (attached) handle, and a crash at
        any later point cannot leak the segment. Returns False when the
        entry was already gone (janitor raced, or double unlink).
        """
        if self._shm is not None:
            try:
                self._shm.unlink()
            except FileNotFoundError:
                return False
            return True
        try:
            shm = shared_memory.SharedMemory(name=self.name)
        except FileNotFoundError:
            return False
        try:
            shm.unlink()
        except FileNotFoundError:
            return False
        finally:
            shm.close()
        return True

    def release(self) -> None:
        """Drop views and unmap. Only safe once no view escapes."""
        self._chunks = None
        if self._shm is not None:
            try:
                self._shm.close()
            except BufferError:
                # A view still escapes (e.g. merged arrays not yet
                # concatenated); the mapping lives until they are GC'd.
                pass
            self._shm = None

    # Handles pickle without their attach-side state: a checkpoint or a
    # cross-process hop transports the name + manifest only.
    def __getstate__(self) -> dict:
        return {"name": self.name, "tables": self.tables,
                "manifest": self.manifest, "n_bytes": self.n_bytes}

    def __setstate__(self, state: dict) -> None:
        self.__init__(state["name"], state["tables"],
                      state["manifest"], state["n_bytes"])

    def __repr__(self) -> str:  # pragma: no cover - debug nicety
        return (f"ShardPayload({self.name!r}, {len(self.manifest)} columns, "
                f"{self.n_bytes} bytes)")


def _create_segment(token: str, size: int) -> shared_memory.SharedMemory:
    """A fresh named segment; steps over (unlikely) name collisions."""
    for _ in range(8):
        name = _next_name(token)
        try:
            shm = shared_memory.SharedMemory(name=name, create=True,
                                             size=size)
        except FileExistsError:  # pragma: no cover - 48-bit token clash
            continue
        return shm
    raise EngineError(  # pragma: no cover - would need 8 clashes
        f"cannot allocate a shared-memory segment under {token!r}"
    )


def segment_names(token: Optional[str] = None) -> List[str]:
    """Live repro segments (optionally scoped to one run token)."""
    if not SHM_DIR.is_dir():  # pragma: no cover - non-Linux
        return []
    prefix = SEGMENT_PREFIX + (f"{token}-" if token else "")
    return sorted(
        entry.name for entry in SHM_DIR.iterdir()
        if entry.name.startswith(prefix)
    )


def segment_bytes(token: Optional[str] = None) -> int:
    """Total bytes of live repro segments (the resource sampler's view).

    Sums ``st_size`` of the ``/dev/shm`` entries; a segment unlinked
    between the scan and the stat simply stops counting. Zero on
    platforms without a visible shm directory.
    """
    total = 0
    for name in segment_names(token):
        try:
            total += (SHM_DIR / name).stat().st_size
        except OSError:  # pragma: no cover - racing unlink
            continue
    return total


def sweep_orphans(token: Optional[str] = None) -> List[str]:
    """Unlink stray repro segments; returns the reclaimed names.

    With ``token`` this reaps exactly one run's leftovers (the campaign
    and study runners call this in ``finally``, after the executor has
    drained, so a chaos-killed or timed-out run cannot leak). Without a
    token it reaps every repro-prefixed segment — for the CLI and tests,
    where no concurrent repro run shares the host namespace.
    """
    removed: List[str] = []
    for name in segment_names(token):
        try:
            shm = shared_memory.SharedMemory(name=name)
        except FileNotFoundError:  # pragma: no cover - racing cleanup
            continue
        except OSError:  # pragma: no cover - permission/foreign segment
            continue
        try:
            shm.unlink()
            removed.append(name)
        except FileNotFoundError:  # pragma: no cover - racing cleanup
            pass
        finally:
            shm.close()
    return removed
