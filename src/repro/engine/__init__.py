"""Sharded campaign execution engine.

Campaign execution is split into three orthogonal pieces:

- :mod:`repro.engine.planner` — deterministic partition of the device panel
  into shards (shard membership can never change results, because every
  device keeps its own ``(seed, year, user_id)`` RNG stream);
- :mod:`repro.engine.executor` — pluggable execution of shard work units,
  serially or over a warm (reused across runs) process pool with
  work-stealing scheduling, timeouts, and serial fallback;
- :mod:`repro.engine.transport` — zero-copy shard-result transport over
  POSIX shared memory, with run-scoped segment names and an orphan
  janitor so failures never leak ``/dev/shm`` segments;
- :mod:`repro.engine.merge` — canonical-order reassembly of shard-local
  dataset chunks and collection accounting;
- :mod:`repro.engine.resilience` — self-healing execution: shard
  checkpoint/resume, bounded retries with deterministic backoff,
  deadline-based timeouts, and explicit partial-results loss accounting;
- :mod:`repro.engine.chaos` — deterministic fault injection (worker
  crashes, hangs, parent-side kills, checkpoint corruption) used to prove
  the recovery paths preserve results.

The hard guarantee: for any valid configuration (including nonzero
``FaultPlan``\\ s), ``n_jobs=1`` and ``n_jobs=k`` produce bit-for-bit
identical ``CampaignDataset``\\ s and equal ``CollectionReport``\\ s — and
so do interrupted-then-resumed runs versus uninterrupted ones.
"""

from repro.engine.chaos import (
    ChaosCrash,
    ChaosKill,
    ChaosMonkey,
    ChaosPlan,
    corrupt_checkpoints,
)
from repro.engine.executor import (
    JOBS_ENV_VAR,
    ExecutionInfo,
    Executor,
    ParallelExecutor,
    SerialExecutor,
    make_executor,
    resolve_jobs,
    shutdown_warm_pools,
    warm_pool_stats,
)
from repro.engine.merge import (
    ShardOutput,
    merge_chunks,
    merge_reports,
    missing_shards,
    ordered_outputs,
)
from repro.engine.planner import (
    MIN_UNIT_DEVICES,
    UNIT_OVERSPLIT,
    Shard,
    ShardPlan,
    ShardPlanner,
    plan_units,
)
from repro.engine.transport import (
    ShardPayload,
    run_token,
    segment_names,
    sweep_orphans,
)
from repro.engine.resilience import (
    CheckpointStore,
    ExecutionLosses,
    ResilienceConfig,
    ResilienceReport,
    RetryPolicy,
    ShardAttemptLog,
    ShardFailure,
    config_key,
)

__all__ = [
    "JOBS_ENV_VAR",
    "ExecutionInfo",
    "Executor",
    "ParallelExecutor",
    "SerialExecutor",
    "make_executor",
    "resolve_jobs",
    "shutdown_warm_pools",
    "warm_pool_stats",
    "ShardOutput",
    "merge_chunks",
    "merge_reports",
    "missing_shards",
    "ordered_outputs",
    "Shard",
    "ShardPlan",
    "ShardPlanner",
    "plan_units",
    "UNIT_OVERSPLIT",
    "MIN_UNIT_DEVICES",
    "ShardPayload",
    "run_token",
    "segment_names",
    "sweep_orphans",
    "CheckpointStore",
    "ExecutionLosses",
    "ResilienceConfig",
    "ResilienceReport",
    "RetryPolicy",
    "ShardAttemptLog",
    "ShardFailure",
    "config_key",
    "ChaosCrash",
    "ChaosKill",
    "ChaosMonkey",
    "ChaosPlan",
    "corrupt_checkpoints",
]
