"""Sharded campaign execution engine.

Campaign execution is split into three orthogonal pieces:

- :mod:`repro.engine.planner` — deterministic partition of the device panel
  into shards (shard membership can never change results, because every
  device keeps its own ``(seed, year, user_id)`` RNG stream);
- :mod:`repro.engine.executor` — pluggable execution of shard work units,
  serially or over a process pool with timeout and serial fallback;
- :mod:`repro.engine.merge` — canonical-order reassembly of shard-local
  dataset chunks and collection accounting;
- :mod:`repro.engine.resilience` — self-healing execution: shard
  checkpoint/resume, bounded retries with deterministic backoff,
  deadline-based timeouts, and explicit partial-results loss accounting;
- :mod:`repro.engine.chaos` — deterministic fault injection (worker
  crashes, hangs, parent-side kills, checkpoint corruption) used to prove
  the recovery paths preserve results.

The hard guarantee: for any valid configuration (including nonzero
``FaultPlan``\\ s), ``n_jobs=1`` and ``n_jobs=k`` produce bit-for-bit
identical ``CampaignDataset``\\ s and equal ``CollectionReport``\\ s — and
so do interrupted-then-resumed runs versus uninterrupted ones.
"""

from repro.engine.chaos import (
    ChaosCrash,
    ChaosKill,
    ChaosMonkey,
    ChaosPlan,
    corrupt_checkpoints,
)
from repro.engine.executor import (
    JOBS_ENV_VAR,
    ExecutionInfo,
    Executor,
    ParallelExecutor,
    SerialExecutor,
    make_executor,
    resolve_jobs,
)
from repro.engine.merge import (
    ShardOutput,
    merge_chunks,
    merge_reports,
    missing_shards,
    ordered_outputs,
)
from repro.engine.planner import Shard, ShardPlan, ShardPlanner
from repro.engine.resilience import (
    CheckpointStore,
    ExecutionLosses,
    ResilienceConfig,
    ResilienceReport,
    RetryPolicy,
    ShardAttemptLog,
    ShardFailure,
    config_key,
)

__all__ = [
    "JOBS_ENV_VAR",
    "ExecutionInfo",
    "Executor",
    "ParallelExecutor",
    "SerialExecutor",
    "make_executor",
    "resolve_jobs",
    "ShardOutput",
    "merge_chunks",
    "merge_reports",
    "missing_shards",
    "ordered_outputs",
    "Shard",
    "ShardPlan",
    "ShardPlanner",
    "CheckpointStore",
    "ExecutionLosses",
    "ResilienceConfig",
    "ResilienceReport",
    "RetryPolicy",
    "ShardAttemptLog",
    "ShardFailure",
    "config_key",
    "ChaosCrash",
    "ChaosKill",
    "ChaosMonkey",
    "ChaosPlan",
    "corrupt_checkpoints",
]
