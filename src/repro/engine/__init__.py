"""Sharded campaign execution engine.

Campaign execution is split into three orthogonal pieces:

- :mod:`repro.engine.planner` — deterministic partition of the device panel
  into shards (shard membership can never change results, because every
  device keeps its own ``(seed, year, user_id)`` RNG stream);
- :mod:`repro.engine.executor` — pluggable execution of shard work units,
  serially or over a process pool with timeout and serial fallback;
- :mod:`repro.engine.merge` — canonical-order reassembly of shard-local
  dataset chunks and collection accounting.

The hard guarantee: for any valid configuration (including nonzero
``FaultPlan``\\ s), ``n_jobs=1`` and ``n_jobs=k`` produce bit-for-bit
identical ``CampaignDataset``\\ s and equal ``CollectionReport``\\ s.
"""

from repro.engine.executor import (
    JOBS_ENV_VAR,
    ExecutionInfo,
    Executor,
    ParallelExecutor,
    SerialExecutor,
    make_executor,
    resolve_jobs,
)
from repro.engine.merge import (
    ShardOutput,
    merge_chunks,
    merge_reports,
    ordered_outputs,
)
from repro.engine.planner import Shard, ShardPlan, ShardPlanner

__all__ = [
    "JOBS_ENV_VAR",
    "ExecutionInfo",
    "Executor",
    "ParallelExecutor",
    "SerialExecutor",
    "make_executor",
    "resolve_jobs",
    "ShardOutput",
    "merge_chunks",
    "merge_reports",
    "ordered_outputs",
    "Shard",
    "ShardPlan",
    "ShardPlanner",
]
