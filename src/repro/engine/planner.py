"""Deterministic shard planning.

A :class:`ShardPlanner` partitions a campaign's device panel into
contiguous, balanced shards. Shard membership is a pure function of the
device-id list and the requested shard count — never of worker count,
scheduling, or timing — so moving a campaign between executors (or between
serial and parallel runs) cannot change which RNG stream any device uses or
the canonical order the merge layer reassembles results in.

Every device keeps its existing per-user stream seeded by
``(seed, year, user_id)``; the planner only decides *where* a device is
simulated, not *how*.

For parallel runs, :func:`plan_units` oversplits the panel into more
units than workers (work-stealing food): the executor's scheduler can
then rebalance an uneven tail instead of waiting on the one fat shard.
Unit membership is still a pure function of panel + worker count, so
checkpoint identity and bit-for-bit equivalence are untouched.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

from repro.errors import ConfigurationError

#: Target work units per worker when oversplitting for work stealing.
UNIT_OVERSPLIT = 4

#: Never split below this many devices per unit: tiny units pay more in
#: per-unit overhead (IPC, collection setup) than stealing can recover,
#: and small panels should keep exactly one unit per worker.
MIN_UNIT_DEVICES = 16


@dataclass(frozen=True)
class Shard:
    """One contiguous slice of the device panel."""

    index: int
    device_ids: Tuple[int, ...]

    @property
    def n_devices(self) -> int:
        return len(self.device_ids)


@dataclass(frozen=True)
class ShardPlan:
    """The full, ordered partition of a panel into shards.

    Shards are in canonical order: concatenating their ``device_ids``
    reproduces the input panel order exactly.
    """

    n_devices: int
    shards: Tuple[Shard, ...]

    @property
    def n_shards(self) -> int:
        return len(self.shards)

    def device_order(self) -> Tuple[int, ...]:
        """All device ids in canonical (merge) order."""
        return tuple(d for shard in self.shards for d in shard.device_ids)


class ShardPlanner:
    """Plans contiguous, balanced shards over a device panel.

    ``max_shard_devices`` optionally caps shard size, producing more shards
    than requested when the panel is large — finer units queue better on a
    busy pool and bound per-worker memory.
    """

    def __init__(self, max_shard_devices: int = 0) -> None:
        if max_shard_devices < 0:
            raise ConfigurationError(
                f"max_shard_devices must be >= 0: {max_shard_devices}"
            )
        self.max_shard_devices = max_shard_devices

    def plan(self, device_ids: Sequence[int], n_shards: int) -> ShardPlan:
        """Partition ``device_ids`` into at most ``n_shards`` shards."""
        if n_shards < 1:
            raise ConfigurationError(f"n_shards must be >= 1: {n_shards}")
        ids = tuple(int(d) for d in device_ids)
        if any(b <= a for a, b in zip(ids, ids[1:])):
            raise ConfigurationError(
                "device_ids must be strictly increasing (canonical order)"
            )
        n = len(ids)
        if n == 0:
            return ShardPlan(n_devices=0, shards=())
        k = min(n_shards, n)
        if self.max_shard_devices:
            k = max(k, -(-n // self.max_shard_devices))  # ceil division
            k = min(k, n)
        # Balanced contiguous split: the first n % k shards get one extra.
        base, extra = divmod(n, k)
        shards = []
        lo = 0
        for index in range(k):
            hi = lo + base + (1 if index < extra else 0)
            shards.append(Shard(index=index, device_ids=ids[lo:hi]))
            lo = hi
        return ShardPlan(n_devices=n, shards=tuple(shards))


def plan_units(device_ids: Sequence[int], n_jobs: int) -> ShardPlan:
    """The work-unit partition for an ``n_jobs``-worker run.

    Serial runs get one unit. Parallel runs oversplit up to
    :data:`UNIT_OVERSPLIT` units per worker, floored at
    :data:`MIN_UNIT_DEVICES` devices per unit — a small panel therefore
    keeps exactly one unit per worker (no behaviour change vs. the old
    one-shard-per-worker plan), while a large one hands the scheduler
    enough units to steal across. Deterministic in (panel, n_jobs) only.
    """
    if n_jobs <= 1:
        return ShardPlanner().plan(device_ids, 1)
    n = len(device_ids)
    target = min(n_jobs * UNIT_OVERSPLIT,
                 max(n_jobs, n // MIN_UNIT_DEVICES))
    return ShardPlanner().plan(device_ids, max(1, target))
