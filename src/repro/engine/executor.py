"""Pluggable shard executors.

An executor runs a picklable work function over a list of work units and
returns the results **in unit order** — determinism lives in the planner and
the merge layer, so the executor is free to schedule however it likes.

Two implementations:

- :class:`SerialExecutor` runs units inline in the calling process.
- :class:`ParallelExecutor` fans units out over a
  :class:`concurrent.futures.ProcessPoolExecutor` with a per-shard timeout.
  Any worker failure (crash, timeout, broken pool, unpicklable unit) makes
  that unit **fall back to serial execution in the parent** — a flaky pool
  degrades throughput, never results.

``resolve_jobs`` turns a requested worker count into an effective one,
honouring the ``REPRO_JOBS`` environment variable so whole test suites can
be routed through the parallel path without touching call sites.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, TypeVar

from repro.errors import ConfigurationError

T = TypeVar("T")
R = TypeVar("R")

#: Environment variable consulted when no explicit worker count is given.
JOBS_ENV_VAR = "REPRO_JOBS"


@dataclass(frozen=True)
class ExecutionInfo:
    """How a campaign (or study) was executed, for run summaries."""

    executor: str
    n_jobs: int
    n_shards: int

    def describe(self) -> str:
        jobs = "job" if self.n_jobs == 1 else "jobs"
        shards = "shard" if self.n_shards == 1 else "shards"
        return (f"{self.executor} ({self.n_jobs} {jobs}, "
                f"{self.n_shards} {shards})")


def resolve_jobs(n_jobs: Optional[int] = None, default: int = 1) -> int:
    """Resolve a worker count.

    ``None`` consults ``$REPRO_JOBS`` and falls back to ``default``; any
    value ``<= 0`` (requested, from the environment, or as the default)
    means "auto": one worker per CPU.
    """
    if n_jobs is None:
        raw = os.environ.get(JOBS_ENV_VAR, "").strip()
        if raw:
            try:
                n_jobs = int(raw)
            except ValueError:
                raise ConfigurationError(
                    f"${JOBS_ENV_VAR} must be an integer: {raw!r}"
                ) from None
        else:
            n_jobs = default
    if n_jobs <= 0:
        n_jobs = os.cpu_count() or 1
    return n_jobs


def make_executor(
    n_jobs: int, shard_timeout_s: Optional[float] = None
) -> "Executor":
    """The executor for ``n_jobs`` workers (1 disables the pool)."""
    if n_jobs <= 1:
        return SerialExecutor()
    return ParallelExecutor(n_jobs, shard_timeout_s=shard_timeout_s)


class SerialExecutor:
    """Runs every unit inline in the calling process."""

    name = "serial"
    n_jobs = 1

    def __init__(self) -> None:
        self.fallbacks = 0

    def run(self, fn: Callable[[T], R], units: Sequence[T]) -> List[R]:
        return [fn(unit) for unit in units]

    def close(self) -> None:
        """Nothing to release."""


class ParallelExecutor:
    """Process-pool executor with per-shard timeout and serial fallback.

    The pool is created lazily on the first :meth:`run` and reused across
    calls (a study's years share one pool), so :meth:`close` must be called
    when done — or use the executor as a context manager.
    """

    name = "parallel"

    def __init__(
        self, n_jobs: int, shard_timeout_s: Optional[float] = None
    ) -> None:
        if n_jobs < 2:
            raise ConfigurationError(
                f"ParallelExecutor needs n_jobs >= 2: {n_jobs}"
            )
        if shard_timeout_s is not None and shard_timeout_s <= 0:
            raise ConfigurationError(
                f"shard_timeout_s must be positive: {shard_timeout_s}"
            )
        self.n_jobs = n_jobs
        self.shard_timeout_s = shard_timeout_s
        #: Units re-run serially after a worker failure (lifetime count).
        self.fallbacks = 0
        self._pool: Optional[ProcessPoolExecutor] = None

    def run(self, fn: Callable[[T], R], units: Sequence[T]) -> List[R]:
        if not units:
            return []
        futures = None
        try:
            if self._pool is None:
                self._pool = ProcessPoolExecutor(max_workers=self.n_jobs)
            futures = [self._pool.submit(fn, unit) for unit in units]
        except Exception:
            # The pool could not even be built or fed (fork failure,
            # unpicklable unit): run everything serially.
            self._discard_pool()
            self.fallbacks += len(units)
            return [fn(unit) for unit in units]

        results: List[Optional[R]] = [None] * len(units)
        failed: List[int] = []
        poisoned = False
        for i, future in enumerate(futures):
            try:
                results[i] = future.result(timeout=self.shard_timeout_s)
            except Exception:
                # Worker crash, timeout, or broken pool: remember the unit
                # and keep draining so healthy results are not discarded.
                future.cancel()
                failed.append(i)
                poisoned = True
        if poisoned:
            # A pool that timed out or broke may still hold stragglers;
            # don't block on them — replace the pool on the next run.
            self._discard_pool()
        for i in failed:
            results[i] = fn(units[i])
        self.fallbacks += len(failed)
        return results  # type: ignore[return-value]

    def _discard_pool(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=False, cancel_futures=True)
            self._pool = None

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True, cancel_futures=True)
            self._pool = None

    def __enter__(self) -> "ParallelExecutor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


try:  # pragma: no cover - typing nicety only
    from typing import Protocol

    class Executor(Protocol):
        """Structural contract every executor satisfies."""

        name: str
        n_jobs: int
        fallbacks: int

        def run(self, fn: Callable[[T], R], units: Sequence[T]) -> List[R]:
            ...

        def close(self) -> None:
            ...

except ImportError:  # pragma: no cover - Python < 3.8
    Executor = object  # type: ignore[assignment,misc]
