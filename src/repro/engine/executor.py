"""Pluggable shard executors.

An executor runs a picklable work function over a list of work units and
returns the results **in unit order** — determinism lives in the planner and
the merge layer, so the executor is free to schedule however it likes.

Two implementations:

- :class:`SerialExecutor` runs units inline in the calling process.
- :class:`ParallelExecutor` fans units out over a
  :class:`concurrent.futures.ProcessPoolExecutor`.

Both classify every failed attempt into a structured
:class:`~repro.engine.resilience.ShardFailure` (``crash`` vs ``timeout``
vs ``broken-pool`` vs ``submit``) and keep a per-unit
:class:`~repro.engine.resilience.ShardAttemptLog` in :attr:`history`. With
a :class:`~repro.engine.resilience.RetryPolicy`, transient failures retry
(in-pool for the parallel executor) with deterministic backoff before the
last-resort serial fallback in the parent; with ``allow_partial``, units
that exhaust every recovery are **dropped** (their result is ``None``) and
counted instead of aborting the run.

Shard timeouts are *deadlines measured from the observed start of each
shard*, never from its position in the submission queue: a fast shard
queued behind a hung sibling is not charged for the wait, and total stall
time is bounded by the deadline itself rather than by ``n_shards ×
timeout`` sequential waits. When a deadline fires, the (unkillable) hung
worker's pool is discarded and every in-flight sibling restarts on a fresh
pool without being charged an attempt.

``resolve_jobs`` turns a requested worker count into an effective one,
honouring the ``REPRO_JOBS`` environment variable so whole test suites can
be routed through the parallel path without touching call sites.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import FIRST_COMPLETED, Future, ProcessPoolExecutor, wait
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, TypeVar

from repro.engine.resilience import (
    FAILURE_SUBMIT,
    FAILURE_TIMEOUT,
    OUTCOME_DROPPED,
    OUTCOME_FAILED,
    OUTCOME_FALLBACK,
    OUTCOME_OK,
    OUTCOME_RETRIED,
    RetryPolicy,
    ShardAttemptLog,
    ShardFailure,
    classify_exception,
    describe_exception,
)
from repro.errors import ConfigurationError

T = TypeVar("T")
R = TypeVar("R")

#: Environment variable consulted when no explicit worker count is given.
JOBS_ENV_VAR = "REPRO_JOBS"

#: Drain-loop poll granularity when a deadline or backoff is being watched.
_POLL_S = 0.05

#: Callback invoked as each unit completes: ``on_result(unit_index, result)``.
ResultCallback = Callable[[int, R], None]


@dataclass(frozen=True)
class ExecutionInfo:
    """How a campaign (or study) was executed, for run summaries."""

    executor: str
    n_jobs: int
    n_shards: int

    def describe(self) -> str:
        jobs = "job" if self.n_jobs == 1 else "jobs"
        shards = "shard" if self.n_shards == 1 else "shards"
        return (f"{self.executor} ({self.n_jobs} {jobs}, "
                f"{self.n_shards} {shards})")


def resolve_jobs(n_jobs: Optional[int] = None, default: int = 1) -> int:
    """Resolve a worker count.

    ``None`` consults ``$REPRO_JOBS`` and falls back to ``default``; any
    value ``<= 0`` (requested, from the environment, or as the default)
    means "auto": one worker per CPU.
    """
    if n_jobs is None:
        raw = os.environ.get(JOBS_ENV_VAR, "").strip()
        if raw:
            try:
                n_jobs = int(raw)
            except ValueError:
                raise ConfigurationError(
                    f"${JOBS_ENV_VAR} must be an integer: {raw!r}"
                ) from None
        else:
            n_jobs = default
    if n_jobs <= 0:
        n_jobs = os.cpu_count() or 1
    return n_jobs


def make_executor(
    n_jobs: int,
    shard_timeout_s: Optional[float] = None,
    policy: Optional[RetryPolicy] = None,
    allow_partial: bool = False,
) -> "Executor":
    """The executor for ``n_jobs`` workers (1 disables the pool)."""
    if n_jobs <= 1:
        return SerialExecutor(policy=policy, allow_partial=allow_partial)
    return ParallelExecutor(
        n_jobs, shard_timeout_s=shard_timeout_s, policy=policy,
        allow_partial=allow_partial,
    )


class _ResilienceMixin:
    """Shared attempt accounting for both executors."""

    policy: Optional[RetryPolicy]
    allow_partial: bool

    def _init_accounting(self) -> None:
        #: Units re-run serially after a worker failure (lifetime count).
        self.fallbacks = 0
        #: In-pool retry submissions (lifetime count).
        self.retries = 0
        #: Units dropped after exhausting every recovery (partial mode).
        self.dropped = 0
        #: Every classified failed attempt, in observation order.
        self.failures: List[ShardFailure] = []
        #: Per-unit attempt logs, appended in unit order per run() call.
        self.history: List[ShardAttemptLog] = []

    @property
    def max_attempts(self) -> int:
        return self.policy.max_attempts if self.policy is not None else 1

    def _record_failure(
        self, log: ShardAttemptLog, kind: str, exc: Optional[BaseException],
        elapsed_s: float, charge_attempt: bool = True,
    ) -> ShardFailure:
        if charge_attempt:
            log.attempts += 1
        failure = ShardFailure(
            unit_index=log.unit_index, attempt=log.attempts, kind=kind,
            error=(describe_exception(exc) if exc is not None else kind),
            elapsed_s=elapsed_s,
        )
        log.failures.append(failure)
        self.failures.append(failure)
        return failure


class SerialExecutor(_ResilienceMixin):
    """Runs every unit inline in the calling process.

    With a :class:`RetryPolicy`, a failing unit is retried (with the same
    deterministic backoff as the pool path) before failing hard — or being
    dropped when ``allow_partial`` is set. Deadlines are not enforced
    inline: a timeout needs a second process to observe it.
    """

    name = "serial"
    n_jobs = 1

    def __init__(self, policy: Optional[RetryPolicy] = None,
                 allow_partial: bool = False) -> None:
        self.policy = policy
        self.allow_partial = allow_partial
        self._init_accounting()

    def run(
        self,
        fn: Callable[[T], R],
        units: Sequence[T],
        on_result: Optional[ResultCallback] = None,
    ) -> List[Optional[R]]:
        results: List[Optional[R]] = []
        for index, unit in enumerate(units):
            results.append(self._run_unit(fn, unit, index, on_result))
        return results

    def _run_unit(self, fn, unit, index, on_result):
        log = ShardAttemptLog(unit_index=index)
        self.history.append(log)
        while True:
            started = time.monotonic()
            try:
                result = fn(unit)
            except Exception as exc:
                self._record_failure(
                    log, classify_exception(exc), exc,
                    time.monotonic() - started,
                )
                if log.attempts < self.max_attempts:
                    self.retries += 1
                    time.sleep(self.policy.backoff_s(index, log.attempts))
                    continue
                if self.allow_partial:
                    log.outcome = OUTCOME_DROPPED
                    self.dropped += 1
                    return None
                log.outcome = OUTCOME_FAILED
                raise
            log.attempts += 1
            log.outcome = OUTCOME_OK if log.attempts == 1 else OUTCOME_RETRIED
            if on_result is not None:
                on_result(index, result)
            return result

    def close(self) -> None:
        """Nothing to release."""


class ParallelExecutor(_ResilienceMixin):
    """Process-pool executor with deadlines, in-pool retry and fallback.

    The pool is created lazily on the first :meth:`run` and reused across
    calls (a study's years share one pool), so :meth:`close` must be called
    when done — or use the executor as a context manager. A pool poisoned
    by a hung or crashed worker is replaced transparently.
    """

    name = "parallel"

    def __init__(
        self,
        n_jobs: int,
        shard_timeout_s: Optional[float] = None,
        policy: Optional[RetryPolicy] = None,
        allow_partial: bool = False,
    ) -> None:
        if n_jobs < 2:
            raise ConfigurationError(
                f"ParallelExecutor needs n_jobs >= 2: {n_jobs}"
            )
        if shard_timeout_s is not None and shard_timeout_s <= 0:
            raise ConfigurationError(
                f"shard_timeout_s must be positive: {shard_timeout_s}"
            )
        self.n_jobs = n_jobs
        self.shard_timeout_s = shard_timeout_s
        self.policy = policy
        self.allow_partial = allow_partial
        self._init_accounting()
        self._pool: Optional[ProcessPoolExecutor] = None

    @property
    def _deadline_s(self) -> Optional[float]:
        if self.policy is not None and self.policy.shard_timeout_s is not None:
            return self.policy.shard_timeout_s
        return self.shard_timeout_s

    def run(
        self,
        fn: Callable[[T], R],
        units: Sequence[T],
        on_result: Optional[ResultCallback] = None,
    ) -> List[Optional[R]]:
        if not units:
            return []
        n = len(units)
        results: List[Optional[R]] = [None] * n
        logs = [ShardAttemptLog(unit_index=i) for i in range(n)]
        self.history.extend(logs)
        exhausted: List[int] = []  # units needing the serial last resort

        pending: Dict[Future, int] = {}
        started: Dict[Future, float] = {}
        retry_at: Dict[int, float] = {}
        deadline = self._deadline_s

        def submit(index: int) -> None:
            try:
                if self._pool is None:
                    self._pool = ProcessPoolExecutor(max_workers=self.n_jobs)
                future = self._pool.submit(fn, units[index])
            except Exception as exc:
                # The pool could not be built or fed (fork failure,
                # unpicklable work): not retryable in-pool.
                self._record_failure(logs[index], FAILURE_SUBMIT, exc, 0.0)
                self._discard_pool()
                exhausted.append(index)
                return
            pending[future] = index

        def settle_failure(index: int, kind: str,
                           exc: Optional[BaseException],
                           elapsed_s: float) -> None:
            self._record_failure(logs[index], kind, exc, elapsed_s)
            if logs[index].attempts < self.max_attempts:
                self.retries += 1
                retry_at[index] = time.monotonic() + self.policy.backoff_s(
                    index, logs[index].attempts
                )
            else:
                exhausted.append(index)

        for i in range(n):
            submit(i)

        while pending or retry_at:
            now = time.monotonic()
            for index in [i for i, at in retry_at.items() if at <= now]:
                del retry_at[index]
                submit(index)
            if not pending:
                if retry_at:
                    time.sleep(
                        min(max(0.0, min(retry_at.values()) - time.monotonic()),
                            _POLL_S)
                    )
                continue
            wait_s = _POLL_S if (deadline is not None or retry_at) else None
            finished, _ = wait(
                set(pending), timeout=wait_s, return_when=FIRST_COMPLETED
            )
            now = time.monotonic()
            pool_broken = False
            for future in finished:
                index = pending.pop(future)
                start = started.pop(future, None)
                elapsed = (now - start) if start is not None else 0.0
                try:
                    value = future.result()
                except Exception as exc:
                    kind = classify_exception(exc)
                    if kind != "crash":
                        pool_broken = True
                    settle_failure(index, kind, exc, elapsed)
                else:
                    log = logs[index]
                    log.attempts += 1
                    log.outcome = (OUTCOME_OK if log.attempts == 1
                                   else OUTCOME_RETRIED)
                    results[index] = value
                    if on_result is not None:
                        on_result(index, value)
            if pool_broken:
                # Every sibling future on the broken pool fails alongside
                # (concurrent.futures fails them all), so just drop it.
                self._discard_pool()
            if deadline is not None and pending:
                expired: List[Future] = []
                for future, index in pending.items():
                    if future not in started and future.running():
                        started[future] = now
                    begun = started.get(future)
                    if begun is not None and now - begun > deadline:
                        expired.append(future)
                if expired:
                    for future in expired:
                        index = pending.pop(future)
                        begun = started.pop(future)
                        future.cancel()
                        settle_failure(
                            index, FAILURE_TIMEOUT,
                            TimeoutError(
                                f"shard exceeded its {deadline:g}s deadline"
                            ),
                            now - begun,
                        )
                    # A hung worker cannot be killed through the pool API;
                    # abandon the whole pool and restart the unexpired
                    # in-flight units on a fresh one, free of charge.
                    self._discard_pool()
                    for future in list(pending):
                        index = pending.pop(future)
                        started.pop(future, None)
                        future.cancel()
                        submit(index)

        for index in sorted(exhausted):
            self._serial_last_resort(fn, units, index, logs[index],
                                     results, on_result)
        return results

    def _serial_last_resort(self, fn, units, index, log, results, on_result):
        """Re-run an exhausted unit inline, or drop it in partial mode.

        A unit whose last failure was a *timeout* is never re-run inline in
        partial mode — a hung work function would hang the parent, which is
        exactly what ``--partial-results`` exists to avoid.
        """
        timed_out = bool(log.failures) and \
            log.failures[-1].kind == FAILURE_TIMEOUT
        if self.allow_partial and timed_out:
            log.outcome = OUTCOME_DROPPED
            self.dropped += 1
            return
        self.fallbacks += 1
        try:
            value = fn(units[index])
        except Exception as exc:
            self._record_failure(log, classify_exception(exc), exc, 0.0,
                                 charge_attempt=False)
            if self.allow_partial:
                log.outcome = OUTCOME_DROPPED
                self.dropped += 1
                return
            log.outcome = OUTCOME_FAILED
            raise
        log.outcome = OUTCOME_FALLBACK
        results[index] = value
        if on_result is not None:
            on_result(index, value)

    def _discard_pool(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=False, cancel_futures=True)
            self._pool = None

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True, cancel_futures=True)
            self._pool = None

    def __enter__(self) -> "ParallelExecutor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


try:  # pragma: no cover - typing nicety only
    from typing import Protocol

    class Executor(Protocol):
        """Structural contract every executor satisfies."""

        name: str
        n_jobs: int
        fallbacks: int
        retries: int
        dropped: int
        failures: List[ShardFailure]
        history: List[ShardAttemptLog]

        def run(
            self,
            fn: Callable[[T], R],
            units: Sequence[T],
            on_result: Optional[ResultCallback] = None,
        ) -> List[Optional[R]]:
            ...

        def close(self) -> None:
            ...

except ImportError:  # pragma: no cover - Python < 3.8
    Executor = object  # type: ignore[assignment,misc]
