"""Pluggable shard executors.

An executor runs a picklable work function over a list of work units and
returns the results **in unit order** — determinism lives in the planner and
the merge layer, so the executor is free to schedule however it likes.

Two implementations:

- :class:`SerialExecutor` runs units inline in the calling process.
- :class:`ParallelExecutor` fans units out over a
  :class:`concurrent.futures.ProcessPoolExecutor` with a work-stealing
  scheduler and a warm-pool cache.

**Warm pools.** Spinning up a process pool costs fork + interpreter
warm-up per worker, and a cold worker rebuilds its world cache on the
first shard it touches. ``ParallelExecutor`` therefore draws its pool
from a module-level cache keyed by worker count: :meth:`close` parks a
healthy pool for the next executor (the next campaign, the next study,
the next bench repetition) instead of tearing it down. Workers survive
across runs, and with them the per-process world cache — keyed by config
repr, so reuse is exact, never approximate. Pools that saw a hung or
crashed worker are genuinely discarded and never parked. Call
:func:`shutdown_warm_pools` (or let the ``atexit`` hook) to reap them.

**Work stealing.** Units start on per-worker-slot deques under the same
static contiguous assignment the planner used to bake in, but any slot
that drains its own deque steals the hindmost unit from the richest
sibling. Uneven units — a fat shard, a retried straggler — no longer
serialize the tail; the steal count is surfaced as :attr:`steals` and
lands in run manifests and metrics. Scheduling never affects results:
unit → RNG stream binding is fixed by the planner, results are keyed by
unit index, and the merge layer reassembles canonical order.

Both executors classify every failed attempt into a structured
:class:`~repro.engine.resilience.ShardFailure` (``crash`` vs ``timeout``
vs ``broken-pool`` vs ``submit``) and keep a per-unit
:class:`~repro.engine.resilience.ShardAttemptLog` in :attr:`history`. With
a :class:`~repro.engine.resilience.RetryPolicy`, transient failures retry
(in-pool for the parallel executor) with deterministic backoff before the
last-resort serial fallback in the parent; with ``allow_partial``, units
that exhaust every recovery are **dropped** (their result is ``None``) and
counted instead of aborting the run.

Shard timeouts are *deadlines measured from the observed start of each
shard*, never from its position in the submission queue: a fast shard
queued behind a hung sibling is not charged for the wait, and total stall
time is bounded by the deadline itself rather than by ``n_shards ×
timeout`` sequential waits. When a deadline fires, the (unkillable) hung
worker's pool is discarded and every in-flight sibling restarts on a fresh
pool without being charged an attempt.

``resolve_jobs`` turns a requested worker count into an effective one,
honouring the ``REPRO_JOBS`` environment variable so whole test suites can
be routed through the parallel path without touching call sites.
"""

from __future__ import annotations

import atexit
import os
import time
from collections import deque
from concurrent.futures import FIRST_COMPLETED, Future, ProcessPoolExecutor, wait
from dataclasses import dataclass
from typing import Callable, Deque, Dict, List, Optional, Sequence, TypeVar

from repro.engine.resilience import (
    FAILURE_SUBMIT,
    FAILURE_TIMEOUT,
    OUTCOME_DROPPED,
    OUTCOME_FAILED,
    OUTCOME_FALLBACK,
    OUTCOME_OK,
    OUTCOME_RETRIED,
    RetryPolicy,
    ShardAttemptLog,
    ShardFailure,
    classify_exception,
    describe_exception,
)
from repro.errors import ConfigurationError
from repro.obs.recorder import get_recorder

T = TypeVar("T")
R = TypeVar("R")

#: Environment variable consulted when no explicit worker count is given.
JOBS_ENV_VAR = "REPRO_JOBS"

#: Drain-loop poll granularity when a deadline or backoff is being watched.
_POLL_S = 0.05

#: Callback invoked as each unit completes: ``on_result(unit_index, result)``.
ResultCallback = Callable[[int, R], None]


@dataclass(frozen=True)
class ExecutionInfo:
    """How a campaign (or study) was executed, for run summaries."""

    executor: str
    n_jobs: int
    n_shards: int
    #: Work units an idle slot took from a sibling's deque.
    steals: int = 0
    #: Bytes of shard output moved through shared-memory segments.
    transport_bytes: int = 0

    def describe(self) -> str:
        jobs = "job" if self.n_jobs == 1 else "jobs"
        shards = "shard" if self.n_shards == 1 else "shards"
        return (f"{self.executor} ({self.n_jobs} {jobs}, "
                f"{self.n_shards} {shards})")


def resolve_jobs(n_jobs: Optional[int] = None, default: int = 1) -> int:
    """Resolve a worker count.

    ``None`` consults ``$REPRO_JOBS`` and falls back to ``default``; any
    value ``<= 0`` (requested, from the environment, or as the default)
    means "auto": one worker per CPU.
    """
    if n_jobs is None:
        raw = os.environ.get(JOBS_ENV_VAR, "").strip()
        if raw:
            try:
                n_jobs = int(raw)
            except ValueError:
                raise ConfigurationError(
                    f"${JOBS_ENV_VAR} must be an integer: {raw!r}"
                ) from None
        else:
            n_jobs = default
    if n_jobs <= 0:
        n_jobs = os.cpu_count() or 1
    return n_jobs


def make_executor(
    n_jobs: int,
    shard_timeout_s: Optional[float] = None,
    policy: Optional[RetryPolicy] = None,
    allow_partial: bool = False,
) -> "Executor":
    """The executor for ``n_jobs`` workers (1 disables the pool)."""
    if n_jobs <= 1:
        return SerialExecutor(policy=policy, allow_partial=allow_partial)
    return ParallelExecutor(
        n_jobs, shard_timeout_s=shard_timeout_s, policy=policy,
        allow_partial=allow_partial,
    )


# ---------------------------------------------------------------------------
# Warm pool cache
# ---------------------------------------------------------------------------

#: Parked healthy pools by worker count, oldest first.
_WARM_POOLS: Dict[int, List[ProcessPoolExecutor]] = {}
#: Keep at most this many idle pools parked across all worker counts.
_WARM_POOL_CAP = 4
_POOL_STATS = {"created": 0, "reused": 0, "discarded": 0}
_OWNER_PID = os.getpid()


def _acquire_pool(n_jobs: int) -> ProcessPoolExecutor:
    """A warm pool for ``n_jobs`` workers, or a fresh one."""
    parked = _WARM_POOLS.get(n_jobs)
    if parked:
        _POOL_STATS["reused"] += 1
        return parked.pop()
    _POOL_STATS["created"] += 1
    return ProcessPoolExecutor(max_workers=n_jobs)


def _park_pool(n_jobs: int, pool: ProcessPoolExecutor) -> None:
    """Return a healthy, drained pool to the cache for the next run."""
    _WARM_POOLS.setdefault(n_jobs, []).append(pool)
    while sum(len(v) for v in _WARM_POOLS.values()) > _WARM_POOL_CAP:
        for jobs in sorted(_WARM_POOLS):
            if _WARM_POOLS[jobs]:
                eldest = _WARM_POOLS[jobs].pop(0)
                eldest.shutdown(wait=False, cancel_futures=True)
                _POOL_STATS["discarded"] += 1
                break


def warm_pool_stats() -> Dict[str, int]:
    """Lifetime pool churn plus currently-parked count (for tests)."""
    stats = dict(_POOL_STATS)
    stats["parked"] = sum(len(v) for v in _WARM_POOLS.values())
    return stats


#: Process-lifetime scheduling counters, across every executor instance —
#: the resource sampler reads these (an ExecutionInfo only exists once a
#: run finishes, too late for live telemetry).
_LIFETIME = {"steals": 0, "retries": 0, "fallbacks": 0, "dropped": 0}


def lifetime_stats() -> Dict[str, int]:
    """Lifetime steal/retry/drop counters plus warm-pool churn."""
    stats = dict(_LIFETIME)
    for key, value in warm_pool_stats().items():
        stats[f"pool_{key}"] = value
    return stats


def shutdown_warm_pools(wait_for_workers: bool = True) -> int:
    """Tear down every parked pool; returns how many were shut down."""
    n = 0
    for pools in _WARM_POOLS.values():
        for pool in pools:
            pool.shutdown(wait=wait_for_workers, cancel_futures=True)
            n += 1
        pools.clear()
    return n


def _atexit_cleanup() -> None:  # pragma: no cover - interpreter teardown
    # Forked workers inherit this hook; only the owning parent may act
    # (a worker sweeping the shared run token would unlink live segments).
    if os.getpid() != _OWNER_PID:
        return
    shutdown_warm_pools()
    from repro.engine.transport import run_token, sweep_orphans

    sweep_orphans(run_token())


atexit.register(_atexit_cleanup)


class _ResilienceMixin:
    """Shared attempt accounting for both executors."""

    policy: Optional[RetryPolicy]
    allow_partial: bool

    def _init_accounting(self) -> None:
        #: Units re-run serially after a worker failure (lifetime count).
        self.fallbacks = 0
        #: In-pool retry submissions (lifetime count).
        self.retries = 0
        #: Units dropped after exhausting every recovery (partial mode).
        self.dropped = 0
        #: Units an idle slot stole from a sibling's deque (lifetime).
        self.steals = 0
        #: Every classified failed attempt, in observation order.
        self.failures: List[ShardFailure] = []
        #: Per-unit attempt logs, appended in unit order per run() call.
        self.history: List[ShardAttemptLog] = []

    @property
    def max_attempts(self) -> int:
        return self.policy.max_attempts if self.policy is not None else 1

    def _record_failure(
        self, log: ShardAttemptLog, kind: str, exc: Optional[BaseException],
        elapsed_s: float, charge_attempt: bool = True,
    ) -> ShardFailure:
        if charge_attempt:
            log.attempts += 1
        failure = ShardFailure(
            unit_index=log.unit_index, attempt=log.attempts, kind=kind,
            error=(describe_exception(exc) if exc is not None else kind),
            elapsed_s=elapsed_s,
        )
        log.failures.append(failure)
        self.failures.append(failure)
        _LIFETIME["retries"] += 1
        get_recorder().emit(
            "shard_retry", unit=log.unit_index, attempt=log.attempts,
            failure=kind, error=failure.error,
            elapsed_s=round(elapsed_s, 3),
        )
        return failure

    def _record_dropped(self, log: ShardAttemptLog) -> None:
        log.outcome = OUTCOME_DROPPED
        self.dropped += 1
        _LIFETIME["dropped"] += 1
        get_recorder().emit("shard_dropped", unit=log.unit_index,
                            attempts=log.attempts)


class SerialExecutor(_ResilienceMixin):
    """Runs every unit inline in the calling process.

    With a :class:`RetryPolicy`, a failing unit is retried (with the same
    deterministic backoff as the pool path) before failing hard — or being
    dropped when ``allow_partial`` is set. Deadlines are not enforced
    inline: a timeout needs a second process to observe it.
    """

    name = "serial"
    n_jobs = 1

    def __init__(self, policy: Optional[RetryPolicy] = None,
                 allow_partial: bool = False) -> None:
        self.policy = policy
        self.allow_partial = allow_partial
        self._init_accounting()

    def run(
        self,
        fn: Callable[[T], R],
        units: Sequence[T],
        on_result: Optional[ResultCallback] = None,
    ) -> List[Optional[R]]:
        results: List[Optional[R]] = []
        for index, unit in enumerate(units):
            results.append(self._run_unit(fn, unit, index, on_result))
        return results

    def _run_unit(self, fn, unit, index, on_result):
        log = ShardAttemptLog(unit_index=index)
        self.history.append(log)
        while True:
            started = time.monotonic()
            try:
                result = fn(unit)
            except Exception as exc:
                self._record_failure(
                    log, classify_exception(exc), exc,
                    time.monotonic() - started,
                )
                if log.attempts < self.max_attempts:
                    self.retries += 1
                    time.sleep(self.policy.backoff_s(index, log.attempts))
                    continue
                if self.allow_partial:
                    self._record_dropped(log)
                    return None
                log.outcome = OUTCOME_FAILED
                raise
            log.attempts += 1
            log.outcome = OUTCOME_OK if log.attempts == 1 else OUTCOME_RETRIED
            if on_result is not None:
                on_result(index, result)
            return result

    def close(self) -> None:
        """Nothing to release."""


class ParallelExecutor(_ResilienceMixin):
    """Work-stealing process-pool executor with deadlines and retry.

    The pool comes from the warm cache on the first :meth:`run` and is
    parked back by :meth:`close` (use the executor as a context manager),
    so consecutive runs — a study's years, repeated campaigns — share
    workers and their per-process world caches. A pool poisoned by a hung
    or crashed worker is replaced transparently and never parked.
    """

    name = "parallel"

    def __init__(
        self,
        n_jobs: int,
        shard_timeout_s: Optional[float] = None,
        policy: Optional[RetryPolicy] = None,
        allow_partial: bool = False,
    ) -> None:
        if n_jobs < 2:
            raise ConfigurationError(
                f"ParallelExecutor needs n_jobs >= 2: {n_jobs}"
            )
        if shard_timeout_s is not None and shard_timeout_s <= 0:
            raise ConfigurationError(
                f"shard_timeout_s must be positive: {shard_timeout_s}"
            )
        self.n_jobs = n_jobs
        self.shard_timeout_s = shard_timeout_s
        self.policy = policy
        self.allow_partial = allow_partial
        self._init_accounting()
        self._pool: Optional[ProcessPoolExecutor] = None

    @property
    def _deadline_s(self) -> Optional[float]:
        if self.policy is not None and self.policy.shard_timeout_s is not None:
            return self.policy.shard_timeout_s
        return self.shard_timeout_s

    def run(
        self,
        fn: Callable[[T], R],
        units: Sequence[T],
        on_result: Optional[ResultCallback] = None,
    ) -> List[Optional[R]]:
        if not units:
            return []
        try:
            return self._run_stealing(fn, units, on_result)
        except BaseException:
            # An escaping exception (a ChaosKill from on_result, a strict-
            # mode failure) must not leave workers running: drain the pool
            # hard so no straggler packs a segment after our sweep, and
            # never park a pool in an unknown state.
            if self._pool is not None:
                self._pool.shutdown(wait=True, cancel_futures=True)
                self._pool = None
                _POOL_STATS["discarded"] += 1
            raise

    def _run_stealing(
        self,
        fn: Callable[[T], R],
        units: Sequence[T],
        on_result: Optional[ResultCallback],
    ) -> List[Optional[R]]:
        n = len(units)
        results: List[Optional[R]] = [None] * n
        logs = [ShardAttemptLog(unit_index=i) for i in range(n)]
        self.history.extend(logs)
        exhausted: List[int] = []  # units needing the serial last resort

        # Static contiguous initial assignment (what the old scheduler
        # baked in), as per-slot deques so idle slots can steal.
        n_slots = self.n_jobs
        queues: List[Deque[int]] = [deque() for _ in range(n_slots)]
        home = [0] * n
        base, extra = divmod(n, n_slots)
        lo = 0
        for slot in range(n_slots):
            hi = lo + base + (1 if slot < extra else 0)
            for index in range(lo, hi):
                queues[slot].append(index)
                home[index] = slot
            lo = hi

        in_flight: Dict[Future, int] = {}
        slot_of: Dict[Future, int] = {}
        busy = [False] * n_slots
        started: Dict[Future, float] = {}
        retry_at: Dict[int, float] = {}
        deadline = self._deadline_s

        def next_unit(slot: int) -> Optional[int]:
            """Own deque front, else steal the richest sibling's back."""
            if queues[slot]:
                return queues[slot].popleft()
            victim = max(
                range(n_slots),
                key=lambda s: (len(queues[s]), -s),
            )
            if not queues[victim]:
                return None
            self.steals += 1
            _LIFETIME["steals"] += 1
            stolen = queues[victim].pop()
            get_recorder().emit("shard_stolen", unit=stolen, slot=slot,
                                victim=victim)
            return stolen

        def submit(slot: int, index: int) -> bool:
            try:
                if self._pool is None:
                    self._pool = _acquire_pool(self.n_jobs)
                future = self._pool.submit(fn, units[index])
            except Exception as exc:
                # The pool could not be built or fed (fork failure,
                # unpicklable work): not retryable in-pool.
                self._record_failure(logs[index], FAILURE_SUBMIT, exc, 0.0)
                self._discard_pool()
                exhausted.append(index)
                return False
            in_flight[future] = index
            slot_of[future] = slot
            busy[slot] = True
            return True

        def release_slot(future: Future) -> None:
            slot = slot_of.pop(future, None)
            if slot is not None:
                busy[slot] = False

        while in_flight or retry_at or any(queues):
            now = time.monotonic()
            # Backoff expiry requeues a unit at the front of its home
            # slot: retries keep locality and run before new work.
            for index in [i for i, at in retry_at.items() if at <= now]:
                del retry_at[index]
                queues[home[index]].appendleft(index)
            for slot in range(n_slots):
                while not busy[slot]:
                    index = next_unit(slot)
                    if index is None:
                        break
                    submit(slot, index)
            if not in_flight:
                if retry_at:
                    time.sleep(
                        min(max(0.0, min(retry_at.values()) - time.monotonic()),
                            _POLL_S)
                    )
                continue
            wait_s = _POLL_S if (deadline is not None or retry_at) else None
            finished, _ = wait(
                set(in_flight), timeout=wait_s, return_when=FIRST_COMPLETED
            )
            now = time.monotonic()
            pool_broken = False
            for future in finished:
                index = in_flight.pop(future)
                release_slot(future)
                start = started.pop(future, None)
                elapsed = (now - start) if start is not None else 0.0
                try:
                    value = future.result()
                except Exception as exc:
                    kind = classify_exception(exc)
                    if kind != "crash":
                        pool_broken = True
                    self._settle_failure(index, logs, retry_at, exhausted,
                                         kind, exc, elapsed)
                else:
                    log = logs[index]
                    log.attempts += 1
                    log.outcome = (OUTCOME_OK if log.attempts == 1
                                   else OUTCOME_RETRIED)
                    results[index] = value
                    if on_result is not None:
                        on_result(index, value)
            if pool_broken:
                # Every sibling future on the broken pool fails alongside
                # (concurrent.futures fails them all), so just drop it.
                self._discard_pool()
            if deadline is not None and in_flight:
                expired: List[Future] = []
                for future, index in in_flight.items():
                    if future not in started and future.running():
                        started[future] = now
                    begun = started.get(future)
                    if begun is not None and now - begun > deadline:
                        expired.append(future)
                if expired:
                    for future in expired:
                        index = in_flight.pop(future)
                        release_slot(future)
                        begun = started.pop(future)
                        future.cancel()
                        self._settle_failure(
                            index, logs, retry_at, exhausted,
                            FAILURE_TIMEOUT,
                            TimeoutError(
                                f"shard exceeded its {deadline:g}s deadline"
                            ),
                            now - begun,
                        )
                    # A hung worker cannot be killed through the pool API;
                    # abandon the whole pool and requeue the unexpired
                    # in-flight units on a fresh one, free of charge.
                    self._discard_pool()
                    for future in list(in_flight):
                        index = in_flight.pop(future)
                        release_slot(future)
                        started.pop(future, None)
                        future.cancel()
                        queues[home[index]].appendleft(index)

        for index in sorted(exhausted):
            self._serial_last_resort(fn, units, index, logs[index],
                                     results, on_result)
        return results

    def _settle_failure(self, index, logs, retry_at, exhausted,
                        kind, exc, elapsed_s) -> None:
        self._record_failure(logs[index], kind, exc, elapsed_s)
        if logs[index].attempts < self.max_attempts:
            self.retries += 1
            retry_at[index] = time.monotonic() + self.policy.backoff_s(
                index, logs[index].attempts
            )
        else:
            exhausted.append(index)

    def _serial_last_resort(self, fn, units, index, log, results, on_result):
        """Re-run an exhausted unit inline, or drop it in partial mode.

        A unit whose last failure was a *timeout* is never re-run inline in
        partial mode — a hung work function would hang the parent, which is
        exactly what ``--partial-results`` exists to avoid.
        """
        timed_out = bool(log.failures) and \
            log.failures[-1].kind == FAILURE_TIMEOUT
        if self.allow_partial and timed_out:
            self._record_dropped(log)
            return
        self.fallbacks += 1
        _LIFETIME["fallbacks"] += 1
        try:
            value = fn(units[index])
        except Exception as exc:
            self._record_failure(log, classify_exception(exc), exc, 0.0,
                                 charge_attempt=False)
            if self.allow_partial:
                self._record_dropped(log)
                return
            log.outcome = OUTCOME_FAILED
            raise
        log.outcome = OUTCOME_FALLBACK
        results[index] = value
        if on_result is not None:
            on_result(index, value)

    def _discard_pool(self) -> None:
        """Abandon a poisoned pool: broken pools are never parked."""
        if self._pool is not None:
            self._pool.shutdown(wait=False, cancel_futures=True)
            self._pool = None
            _POOL_STATS["discarded"] += 1

    def close(self) -> None:
        """Park the (healthy, drained) pool for the next executor."""
        if self._pool is not None:
            _park_pool(self.n_jobs, self._pool)
            self._pool = None

    def __enter__(self) -> "ParallelExecutor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


try:  # pragma: no cover - typing nicety only
    from typing import Protocol

    class Executor(Protocol):
        """Structural contract every executor satisfies."""

        name: str
        n_jobs: int
        fallbacks: int
        retries: int
        dropped: int
        steals: int
        failures: List[ShardFailure]
        history: List[ShardAttemptLog]

        def run(
            self,
            fn: Callable[[T], R],
            units: Sequence[T],
            on_result: Optional[ResultCallback] = None,
        ) -> List[Optional[R]]:
            ...

        def close(self) -> None:
            ...

except ImportError:  # pragma: no cover - Python < 3.8
    Executor = object  # type: ignore[assignment,misc]
