"""User demographics (Table 2).

The recruiting company selected a wide variety of users; Table 2 gives the
occupation breakdown per campaign year. Occupation drives the mobility
schedule: office workers commute, housewives are home-based, students split
between campus and home, and so on.
"""

from __future__ import annotations

import enum
from typing import Dict

import numpy as np

from repro.errors import ConfigurationError


class Occupation(enum.Enum):
    """Occupation groups exactly as reported in Table 2."""

    GOVERNMENT = "government worker"
    OFFICE = "office worker"
    ENGINEER = "engineer"
    WORKER_OTHER = "worker (other)"
    PROFESSIONAL = "professional"
    SELF_OWNED = "self-owned business"
    PART_TIMER = "part timer"
    HOUSEWIFE = "housewife"
    STUDENT = "student"
    OTHER = "other"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


#: Table 2 percentages per campaign year (they sum to ~100 per year).
OCCUPATION_SHARES: Dict[int, Dict[Occupation, float]] = {
    2013: {
        Occupation.GOVERNMENT: 2.1,
        Occupation.OFFICE: 20.0,
        Occupation.ENGINEER: 16.7,
        Occupation.WORKER_OTHER: 12.8,
        Occupation.PROFESSIONAL: 2.4,
        Occupation.SELF_OWNED: 6.1,
        Occupation.PART_TIMER: 9.0,
        Occupation.HOUSEWIFE: 15.0,
        Occupation.STUDENT: 9.6,
        Occupation.OTHER: 6.3,
    },
    2014: {
        Occupation.GOVERNMENT: 3.4,
        Occupation.OFFICE: 20.1,
        Occupation.ENGINEER: 14.7,
        Occupation.WORKER_OTHER: 13.7,
        Occupation.PROFESSIONAL: 2.0,
        Occupation.SELF_OWNED: 6.7,
        Occupation.PART_TIMER: 10.1,
        Occupation.HOUSEWIFE: 14.2,
        Occupation.STUDENT: 8.3,
        Occupation.OTHER: 6.8,
    },
    2015: {
        Occupation.GOVERNMENT: 2.4,
        Occupation.OFFICE: 23.6,
        Occupation.ENGINEER: 16.6,
        Occupation.WORKER_OTHER: 13.2,
        Occupation.PROFESSIONAL: 2.8,
        Occupation.SELF_OWNED: 5.6,
        Occupation.PART_TIMER: 10.6,
        Occupation.HOUSEWIFE: 13.3,
        Occupation.STUDENT: 2.7,
        Occupation.OTHER: 7.1,
    },
}

#: Occupations whose schedule includes a weekday commute to a workplace.
COMMUTER_OCCUPATIONS = frozenset(
    {
        Occupation.GOVERNMENT,
        Occupation.OFFICE,
        Occupation.ENGINEER,
        Occupation.WORKER_OTHER,
        Occupation.PROFESSIONAL,
    }
)


def occupation_probabilities(year: int) -> "tuple[list[Occupation], np.ndarray]":
    """Occupations and normalized sampling probabilities for ``year``."""
    try:
        shares = OCCUPATION_SHARES[year]
    except KeyError:
        raise ConfigurationError(
            f"no demographics for year {year}; known: {sorted(OCCUPATION_SHARES)}"
        ) from None
    occupations = list(shares)
    probs = np.array([shares[o] for o in occupations], dtype=float)
    return occupations, probs / probs.sum()


def sample_occupation(year: int, rng: np.random.Generator) -> Occupation:
    """Draw one occupation for a recruit in campaign ``year``."""
    occupations, probs = occupation_probabilities(year)
    return occupations[int(rng.choice(len(occupations), p=probs))]
