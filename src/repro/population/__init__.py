"""Synthetic study population: demographics, profiles, recruitment, survey."""

from repro.population.demographics import (
    OCCUPATION_SHARES,
    Occupation,
    sample_occupation,
)
from repro.population.profiles import WifiPolicy, UserProfile
from repro.population.recruitment import RecruitmentConfig, recruit
from repro.population.survey import SurveyResponse, run_survey, SurveyTables

__all__ = [
    "OCCUPATION_SHARES",
    "Occupation",
    "sample_occupation",
    "WifiPolicy",
    "UserProfile",
    "RecruitmentConfig",
    "recruit",
    "SurveyResponse",
    "run_survey",
    "SurveyTables",
]
