"""Post-campaign user survey (§4.2, Tables 8 and 9).

At the end of each campaign all users filled out a questionnaire with two
WiFi questions: where did you connect (home/office/public), and why did you
not connect at each location. Answers are generated from each user's actual
profile plus reporting noise — notably the optimism bias the paper observes:
"users think they have more connectivity than they really do in public WiFi
networks".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

import numpy as np

from repro.errors import AnalysisError, ConfigurationError
from repro.population.profiles import UserProfile, WifiPolicy

LOCATIONS = ("home", "office", "public")

ANSWERS = ("yes", "no", "NA")

#: Reason rows of Table 9 (multiple answers allowed). The security and
#: LTE-is-enough questions were added in 2014.
REASONS = (
    "No available APs",
    "Difficult to set up",
    "No configuration",
    "Battery drain",
    "Failed",
    "Security issue",
    "LTE is enough",
    "Other",
)

_SINCE_2014 = frozenset({"Security issue", "LTE is enough"})


@dataclass(frozen=True)
class SurveyResponse:
    """One user's questionnaire."""

    user_id: int
    occupation: str
    connected: Dict[str, str]
    reasons: Dict[str, Tuple[str, ...]]

    def __post_init__(self) -> None:
        for loc in LOCATIONS:
            if self.connected.get(loc) not in ANSWERS:
                raise ConfigurationError(f"bad answer for {loc}")


def _connected_home(profile: UserProfile, rng: np.random.Generator) -> bool:
    if not profile.has_home_ap:
        return False
    return profile.wifi_policy is not WifiPolicy.ALWAYS_OFF and (
        profile.wifi_policy is not WifiPolicy.NO_CONFIG
    )


def _connected_office(profile: UserProfile, rng: np.random.Generator) -> bool:
    if not profile.office_has_ap:
        return False
    return profile.wifi_policy is WifiPolicy.ALWAYS_ON or rng.random() < 0.5


def _claims_public(profile: UserProfile, year: int, rng: np.random.Generator) -> bool:
    """Self-reported public-WiFi use, with the paper's optimism bias."""
    actually = (
        profile.public_enrolled
        and profile.wifi_policy in (WifiPolicy.ALWAYS_ON, WifiPolicy.DAYTIME_OFF)
    )
    if actually:
        return True
    # Optimistic over-reporting grows slightly with deployment visibility.
    optimism = {2013: 0.28, 2014: 0.30, 2015: 0.33}.get(year, 0.30)
    return rng.random() < optimism


def _reasons_for(
    profile: UserProfile, location: str, year: int, rng: np.random.Generator
) -> Tuple[str, ...]:
    """Reasons a user gives for not connecting at ``location``."""
    chosen: List[str] = []
    policy = profile.wifi_policy
    no_ap = {
        "home": not profile.has_home_ap,
        "office": not profile.office_has_ap,
        "public": not profile.public_enrolled and rng.random() < 0.4,
    }[location]
    if no_ap:
        chosen.append("No available APs")
    if policy is WifiPolicy.NO_CONFIG:
        chosen.append("No configuration")
        if rng.random() < 0.6:
            chosen.append("Difficult to set up")
    elif rng.random() < 0.15:
        chosen.append("Difficult to set up")
    if policy is WifiPolicy.DAYTIME_OFF and rng.random() < 0.3:
        chosen.append("Battery drain")
    if rng.random() < 0.08:
        chosen.append("Failed")
    if year >= 2014:
        security_p = {"home": 0.08, "office": 0.10, "public": 0.25}[location]
        if rng.random() < security_p * (1.5 if year == 2015 else 1.0):
            chosen.append("Security issue")
        from repro.net.cellular import CellularTechnology

        if profile.technology is CellularTechnology.LTE and rng.random() < (
            {"home": 0.30, "office": 0.15, "public": 0.30}[location]
        ):
            chosen.append("LTE is enough")
    if rng.random() < 0.07:
        chosen.append("Other")
    if not chosen:
        chosen.append("Other")
    return tuple(dict.fromkeys(chosen))


def run_survey(
    profiles: List[UserProfile], year: int, rng: np.random.Generator
) -> List[SurveyResponse]:
    """Generate every user's questionnaire for one campaign."""
    responses = []
    for profile in profiles:
        connected = {}
        na_roll = rng.random(3)
        answers = (
            _connected_home(profile, rng),
            _connected_office(profile, rng),
            _claims_public(profile, year, rng),
        )
        for loc, ans, na in zip(LOCATIONS, answers, na_roll):
            if na < 0.05:
                connected[loc] = "NA"
            else:
                connected[loc] = "yes" if ans else "no"
        reasons = {
            loc: _reasons_for(profile, loc, year, rng)
            for loc in LOCATIONS
            if connected[loc] != "yes"
        }
        responses.append(
            SurveyResponse(
                user_id=profile.user_id,
                occupation=profile.occupation.value,
                connected=connected,
                reasons=reasons,
            )
        )
    return responses


@dataclass
class SurveyTables:
    """Aggregated survey percentages (Tables 2, 8, 9)."""

    year: int
    n_responses: int
    occupation_pct: Dict[str, float] = field(default_factory=dict)
    connected_pct: Dict[str, Dict[str, float]] = field(default_factory=dict)
    reason_pct: Dict[str, Dict[str, float]] = field(default_factory=dict)


def tabulate_survey(responses: List[SurveyResponse], year: int) -> SurveyTables:
    """Aggregate questionnaires into the three survey tables."""
    if not responses:
        raise AnalysisError("no survey responses to tabulate")
    n = len(responses)
    tables = SurveyTables(year=year, n_responses=n)

    occupation_counts: Dict[str, int] = {}
    for r in responses:
        occupation_counts[r.occupation] = occupation_counts.get(r.occupation, 0) + 1
    tables.occupation_pct = {
        occ: 100.0 * count / n for occ, count in sorted(occupation_counts.items())
    }

    for loc in LOCATIONS:
        counts = {a: 0 for a in ANSWERS}
        for r in responses:
            counts[r.connected[loc]] += 1
        tables.connected_pct[loc] = {a: 100.0 * c / n for a, c in counts.items()}

    for loc in LOCATIONS:
        non_connected = [r for r in responses if r.connected[loc] != "yes"]
        denom = max(len(non_connected), 1)
        pct = {}
        for reason in REASONS:
            if year < 2014 and reason in _SINCE_2014:
                pct[reason] = float("nan")
                continue
            hits = sum(1 for r in non_connected if reason in r.reasons.get(loc, ()))
            pct[reason] = 100.0 * hits / denom
        tables.reason_pct[loc] = pct
    return tables
